// Unit tests for the analytical schedulability module, including textbook
// examples from Buttazzo (the paper's reference [10]).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/response_time.hpp"

namespace a = rtsc::analysis;
using rtsc::kernel::Time;
using namespace rtsc::kernel::time_literals;

namespace {
std::vector<a::PeriodicTask> classic_set() {
    // Classic RTA example: C=(1,2,3), T=(4,6,10), RM priorities.
    return {
        {"t1", 4_ms, 1_ms, Time::zero(), 3, Time::zero()},
        {"t2", 6_ms, 2_ms, Time::zero(), 2, Time::zero()},
        {"t3", 10_ms, 3_ms, Time::zero(), 1, Time::zero()},
    };
}
} // namespace

TEST(AnalysisTest, Utilization) {
    const auto ts = classic_set();
    // 1/4 + 2/6 + 3/10 = 0.8833...
    EXPECT_NEAR(a::utilization(ts), 0.25 + 1.0 / 3.0 + 0.3, 1e-12);
}

TEST(AnalysisTest, RmBoundValues) {
    EXPECT_NEAR(a::rm_utilization_bound(1), 1.0, 1e-12);
    EXPECT_NEAR(a::rm_utilization_bound(2), 2 * (std::sqrt(2.0) - 1), 1e-12);
    EXPECT_NEAR(a::rm_utilization_bound(3), 3 * (std::pow(2.0, 1.0 / 3) - 1),
                1e-12);
    EXPECT_EQ(a::rm_utilization_bound(0), 0.0);
    // Limit is ln 2.
    EXPECT_NEAR(a::rm_utilization_bound(100000), std::log(2.0), 1e-4);
}

TEST(AnalysisTest, EdfSchedulableIffUtilizationAtMostOne) {
    auto ts = classic_set();
    EXPECT_TRUE(a::edf_schedulable(ts));
    ts[2].wcet = 5_ms; // U = 0.25 + 0.333 + 0.5 > 1
    EXPECT_FALSE(a::edf_schedulable(ts));
}

TEST(AnalysisTest, ExactResponseTimes) {
    // Hand-computed fixed points:
    //   R1 = 1
    //   R2 = 2 + ceil(R2/4)*1 -> 3
    //   R3 = 3 + ceil(R3/4)*1 + ceil(R3/6)*2 -> 3+1+2=6 -> 3+2+2=7 ->
    //        3+2+4=9 -> 3+3+4=10 -> 10 (fixed)
    const auto res = a::response_time_analysis(classic_set());
    ASSERT_EQ(res.size(), 3u);
    ASSERT_TRUE(res[0].response.has_value());
    EXPECT_EQ(*res[0].response, 1_ms);
    EXPECT_TRUE(res[0].schedulable);
    ASSERT_TRUE(res[1].response.has_value());
    EXPECT_EQ(*res[1].response, 3_ms);
    ASSERT_TRUE(res[2].response.has_value());
    EXPECT_EQ(*res[2].response, 10_ms);
    EXPECT_TRUE(res[2].schedulable); // deadline == period == 10
}

TEST(AnalysisTest, UnschedulableTaskReported) {
    auto ts = classic_set();
    ts[2].wcet = 4_ms; // R3 grows past its 10ms deadline
    const auto res = a::response_time_analysis(ts);
    EXPECT_FALSE(res[2].schedulable);
}

TEST(AnalysisTest, BlockingTermExtendsResponse) {
    auto ts = classic_set();
    ts[0].blocking = 2_ms; // priority ceiling blocking for the top task
    const auto res = a::response_time_analysis(ts);
    EXPECT_EQ(*res[0].response, 3_ms);
}

TEST(AnalysisTest, ContextSwitchTermExtendsResponse) {
    const a::RtaOptions opts{.context_switch = Time::us(100),
                             .max_iterations = 1000};
    const auto res = a::response_time_analysis(classic_set(), opts);
    // R1 = 1ms + 0.1ms dispatch = 1.1ms.
    EXPECT_EQ(*res[0].response, Time::us(1100));
    // R2 = 2.1 + ceil(R2/4)*(1+0.2) -> 3.3ms.
    EXPECT_EQ(*res[1].response, Time::us(3300));
    // Responses dominate the overhead-free ones.
    const auto base = a::response_time_analysis(classic_set());
    for (std::size_t i = 0; i < res.size(); ++i)
        EXPECT_GE(*res[i].response, *base[i].response);
}

TEST(AnalysisTest, Hyperperiod) {
    EXPECT_EQ(a::hyperperiod(classic_set()), 60_ms); // lcm(4,6,10)
    EXPECT_EQ(a::hyperperiod({{"x", 7_us, 1_us, Time::zero(), 1, Time::zero()}}),
              7_us);
}

TEST(AnalysisTest, EffectiveDeadlineDefaultsToPeriod) {
    a::PeriodicTask t{"t", 10_ms, 1_ms, Time::zero(), 1, Time::zero()};
    EXPECT_EQ(t.effective_deadline(), 10_ms);
    t.deadline = 4_ms;
    EXPECT_EQ(t.effective_deadline(), 4_ms);
}
