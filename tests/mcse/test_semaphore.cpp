// MCSE Semaphore relation tests: counting semantics, blocking acquire,
// FIFO vs priority wake order, HW/SW crossing, RAII guard, statistics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/semaphore.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

class SemaphoreTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(SemaphoreTest, CountingLimitsConcurrentHolders) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu3("cpu3", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::Semaphore sem("sem", 2);
    std::vector<Time> entered;
    auto worker = [&](r::Task& self) {
        sem.acquire();
        entered.push_back(self.processor().simulator().now());
        self.compute(10_us);
        sem.release();
    };
    // Three tasks on three processors so they would otherwise run in
    // parallel; the semaphore admits only two at a time.
    cpu1.create_task({.name = "w1", .priority = 1}, worker);
    cpu2.create_task({.name = "w2", .priority = 1}, worker);
    cpu3.create_task({.name = "w3", .priority = 1}, worker);
    sim.run();
    ASSERT_EQ(entered.size(), 3u);
    EXPECT_EQ(entered[0], Time::zero());
    EXPECT_EQ(entered[1], Time::zero());
    EXPECT_EQ(entered[2], 10_us);
    EXPECT_EQ(sem.value(), 2u);
}

TEST_P(SemaphoreTest, AcquireBlocksUntilRelease) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    Time acquired_at;
    cpu.create_task({.name = "consumer", .priority = 2}, [&](r::Task&) {
        sem.acquire();
        acquired_at = sim.now();
    });
    sim.spawn("hw_producer", [&] {
        k::wait(42_us);
        sem.release();
    });
    sim.run();
    EXPECT_EQ(acquired_at, 42_us);
}

TEST_P(SemaphoreTest, TryAcquireNeverBlocks) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 1);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        EXPECT_TRUE(sem.try_acquire());
        EXPECT_FALSE(sem.try_acquire());
        sem.release();
        EXPECT_TRUE(sem.try_acquire());
        self.compute(1_us);
    });
    sim.run();
}

TEST_P(SemaphoreTest, FifoWakeOrder) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::Semaphore sem("sem", 0, m::WakeOrder::fifo);
    std::vector<std::string> order;
    // Low priority arrives first, high second; FIFO serves low first anyway.
    cpu1.create_task({.name = "low", .priority = 1, .start_time = 1_us},
                     [&](r::Task&) {
                         sem.acquire();
                         order.push_back("low");
                     });
    cpu2.create_task({.name = "high", .priority = 9, .start_time = 2_us},
                     [&](r::Task&) {
                         sem.acquire();
                         order.push_back("high");
                     });
    sim.spawn("hw", [&] {
        k::wait(10_us);
        sem.release();
        k::wait(10_us);
        sem.release();
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"low", "high"}));
}

TEST_P(SemaphoreTest, PriorityWakeOrder) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::Semaphore sem("sem", 0, m::WakeOrder::priority);
    std::vector<std::string> order;
    cpu1.create_task({.name = "low", .priority = 1, .start_time = 1_us},
                     [&](r::Task&) {
                         sem.acquire();
                         order.push_back("low");
                     });
    cpu2.create_task({.name = "high", .priority = 9, .start_time = 2_us},
                     [&](r::Task&) {
                         sem.acquire();
                         order.push_back("high");
                     });
    sim.spawn("hw", [&] {
        k::wait(10_us);
        sem.release();
        k::wait(10_us);
        sem.release();
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"high", "low"}));
}

TEST_P(SemaphoreTest, GuardReleasesOnScopeExit) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 1);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        {
            m::Semaphore::Guard g(sem);
            EXPECT_EQ(sem.value(), 0u);
            self.compute(5_us);
        }
        EXPECT_EQ(sem.value(), 1u);
    });
    sim.run();
}

TEST_P(SemaphoreTest, HardwareProducerSoftwareConsumerRendezvous) {
    // Classic producer/consumer item counting across the HW/SW boundary.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore items("items", 0);
    int consumed = 0;
    cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 5; ++i) {
            items.acquire();
            self.compute(3_us);
            ++consumed;
        }
    });
    sim.spawn("producer_hw", [&] {
        for (int i = 0; i < 5; ++i) {
            k::wait(10_us);
            items.release();
        }
    });
    sim.run();
    EXPECT_EQ(consumed, 5);
    EXPECT_EQ(items.value(), 0u);
}

TEST_P(SemaphoreTest, UtilizationIsExhaustedFraction) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 1);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us); // count 1: not exhausted 0-10
        sem.acquire();       // count 0 from 10
        self.compute(30_us);
        sem.release();       // count 1 at 40
        self.compute(10_us);
    });
    sim.run();
    EXPECT_EQ(sim.now(), 50_us);
    EXPECT_NEAR(sem.utilization(), 30.0 / 50.0, 1e-9);
    const auto& stats = sem.access_stats();
    EXPECT_EQ(stats.accesses, 2u); // acquire + release
    EXPECT_EQ(stats.blocked_accesses, 0u);
}

TEST_P(SemaphoreTest, BlockedTimeAccounted) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        sem.acquire(); // blocked 0 -> 25
    });
    sim.spawn("hw", [&] {
        k::wait(25_us);
        sem.release();
    });
    sim.run();
    EXPECT_EQ(sem.access_stats().blocked_accesses, 1u);
    EXPECT_EQ(sem.access_stats().blocked_time, 25_us);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SemaphoreTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
