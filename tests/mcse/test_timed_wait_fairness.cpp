// Timed-wait fairness: a waiter woken by a release()/write() delivery owns
// its unit/message by reservation — no try_acquire/try_read or later-arriving
// blocking caller can barge in between its wake-up and resumption — plus the
// unified blocked-duration accounting rule (blocked iff the caller suspended;
// blocked_for = now() - entry when it did) and the delivery-wins-the-tie rule
// at relation level. Both engines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "mcse/semaphore.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

class TimedWaitFairnessTest : public ::testing::TestWithParam<r::EngineKind> {};

// ---- barging / stolen wake-ups ----

TEST_P(TimedWaitFairnessTest, SemaphoreAcquireForSurvivesTryAcquireBarge) {
    // The releaser itself tries to re-take the unit right after release():
    // the woken waiter has not resumed yet, but the unit is reserved for it.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    bool got = false;
    bool stolen = true;
    Time woke_at;
    cpu.create_task({.name = "waiter", .priority = 1}, [&](r::Task&) {
        got = sem.acquire_for(100_us);
        woke_at = sim.now();
    });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        sem.release();
        stolen = sem.try_acquire();
    });
    sim.run();
    EXPECT_FALSE(stolen); // the reserved unit is invisible to try_acquire
    EXPECT_TRUE(got);     // ...so the waiter keeps its delivery
    EXPECT_EQ(woke_at, 50_us);
    EXPECT_EQ(sem.value(), 0u);
}

TEST_P(TimedWaitFairnessTest, QueueReadForSurvivesTryReadBarge) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 4);
    bool got = false;
    bool stolen = true;
    int v = 0;
    int stolen_v = 0;
    Time woke_at;
    cpu.create_task({.name = "reader", .priority = 1}, [&](r::Task&) {
        got = q.read_for(v, 100_us);
        woke_at = sim.now();
    });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        q.write(7);
        stolen = q.try_read(stolen_v);
    });
    sim.run();
    EXPECT_FALSE(stolen); // the delivered message already left the buffer
    EXPECT_TRUE(got);
    EXPECT_EQ(v, 7);
    EXPECT_EQ(woke_at, 50_us);
}

TEST_P(TimedWaitFairnessTest, SemaphoreWaiterBeatsHigherPriorityLateArrival) {
    // A higher-priority task that starts at the release instant dispatches
    // before the woken waiter, but must NOT take the reserved unit: it
    // blocks until the second release.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    bool waiter_got = false;
    Time waiter_at, late_at;
    cpu.create_task({.name = "waiter", .priority = 1}, [&](r::Task&) {
        waiter_got = sem.acquire_for(200_us);
        waiter_at = sim.now();
    });
    cpu.create_task({.name = "late", .priority = 9, .start_time = 50_us},
                    [&](r::Task&) {
                        sem.acquire();
                        late_at = sim.now();
                    });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        sem.release(); // reserved for "waiter" (FIFO front, registered first)
        k::wait(20_us);
        sem.release(); // this one is for "late"
    });
    sim.run();
    EXPECT_TRUE(waiter_got);
    EXPECT_EQ(waiter_at, 50_us);
    EXPECT_EQ(late_at, 70_us);
    EXPECT_EQ(sem.value(), 0u);
}

TEST_P(TimedWaitFairnessTest, PrioritySemaphoreDeliversToBestWaiter) {
    // WakeOrder::priority: delivery goes to the highest effective priority
    // among the registered waiters; the low one times out.
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::Semaphore sem("sem", 0, m::WakeOrder::priority);
    bool low_got = true;
    bool high_got = false;
    Time low_at, high_at;
    cpu1.create_task({.name = "low", .priority = 1}, [&](r::Task&) {
        low_got = sem.acquire_for(100_us);
        low_at = sim.now();
    });
    cpu2.create_task({.name = "high", .priority = 9, .start_time = 10_us},
                     [&](r::Task&) {
                         high_got = sem.acquire_for(100_us);
                         high_at = sim.now();
                     });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        sem.release();
    });
    sim.run();
    EXPECT_TRUE(high_got);
    EXPECT_EQ(high_at, 50_us);
    EXPECT_FALSE(low_got);
    EXPECT_EQ(low_at, 100_us);
}

TEST_P(TimedWaitFairnessTest, FifoSemaphoreDeliversToFirstRegistered) {
    // WakeOrder::fifo: the first-registered waiter wins even when a
    // higher-priority waiter is also blocked.
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::Semaphore sem("sem", 0, m::WakeOrder::fifo);
    bool first_got = false;
    bool second_got = true;
    cpu1.create_task({.name = "first", .priority = 1}, [&](r::Task&) {
        first_got = sem.acquire_for(100_us);
    });
    cpu2.create_task({.name = "second", .priority = 9, .start_time = 10_us},
                     [&](r::Task&) { second_got = sem.acquire_for(60_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        sem.release();
    });
    sim.run();
    EXPECT_TRUE(first_got);
    EXPECT_FALSE(second_got);
}

// ---- delivery wins an exact deadline tie (relation-level rule) ----

TEST_P(TimedWaitFairnessTest, SemaphoreDeliveryAtExactDeadlineWins) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    bool got = false;
    cpu.create_task({.name = "waiter", .priority = 1},
                    [&](r::Task&) { got = sem.acquire_for(50_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us); // release lands exactly on the waiter's deadline
        sem.release();
    });
    sim.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(sem.value(), 0u);
}

TEST_P(TimedWaitFairnessTest, QueueDeliveryAtExactDeadlineWins) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 0); // unbounded
    bool got = false;
    int v = 0;
    cpu.create_task({.name = "reader", .priority = 1},
                    [&](r::Task&) { got = q.read_for(v, 50_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        q.write(3);
    });
    sim.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(v, 3);
}

TEST_P(TimedWaitFairnessTest, EventSignalAtExactDeadlineWins) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    bool got = false;
    cpu.create_task({.name = "waiter", .priority = 1},
                    [&](r::Task&) { got = ev.await_for(50_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        ev.signal();
    });
    sim.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(ev.pending(), 0u);
}

// ---- unified blocked-duration accounting ----

TEST_P(TimedWaitFairnessTest, SameInstantDeliveryCountsAsBlockedAccess) {
    // The waiter suspends and is delivered within the same instant: one
    // blocked access, zero blocked time (the old duration-derived rule
    // classified this as non-blocking).
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    cpu.create_task({.name = "waiter", .priority = 9},
                    [&](r::Task&) { sem.acquire(); });
    // Lower priority: runs only once the waiter has suspended, still at t=0.
    cpu.create_task({.name = "releaser", .priority = 1},
                    [&](r::Task&) { sem.release(); });
    sim.run();
    const auto& s = sem.access_stats();
    EXPECT_EQ(s.accesses, 2u); // acquire + release
    EXPECT_EQ(s.blocked_accesses, 1u);
    EXPECT_EQ(s.blocked_time, Time::zero());
}

TEST_P(TimedWaitFairnessTest, TimedAndUntimedBlockingRecordTheSameDuration) {
    // Identical wait shapes through acquire() and acquire_for(): both must
    // record exactly the delivery latency.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem_u("sem_u", 0);
    m::Semaphore sem_t("sem_t", 0);
    cpu.create_task({.name = "untimed", .priority = 2},
                    [&](r::Task&) { sem_u.acquire(); });
    cpu.create_task({.name = "timed", .priority = 1},
                    [&](r::Task&) { EXPECT_TRUE(sem_t.acquire_for(100_us)); });
    sim.spawn("hw", [&] {
        k::wait(30_us);
        sem_u.release();
        sem_t.release();
    });
    sim.run();
    EXPECT_EQ(sem_u.access_stats().blocked_accesses, 1u);
    EXPECT_EQ(sem_t.access_stats().blocked_accesses, 1u);
    EXPECT_EQ(sem_u.access_stats().blocked_time, 30_us);
    EXPECT_EQ(sem_t.access_stats().blocked_time, 30_us);
}

TEST_P(TimedWaitFairnessTest, TimeoutFailureCountsFullWaitAsBlocked) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 0);
    cpu.create_task({.name = "reader", .priority = 1}, [&](r::Task&) {
        int v = 0;
        EXPECT_FALSE(q.read_for(v, 40_us));
    });
    sim.run();
    EXPECT_EQ(q.access_stats().blocked_accesses, 1u);
    EXPECT_EQ(q.access_stats().blocked_time, 40_us);
}

TEST_P(TimedWaitFairnessTest, ZeroTimeoutFailureIsNotABlockedAccess) {
    // A zero-timeout poll on an empty relation never suspends: it must look
    // exactly like a failed try_acquire in the statistics.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    cpu.create_task({.name = "poller", .priority = 1}, [&](r::Task& self) {
        EXPECT_FALSE(sem.acquire_for(Time::zero()));
        self.compute(1_us);
    });
    sim.run();
    EXPECT_EQ(sem.access_stats().accesses, 1u);
    EXPECT_EQ(sem.access_stats().blocked_accesses, 0u);
    EXPECT_EQ(sem.access_stats().blocked_time, Time::zero());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TimedWaitFairnessTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
