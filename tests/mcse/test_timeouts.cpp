// Timed-blocking primitives (RTOS-standard extension): Event::await_for,
// MessageQueue::read_for, Semaphore::acquire_for — success before the
// deadline, timeout expiry, exact timeout instants, interplay with
// priorities and overheads, and hardware-side variants. Both engines.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "mcse/semaphore.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

class TimeoutTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(TimeoutTest, EventAwaitForSucceedsBeforeDeadline) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    bool got = false;
    Time woke_at;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        got = ev.await_for(100_us);
        woke_at = sim.now();
    });
    sim.spawn("hw", [&] {
        k::wait(30_us);
        ev.signal();
    });
    sim.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(woke_at, 30_us);
}

TEST_P(TimeoutTest, EventAwaitForTimesOutAtExactInstant) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    bool got = true;
    Time woke_at;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        got = ev.await_for(40_us);
        woke_at = sim.now();
    });
    sim.run();
    EXPECT_FALSE(got);
    EXPECT_EQ(woke_at, 40_us); // zero overheads: re-dispatched at the deadline
    // A later signal is memorized normally (the stale waiter was removed).
    EXPECT_EQ(ev.pending(), 0u);
}

TEST_P(TimeoutTest, EventAwaitForPendingConsumedImmediately) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::boolean);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        ev.signal(); // memorized
        EXPECT_TRUE(ev.await_for(10_us));
        EXPECT_EQ(sim.now(), Time::zero());
        self.compute(1_us);
    });
    sim.run();
}

TEST_P(TimeoutTest, TimeoutWithRtosOverheadsStillReDispatches) {
    // With overheads, the deadline marks the wake-up; the task runs again
    // after the idle-dispatch overhead like any other activation.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    m::Event ev("ev", m::EventPolicy::counter);
    Time resumed_at;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        (void)ev.await_for(50_us);
        resumed_at = sim.now();
    });
    sim.run();
    // Runs at 10 (sched+load), awaits at 10; wake at 60; sched+load -> 70.
    EXPECT_EQ(resumed_at, 70_us);
}

TEST_P(TimeoutTest, QueueReadForReceivesAndTimesOut) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 4);
    std::vector<std::pair<bool, Time>> outcomes;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        int v = 0;
        const bool first = q.read_for(v, 100_us); // message at 20: success
        outcomes.emplace_back(first, sim.now());
        const bool second = q.read_for(v, 30_us); // nothing: timeout at +30
        outcomes.emplace_back(second, sim.now());
    });
    sim.spawn("hw", [&] {
        k::wait(20_us);
        q.write(7);
    });
    sim.run();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_TRUE(outcomes[0].first);
    EXPECT_EQ(outcomes[0].second, 20_us);
    EXPECT_FALSE(outcomes[1].first);
    EXPECT_EQ(outcomes[1].second, 50_us);
}

TEST_P(TimeoutTest, QueueReadForStolenMessageKeepsWaiting) {
    // Two readers, one message: the higher-priority reader consumes it; the
    // lower-priority one must keep waiting until ITS deadline, then fail.
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::MessageQueue<int> q("q", 4);
    bool loser_got = true;
    Time loser_done;
    cpu1.create_task({.name = "winner", .priority = 9}, [&](r::Task&) {
        int v = 0;
        EXPECT_TRUE(q.read_for(v, 1_ms));
    });
    cpu2.create_task({.name = "loser", .priority = 1, .start_time = 1_us},
                     [&](r::Task&) {
                         int v = 0;
                         loser_got = q.read_for(v, 100_us);
                         loser_done = sim.now();
                     });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        q.write(1);
    });
    sim.run();
    EXPECT_FALSE(loser_got);
    EXPECT_EQ(loser_done, 101_us);
}

TEST_P(TimeoutTest, SemaphoreAcquireFor) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Semaphore sem("sem", 0);
    std::vector<bool> got;
    std::vector<Time> at;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        got.push_back(sem.acquire_for(25_us)); // release at 60: timeout at 25
        at.push_back(sim.now());
        got.push_back(sem.acquire_for(100_us)); // release at 60: success
        at.push_back(sim.now());
    });
    sim.spawn("hw", [&] {
        k::wait(60_us);
        sem.release();
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<bool>{false, true}));
    EXPECT_EQ(at[0], 25_us);
    EXPECT_EQ(at[1], 60_us);
    EXPECT_EQ(sem.value(), 0u);
}

TEST_P(TimeoutTest, HardwareSideTimedWaits) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    m::Semaphore sem("sem", 0);
    m::MessageQueue<int> q("q", 2);
    std::vector<bool> results;
    sim.spawn("hw", [&] {
        results.push_back(ev.await_for(10_us));   // timeout
        results.push_back(sem.acquire_for(10_us)); // timeout
        int v = 0;
        results.push_back(q.read_for(v, 10_us));  // timeout
        // now the task provides all three:
        results.push_back(ev.await_for(1_ms));
        results.push_back(sem.acquire_for(1_ms));
        results.push_back(q.read_for(v, 1_ms));
        EXPECT_EQ(v, 5);
    });
    cpu.create_task({.name = "producer", .priority = 1, .start_time = 50_us},
                    [&](r::Task& self) {
                        ev.signal();
                        self.compute(5_us);
                        sem.release();
                        self.compute(5_us);
                        q.write(5);
                    });
    sim.run();
    EXPECT_EQ(results,
              (std::vector<bool>{false, false, false, true, true, true}));
}

TEST_P(TimeoutTest, ZeroTimeoutActsAsTry) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    m::Semaphore sem("sem", 1);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        EXPECT_FALSE(ev.await_for(Time::zero()));
        EXPECT_TRUE(sem.acquire_for(Time::zero()));
        EXPECT_FALSE(sem.acquire_for(Time::zero()));
        self.compute(1_us);
    });
    sim.run();
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TimeoutTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
