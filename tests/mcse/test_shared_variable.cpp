// MCSE SharedVariable relation tests: mutual exclusion, waiting-resource
// state, preemption during access (Figure 7 mechanics), the preemption-lock
// fix, and the priority-inheritance extension.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/shared_variable.hpp"
#include "rtos/processor.hpp"
#include "../rtos/recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using k::Time;
using namespace rtsc::kernel::time_literals;

class SharedVarTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(SharedVarTest, ReadWriteRoundTrip) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("sv", 11);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        EXPECT_EQ(sv.read(), 11);
        sv.write(22, 2_us);
        EXPECT_EQ(sv.read(1_us), 22);
        self.compute(1_us);
    });
    sim.run();
    EXPECT_FALSE(sv.locked());
}

TEST_P(SharedVarTest, AccessDurationConsumesCpuTime) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("sv", 0);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task&) {
        sv.write(1, 10_us);
        (void)sv.read(5_us);
    });
    sim.run();
    EXPECT_EQ(sim.now(), 15_us);
    EXPECT_EQ(cpu.tasks()[0]->stats().running_time, 15_us);
}

TEST_P(SharedVarTest, MutualExclusionBlocksSecondAccessor) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::SharedVariable<int> sv("sv", 0);
    std::vector<std::pair<std::string, Time>> sections;
    cpu1.create_task({.name = "a", .priority = 1}, [&](r::Task&) {
        auto g = sv.access();
        g.value() = 1;
        rtsc::kernel::wait(20_us); // hold across simulated time
        sections.emplace_back("a_end", sim.now());
    });
    cpu2.create_task({.name = "b", .priority = 1}, [&](r::Task&) {
        (void)sv.read(); // blocked until a releases
        sections.emplace_back("b_read", sim.now());
    });
    sim.run();
    ASSERT_EQ(sections.size(), 2u);
    EXPECT_EQ(sections[0].first, "a_end");
    EXPECT_EQ(sections[1].first, "b_read");
    EXPECT_EQ(sections[1].second, 20_us);
}

TEST_P(SharedVarTest, BlockedTaskEntersWaitingResourceState) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    m::SharedVariable<int> sv("sv", 0);
    // Low-priority holder starts first and is preempted mid-access by the
    // high-priority task, which then blocks on the resource.
    cpu.create_task({.name = "holder", .priority = 1}, [&](r::Task&) {
        (void)sv.read(50_us); // holds the resource for 50us of CPU
    });
    cpu.create_task({.name = "contender", .priority = 5, .start_time = 10_us},
                    [&](r::Task&) { (void)sv.read(5_us); });
    sim.run();
    const auto c = rec.of("contender");
    // ready@10, running@10, waiting_resource@10, ready@<release>, running...
    ASSERT_GE(c.size(), 5u);
    EXPECT_EQ(c[2].to, r::TaskState::waiting_resource);
    EXPECT_EQ(c[2].at, 10_us);
    // Holder was preempted at 10, resumes immediately (zero overheads) and
    // completes the remaining 40us of its access at 50; the release wakes the
    // contender, which preempts and runs its 5us read.
    EXPECT_EQ(c[3], (rtsc::test::Transition{50_us, "contender", r::TaskState::ready}));
    const auto& holder = *cpu.tasks()[0];
    EXPECT_EQ(holder.stats_at(sim.now()).waiting_resource_time, Time::zero());
    const auto& contender = *cpu.tasks()[1];
    EXPECT_EQ(contender.stats_at(sim.now()).waiting_resource_time, 40_us);
}

TEST_P(SharedVarTest, PreemptionLockProtectionPreventsPreemptionDuringAccess) {
    // The paper's fix: "This priority inversion problem can be avoided by
    // disabling preemption during access to shared data."
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    m::SharedVariable<int> sv("sv", 0, m::Protection::preemption_lock);
    cpu.create_task({.name = "holder", .priority = 1}, [&](r::Task&) {
        (void)sv.read(50_us);
    });
    cpu.create_task({.name = "interrupter", .priority = 5, .start_time = 10_us},
                    [&](r::Task& self) { self.compute(5_us); });
    sim.run();
    const auto& holder = *cpu.tasks()[0];
    EXPECT_EQ(holder.stats().preemptions, 0u);
    const auto i = rec.of("interrupter");
    // Becomes ready at 10 but only runs once the access ends at 50.
    EXPECT_EQ(i[0].at, 10_us);
    EXPECT_EQ(i[1], (rtsc::test::Transition{50_us, "interrupter",
                                            r::TaskState::running}));
    EXPECT_TRUE(cpu.preemption_allowed()); // lock released after access
}

TEST_P(SharedVarTest, PriorityInheritanceBoundsInversion) {
    // Classic three-task inversion: low holds the resource, high blocks on
    // it, and an unrelated medium task would otherwise starve low (and
    // therefore high). With inheritance, low runs at high's priority while
    // holding the resource, so medium cannot interleave.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    m::SharedVariable<int> sv("sv", 0, m::Protection::priority_inheritance);
    Time high_done, medium_started;
    cpu.create_task({.name = "low", .priority = 1},
                    [&](r::Task&) { (void)sv.read(100_us); });
    cpu.create_task({.name = "high", .priority = 9, .start_time = 10_us},
                    [&](r::Task&) {
                        (void)sv.read(5_us);
                        high_done = sim.now();
                    });
    cpu.create_task({.name = "medium", .priority = 5, .start_time = 20_us},
                    [&](r::Task& self) {
                        medium_started = sim.now();
                        self.compute(30_us);
                    });
    sim.run();
    // low runs 0-10 (10 of 100 done); high preempts, blocks at 10 and boosts
    // low to 9; low resumes and finishes the access at 100 despite medium
    // being ready from 20; high then reads 100-105; medium runs after high.
    EXPECT_EQ(high_done, 105_us);
    EXPECT_EQ(medium_started, 105_us);
    // Without inheritance medium would have run 20-50 first and high_done
    // would be 135us — asserted by the companion test below.
}

TEST_P(SharedVarTest, WithoutInheritanceMediumCausesInversion) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("sv", 0, m::Protection::none);
    Time high_done;
    cpu.create_task({.name = "low", .priority = 1},
                    [&](r::Task&) { (void)sv.read(100_us); });
    cpu.create_task({.name = "high", .priority = 9, .start_time = 10_us},
                    [&](r::Task&) {
                        (void)sv.read(5_us);
                        high_done = sim.now();
                    });
    cpu.create_task({.name = "medium", .priority = 5, .start_time = 20_us},
                    [&](r::Task& self) { self.compute(30_us); });
    sim.run();
    EXPECT_EQ(high_done, 135_us); // inversion: medium's 30us delay high
}

TEST_P(SharedVarTest, HighestPriorityWaiterAcquiresFirst) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu3("cpu3", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    m::SharedVariable<int> sv("sv", 0);
    std::vector<std::string> acquisitions;
    cpu1.create_task({.name = "holder", .priority = 1}, [&](r::Task&) {
        auto g = sv.access();
        rtsc::kernel::wait(50_us);
    });
    auto contender = [&](const std::string& name) {
        return [&, name](r::Task&) {
            (void)sv.read();
            acquisitions.push_back(name);
        };
    };
    cpu2.create_task({.name = "lowprio", .priority = 2, .start_time = 5_us},
                     contender("lowprio"));
    cpu3.create_task({.name = "highprio", .priority = 8, .start_time = 10_us},
                     contender("highprio"));
    sim.run();
    EXPECT_EQ(acquisitions, (std::vector<std::string>{"highprio", "lowprio"}));
}

TEST_P(SharedVarTest, GuardAllowsReadModifyWrite) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("sv", 10);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        {
            auto g = sv.access();
            g.value() += 5;
            self.compute(3_us);
            g.value() *= 2;
        }
        EXPECT_EQ(sv.read(), 30);
        self.compute(1_us);
    });
    sim.run();
}

TEST_P(SharedVarTest, UtilizationIsLockedFraction) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("sv", 0);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us);
        sv.write(1, 10_us); // locked 10-20
        self.compute(20_us);
    });
    sim.run();
    EXPECT_EQ(sim.now(), 40_us);
    EXPECT_NEAR(sv.utilization(), 0.25, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SharedVarTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
