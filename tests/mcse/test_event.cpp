// MCSE Event relation tests: the three memorization policies (fugitive /
// boolean / counter), task and hardware waiters, wake rules, statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

class McseEventTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(McseEventTest, FugitiveSignalWithoutWaiterIsLost) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::fugitive);
    bool resumed = false;
    cpu.create_task({.name = "waiter", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us); // signal happens at t=5 while computing: lost
        ev.await();
        resumed = true;
    });
    sim.spawn("hw", [&] {
        k::wait(5_us);
        ev.signal();
    });
    sim.run();
    EXPECT_FALSE(resumed);
    EXPECT_EQ(ev.pending(), 0u);
}

TEST_P(McseEventTest, BooleanMemorizesOneLevel) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::boolean);
    int awaits_done = 0;
    cpu.create_task({.name = "waiter", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us); // two signals land here; boolean keeps only one
        ev.await();          // consumes the memorized level, no block
        ++awaits_done;
        ev.await();          // must block forever: second signal was absorbed
        ++awaits_done;
    });
    sim.spawn("hw", [&] {
        k::wait(2_us);
        ev.signal();
        k::wait(2_us);
        ev.signal();
    });
    sim.run();
    EXPECT_EQ(awaits_done, 1);
    EXPECT_EQ(ev.pending(), 0u);
    EXPECT_EQ(ev.signal_count(), 2u);
}

TEST_P(McseEventTest, CounterMemorizesEverySignal) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    int awaits_done = 0;
    cpu.create_task({.name = "waiter", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us);
        for (int i = 0; i < 3; ++i) {
            ev.await();
            ++awaits_done;
        }
    });
    sim.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(2_us);
            ev.signal();
        }
    });
    sim.run();
    EXPECT_EQ(awaits_done, 3);
    EXPECT_EQ(ev.pending(), 0u);
}

TEST_P(McseEventTest, CounterWakesExactlyOneWaiter) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    int woken = 0;
    for (int i = 0; i < 3; ++i) {
        cpu.create_task({.name = "w" + std::to_string(i), .priority = 1},
                        [&](r::Task&) {
                            ev.await();
                            ++woken;
                        });
    }
    sim.spawn("hw", [&] {
        k::wait(10_us);
        ev.signal();
    });
    sim.run();
    EXPECT_EQ(woken, 1);
}

TEST_P(McseEventTest, FugitiveAndBooleanWakeAllWaiters) {
    for (const auto policy : {m::EventPolicy::fugitive, m::EventPolicy::boolean}) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         GetParam());
        m::Event ev("ev", policy);
        int woken = 0;
        for (int i = 0; i < 3; ++i) {
            cpu.create_task({.name = "w" + std::to_string(i), .priority = 1},
                            [&](r::Task&) {
                                ev.await();
                                ++woken;
                            });
        }
        sim.spawn("hw", [&] {
            k::wait(10_us);
            ev.signal();
        });
        sim.run();
        EXPECT_EQ(woken, 3) << "policy=" << m::to_string(policy);
    }
}

TEST_P(McseEventTest, TaskSignalsTask) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    m::Event ev("ev", m::EventPolicy::boolean);
    Time consumer_resumed;
    cpu.create_task({.name = "consumer", .priority = 5}, [&](r::Task& self) {
        ev.await();
        consumer_resumed = sim.now();
        self.compute(10_us);
    });
    cpu.create_task({.name = "producer", .priority = 1}, [&](r::Task& self) {
        self.compute(30_us);
        ev.signal(); // wakes the higher-priority consumer -> preempted inside
        self.compute(30_us);
    });
    sim.run();
    // consumer: sched 0-5 load 5-10 runs 10, blocks at 10 (save+sched 10-20),
    // producer load 20-25, computes 25-55; signal at 55: preemption (b):
    // save 55-60, sched 60-65, consumer load 65-70 -> resumes at 70.
    EXPECT_EQ(consumer_resumed, 70_us);
    EXPECT_EQ(cpu.tasks()[1]->stats().preemptions, 1u);
}

TEST_P(McseEventTest, HardwareAwaitsTaskSignal) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    Time hw_woke;
    sim.spawn("hw", [&] {
        ev.await();
        hw_woke = sim.now();
    });
    cpu.create_task({.name = "sw", .priority = 1}, [&](r::Task& self) {
        self.compute(25_us);
        ev.signal();
    });
    sim.run();
    EXPECT_EQ(hw_woke, 25_us);
}

TEST_P(McseEventTest, TryAwaitConsumesWithoutBlocking) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    std::vector<bool> results;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        results.push_back(ev.try_await()); // nothing pending
        self.compute(10_us);               // hw signals twice meanwhile
        results.push_back(ev.try_await());
        results.push_back(ev.try_await());
        results.push_back(ev.try_await()); // consumed both already
    });
    sim.spawn("hw", [&] {
        k::wait(5_us);
        ev.signal();
        ev.signal();
    });
    sim.run();
    EXPECT_EQ(results, (std::vector<bool>{false, true, true, false}));
}

TEST_P(McseEventTest, ResetDropsMemorizedOccurrences) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        ev.signal();
        ev.signal();
        EXPECT_EQ(ev.pending(), 2u);
        ev.reset();
        EXPECT_EQ(ev.pending(), 0u);
        self.compute(1_us);
    });
    sim.run();
}

TEST_P(McseEventTest, UtilizationCountsBlockedAwaits) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event ev("ev", m::EventPolicy::counter);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        ev.await(); // blocks (signal at t=10)
        self.compute(5_us);
        ev.await(); // signal already pending: non-blocking
    });
    sim.spawn("hw", [&] {
        k::wait(10_us);
        ev.signal();
        ev.signal();
    });
    sim.run();
    const auto& s = ev.access_stats();
    EXPECT_EQ(s.accesses, 4u); // 2 signals + 2 awaits
    EXPECT_EQ(s.blocked_accesses, 1u);
    EXPECT_EQ(s.blocked_time, 10_us);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, McseEventTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
