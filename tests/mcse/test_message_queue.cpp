// MCSE MessageQueue relation tests: bounded/unbounded capacity, blocking
// read/write, producer-consumer across priorities and across the HW/SW
// boundary, non-blocking variants, occupancy statistics.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/message_queue.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

class McseQueueTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(McseQueueTest, FifoOrderPreserved) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 8);
    std::vector<int> got;
    cpu.create_task({.name = "producer", .priority = 2}, [&](r::Task& self) {
        for (int i = 1; i <= 5; ++i) {
            self.compute(3_us);
            q.write(i);
        }
    });
    cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task&) {
        for (int i = 0; i < 5; ++i) got.push_back(q.read());
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(q.messages_written(), 5u);
}

TEST_P(McseQueueTest, ReaderBlocksUntilWrite) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 4);
    Time read_at;
    int value = 0;
    cpu.create_task({.name = "consumer", .priority = 5}, [&](r::Task&) {
        value = q.read();
        read_at = sim.now();
    });
    sim.spawn("hw", [&] {
        k::wait(17_us);
        q.write(42);
    });
    sim.run();
    EXPECT_EQ(value, 42);
    EXPECT_EQ(read_at, 17_us);
}

TEST_P(McseQueueTest, WriterBlocksWhenFull) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 2);
    Time third_done;
    cpu.create_task({.name = "producer", .priority = 5}, [&](r::Task&) {
        q.write(1);
        q.write(2);
        q.write(3); // full: blocks until the consumer reads at t=30
        third_done = sim.now();
    });
    cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
        self.compute(30_us);
        EXPECT_EQ(q.read(), 1);
    });
    sim.run();
    EXPECT_EQ(third_done, 30_us);
    EXPECT_EQ(q.size(), 2u);
}

TEST_P(McseQueueTest, UnboundedNeverBlocksWriter) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 0);
    EXPECT_TRUE(q.unbounded());
    cpu.create_task({.name = "producer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 1000; ++i) q.write(i);
        self.compute(1_us);
    });
    sim.run();
    EXPECT_EQ(q.size(), 1000u);
    EXPECT_EQ(q.max_occupancy(), 1000u);
}

TEST_P(McseQueueTest, CrossProcessorProducerConsumer) {
    k::Simulator sim;
    r::Processor cpu1("cpu1", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::Processor cpu2("cpu2", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    cpu1.set_overheads(r::RtosOverheads::uniform(1_us));
    cpu2.set_overheads(r::RtosOverheads::uniform(1_us));
    m::MessageQueue<int> q("q", 2);
    std::vector<Time> consumed_at;
    cpu1.create_task({.name = "producer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 3; ++i) {
            self.compute(10_us);
            q.write(i);
        }
    });
    cpu2.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(q.read(), i);
            consumed_at.push_back(sim.now());
            self.compute(5_us);
        }
    });
    sim.run();
    ASSERT_EQ(consumed_at.size(), 3u);
    // Producer writes at 12, 22, 32 (1us sched + 1us load + computes); the
    // idle consumer CPU then pays sched+load = 2us before each read returns.
    EXPECT_EQ(consumed_at[0], 14_us);
    EXPECT_EQ(consumed_at[1], 24_us);
    EXPECT_EQ(consumed_at[2], 34_us);
}

TEST_P(McseQueueTest, HardwareProducerSoftwareConsumer) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<std::string> q("frames", 4);
    std::vector<std::string> got;
    sim.spawn("camera", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(20_us);
            q.write("frame" + std::to_string(i));
        }
    });
    cpu.create_task({.name = "encoder", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 3; ++i) {
            got.push_back(q.read());
            self.compute(5_us);
        }
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<std::string>{"frame0", "frame1", "frame2"}));
}

TEST_P(McseQueueTest, SoftwareProducerHardwareConsumer) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 1);
    std::vector<int> got;
    cpu.create_task({.name = "sw", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 3; ++i) {
            self.compute(4_us);
            q.write(i);
        }
    });
    sim.spawn("dac", [&] {
        for (int i = 0; i < 3; ++i) got.push_back(q.read());
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST_P(McseQueueTest, NonBlockingVariants) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 1);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        int v = 0;
        EXPECT_FALSE(q.try_read(v));
        EXPECT_TRUE(q.try_write(7));
        EXPECT_FALSE(q.try_write(8)); // full
        EXPECT_TRUE(q.try_read(v));
        EXPECT_EQ(v, 7);
        self.compute(1_us);
    });
    sim.run();
}

TEST_P(McseQueueTest, OccupancyStatistics) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 4);
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        self.compute(10_us); // empty 0-10
        q.write(1);
        self.compute(10_us); // occupancy 1 for 10-20
        q.write(2);
        self.compute(10_us); // occupancy 2 for 20-30
        (void)q.read();
        (void)q.read();
        self.compute(10_us); // empty 30-40
    });
    sim.run();
    EXPECT_EQ(sim.now(), 40_us);
    EXPECT_EQ(q.max_occupancy(), 2u);
    // Non-empty for 20us of 40us.
    EXPECT_NEAR(q.utilization(), 0.5, 1e-9);
    // Time-averaged occupancy: (1*10 + 2*10)/40 = 0.75.
    EXPECT_NEAR(q.average_occupancy(), 0.75, 1e-9);
}

TEST_P(McseQueueTest, BlockedWriteAccountedInStats) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::MessageQueue<int> q("q", 1);
    cpu.create_task({.name = "producer", .priority = 5}, [&](r::Task&) {
        q.write(1);
        q.write(2); // blocked until t=25
    });
    cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
        self.compute(25_us);
        (void)q.read();
    });
    sim.run();
    const auto& s = q.access_stats();
    EXPECT_EQ(s.blocked_accesses, 1u);
    EXPECT_EQ(s.blocked_time, 25_us);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, McseQueueTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
