// PerfettoStreamWriter tests: the streamed export must carry exactly the
// batch exporter's events (byte-identical after canonical sort) on both
// engines with skip-ahead on and off, stay within its bounded in-memory
// window on long traces, spool atomically (no final file until finish(),
// no spool left behind on abandonment), and fan markers out through
// trace::MarkerTee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "obs/json.hpp"
#include "obs/perfetto.hpp"
#include "obs/perfetto_stream.hpp"
#include "rtos/processor.hpp"
#include "trace/marker.hpp"
#include "trace/recorder.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
namespace tr = rtsc::trace;
using namespace rtsc::kernel::time_literals;

namespace {

/// Event lines of a trace-event JSON file, trailing commas stripped and
/// sorted: the canonical multiset the stream/batch equivalence is stated
/// over.
std::vector<std::string> canonical_lines(const std::string& path) {
    std::ifstream is(path);
    EXPECT_TRUE(is.good()) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == ',') line.pop_back();
        lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

std::vector<std::string> canonical_lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == ',') line.pop_back();
        lines.push_back(line);
    }
    std::sort(lines.begin(), lines.end());
    return lines;
}

/// Preemption + comm + marker scenario run once, observed by a Recorder
/// (batch export) and a PerfettoStreamWriter at the same time.
struct DualExport {
    std::string batch_text;
    o::PerfettoStreamWriter::Stats stats;
    std::string stream_path;

    DualExport(r::EngineKind engine, bool skip_ahead,
               const std::string& stream_file,
               o::PerfettoStreamWriter::Options opts = {}) {
        stream_path = stream_file;
        k::Simulator sim;
        sim.set_skip_ahead(skip_ahead);
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         engine);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        tr::Recorder rec;
        rec.attach(cpu);
        o::PerfettoStreamWriter stream(stream_file, opts);
        stream.attach(cpu);
        m::Event irq("irq", m::EventPolicy::boolean);
        rec.attach(irq);
        stream.attach(irq);
        tr::MarkerTee markers;
        markers.add(rec);
        markers.add(stream);
        cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
            irq.await();
            self.compute(20_us);
        });
        cpu.create_task({.name = "L", .priority = 1},
                        [](r::Task& self) { self.compute(100_us); });
        sim.spawn("hw", [&] {
            k::wait(50_us);
            irq.signal();
            markers.mark("fault", "crash:demo");
        });
        sim.run();

        std::ostringstream os;
        o::write_perfetto_json(os, rec);
        batch_text = os.str();
        stream.finish();
        stats = stream.stats();
    }
};

} // namespace

TEST(PerfettoStreamTest, MatchesBatchExportAfterCanonicalSort) {
    // Full matrix: both engines x skip-ahead on/off. Every leg's streamed
    // file must carry exactly the batch export's events.
    for (const auto engine :
         {r::EngineKind::procedure_calls, r::EngineKind::rtos_thread}) {
        for (const bool skip : {false, true}) {
            const DualExport ex(engine, skip, "stream_eq.perfetto.json");
            EXPECT_EQ(canonical_lines_of(ex.batch_text),
                      canonical_lines("stream_eq.perfetto.json"))
                << "engine=" << static_cast<int>(engine) << " skip=" << skip;
        }
    }
    std::remove("stream_eq.perfetto.json");
}

TEST(PerfettoStreamTest, StreamedFileIsValidTraceEventJson) {
    const DualExport ex(r::EngineKind::procedure_calls, true,
                        "stream_valid.perfetto.json");
    std::ifstream is("stream_valid.perfetto.json");
    std::stringstream buf;
    buf << is.rdbuf();
    const auto root = o::json::parse(buf.str());
    ASSERT_TRUE(root->is_object());
    const auto* events = root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_EQ(events->arr.size(), ex.stats.events);
    std::remove("stream_valid.perfetto.json");
}

TEST(PerfettoStreamTest, WindowStaysBoundedOnLongTraces) {
    // A long periodic run whose full trace is far larger than the window:
    // the resident buffer must never exceed window_bytes plus one event.
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.set_overheads(r::RtosOverheads::uniform(1_us));
    o::PerfettoStreamWriter stream(
        "stream_window.perfetto.json",
        o::PerfettoStreamWriter::Options{.window_bytes = 2048});
    stream.attach(cpu);
    cpu.create_task({.name = "periodic", .priority = 3}, [](r::Task& self) {
        for (int i = 0; i < 2000; ++i) {
            self.compute(20_us);
            self.sleep_for(30_us);
        }
    });
    sim.run();
    stream.finish();

    const auto& st = stream.stats();
    EXPECT_GE(st.events, 8000u); // states + overheads per iteration
    // Bounded residency: the window never grew past the flush threshold by
    // more than one event (generously capped at 512 bytes here).
    EXPECT_LE(st.peak_window_bytes, 2048u + 512u);
    EXPECT_GE(st.flushes, 10u);
    // The spooled file dwarfs what was ever held in memory.
    EXPECT_GT(st.spooled_bytes, 20u * st.peak_window_bytes);
    std::remove("stream_window.perfetto.json");
}

TEST(PerfettoStreamTest, SpoolRenamedOnlyOnFinish) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    o::PerfettoStreamWriter stream("stream_atomic.perfetto.json");
    stream.attach(cpu);
    cpu.create_task({.name = "t", .priority = 1},
                    [](r::Task& self) { self.compute(10_us); });
    sim.run();

    // Mid-run (before finish) only the writer-unique spool exists.
    const std::string spool = stream.spool_path();
    EXPECT_NE(spool.find("stream_atomic.perfetto.json.spool-"),
              std::string::npos);
    EXPECT_FALSE(std::ifstream("stream_atomic.perfetto.json").good());
    EXPECT_TRUE(std::ifstream(spool).good());
    stream.finish();
    EXPECT_TRUE(std::ifstream("stream_atomic.perfetto.json").good());
    EXPECT_FALSE(std::ifstream(spool).good());
    EXPECT_THROW(stream.finish(), std::logic_error);
    std::remove("stream_atomic.perfetto.json");
}

TEST(PerfettoStreamTest, AbandonedWriterRemovesItsSpool) {
    std::string spool;
    {
        k::Simulator sim;
        r::Processor cpu("cpu");
        o::PerfettoStreamWriter stream("stream_abandoned.perfetto.json");
        spool = stream.spool_path();
        stream.attach(cpu);
        cpu.create_task({.name = "t", .priority = 1},
                        [](r::Task& self) { self.compute(10_us); });
        sim.run();
        EXPECT_TRUE(std::ifstream(spool).good());
        // Destroyed without finish(): e.g. an exception unwound past it.
    }
    EXPECT_FALSE(std::ifstream("stream_abandoned.perfetto.json").good());
    EXPECT_FALSE(std::ifstream(spool).good());
}

TEST(PerfettoStreamTest, ConcurrentWritersToOnePathDoNotShareASpool) {
    // Two live writers targeting the same output (two runs in one cwd):
    // distinct spools, each internally consistent; the last finish() wins
    // the rename, exactly like the batch exporter's last-writer-wins.
    k::Simulator sim;
    r::Processor cpu("cpu");
    o::PerfettoStreamWriter a("stream_race.perfetto.json");
    o::PerfettoStreamWriter b("stream_race.perfetto.json");
    EXPECT_NE(a.spool_path(), b.spool_path());
    a.attach(cpu);
    b.attach(cpu);
    cpu.create_task({.name = "t", .priority = 1},
                    [](r::Task& self) { self.compute(10_us); });
    sim.run();
    a.finish();
    b.finish(); // must not throw: its own spool is still in place
    EXPECT_TRUE(std::ifstream("stream_race.perfetto.json").good());
    EXPECT_FALSE(std::ifstream(a.spool_path()).good());
    EXPECT_FALSE(std::ifstream(b.spool_path()).good());
    std::remove("stream_race.perfetto.json");
}

TEST(PerfettoStreamTest, CounterOnUnattachedProcessorThrows) {
    k::Simulator sim;
    r::Processor attached("a");
    r::Processor unattached("u");
    o::PerfettoStreamWriter stream("stream_counter.perfetto.json");
    stream.attach(attached);
    EXPECT_THROW(stream.counter(unattached, 0_us, "x", 1.0),
                 k::SimulationError);
    stream.counter(attached, 0_us, "x", 1.0); // fine
    stream.finish();
    std::remove("stream_counter.perfetto.json");
}

TEST(MarkerTeeTest, FansOutToAllSinks) {
    k::Simulator sim;
    tr::Recorder a, b;
    tr::MarkerTee tee;
    tee.add(a);
    tee.add(b);
    sim.spawn("p", [&] {
        k::wait(5_us);
        tee.mark("fault", "x");
    });
    sim.run();
    ASSERT_EQ(a.markers().size(), 1u);
    ASSERT_EQ(b.markers().size(), 1u);
    EXPECT_EQ(a.markers()[0].name, "x");
    EXPECT_EQ(b.markers()[0].at, 5_us);
}
