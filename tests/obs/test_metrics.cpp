// Metrics registry unit tests: histogram bucket math, deterministic
// quantiles, counter/gauge behaviour and the flattened snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "kernel/time.hpp"
#include "obs/metrics.hpp"

namespace o = rtsc::obs;
using o::Histogram;

TEST(HistogramBuckets, ExactBelowSixteen) {
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(Histogram::bucket_index(v), v);
        EXPECT_EQ(Histogram::bucket_lo(v), v);
        EXPECT_EQ(Histogram::bucket_hi(v), v);
    }
}

TEST(HistogramBuckets, LoHiBracketEveryValue) {
    // Sweep the neighbourhood of every power of two across the u64 range.
    for (int exp = 4; exp < 64; ++exp) {
        const std::uint64_t base = std::uint64_t{1} << exp;
        const std::uint64_t top =
            exp < 63 ? base * 2 - 1 : std::numeric_limits<std::uint64_t>::max();
        for (const std::uint64_t v :
             {base - 1, base, base + 1, base + base / 3, base + base / 2, top}) {
            const std::size_t i = Histogram::bucket_index(v);
            ASSERT_LT(i, Histogram::kBuckets) << v;
            EXPECT_LE(Histogram::bucket_lo(i), v) << v;
            EXPECT_GE(Histogram::bucket_hi(i), v) << v;
        }
    }
}

TEST(HistogramBuckets, IndexIsMonotonic) {
    std::size_t prev = 0;
    std::uint64_t v = 0;
    for (;;) {
        const std::size_t i = Histogram::bucket_index(v);
        EXPECT_GE(i, prev) << v;
        prev = i;
        if (v > (std::numeric_limits<std::uint64_t>::max() >> 1)) break;
        v = v * 2 + 1;
    }
}

TEST(HistogramQuantiles, ExactForSmallValues) {
    Histogram h;
    for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
    EXPECT_EQ(h.count(), 16u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 15u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.5);
    // Values below 16 land in exact single-value buckets: nearest-rank
    // quantiles are exact.
    EXPECT_DOUBLE_EQ(h.p50(), 7.0);
    EXPECT_DOUBLE_EQ(h.p90(), 14.0);
    EXPECT_DOUBLE_EQ(h.p99(), 15.0);
}

TEST(HistogramQuantiles, LargeValuesWithinBucketResolution) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);
    // ~±6% relative bucket resolution.
    EXPECT_NEAR(h.p50(), 500'000.0, 0.07 * 500'000);
    EXPECT_NEAR(h.p90(), 900'000.0, 0.07 * 900'000);
    EXPECT_NEAR(h.p99(), 990'000.0, 0.07 * 990'000);
    EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(HistogramQuantiles, ClampedToObservedRange) {
    Histogram h;
    h.record(100);
    h.record(100);
    EXPECT_DOUBLE_EQ(h.p50(), 100.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.min(), 0u);
}

TEST(HistogramQuantiles, DeterministicAcrossRecordOrder) {
    Histogram a, b;
    for (std::uint64_t v = 1; v <= 500; ++v) a.record(v * 37);
    for (std::uint64_t v = 500; v >= 1; --v) b.record(v * 37);
    EXPECT_DOUBLE_EQ(a.p50(), b.p50());
    EXPECT_DOUBLE_EQ(a.p90(), b.p90());
    EXPECT_DOUBLE_EQ(a.p99(), b.p99());
    EXPECT_EQ(a.max(), b.max());
}

TEST(HistogramTest, RecordsKernelTimeAsPicoseconds) {
    namespace k = rtsc::kernel;
    Histogram h;
    h.record(k::Time::us(3));
    EXPECT_EQ(h.max(), 3'000'000u);
}

TEST(CounterGaugeTest, Basics) {
    o::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);

    o::Gauge g;
    EXPECT_DOUBLE_EQ(g.mean(), 0.0);
    g.set(4);
    g.set(-2);
    g.set(10);
    EXPECT_DOUBLE_EQ(g.last(), 10.0);
    EXPECT_DOUBLE_EQ(g.min(), -2.0);
    EXPECT_DOUBLE_EQ(g.max(), 10.0);
    EXPECT_DOUBLE_EQ(g.mean(), 4.0);
    EXPECT_EQ(g.samples(), 3u);
}

TEST(RegistryTest, FindOrCreateAndSnapshot) {
    o::MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_EQ(reg.find_counter("c"), nullptr);
    EXPECT_EQ(reg.find_gauge("g"), nullptr);
    EXPECT_EQ(reg.find_histogram("h"), nullptr);

    reg.counter("c").inc(3);
    reg.gauge("g").set(1.5);
    reg.histogram("h").record(7);
    EXPECT_FALSE(reg.empty());
    ASSERT_NE(reg.find_counter("c"), nullptr);
    EXPECT_EQ(reg.find_counter("c")->value(), 3u);
    // Find-or-create returns the same object.
    reg.counter("c").inc();
    EXPECT_EQ(reg.find_counter("c")->value(), 4u);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u + 4u + 5u);
    // Sorted by name.
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
    auto value_of = [&snap](const std::string& name) -> double {
        for (const auto& s : snap)
            if (s.name == name) return s.value;
        ADD_FAILURE() << "missing sample " << name;
        return -1;
    };
    EXPECT_DOUBLE_EQ(value_of("c"), 4.0);
    EXPECT_DOUBLE_EQ(value_of("g.last"), 1.5);
    EXPECT_DOUBLE_EQ(value_of("h.count"), 1.0);
    EXPECT_DOUBLE_EQ(value_of("h.p50"), 7.0);
    EXPECT_DOUBLE_EQ(value_of("h.max"), 7.0);

    reg.clear();
    EXPECT_TRUE(reg.empty());
    EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MergeTest, HistogramMergeIsExact) {
    // The merge contract: merging two histograms is bit-identical — buckets,
    // stats, every quantile — to one histogram that saw both sample streams.
    // This is what makes per-worker shard registries safe to aggregate.
    o::Histogram a, b, combined;
    std::uint64_t v = 1;
    for (int i = 0; i < 40; ++i) {
        a.record(v);
        combined.record(v);
        v = v * 3 + 1;
    }
    std::uint64_t u = 5;
    for (int i = 0; i < 25; ++i) {
        b.record(u);
        combined.record(u);
        u = u * 7 + 3;
    }
    a.merge(b);
    EXPECT_EQ(a.bucket_counts(), combined.bucket_counts());
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;

    // Merging into / from an empty histogram is the identity.
    o::Histogram empty;
    auto before = combined.bucket_counts();
    combined.merge(empty);
    EXPECT_EQ(combined.bucket_counts(), before);
    empty.merge(combined);
    EXPECT_EQ(empty.bucket_counts(), combined.bucket_counts());
    EXPECT_EQ(empty.min(), combined.min());
}

TEST(MergeTest, CounterAndGaugeMerge) {
    o::Counter a, b;
    a.inc(3);
    b.inc(39);
    a.merge(b);
    EXPECT_EQ(a.value(), 42u);

    o::Gauge g1, g2;
    g1.set(1.0);
    g1.set(5.0);
    g2.set(-2.0);
    g2.set(0.5);
    g1.merge(g2);
    EXPECT_DOUBLE_EQ(g1.min(), -2.0);
    EXPECT_DOUBLE_EQ(g1.max(), 5.0);
    EXPECT_EQ(g1.samples(), 4u);
    EXPECT_DOUBLE_EQ(g1.mean(), (1.0 + 5.0 - 2.0 + 0.5) / 4.0);
    EXPECT_DOUBLE_EQ(g1.last(), 0.5); // other's last wins when it recorded

    o::Gauge quiet; // merging an empty gauge changes nothing, even `last`
    g1.merge(quiet);
    EXPECT_DOUBLE_EQ(g1.last(), 0.5);
    EXPECT_EQ(g1.samples(), 4u);
}

TEST(MergeTest, RegistryMergeFoldsByName) {
    o::MetricsRegistry a, b;
    a.counter("shared").inc(1);
    b.counter("shared").inc(2);
    b.counter("only_b").inc(9);
    a.gauge("g").set(1.0);
    b.gauge("g").set(3.0);
    a.histogram("h").record(10);
    b.histogram("h").record(20);
    b.histogram("h2").record(5);

    a.merge(b);
    EXPECT_EQ(a.find_counter("shared")->value(), 3u);
    EXPECT_EQ(a.find_counter("only_b")->value(), 9u);
    EXPECT_EQ(a.find_gauge("g")->samples(), 2u);
    EXPECT_DOUBLE_EQ(a.find_gauge("g")->max(), 3.0);
    EXPECT_EQ(a.find_histogram("h")->count(), 2u);
    EXPECT_EQ(a.find_histogram("h")->max(), 20u);
    ASSERT_NE(a.find_histogram("h2"), nullptr);
    EXPECT_EQ(a.find_histogram("h2")->count(), 1u);
    // b is untouched by the merge.
    EXPECT_EQ(b.find_counter("shared")->value(), 2u);
}
