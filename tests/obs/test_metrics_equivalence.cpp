// Engine-equivalence of the instrumentation hooks: a preemption-heavy
// scenario run under the threaded engine (§4.1) and the procedural engine
// (§4.2) must fill the metrics registry with IDENTICAL values — every probe
// reading derives from simulated time and shared scheduler state, never from
// engine internals or host time.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "obs/collector.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

/// Three tasks, repeated interrupts: H preempts whatever runs every 100us,
/// M wakes twice, L grinds through a long compute. Several preemptions,
/// nested ones included.
std::vector<o::MetricSample> run_scenario(r::EngineKind engine) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     engine);
    cpu.set_overheads(r::RtosOverheads::uniform(3_us));

    o::MetricsRegistry reg;
    o::MetricsCollector collector(reg);
    collector.attach(cpu);

    m::Event tick("tick", m::EventPolicy::fugitive);
    m::Event nudge("nudge", m::EventPolicy::fugitive);
    cpu.create_task({.name = "H", .priority = 9}, [&](r::Task& self) {
        for (int i = 0; i < 5; ++i) {
            tick.await();
            self.compute(15_us);
        }
    });
    cpu.create_task({.name = "M", .priority = 5}, [&](r::Task& self) {
        for (int i = 0; i < 2; ++i) {
            nudge.await();
            self.compute(40_us);
        }
    });
    cpu.create_task({.name = "L", .priority = 1},
                    [](r::Task& self) { self.compute(400_us); });
    sim.spawn("hw", [&] {
        for (int i = 0; i < 5; ++i) {
            k::wait(100_us);
            tick.signal();
            if (i == 1 || i == 3) nudge.signal();
        }
    });
    sim.run();
    return reg.snapshot();
}

} // namespace

TEST(MetricsEquivalence, BothEnginesProduceIdenticalSnapshots) {
    const auto procedural = run_scenario(r::EngineKind::procedure_calls);
    const auto threaded = run_scenario(r::EngineKind::rtos_thread);

    ASSERT_FALSE(procedural.empty());
    ASSERT_EQ(procedural.size(), threaded.size());
    for (std::size_t i = 0; i < procedural.size(); ++i) {
        EXPECT_EQ(procedural[i].name, threaded[i].name);
        EXPECT_DOUBLE_EQ(procedural[i].value, threaded[i].value)
            << procedural[i].name;
    }
}

TEST(MetricsEquivalence, CollectorCatalogueIsPlausible) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    o::MetricsRegistry reg;
    o::MetricsCollector collector(reg);
    collector.attach(cpu);

    m::Event irq("irq", m::EventPolicy::fugitive);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        irq.await();
        self.compute(20_us);
    });
    cpu.create_task({.name = "L", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        irq.signal();
    });
    sim.run();

    // One preemption: H interrupts L at 50us.
    ASSERT_NE(reg.find_counter("cpu.cpu.preemptions"), nullptr);
    EXPECT_EQ(reg.find_counter("cpu.cpu.preemptions")->value(), 1u);
    // Four dispatches: H (runs to its await), L, H again, L again.
    ASSERT_NE(reg.find_counter("cpu.cpu.ctx_switches"), nullptr);
    EXPECT_EQ(reg.find_counter("cpu.cpu.ctx_switches")->value(), 4u);
    // Scheduler ran at least once per dispatch.
    ASSERT_NE(reg.find_counter("cpu.cpu.scheduler_runs"), nullptr);
    EXPECT_GE(reg.find_counter("cpu.cpu.scheduler_runs")->value(), 4u);
    // H has two activations (creation -> first await, irq -> termination),
    // both completed: two response samples. Same release/completion rule as
    // trace::ConstraintMonitor.
    ASSERT_NE(reg.find_histogram("task.H.response_ps"), nullptr);
    EXPECT_EQ(reg.find_histogram("task.H.response_ps")->count(), 2u);
    ASSERT_NE(reg.find_counter("task.H.activations"), nullptr);
    EXPECT_EQ(reg.find_counter("task.H.activations")->value(), 2u);
    ASSERT_NE(reg.find_counter("task.L.activations"), nullptr);
    EXPECT_EQ(reg.find_counter("task.L.activations")->value(), 1u);
    // First H episode: sched(5) + load(5) before it reaches the await at
    // 10us; the irq episode adds the 20us compute plus switch overheads.
    const auto* hr = reg.find_histogram("task.H.response_ps");
    EXPECT_GE(hr->min(), Time::us(10).raw_ps());
    EXPECT_GE(hr->max(), Time::us(20).raw_ps());
    // Latency histograms saw every dispatch.
    ASSERT_NE(reg.find_histogram("cpu.cpu.sched_latency_ps"), nullptr);
    EXPECT_EQ(reg.find_histogram("cpu.cpu.sched_latency_ps")->count(), 4u);
    ASSERT_NE(reg.find_histogram("cpu.cpu.dispatch_latency_ps"), nullptr);
    EXPECT_EQ(reg.find_histogram("cpu.cpu.dispatch_latency_ps")->count(), 4u);
    // Ready-queue length sampled once per scheduler run.
    ASSERT_NE(reg.find_histogram("cpu.cpu.ready_queue_len"), nullptr);
    EXPECT_EQ(reg.find_histogram("cpu.cpu.ready_queue_len")->count(),
              reg.find_counter("cpu.cpu.scheduler_runs")->value());
}

TEST(MetricsEquivalence, DestructorClearsEngineProbe) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    o::MetricsRegistry reg;
    {
        o::MetricsCollector collector(reg);
        collector.attach(cpu);
        EXPECT_EQ(cpu.engine().probe(), &collector);
        // The catalogue exists as soon as attach() runs (stable snapshots
        // even for processors that never schedule)...
        ASSERT_NE(reg.find_counter("cpu.cpu.ctx_switches"), nullptr);
    }
    // ...and a collector outlived by its processor leaves no dangling probe.
    EXPECT_EQ(cpu.engine().probe(), nullptr);
    EXPECT_EQ(reg.find_counter("cpu.cpu.ctx_switches")->value(), 0u);
}
