// Attribution under faults: kill/restart and watchdog recovery mid-job must
// still produce a conserving decomposition — the aborted job's components
// sum bit-exactly to its (truncated) response window, the fresh incarnation
// opens a new job, and everything stays engine-equivalent.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/watchdog.hpp"
#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/shared_variable.hpp"
#include "obs/attribution.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
namespace f = rtsc::fault;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

const r::EngineKind kEngines[] = {r::EngineKind::procedure_calls,
                                  r::EngineKind::rtos_thread};

const char* label_of(r::EngineKind kind) {
    return kind == r::EngineKind::procedure_calls ? "procedural" : "threaded";
}

std::vector<std::string> serialize(const o::Attribution& a) {
    std::vector<std::string> rows;
    for (const auto& j : a.jobs())
        rows.push_back(j.task + " #" + std::to_string(j.index) +
                       (j.aborted ? " aborted" : "") +
                       " rel=" + std::to_string(j.release.raw_ps()) +
                       " end=" + std::to_string(j.end.raw_ps()) +
                       " exec=" + std::to_string(j.exec.raw_ps()) +
                       " pre=" + std::to_string(j.preemption.raw_ps()) +
                       " blk=" + std::to_string(j.blocking.raw_ps()) +
                       " ov=" + std::to_string(j.overhead.raw_ps()) +
                       " intr=" + std::to_string(j.interrupt.raw_ps()));
    return rows;
}

void expect_conserving(const o::Attribution& a, const char* label) {
    ASSERT_FALSE(a.jobs().empty()) << label;
    for (const auto& j : a.jobs())
        EXPECT_EQ(j.components_sum(), j.response())
            << label << ": " << j.task << " #" << j.index;
}

} // namespace

TEST(AttributionFaults, KillMidComputeYieldsAbortedConservingJob) {
    for (const auto kind : kEngines) {
        const char* label = label_of(kind);
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        o::Attribution attr;
        attr.attach(cpu);

        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [](r::Task& self) {
                                         self.compute(100_us);
                                     });
        sim.spawn("killer", [&] {
            k::wait(50_us);
            a.kill();
        });
        sim.run();
        expect_conserving(attr, label);

        const auto jobs = attr.jobs_for("a");
        ASSERT_EQ(jobs.size(), 1u) << label;
        EXPECT_TRUE(jobs[0]->aborted) << label;
        // Released at 0, killed at 50: sched+load overhead 0-10, then 40us
        // of its 100us compute.
        EXPECT_EQ(jobs[0]->response(), 50_us) << label;
        EXPECT_EQ(jobs[0]->exec, 40_us) << label;
        EXPECT_EQ(jobs[0]->overhead, 10_us) << label;
    }
}

TEST(AttributionFaults, RestartOpensAFreshJob) {
    for (const auto kind : kEngines) {
        const char* label = label_of(kind);
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        o::Attribution attr;
        attr.attach(cpu);

        int incarnation = 0;
        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [&](r::Task& self) {
                                         ++incarnation;
                                         self.compute(incarnation == 1
                                                          ? 100_us
                                                          : 20_us);
                                     });
        sim.spawn("supervisor", [&] {
            k::wait(30_us);
            k::Event& done = a.done_event();
            a.kill();
            if (!a.body_finished()) k::wait(done);
            cpu.restart_task(a, 10_us);
        });
        sim.run();
        expect_conserving(attr, label);

        const auto jobs = attr.jobs_for("a");
        ASSERT_EQ(jobs.size(), 2u) << label;
        EXPECT_TRUE(jobs[0]->aborted) << label;
        EXPECT_EQ(jobs[0]->response(), 30_us) << label;
        EXPECT_EQ(jobs[0]->exec, 30_us) << label; // zero overheads
        EXPECT_FALSE(jobs[1]->aborted) << label;
        EXPECT_EQ(jobs[1]->release, 40_us) << label; // kill + 10us delay
        EXPECT_EQ(jobs[1]->exec, 20_us) << label;
        EXPECT_EQ(incarnation, 2) << label;
    }
}

TEST(AttributionFaults, KillWhileBlockedClosesTheEpisode) {
    for (const auto kind : kEngines) {
        const char* label = label_of(kind);
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        o::Attribution attr;
        attr.attach(cpu);

        m::SharedVariable<int> sv("sv", 0, m::Protection::none);
        cpu.create_task({.name = "low", .priority = 1}, [&](r::Task& self) {
            auto g = sv.access();
            self.compute(200_us);
        });
        r::Task& high = cpu.create_task({.name = "high",
                                         .priority = 5,
                                         .start_time = Time::us(10)},
                                        [&](r::Task& self) {
                                            auto g = sv.access();
                                            self.compute(10_us);
                                        });
        sim.spawn("killer", [&] {
            k::wait(60_us);
            high.kill();
        });
        sim.run();
        expect_conserving(attr, label);

        // high blocks on sv at 10 and dies still blocked at 60: the aborted
        // job charges the full 50us wait to the resource, and the episode is
        // closed at the kill instant.
        const auto jobs = attr.jobs_for("high");
        ASSERT_EQ(jobs.size(), 1u) << label;
        EXPECT_TRUE(jobs[0]->aborted) << label;
        EXPECT_EQ(jobs[0]->blocking, 50_us) << label;
        ASSERT_EQ(jobs[0]->blocked_on.size(), 1u) << label;
        EXPECT_EQ(jobs[0]->blocked_on[0].first, "sv") << label;
        ASSERT_EQ(attr.episodes().size(), 1u) << label;
        EXPECT_EQ(attr.episodes()[0].victim, "high") << label;
        EXPECT_EQ(attr.episodes()[0].end, 60_us) << label;
        EXPECT_TRUE(attr.episodes()[0].inversion) << label;
    }
}

TEST(AttributionFaults, WatchdogRestartRecoveryStaysConservingAndEquivalent) {
    std::vector<std::vector<std::string>> runs;
    for (const auto kind : kEngines) {
        const char* label = label_of(kind);
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        o::Attribution attr;
        attr.attach(cpu);

        m::Event parked("parked", m::EventPolicy::boolean);
        f::Watchdog* wdp = nullptr;
        int incarnation = 0;
        r::Task& a = cpu.create_task(
            {.name = "a", .priority = 2}, [&](r::Task& self) {
                const int inc = ++incarnation;
                if (inc == 1) {
                    self.compute(200_us); // never pets: the watchdog fires
                } else {
                    for (int i = 0; i < 3; ++i) {
                        self.compute(10_us);
                        if (wdp != nullptr) wdp->pet();
                    }
                    parked.await(); // stay alive, heartbeats stop
                }
            });
        f::Watchdog wd(a, 50_us,
                       {.action = f::RecoveryAction::restart,
                        .restart_delay = 10_us});
        wdp = &wd;
        // Fires at 50 (kill + restart), incarnation 2 runs 60..90 petting,
        // then parks; stop before the 140us re-fire.
        sim.run_until(130_us);
        expect_conserving(attr, label);

        EXPECT_EQ(wd.timeouts(), 1u) << label;
        EXPECT_EQ(incarnation, 2) << label;
        const auto jobs = attr.jobs_for("a");
        ASSERT_EQ(jobs.size(), 2u) << label;
        EXPECT_TRUE(jobs[0]->aborted) << label;
        EXPECT_EQ(jobs[0]->response(), 50_us) << label;
        EXPECT_FALSE(jobs[1]->aborted) << label;
        EXPECT_EQ(jobs[1]->release, 60_us) << label;
        EXPECT_EQ(jobs[1]->exec, 30_us) << label;
        runs.push_back(serialize(attr));
    }
    EXPECT_EQ(runs[0], runs[1]);
}
