// Campaign integration of the metrics registry: snapshot export into
// ScenarioContext, cross-scenario percentile aggregation, and the BENCH
// json "metrics" array round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/bench_json.hpp"
#include "campaign/campaign.hpp"
#include "obs/campaign.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace c = rtsc::campaign;
namespace o = rtsc::obs;

TEST(CampaignObs, ExportMetricsFillsScenarioContext) {
    o::MetricsRegistry reg;
    reg.counter("runs").inc(7);
    reg.histogram("lat").record(10);

    c::ScenarioContext ctx(0, 42);
    o::export_metrics(reg, ctx, "sim.");

    c::ScenarioSpec spec{"s", [&reg](c::ScenarioContext& inner) {
                             o::export_metrics(reg, inner);
                         }};
    const auto report = c::CampaignRunner({.workers = 1, .seed = 1}).run({spec});
    ASSERT_EQ(report.results.size(), 1u);
    const auto& metrics = report.results[0].metrics;
    ASSERT_FALSE(metrics.empty());
    bool saw_runs = false;
    for (const auto& [name, value] : metrics) {
        if (name == "runs") {
            saw_runs = true;
            EXPECT_DOUBLE_EQ(value, 7.0);
        }
    }
    EXPECT_TRUE(saw_runs);
}

TEST(CampaignObs, AggregateMetricsComputesExactPercentiles) {
    c::CampaignReport report;
    // 100 scenarios each reporting latency = index+1 (1..100) and a second
    // metric only some report.
    for (std::size_t i = 0; i < 100; ++i) {
        c::ScenarioResult r;
        r.name = "s" + std::to_string(i);
        r.index = i;
        r.ok = true;
        r.metrics.emplace_back("latency", static_cast<double>(i + 1));
        if (i % 2 == 0) r.metrics.emplace_back("misses", static_cast<double>(i));
        report.results.push_back(std::move(r));
    }

    const auto agg = report.aggregate_metrics();
    ASSERT_EQ(agg.size(), 2u);
    // Sorted by name: "latency" then "misses".
    EXPECT_EQ(agg[0].name, "latency");
    EXPECT_EQ(agg[0].count, 100u);
    EXPECT_DOUBLE_EQ(agg[0].min, 1.0);
    EXPECT_DOUBLE_EQ(agg[0].max, 100.0);
    EXPECT_DOUBLE_EQ(agg[0].mean, 50.5);
    // Exact nearest-rank over 1..100: p50 = 50th value = 50, p90 = 90, p99 = 99.
    EXPECT_DOUBLE_EQ(agg[0].p50, 50.0);
    EXPECT_DOUBLE_EQ(agg[0].p90, 90.0);
    EXPECT_DOUBLE_EQ(agg[0].p99, 99.0);
    EXPECT_EQ(agg[1].name, "misses");
    EXPECT_EQ(agg[1].count, 50u);

    // Determinism: shuffling result order must not change the aggregate
    // (values are sorted internally).
    c::CampaignReport reversed;
    for (auto it = report.results.rbegin(); it != report.results.rend(); ++it)
        reversed.results.push_back(*it);
    const auto agg2 = reversed.aggregate_metrics();
    ASSERT_EQ(agg2.size(), agg.size());
    EXPECT_DOUBLE_EQ(agg2[0].p99, agg[0].p99);
}

TEST(CampaignObs, BenchEntryMetricsArrayIsValidJson) {
    const std::string path = "test_bench_obs_tmp.json";
    std::remove(path.c_str());

    c::BenchEntry entry;
    entry.name = "bench_x";
    entry.scenarios = 4;
    entry.serial_ms = 10.0;
    entry.parallel_ms = 5.0;
    entry.speedup = 2.0;
    entry.digests_match = true;
    entry.metrics.push_back(
        {.name = "latency", .count = 4, .min = 1, .max = 9, .mean = 4.5,
         .p50 = 4, .p90 = 8, .p99 = 9});
    c::write_bench_entry(path, entry);

    // A second, metrics-free entry must coexist on its own line.
    c::BenchEntry legacy;
    legacy.name = "bench_legacy";
    c::write_bench_entry(path, legacy);

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const auto root = o::json::parse(ss.str());
    ASSERT_TRUE(root->is_object());
    const auto* entries = root->get("entries");
    ASSERT_NE(entries, nullptr);
    ASSERT_EQ(entries->arr.size(), 2u);

    const auto& first = *entries->arr[0];
    EXPECT_EQ(first.get("name")->str, "bench_x");
    const auto* metrics = first.get("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->arr.size(), 1u);
    EXPECT_EQ(metrics->arr[0]->get("name")->str, "latency");
    EXPECT_DOUBLE_EQ(metrics->arr[0]->get("p99")->num, 9.0);
    EXPECT_EQ(entries->arr[1]->get("metrics"), nullptr);

    // Merge-by-name still works with the metrics array present.
    entry.serial_ms = 20.0;
    c::write_bench_entry(path, entry);
    std::ifstream in2(path);
    std::stringstream ss2;
    ss2 << in2.rdbuf();
    const auto root2 = o::json::parse(ss2.str());
    ASSERT_EQ(root2->get("entries")->arr.size(), 2u);
    EXPECT_DOUBLE_EQ(root2->get("entries")->arr[0]->get("serial_ms")->num, 20.0);

    std::remove(path.c_str());
}
