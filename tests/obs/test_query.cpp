// Trace-query round-trip: run a scenario with blocking, preemption and a
// deadline miss, export it through the Perfetto writer with attribution
// enabled, then load the file back through obs::query and check that every
// row survives the trip with exact picosecond values. Also exercises the
// renderers (human tables and --json documents, the latter re-parsed through
// obs::json as a schema check).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/shared_variable.hpp"
#include "obs/attribution.hpp"
#include "obs/json.hpp"
#include "obs/perfetto.hpp"
#include "obs/query.hpp"
#include "rtos/processor.hpp"
#include "trace/constraints.hpp"
#include "trace/recorder.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
namespace q = rtsc::obs::query;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

constexpr double kUs = 1e6; // picoseconds per microsecond

/// Priority-inversion scenario with a response-time violation, exported with
/// full attribution and loaded back. L (prio 1) holds sv for its whole
/// 100us compute; H (prio 5) wakes at 10us, blocks on sv until 100us, then
/// computes 10us -> response 100us against a 50us bound.
struct RoundTrip {
    std::string path;
    q::TraceData data;

    RoundTrip() {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         r::EngineKind::procedure_calls);
        tr::Recorder rec;
        rec.attach(cpu);
        o::Attribution attr;
        attr.attach(cpu);
        tr::ConstraintMonitor mon;

        m::SharedVariable<int> sv("sv", 0, m::Protection::none);
        m::Event ev("ev", m::EventPolicy::fugitive);
        cpu.create_task({.name = "L", .priority = 1}, [&](r::Task& self) {
            auto g = sv.access();
            self.compute(100_us);
        });
        r::Task& high = cpu.create_task({.name = "H", .priority = 5},
                                        [&](r::Task& self) {
                                            ev.await();
                                            auto g = sv.access();
                                            self.compute(10_us);
                                        });
        mon.require_response(high, 50_us, "H-deadline");
        sim.spawn("hw", [&] {
            k::wait(10_us);
            ev.signal();
        });
        sim.run();

        const auto misses = attr.miss_reports(mon);
        path = "query_roundtrip.perfetto.json";
        o::write_perfetto_file(path, rec,
                               {.attribution = &attr, .misses = &misses});
        data = q::load(path);
    }

    ~RoundTrip() { std::remove(path.c_str()); }

    const q::JobRow* job(const std::string& task, std::uint64_t index) const {
        for (const auto& j : data.jobs)
            if (j.task == task && j.index == index) return &j;
        return nullptr;
    }
};

} // namespace

TEST(TraceQuery, JobRowsCarryTheExactDecomposition) {
    RoundTrip rt;
    // H's job #0 (await at t=0) has zero response and is not exported.
    EXPECT_EQ(rt.job("H", 0), nullptr);

    const q::JobRow* h = rt.job("H", 1);
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->release_ps, 10 * kUs);
    EXPECT_EQ(h->response_ps, 100 * kUs);
    EXPECT_EQ(h->exec_ps, 10 * kUs);
    EXPECT_EQ(h->block_ps, 90 * kUs);
    EXPECT_EQ(h->preempt_ps, 0.0);
    EXPECT_FALSE(h->aborted);
    ASSERT_EQ(h->blocked_on.size(), 1u);
    EXPECT_EQ(h->blocked_on[0].first, "sv");
    EXPECT_EQ(h->blocked_on[0].second, 90 * kUs);

    const q::JobRow* l = rt.job("L", 0);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->exec_ps, 100 * kUs);
    // Conservation survives the export/load trip on every row.
    for (const auto& j : rt.data.jobs)
        EXPECT_EQ(j.exec_ps + j.preempt_ps + j.block_ps + j.overhead_ps +
                      j.interrupt_ps,
                  j.response_ps)
            << j.task << " #" << j.index;
}

TEST(TraceQuery, ChainRowsNameTheInversion) {
    RoundTrip rt;
    ASSERT_EQ(rt.data.chains.size(), 1u);
    const auto& c = rt.data.chains[0];
    EXPECT_EQ(c.victim, "H");
    EXPECT_EQ(c.owner, "L");
    EXPECT_EQ(c.resource, "sv");
    EXPECT_EQ(c.victim_priority, 5);
    EXPECT_EQ(c.owner_priority, 1);
    EXPECT_TRUE(c.inversion);
    EXPECT_EQ(c.start_ps, 10 * kUs);
    EXPECT_EQ(c.duration_ps, 90 * kUs);
    ASSERT_EQ(c.chain.size(), 2u);
    EXPECT_EQ(c.chain[0], "H");
    EXPECT_EQ(c.chain[1], "L");
}

TEST(TraceQuery, MissRowsCarryTheCriticalPath) {
    RoundTrip rt;
    ASSERT_EQ(rt.data.misses.size(), 1u);
    const auto& miss = rt.data.misses[0];
    EXPECT_EQ(miss.task, "H");
    EXPECT_EQ(miss.constraint, "H-deadline");
    EXPECT_EQ(miss.measured_ps, 100 * kUs);
    EXPECT_EQ(miss.bound_ps, 50 * kUs);
    ASSERT_FALSE(miss.critical_path.empty());
    double total = 0;
    bool saw_block = false;
    for (const auto& item : miss.critical_path) {
        total += item.dur_ps;
        if (item.reason.find("blocked on sv") != std::string::npos)
            saw_block = true;
    }
    EXPECT_EQ(total, miss.measured_ps);
    EXPECT_TRUE(saw_block);
}

TEST(TraceQuery, RenderersProduceTablesAndValidJson) {
    RoundTrip rt;
    // Human tables mention the actors involved.
    const std::string blame = q::render_blame(rt.data, "", false);
    EXPECT_NE(blame.find("H"), std::string::npos);
    EXPECT_NE(blame.find("sv"), std::string::npos);
    const std::string chains = q::render_chains(rt.data, true, false);
    EXPECT_NE(chains.find("INVERSION"), std::string::npos);
    const std::string misses = q::render_misses(rt.data, false);
    EXPECT_NE(misses.find("H-deadline"), std::string::npos);

    // Filtering by task keeps only that task's rows.
    const std::string only_l = q::render_blame(rt.data, "L", false);
    EXPECT_EQ(only_l.find("H #"), std::string::npos);

    // --json output is valid obs::json with the documented top-level keys.
    const auto jb = o::json::parse(q::render_blame(rt.data, "", true));
    ASSERT_TRUE(jb->is_object());
    ASSERT_NE(jb->get("jobs"), nullptr);
    EXPECT_TRUE(jb->get("jobs")->is_array());
    const auto jc = o::json::parse(q::render_chains(rt.data, false, true));
    ASSERT_NE(jc->get("chains"), nullptr);
    EXPECT_EQ(jc->get("chains")->arr.size(), 1u);
    const auto jm = o::json::parse(q::render_misses(rt.data, true));
    ASSERT_NE(jm->get("misses"), nullptr);
    EXPECT_EQ(jm->get("misses")->arr.size(), 1u);
}

TEST(TraceQuery, PlainExportYieldsEmptyRowSetsAndBadFilesThrow) {
    {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         r::EngineKind::procedure_calls);
        tr::Recorder rec;
        rec.attach(cpu);
        cpu.create_task({.name = "a", .priority = 1},
                        [](r::Task& self) { self.compute(10_us); });
        sim.run();
        o::write_perfetto_file("query_plain.perfetto.json", rec, {});
        const auto d = q::load("query_plain.perfetto.json");
        EXPECT_TRUE(d.jobs.empty());
        EXPECT_TRUE(d.chains.empty());
        EXPECT_TRUE(d.misses.empty());
        std::remove("query_plain.perfetto.json");
    }
    EXPECT_THROW(q::load("definitely-not-here.json"), std::runtime_error);
}

TEST(TraceQuery, DvfsEnergyFieldsSurviveTheRoundTripWithEscapedNames) {
    // A DVFS run attaches energy to every job row; a task name full of JSON
    // metacharacters must survive export -> load -> --json re-render intact.
    const std::string weird = "t\"quo\\te\tx";
    const std::string path = "query_energy.perfetto.json";
    {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         r::EngineKind::procedure_calls);
        cpu.set_dvfs(r::DvfsModel::single(500'000, 900));
        tr::Recorder rec;
        rec.attach(cpu);
        o::Attribution attr;
        attr.attach(cpu);
        cpu.create_task({.name = weird, .priority = 1},
                        [](r::Task& self) { self.compute(10_us); });
        sim.run();
        o::write_perfetto_file(path, rec, {.attribution = &attr});
    }
    const q::TraceData d = q::load(path);
    ASSERT_EQ(d.jobs.size(), 1u);
    const q::JobRow& j = d.jobs[0];
    EXPECT_EQ(j.task, weird);
    ASSERT_TRUE(j.has_energy);
    // 10 us at 500 MHz / 0.9 V, exactly f * V^2 * t model units.
    EXPECT_EQ(j.energy_exec_fj, rtsc::rtos::energy_to_string(
                                    rtsc::rtos::Energy(500'000) * 900 * 900 *
                                    10'000'000));
    EXPECT_EQ(j.energy_overhead_fj, "0");
    EXPECT_GT(j.energy_exec_j, 0.0);

    // --json re-parses as valid JSON with the weird name and energy intact.
    const auto doc = o::json::parse(q::render_blame(d, "", true));
    ASSERT_TRUE(doc->is_object());
    const o::json::Value* jobs = doc->get("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->arr.size(), 1u);
    const o::json::Value* task = jobs->arr[0]->get("task");
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->str, weird);
    ASSERT_NE(jobs->arr[0]->get("energy_exec_fj"), nullptr);
    EXPECT_EQ(jobs->arr[0]->get("energy_exec_fj")->str, j.energy_exec_fj);
    std::remove(path.c_str());
}

TEST(TraceQuery, TruncatedExportFailsInsteadOfReturningPartialData) {
    const std::string path = "query_truncated.perfetto.json";
    {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         r::EngineKind::procedure_calls);
        tr::Recorder rec;
        rec.attach(cpu);
        o::Attribution attr;
        attr.attach(cpu);
        cpu.create_task({.name = "a", .priority = 1},
                        [](r::Task& self) { self.compute(10_us); });
        sim.run();
        o::write_perfetto_file(path, rec, {.attribution = &attr});
    }
    std::ifstream in(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(text.size(), 10u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size() / 2));
    out.close();
    EXPECT_THROW(q::load(path), std::runtime_error);
    std::remove(path.c_str());
}
