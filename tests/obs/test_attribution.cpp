// Causal latency attribution (obs::Attribution):
//   - the conservation invariant — components sum bit-exactly to the
//     observed response time on every job, under BOTH engines;
//   - engine equivalence of the full per-job decomposition;
//   - exactness — the preemption blame of a rate-monotonic set must equal
//     the interference term of exact response-time analysis (R_i - C_i);
//   - blocking chains and priority-inversion detection on the paper's
//     Figure 7 scenario, and chain depth 2 with nested critical sections;
//   - deadline-miss reports naming the critical path.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/response_time.hpp"
#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/shared_variable.hpp"
#include "obs/attribution.hpp"
#include "obs/collector.hpp"
#include "rtos/interrupt.hpp"
#include "rtos/processor.hpp"
#include "trace/constraints.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
namespace an = rtsc::analysis;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

const r::EngineKind kEngines[] = {r::EngineKind::procedure_calls,
                                  r::EngineKind::rtos_thread};

/// Canonical text form of every decomposition field, for engine diffs.
std::vector<std::string> serialize(const o::Attribution& a) {
    std::vector<std::string> rows;
    for (const auto& j : a.jobs()) {
        std::string row = j.task + " #" + std::to_string(j.index) +
                          (j.aborted ? " aborted" : "") +
                          " rel=" + std::to_string(j.release.raw_ps()) +
                          " end=" + std::to_string(j.end.raw_ps()) +
                          " exec=" + std::to_string(j.exec.raw_ps()) +
                          " ovs=" + std::to_string(j.ov_scheduling.raw_ps()) +
                          " ovl=" + std::to_string(j.ov_load.raw_ps()) +
                          " ovv=" + std::to_string(j.ov_save.raw_ps()) +
                          " resid=" + std::to_string(j.residual.raw_ps()) +
                          " intr=" + std::to_string(j.interrupt.raw_ps()) +
                          " pre[";
        for (const auto& [who, t] : j.preempted_by)
            row += who + ":" + std::to_string(t.raw_ps()) + " ";
        row += "] blk[";
        for (const auto& [what, t] : j.blocked_on)
            row += what + ":" + std::to_string(t.raw_ps()) + " ";
        row += "]";
        rows.push_back(std::move(row));
    }
    return rows;
}

void expect_conserving(const o::Attribution& a, const char* label) {
    ASSERT_FALSE(a.jobs().empty()) << label;
    for (const auto& j : a.jobs()) {
        EXPECT_EQ(j.components_sum(), j.response())
            << label << ": " << j.task << " #" << j.index;
        // The slices tile [release, end] without gaps or overlap.
        Time covered{};
        Time cursor = j.release;
        for (const auto& s : a.slices_for(j)) {
            EXPECT_EQ(s.start, cursor)
                << label << ": gap in " << j.task << " #" << j.index;
            covered += s.end - s.start;
            cursor = s.end;
        }
        EXPECT_EQ(cursor, j.end) << label << ": " << j.task;
        EXPECT_EQ(covered, j.response()) << label << ": " << j.task;
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Conservation + engine equivalence on a scenario exercising every blame
// component: preemption (H over M/L), blocking (M vs L on a shared variable),
// interrupt service (ISR task), RTOS overheads (uniform 3us).
// ---------------------------------------------------------------------------

namespace {

struct FullScenario {
    explicit FullScenario(r::EngineKind kind)
        : cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), kind),
          tick("tick", m::EventPolicy::fugitive),
          nudge("nudge", m::EventPolicy::fugitive),
          sv("shared", 0, m::Protection::none),
          irq("irq") {
        cpu.set_overheads(r::RtosOverheads::uniform(3_us));
        attr.attach(cpu);
        irq.attach_isr(cpu, 20, nullptr, 7_us);

        cpu.create_task({.name = "H", .priority = 9}, [this](r::Task& self) {
            for (int i = 0; i < 3; ++i) {
                tick.await();
                self.compute(15_us);
            }
        });
        cpu.create_task({.name = "M", .priority = 5}, [this](r::Task& self) {
            for (int i = 0; i < 2; ++i) {
                nudge.await();
                auto guard = sv.access();
                guard.value() += 1;
                self.compute(30_us);
            }
        });
        cpu.create_task({.name = "L", .priority = 1}, [this](r::Task& self) {
            auto guard = sv.access();
            guard.value() += 10;
            self.compute(250_us);
        });
        k::Simulator::current().spawn("hw", [this] {
            for (int i = 0; i < 3; ++i) {
                k::wait(80_us);
                tick.signal();
                if (i < 2) nudge.signal();
                irq.raise();
            }
        });
    }

    r::Processor cpu;
    m::Event tick;
    m::Event nudge;
    m::SharedVariable<int> sv;
    r::InterruptLine irq;
    o::Attribution attr;
};

} // namespace

TEST(Attribution, ConservationHoldsOnEveryJobBothEngines) {
    for (const auto kind : kEngines) {
        const char* label = kind == r::EngineKind::procedure_calls
                                ? "procedural"
                                : "threaded";
        k::Simulator sim;
        FullScenario app(kind);
        sim.run();
        expect_conserving(app.attr, label);

        // Every component class showed up somewhere.
        Time pre{}, blk{}, ov{}, intr{};
        for (const auto& j : app.attr.jobs()) {
            pre += j.preemption;
            blk += j.blocking;
            ov += j.overhead;
            intr += j.interrupt;
        }
        EXPECT_GT(pre, Time::zero()) << label;
        EXPECT_GT(blk, Time::zero()) << label;
        EXPECT_GT(ov, Time::zero()) << label;
        EXPECT_GT(intr, Time::zero()) << label;
        // No unexplained idle slack inside any response window.
        for (const auto& j : app.attr.jobs())
            EXPECT_EQ(j.residual, Time::zero())
                << label << ": " << j.task << " #" << j.index;
    }
}

TEST(Attribution, DecompositionIsEngineEquivalent) {
    std::vector<std::vector<std::string>> runs;
    for (const auto kind : kEngines) {
        k::Simulator sim;
        FullScenario app(kind);
        sim.run();
        runs.push_back(serialize(app.attr));
    }
    ASSERT_FALSE(runs[0].empty());
    EXPECT_EQ(runs[0], runs[1]);
}

TEST(Attribution, CollectorForwardsAndFeedsBlameMetrics) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    o::MetricsRegistry reg;
    o::MetricsCollector coll(reg);
    o::Attribution attr;
    coll.set_attribution(&attr); // single probe slot: collector forwards
    coll.attach(cpu);

    m::Event ev("ev", m::EventPolicy::fugitive);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        ev.await();
        self.compute(20_us);
    });
    cpu.create_task({.name = "L", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        ev.signal();
    });
    sim.run();

    expect_conserving(attr, "collector");
    // L was preempted by H exactly once: counter and blame histogram agree
    // with the decomposition.
    ASSERT_NE(reg.find_counter("task.L.preempted_by.H"), nullptr);
    EXPECT_EQ(reg.find_counter("task.L.preempted_by.H")->value(), 1u);
    ASSERT_NE(reg.find_histogram("task.L.blame.preempt_ps"), nullptr);
    EXPECT_EQ(reg.find_histogram("task.L.blame.preempt_ps")->max(),
              Time::us(20).raw_ps());
    const auto l_jobs = attr.jobs_for("L");
    ASSERT_EQ(l_jobs.size(), 1u);
    EXPECT_EQ(l_jobs[0]->preemption, 20_us);
    EXPECT_EQ(l_jobs[0]->exec, 100_us);
}

// ---------------------------------------------------------------------------
// Exactness: simulated preemption blame of a rate-monotonic set must equal
// the interference term of exact response-time analysis. Zero overheads,
// synchronous release at t=0 (the critical instant), one hyperperiod.
// ---------------------------------------------------------------------------

TEST(Attribution, RmPreemptionBlameMatchesResponseTimeAnalysis) {
    // T1(100us, 20us, prio 3), T2(200us, 40us, 2), T3(400us, 80us, 1):
    // R1 = 20, R2 = 60, R3 = 160 by RTA.
    const std::vector<an::PeriodicTask> set = {
        {"T1", 100_us, 20_us, Time::zero(), 3, Time::zero()},
        {"T2", 200_us, 40_us, Time::zero(), 2, Time::zero()},
        {"T3", 400_us, 80_us, Time::zero(), 1, Time::zero()},
    };
    const auto rta = an::response_time_analysis(set);
    ASSERT_EQ(rta.size(), 3u);
    for (const auto& res : rta) ASSERT_TRUE(res.schedulable) << res.name;

    for (const auto kind : kEngines) {
        const char* label = kind == r::EngineKind::procedure_calls
                                ? "procedural"
                                : "threaded";
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        o::Attribution attr;
        attr.attach(cpu);

        for (const auto& t : set) {
            const Time period = t.period;
            const Time wcet = t.wcet;
            const auto jobs =
                static_cast<std::uint32_t>(Time::us(400).raw_ps() /
                                           period.raw_ps());
            cpu.create_task({.name = t.name, .priority = t.priority},
                            [period, wcet, jobs](r::Task& self) {
                                for (std::uint32_t a = 0; a < jobs; ++a) {
                                    if (a != 0) {
                                        const Time rel =
                                            Time::ps(a * period.raw_ps());
                                        self.sleep_until(rel);
                                    }
                                    self.compute(wcet);
                                }
                            });
        }
        sim.run();
        expect_conserving(attr, label);

        for (std::size_t i = 0; i < set.size(); ++i) {
            const auto jobs = attr.jobs_for(set[i].name);
            ASSERT_FALSE(jobs.empty()) << label << ": " << set[i].name;
            // Every job executes exactly its WCET; nothing blocks and the
            // model is overhead-free.
            Time worst{};
            for (const auto* j : jobs) {
                EXPECT_EQ(j->exec, set[i].wcet) << label << ": " << j->task;
                EXPECT_EQ(j->blocking, Time::zero()) << label;
                EXPECT_EQ(j->overhead, Time::zero()) << label;
                EXPECT_EQ(j->interrupt, Time::zero()) << label;
                EXPECT_EQ(j->residual, Time::zero()) << label;
                worst = std::max(worst, j->response());
            }
            // Worst observed response == exact RTA bound.
            ASSERT_TRUE(rta[i].response.has_value()) << set[i].name;
            EXPECT_EQ(worst, *rta[i].response) << label << ": " << set[i].name;
            // Critical instant (job 0): preemption blame equals the RTA
            // interference term R_i - C_i, exactly.
            EXPECT_EQ(jobs[0]->preemption, *rta[i].response - set[i].wcet)
                << label << ": " << set[i].name;
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 7: blocking chain and priority-inversion detection.
// ---------------------------------------------------------------------------

namespace {

struct Figure7App {
    Figure7App(r::EngineKind kind, m::Protection protection)
        : cpu("Processor", std::make_unique<r::PriorityPreemptivePolicy>(),
              kind),
          clk("Clk", m::EventPolicy::fugitive),
          event1("Event_1", m::EventPolicy::boolean),
          shared_var("SharedVar_1", 0, protection) {
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        attr.attach(cpu);

        cpu.create_task({.name = "Function_1", .priority = 5},
                        [this](r::Task& self) {
                            clk.await();
                            self.compute(20_us);
                            event1.signal();
                            self.compute(10_us);
                        });
        cpu.create_task({.name = "Function_2", .priority = 3},
                        [this](r::Task&) {
                            event1.await();
                            (void)shared_var.read(10_us);
                        });
        cpu.create_task({.name = "Function_3", .priority = 2},
                        [this](r::Task& self) {
                            (void)shared_var.read(60_us);
                            self.compute(10_us);
                        });
        k::Simulator::current().spawn("Clock", [this] {
            k::wait(70_us);
            clk.signal();
        });
    }

    r::Processor cpu;
    m::Event clk;
    m::Event event1;
    m::SharedVariable<int> shared_var;
    o::Attribution attr;
};

} // namespace

TEST(Attribution, Figure7ReportsTheInversionChain) {
    for (const auto kind : kEngines) {
        const char* label = kind == r::EngineKind::procedure_calls
                                ? "procedural"
                                : "threaded";
        k::Simulator sim;
        Figure7App app(kind, m::Protection::none);
        sim.run();
        expect_conserving(app.attr, label);

        // Exactly one blocking episode: Function_2 (prio 3) blocked on
        // SharedVar_1 held by lower-priority Function_3 (prio 2) from 135
        // to 180 — the paper's priority inversion.
        ASSERT_EQ(app.attr.episodes().size(), 1u) << label;
        const auto& e = app.attr.episodes()[0];
        EXPECT_EQ(e.victim, "Function_2") << label;
        EXPECT_EQ(e.resource, "SharedVar_1") << label;
        EXPECT_EQ(e.owner, "Function_3") << label;
        EXPECT_EQ(e.victim_priority, 3) << label;
        EXPECT_EQ(e.owner_priority, 2) << label;
        EXPECT_TRUE(e.inversion) << label;
        EXPECT_EQ(e.duration(), 45_us) << label; // 135 -> 180
        ASSERT_EQ(e.chain.size(), 2u) << label;
        EXPECT_EQ(e.chain[0], "Function_2") << label;
        EXPECT_EQ(e.chain[1], "Function_3") << label;
        ASSERT_EQ(app.attr.inversions().size(), 1u) << label;

        // The victim's job decomposition shows the same 45us charged to the
        // resource.
        const auto f2 = app.attr.jobs_for("Function_2");
        ASSERT_EQ(f2.size(), 2u) << label; // startup job + triggered job
        const auto& late = *f2[1];
        ASSERT_EQ(late.blocked_on.size(), 1u) << label;
        EXPECT_EQ(late.blocked_on[0].first, "SharedVar_1") << label;
        EXPECT_EQ(late.blocked_on[0].second, 45_us) << label;
        EXPECT_EQ(late.blocking, 45_us) << label;
    }
}

TEST(Attribution, Figure7PreemptionLockPreventsTheEpisode) {
    for (const auto kind : kEngines) {
        k::Simulator sim;
        Figure7App app(kind, m::Protection::preemption_lock);
        sim.run();
        // Nobody ever reaches Waiting-for-resource: no episodes, no
        // inversions, no blocking blame anywhere.
        EXPECT_TRUE(app.attr.episodes().empty());
        EXPECT_TRUE(app.attr.inversions().empty());
        for (const auto& j : app.attr.jobs())
            EXPECT_EQ(j.blocking, Time::zero()) << j.task;
    }
}

TEST(Attribution, Figure7PriorityInheritanceSuppressesInversionFlag) {
    for (const auto kind : kEngines) {
        k::Simulator sim;
        Figure7App app(kind, m::Protection::priority_inheritance);
        sim.run();
        // Blocking may still occur, but the owner is boosted to the victim's
        // priority before the victim blocks — no episode qualifies as an
        // inversion.
        EXPECT_TRUE(app.attr.inversions().empty());
        for (const auto& e : app.attr.episodes())
            EXPECT_GE(e.owner_priority, e.victim_priority) << e.victim;
    }
}

TEST(Attribution, NestedGuardsBuildChainOfDepthTwo) {
    for (const auto kind : kEngines) {
        const char* label = kind == r::EngineKind::procedure_calls
                                ? "procedural"
                                : "threaded";
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        o::Attribution attr;
        attr.attach(cpu);

        m::SharedVariable<int> sv0("sv0", 0, m::Protection::none);
        m::SharedVariable<int> sv1("sv1", 0, m::Protection::none);
        // T0 (low) holds sv1; T1 (mid) holds sv0 then blocks on sv1; T2
        // (high) blocks on sv0 -> chain T2 -> T1 -> T0.
        cpu.create_task({.name = "T0", .priority = 1}, [&](r::Task& self) {
            auto g = sv1.access();
            self.compute(100_us);
        });
        cpu.create_task({.name = "T1",
                         .priority = 2,
                         .start_time = Time::us(10)},
                        [&](r::Task& self) {
                            auto g0 = sv0.access();
                            auto g1 = sv1.access();
                            self.compute(10_us);
                        });
        // T2 must arrive after T1 has taken sv0 and blocked on sv1; with
        // 5us uniform overheads T1 is dispatched at 25us and blocks there,
        // so 45us lands mid-way through T0's resumed critical section.
        cpu.create_task({.name = "T2",
                         .priority = 3,
                         .start_time = Time::us(45)},
                        [&](r::Task& self) {
                            auto g = sv0.access();
                            self.compute(10_us);
                        });
        sim.run();
        expect_conserving(attr, label);

        const o::Attribution::BlockEpisode* deep = nullptr;
        for (const auto& e : attr.episodes())
            if (e.victim == "T2") deep = &e;
        ASSERT_NE(deep, nullptr) << label;
        ASSERT_EQ(deep->chain.size(), 3u) << label;
        EXPECT_EQ(deep->chain[0], "T2") << label;
        EXPECT_EQ(deep->chain[1], "T1") << label;
        EXPECT_EQ(deep->chain[2], "T0") << label;
        EXPECT_EQ(deep->owner, "T1") << label;
        EXPECT_TRUE(deep->inversion) << label;
    }
}

// ---------------------------------------------------------------------------
// Deadline-miss reports: every ConstraintMonitor response violation maps to
// its job decomposition and a human-readable critical path.
// ---------------------------------------------------------------------------

TEST(Attribution, MissReportsNameTheCriticalPath) {
    for (const auto kind : kEngines) {
        const char* label = kind == r::EngineKind::procedure_calls
                                ? "procedural"
                                : "threaded";
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        o::Attribution attr;
        attr.attach(cpu);
        rtsc::trace::ConstraintMonitor mon;

        m::Event ev("ev", m::EventPolicy::fugitive);
        cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
            ev.await();
            self.compute(60_us);
        });
        r::Task& low = cpu.create_task({.name = "L", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(100_us);
                                       });
        mon.require_response(low, 110_us, "L-deadline");
        sim.spawn("hw", [&] {
            k::wait(10_us);
            ev.signal();
        });
        sim.run();

        // L: 10us exec, 60us preempted by H, 90us exec -> response 160us.
        ASSERT_EQ(mon.violations().size(), 1u) << label;
        const auto reports = attr.miss_reports(mon);
        ASSERT_EQ(reports.size(), 1u) << label;
        const auto& rep = reports[0];
        EXPECT_EQ(rep.task, "L") << label;
        EXPECT_EQ(rep.constraint, "L-deadline") << label;
        EXPECT_EQ(rep.measured, 160_us) << label;
        EXPECT_EQ(rep.bound, 110_us) << label;
        ASSERT_NE(rep.job, nullptr) << label;
        EXPECT_EQ(rep.job->preemption, 60_us) << label;

        // Critical path: exec, preempted-by-H, exec — and it tiles the
        // response exactly.
        ASSERT_EQ(rep.critical_path.size(), 3u) << label;
        EXPECT_EQ(rep.critical_path[0].reason, "executing") << label;
        EXPECT_EQ(rep.critical_path[1].culprit, "H") << label;
        EXPECT_EQ(rep.critical_path[1].reason, "preempted by H") << label;
        EXPECT_EQ(rep.critical_path[1].duration, 60_us) << label;
        Time total{};
        for (const auto& item : rep.critical_path) total += item.duration;
        EXPECT_EQ(total, rep.measured) << label;
    }
}
