// MetricsRegistry::merge edge cases: self-merge is rejected, shipping
// *deltas* per heartbeat merges each sample exactly once while re-merging a
// cumulative snapshot double-counts (the pinned contrast documents why the
// shard worker heartbeat protocol ships deltas), and histogram merges add
// bucket-wise with saturation instead of wrap-around.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace o = rtsc::obs;

TEST(MetricsMergeTest, SelfMergeThrows) {
    o::MetricsRegistry reg;
    reg.counter("c").inc(5);
    EXPECT_THROW(reg.merge(reg), std::logic_error);
    // The failed merge must not have corrupted anything.
    EXPECT_EQ(reg.counter("c").value(), 5u);
}

TEST(MetricsMergeTest, DeltaShippingMergesEachSampleExactlyOnce) {
    // A worker records across two heartbeats. Shipping deltas: the
    // coordinator's view after both merges equals one registry that saw
    // every sample once.
    o::MetricsRegistry coordinator;

    o::MetricsRegistry delta1;
    delta1.counter("runs").inc(3);
    delta1.histogram("wall_us").record(100);
    delta1.histogram("wall_us").record(200);
    coordinator.merge(delta1);

    o::MetricsRegistry delta2;
    delta2.counter("runs").inc(2);
    delta2.histogram("wall_us").record(400);
    coordinator.merge(delta2);

    EXPECT_EQ(coordinator.counter("runs").value(), 5u);
    EXPECT_EQ(coordinator.histogram("wall_us").count(), 3u);
    EXPECT_EQ(coordinator.histogram("wall_us").min(), 100u);
    EXPECT_EQ(coordinator.histogram("wall_us").max(), 400u);
}

TEST(MetricsMergeTest, RemergingCumulativeSnapshotsDoubleCounts) {
    // The anti-pattern the delta protocol avoids: merging a worker's
    // cumulative registry once per heartbeat counts early samples again on
    // every later heartbeat. Pinned so the contract stays visible.
    o::MetricsRegistry coordinator;

    o::MetricsRegistry cumulative;
    cumulative.counter("runs").inc(3);
    coordinator.merge(cumulative); // heartbeat 1

    cumulative.counter("runs").inc(2); // worker keeps accumulating
    coordinator.merge(cumulative);     // heartbeat 2: re-merges the first 3

    EXPECT_EQ(coordinator.counter("runs").value(), 8u); // 3 + (3+2), not 5
}

TEST(MetricsMergeTest, HistogramMergeIsBucketwiseExact) {
    // Merged histogram == one histogram that recorded both streams: same
    // buckets, same quantiles.
    o::Histogram a, b, whole;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        (v % 2 == 0 ? a : b).record(v * 17);
        whole.record(v * 17);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
    EXPECT_EQ(a.bucket_counts(), whole.bucket_counts());
    EXPECT_DOUBLE_EQ(a.p50(), whole.p50());
    EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
}

TEST(MetricsMergeTest, HistogramBucketAddsSaturateInsteadOfWrapping) {
    // Force two histograms whose shared bucket counts sum past UINT32_MAX.
    const std::uint32_t big = 0xC0000000u; // 3 * 2^30 each; sum wraps u32
    o::Histogram a = o::Histogram::from_parts(
        std::vector<std::uint32_t>{big}, /*count=*/big, /*min=*/0, /*max=*/0,
        /*sum=*/0.0);
    const o::Histogram b = o::Histogram::from_parts(
        std::vector<std::uint32_t>{big}, /*count=*/big, /*min=*/0, /*max=*/0,
        /*sum=*/0.0);
    a.merge(b);
    // Wrap-around would leave 0x80000000; saturation pins the bucket.
    EXPECT_EQ(a.bucket_counts()[0], UINT32_MAX);
    // The 64-bit total count is wide enough and adds exactly.
    EXPECT_EQ(a.count(), 2ull * big);
}
