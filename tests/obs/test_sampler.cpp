// MetricsSampler tests: counter events land on the right tracks with
// per-counter monotonic timestamps, utilization/overhead values are
// plausible shares of each period, DVFS power appears only on DVFS-enabled
// processors, kernel self-description counters advance, registry mirroring
// records gauges, and sampling never perturbs simulated behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto_stream.hpp"
#include "obs/sampler.hpp"
#include "rtos/dvfs.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace o = rtsc::obs;
using namespace rtsc::kernel::time_literals;

namespace {

struct Sampled {
    o::json::ValuePtr root;
    o::MetricsRegistry reg;
    std::uint64_t samples = 0;
    std::uint64_t dispatches = 0;

    explicit Sampled(bool with_dvfs = false) {
        k::Simulator sim;
        r::Processor cpu("cpu");
        cpu.set_overheads(r::RtosOverheads::uniform(2_us));
        if (with_dvfs)
            cpu.set_dvfs(r::DvfsModel({{1'000'000, 1'000}, {500'000, 800}}));
        o::PerfettoStreamWriter stream("sampler_test.perfetto.json");
        stream.attach(cpu);
        o::MetricsSampler sampler(
            stream, o::MetricsSampler::Options{.period = 50_us});
        sampler.attach(cpu);
        sampler.set_registry(&reg);
        sampler.start(sim);

        cpu.create_task({.name = "worker", .priority = 3}, [](r::Task& self) {
            for (int i = 0; i < 10; ++i) {
                self.compute(30_us);
                self.sleep_for(20_us);
            }
        });
        sim.run();
        samples = sampler.samples();
        dispatches = cpu.engine().phase_stats().dispatches;
        stream.finish();

        std::ifstream is("sampler_test.perfetto.json");
        std::stringstream buf;
        buf << is.rdbuf();
        root = o::json::parse(buf.str());
        std::remove("sampler_test.perfetto.json");
    }
};

} // namespace

TEST(MetricsSamplerTest, EmitsMonotonicCounterTracks) {
    const Sampled s;
    EXPECT_GE(s.samples, 10u); // ~500us horizon / 50us period
    const auto* events = s.root->get("traceEvents");
    ASSERT_NE(events, nullptr);

    std::map<std::string, double> last_ts;
    std::map<std::string, std::size_t> count;
    for (const auto& ev : events->arr) {
        if (ev->get("ph")->str != "C") continue;
        const std::string name = ev->get("name")->str;
        const double ts = ev->get("ts")->num;
        const double value = ev->get("args")->get("value")->num;
        const auto it = last_ts.find(name);
        if (it != last_ts.end()) EXPECT_GE(ts, it->second) << name;
        last_ts[name] = ts;
        ++count[name];
        if (name == "utilization_pct" || name == "overhead_pct") {
            EXPECT_GE(value, 0.0) << name;
            EXPECT_LE(value, 100.0) << name;
        }
        if (name == "ready_depth") EXPECT_GE(value, 0.0);
    }
    for (const char* required :
         {"utilization_pct", "overhead_pct", "ready_depth", "dispatches",
          "delta_cycles", "activations", "timed_live", "timed_tombstones",
          "timed_compactions"})
        EXPECT_EQ(count[required], s.samples) << required;
    EXPECT_EQ(count.count("power_w"), 0u); // no DVFS on this cpu
    // The worker computed for 300 of 500 us: some period must show load.
    bool busy_seen = false;
    for (const auto& ev : events->arr)
        if (ev->get("ph")->str == "C" &&
            ev->get("name")->str == "utilization_pct" &&
            ev->get("args")->get("value")->num > 10.0)
            busy_seen = true;
    EXPECT_TRUE(busy_seen);
}

TEST(MetricsSamplerTest, KernelCountersLiveOnTheirOwnProcess) {
    const Sampled s;
    const auto* events = s.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    // "kernel" gets its own process meta past the marker pid; cpu counters
    // stay on pid 1.
    int kernel_pid = -1;
    for (const auto& ev : events->arr)
        if (ev->get("name")->str == "process_name" &&
            ev->get("args")->get("name")->str == "kernel")
            kernel_pid = static_cast<int>(ev->get("pid")->num);
    ASSERT_GT(kernel_pid, 1);
    for (const auto& ev : events->arr) {
        if (ev->get("ph")->str != "C") continue;
        const std::string name = ev->get("name")->str;
        const int pid = static_cast<int>(ev->get("pid")->num);
        if (name == "delta_cycles" || name == "activations")
            EXPECT_EQ(pid, kernel_pid) << name;
        if (name == "utilization_pct") EXPECT_EQ(pid, 1) << name;
    }
}

TEST(MetricsSamplerTest, DvfsPowerTrackAppearsWithDvfs) {
    const Sampled s(/*with_dvfs=*/true);
    const auto* events = s.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    std::size_t power_samples = 0;
    bool nonzero = false;
    for (const auto& ev : events->arr) {
        if (ev->get("ph")->str != "C" || ev->get("name")->str != "power_w")
            continue;
        ++power_samples;
        EXPECT_GE(ev->get("args")->get("value")->num, 0.0);
        if (ev->get("args")->get("value")->num > 0.0) nonzero = true;
    }
    EXPECT_EQ(power_samples, s.samples);
    EXPECT_TRUE(nonzero); // the worker burned energy in some period
}

TEST(MetricsSamplerTest, MirrorsReadingsIntoRegistry) {
    const Sampled s;
    const auto* util = s.reg.find_gauge("cpu.utilization_pct");
    ASSERT_NE(util, nullptr);
    EXPECT_EQ(util->samples(), s.samples);
    EXPECT_GE(util->max(), 10.0);
    const auto* deltas = s.reg.find_gauge("kernel.delta_cycles");
    ASSERT_NE(deltas, nullptr);
    EXPECT_GT(deltas->last(), 0.0);
}

TEST(MetricsSamplerTest, SamplingDoesNotPerturbTheSimulation) {
    // Dispatch count with the sampler running equals a bare run's.
    const Sampled s;
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.set_overheads(r::RtosOverheads::uniform(2_us));
    cpu.create_task({.name = "worker", .priority = 3}, [](r::Task& self) {
        for (int i = 0; i < 10; ++i) {
            self.compute(30_us);
            self.sleep_for(20_us);
        }
    });
    sim.run();
    EXPECT_EQ(cpu.engine().phase_stats().dispatches, s.dispatches);
}
