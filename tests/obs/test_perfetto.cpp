// Perfetto exporter tests: the emitted trace must be valid JSON in the
// Chrome trace-event schema, slices on one (pid, tid) track must be
// monotonic and non-overlapping, overhead slices live on the processor
// track, fault markers show up as instants, and hostile names survive
// escaping.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "obs/json.hpp"
#include "obs/perfetto.hpp"
#include "rtos/processor.hpp"
#include "trace/recorder.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace o = rtsc::obs;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

/// Preemption + comm + marker scenario, exported and parsed back.
struct Exported {
    std::string text;
    o::json::ValuePtr root;

    explicit Exported(r::EngineKind engine = r::EngineKind::procedure_calls) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         engine);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        tr::Recorder rec;
        rec.attach(cpu);
        m::Event irq("irq", m::EventPolicy::boolean);
        rec.attach(irq);
        cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
            irq.await();
            self.compute(20_us);
        });
        cpu.create_task({.name = "L", .priority = 1},
                        [](r::Task& self) { self.compute(100_us); });
        sim.spawn("hw", [&] {
            k::wait(50_us);
            irq.signal();
            rec.mark("fault", "crash:demo");
        });
        sim.run();

        std::ostringstream os;
        o::write_perfetto_json(os, rec);
        text = os.str();
        root = o::json::parse(text);
    }
};

double num_field(const o::json::Value& e, const char* key) {
    const auto* v = e.get(key);
    EXPECT_NE(v, nullptr) << key;
    EXPECT_TRUE(v == nullptr || v->is_number()) << key;
    return v != nullptr ? v->num : -1;
}

std::string str_field(const o::json::Value& e, const char* key) {
    const auto* v = e.get(key);
    EXPECT_NE(v, nullptr) << key;
    EXPECT_TRUE(v == nullptr || v->is_string()) << key;
    return v != nullptr ? v->str : "";
}

} // namespace

TEST(PerfettoTest, OutputIsValidTraceEventJson) {
    Exported ex;
    ASSERT_TRUE(ex.root->is_object());
    const auto* events = ex.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_FALSE(events->arr.empty());

    for (const auto& ev : events->arr) {
        ASSERT_TRUE(ev->is_object());
        const std::string ph = str_field(*ev, "ph");
        ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
        EXPECT_FALSE(str_field(*ev, "name").empty());
        EXPECT_GE(num_field(*ev, "pid"), 1.0);
        if (ph == "X") {
            EXPECT_GE(num_field(*ev, "ts"), 0.0);
            EXPECT_GT(num_field(*ev, "dur"), 0.0);
            EXPECT_FALSE(str_field(*ev, "cat").empty());
        }
        if (ph == "i") {
            const std::string scope = str_field(*ev, "s");
            EXPECT_TRUE(scope == "t" || scope == "g") << scope;
        }
    }
}

TEST(PerfettoTest, SlicesPerTrackAreMonotonicAndDisjoint) {
    Exported ex;
    const auto* events = ex.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    std::map<std::pair<int, int>, double> track_end;
    std::size_t slices = 0;
    for (const auto& ev : events->arr) {
        if (str_field(*ev, "ph") != "X") continue;
        ++slices;
        const auto key = std::make_pair(
            static_cast<int>(num_field(*ev, "pid")),
            static_cast<int>(num_field(*ev, "tid")));
        const double ts = num_field(*ev, "ts");
        const double dur = num_field(*ev, "dur");
        const auto it = track_end.find(key);
        if (it != track_end.end())
            EXPECT_GE(ts, it->second - 1e-9)
                << "overlapping slices on track pid=" << key.first
                << " tid=" << key.second;
        track_end[key] = std::max(it != track_end.end() ? it->second : 0.0,
                                  ts + dur);
    }
    EXPECT_GE(slices, 6u);        // two tasks' states + overheads
    EXPECT_GE(track_end.size(), 3u); // H, L and the overhead track
}

TEST(PerfettoTest, OverheadSlicesLandOnProcessorTrack) {
    Exported ex;
    const auto* events = ex.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    // Processor "cpu" is pid 1; its RTOS overhead track is tid 0.
    bool named = false;
    std::size_t overheads = 0;
    for (const auto& ev : events->arr) {
        const std::string ph = str_field(*ev, "ph");
        if (ph == "M" && str_field(*ev, "name") == "thread_name" &&
            num_field(*ev, "pid") == 1.0 && num_field(*ev, "tid") == 0.0) {
            named = ev->get("args")->get("name")->str == "cpu.rtos";
        }
        if (ph == "X" && str_field(*ev, "cat") == "rtos") {
            ++overheads;
            EXPECT_EQ(num_field(*ev, "pid"), 1.0);
            EXPECT_EQ(num_field(*ev, "tid"), 0.0);
            const std::string name = str_field(*ev, "name");
            EXPECT_TRUE(name == "scheduling" || name == "context_save" ||
                        name == "context_load")
                << name;
        }
    }
    EXPECT_TRUE(named);
    // One preemption scenario: at least save/sched/load around each switch.
    EXPECT_GE(overheads, 6u);
}

TEST(PerfettoTest, MarkersAndCommsAreInstants) {
    Exported ex;
    const auto* events = ex.root->get("traceEvents");
    ASSERT_NE(events, nullptr);
    bool marker = false, comm = false, blocked_comm = false;
    for (const auto& ev : events->arr) {
        if (str_field(*ev, "ph") != "i") continue;
        const std::string cat = str_field(*ev, "cat");
        if (cat == "fault") {
            marker = true;
            EXPECT_EQ(str_field(*ev, "name"), "crash:demo");
            EXPECT_EQ(str_field(*ev, "s"), "g");
            EXPECT_DOUBLE_EQ(num_field(*ev, "ts"), 50.0);
        }
        if (cat == "comm") {
            comm = true;
            EXPECT_EQ(str_field(*ev, "s"), "t");
            if (str_field(*ev, "name").find("[blocked]") != std::string::npos)
                blocked_comm = true;
        }
    }
    EXPECT_TRUE(marker);
    EXPECT_TRUE(comm);
    EXPECT_TRUE(blocked_comm); // H's await blocked before the signal
}

TEST(PerfettoTest, EngineEquivalentExport) {
    // Same scenario, both engines: byte-identical JSON.
    const Exported procedural(r::EngineKind::procedure_calls);
    const Exported threaded(r::EngineKind::rtos_thread);
    EXPECT_EQ(procedural.text, threaded.text);
}

TEST(PerfettoTest, HostileNamesAreEscaped) {
    k::Simulator sim;
    r::Processor cpu("cp\"u");
    cpu.create_task({.name = "na\"me\\with\nnasties\t", .priority = 1},
                    [](r::Task& self) { self.compute(10_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    o::write_perfetto_json(os, rec);
    // Parsing back both validates the escaping and recovers the raw name.
    const auto root = o::json::parse(os.str());
    bool found = false;
    for (const auto& ev : root->get("traceEvents")->arr) {
        if (ev->get("name")->str != "thread_name") continue;
        const auto* args = ev->get("args");
        ASSERT_NE(args, nullptr);
        if (args->get("name")->str == "na\"me\\with\nnasties\t") found = true;
    }
    EXPECT_TRUE(found);
}

TEST(PerfettoTest, JsonEscapeUnit) {
    EXPECT_EQ(o::json_escape("plain"), "plain");
    EXPECT_EQ(o::json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(o::json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(o::json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(o::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonParserTest, RejectsMalformedInput) {
    using o::json::parse;
    using o::json::ParseError;
    EXPECT_THROW((void)parse("{"), ParseError);
    EXPECT_THROW((void)parse("{\"a\": 1} x"), ParseError);
    EXPECT_THROW((void)parse("[1,]"), ParseError);
    EXPECT_THROW((void)parse("\"abc"), ParseError);
    EXPECT_THROW((void)parse("01a"), ParseError);
    EXPECT_THROW((void)parse("{\"a\": \"\x01\"}"), ParseError);
    const auto v = parse(R"({"a": [1, 2.5, -3e2], "b": {"c": null}, "d": true})");
    ASSERT_TRUE(v->is_object());
    EXPECT_DOUBLE_EQ(v->get("a")->arr[2]->num, -300.0);
    EXPECT_TRUE(v->get("d")->b);
}
