// Shard wire protocol: codec round-trips, bounds-checked decoding, frame
// I/O over a real socketpair, incremental parsing, SIGPIPE-free sends.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "campaign/shard/protocol.hpp"
#include "obs/metrics.hpp"

namespace c = rtsc::campaign;
namespace shard = rtsc::campaign::shard;
namespace obs = rtsc::obs;

namespace {

[[nodiscard]] c::ScenarioResult sample_result() {
    c::ScenarioResult r;
    r.name = "hostile \"name\"\nwith\tcontrol\x01 bytes";
    r.index = 42;
    r.seed = 0xdeadbeefcafebabeull;
    r.ok = false;
    r.error = "std::runtime_error: boom \xc3\xa9\xe2\x82\xac"; // é€
    r.wall_ms = 12.75;
    r.metrics = {{"misses", 3.0}, {"", -0.0}, {"inf-ish", 1e308}};
    r.notes = {{"verdict", "late"}, {"empty", ""}, {"nul", std::string("a\0b", 3)}};
    return r;
}

void expect_equal(const c::ScenarioResult& a, const c::ScenarioResult& b) {
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_DOUBLE_EQ(a.wall_ms, b.wall_ms);
    EXPECT_EQ(a.metrics, b.metrics);
    EXPECT_EQ(a.notes, b.notes);
}

} // namespace

TEST(ShardCodec, ResultRoundTripsExactly) {
    const c::ScenarioResult in = sample_result();
    const auto payload = shard::encode_result(in);
    c::ScenarioResult out;
    ASSERT_TRUE(shard::decode_result(payload, out));
    expect_equal(in, out);

    c::ScenarioResult empty; // all defaults
    c::ScenarioResult out2;
    ASSERT_TRUE(shard::decode_result(shard::encode_result(empty), out2));
    expect_equal(empty, out2);
}

TEST(ShardCodec, DecodeRejectsTruncationAndTrailingBytes) {
    const auto payload = shard::encode_result(sample_result());
    c::ScenarioResult out;
    // Every strict prefix must fail — no over-read, no partial acceptance.
    for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                  payload.size() / 2, payload.size() - 1}) {
        std::vector<std::uint8_t> torn(payload.begin(),
                                       payload.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_FALSE(shard::decode_result(torn, out)) << "cut=" << cut;
    }
    std::vector<std::uint8_t> extra = payload;
    extra.push_back(0);
    EXPECT_FALSE(shard::decode_result(extra, out));
}

TEST(ShardCodec, DecodeRejectsLyingStringLength) {
    shard::Encoder e;
    e.u64(1u << 30); // claims a 1 GiB string with no bytes behind it
    c::ScenarioResult out;
    EXPECT_FALSE(shard::decode_result(e.take(), out));
}

TEST(ShardCodec, RegistryRoundTripsBitExactly) {
    obs::MetricsRegistry reg;
    reg.counter("shard.worker.scenarios_run").inc(17);
    reg.gauge("load").set(0.25);
    reg.gauge("load").set(0.75);
    obs::Histogram& h = reg.histogram("wall_us");
    for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 1000ull, 123456789ull,
                            ~0ull})
        h.record(v);

    obs::MetricsRegistry back;
    ASSERT_TRUE(shard::decode_registry(shard::encode_registry(reg), back));

    // The flattened snapshots must agree sample for sample — and the
    // histogram's full bucket state too (quantiles are derived from it).
    const auto a = reg.snapshot();
    const auto b = back.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].value, b[i].value) << a[i].name;
    }
    const obs::Histogram* hb = back.find_histogram("wall_us");
    ASSERT_NE(hb, nullptr);
    EXPECT_EQ(h.bucket_counts(), hb->bucket_counts());
    EXPECT_EQ(h.min(), hb->min());
    EXPECT_EQ(h.max(), hb->max());
    EXPECT_DOUBLE_EQ(h.sum(), hb->sum());
    EXPECT_DOUBLE_EQ(h.p99(), hb->p99());
}

TEST(ShardCodec, RegistryDecodeRejectsBadBucketIndex) {
    shard::Encoder e;
    e.u64(0); // counters
    e.u64(0); // gauges
    e.u64(1); // one histogram
    e.str("h");
    e.u64(1); // count
    e.u64(5); // min
    e.u64(5); // max
    e.f64(5.0);
    e.u64(1);                          // one nonzero bucket
    e.u32(obs::Histogram::kBuckets);   // out of range
    e.u32(1);
    obs::MetricsRegistry out;
    EXPECT_FALSE(shard::decode_registry(e.take(), out));
}

TEST(ShardFrames, RoundTripOverSocketpair) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const auto payload = shard::encode_result(sample_result());
    ASSERT_TRUE(shard::send_frame(sv[0], shard::MsgType::result, payload));
    ASSERT_TRUE(shard::send_frame(sv[0], shard::MsgType::shutdown, {}));

    shard::Frame f;
    ASSERT_TRUE(shard::recv_frame(sv[1], f));
    EXPECT_EQ(f.type, shard::MsgType::result);
    EXPECT_EQ(f.payload, payload);
    ASSERT_TRUE(shard::recv_frame(sv[1], f));
    EXPECT_EQ(f.type, shard::MsgType::shutdown);
    EXPECT_TRUE(f.payload.empty());

    ::close(sv[0]);
    EXPECT_FALSE(shard::recv_frame(sv[1], f)); // EOF is a clean false
    ::close(sv[1]);
}

TEST(ShardFrames, SendToDeadPeerFailsWithoutKillingTheProcess) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ::close(sv[1]);
    // Without MSG_NOSIGNAL this would raise SIGPIPE and kill the test.
    EXPECT_FALSE(shard::send_frame(sv[0], shard::MsgType::shutdown, {}));
    ::close(sv[0]);
}

TEST(ShardFrames, ReaderReassemblesArbitraryFragmentation) {
    const auto p1 = shard::encode_result(sample_result());
    std::vector<std::uint8_t> stream;
    auto append_frame = [&stream](shard::MsgType t,
                                  const std::vector<std::uint8_t>& payload) {
        const auto len = static_cast<std::uint32_t>(payload.size());
        for (int i = 0; i < 4; ++i)
            stream.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
        stream.push_back(static_cast<std::uint8_t>(t));
        stream.insert(stream.end(), payload.begin(), payload.end());
    };
    append_frame(shard::MsgType::result, p1);
    append_frame(shard::MsgType::shutdown, {});
    append_frame(shard::MsgType::assign, {1, 0, 0, 0, 0, 0, 0, 0});

    // Byte-by-byte feeding must yield exactly the three frames, in order.
    shard::FrameReader reader;
    std::vector<shard::Frame> got;
    shard::Frame f;
    for (const std::uint8_t b : stream) {
        reader.feed(&b, 1);
        while (reader.next(f)) got.push_back(f);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].type, shard::MsgType::result);
    EXPECT_EQ(got[0].payload, p1);
    EXPECT_EQ(got[1].type, shard::MsgType::shutdown);
    EXPECT_EQ(got[2].type, shard::MsgType::assign);
    EXPECT_FALSE(reader.corrupt());
}

TEST(ShardFrames, ReaderFlagsCorruptHeader) {
    shard::FrameReader reader;
    // Length far above kMaxFrameBytes.
    const std::uint8_t bad[5] = {0xff, 0xff, 0xff, 0xff, 1};
    reader.feed(bad, sizeof bad);
    shard::Frame f;
    EXPECT_FALSE(reader.next(f));
    EXPECT_TRUE(reader.corrupt());

    shard::FrameReader reader2;
    const std::uint8_t bad_type[5] = {0, 0, 0, 0, 99}; // unknown MsgType
    reader2.feed(bad_type, sizeof bad_type);
    EXPECT_FALSE(reader2.next(f));
    EXPECT_TRUE(reader2.corrupt());
}
