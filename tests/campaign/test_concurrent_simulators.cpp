// Concurrent per-thread simulators — the kernel property the campaign runner
// rests on. Simulator binds itself to the constructing thread
// (thread_local), so independent simulations on separate threads must
// neither interfere nor diverge from a single-threaded reference run.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "workload/taskset.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

struct RunOutcome {
    std::uint64_t misses = 0;
    std::vector<Time> max_responses;
    Time end{};

    bool operator==(const RunOutcome&) const = default;
};

/// One complete simulation: 3-task rate-monotonic set from `seed`, 60 ms
/// horizon. Self-contained — builds and destroys its own Simulator.
RunOutcome run_one(r::EngineKind kind, std::uint64_t seed) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     kind);
    cpu.set_overheads(r::RtosOverheads::uniform(10_us));
    w::PeriodicTaskSet ts(cpu, w::random_task_set(3, 0.65, 1_ms, 8_ms, seed));
    sim.run_until(60_ms);
    RunOutcome out;
    out.misses = ts.total_misses();
    for (const auto& res : ts.results()) out.max_responses.push_back(res.max_response);
    out.end = sim.now();
    return out;
}

class ConcurrentSimulators : public ::testing::TestWithParam<r::EngineKind> {};

} // namespace

TEST_P(ConcurrentSimulators, TwoThreadsMatchSerialReference) {
    const r::EngineKind kind = GetParam();
    const RunOutcome ref_a = run_one(kind, 111);
    const RunOutcome ref_b = run_one(kind, 222);

    RunOutcome got_a, got_b;
    std::thread ta([&] { got_a = run_one(kind, 111); });
    std::thread tb([&] { got_b = run_one(kind, 222); });
    ta.join();
    tb.join();

    EXPECT_EQ(got_a, ref_a);
    EXPECT_EQ(got_b, ref_b);
}

TEST_P(ConcurrentSimulators, ManySimulatorsInFlightStaysDeterministic) {
    const r::EngineKind kind = GetParam();
    constexpr int kThreads = 4;
    constexpr int kRunsPerThread = 3;

    std::vector<RunOutcome> refs;
    for (int t = 0; t < kThreads; ++t)
        refs.push_back(run_one(kind, 1000u + static_cast<std::uint64_t>(t)));

    std::vector<std::vector<RunOutcome>> got(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            // Back-to-back simulators on one thread: each must rebind the
            // thread-local current-simulator slot cleanly.
            for (int i = 0; i < kRunsPerThread; ++i)
                got[static_cast<std::size_t>(t)].push_back(
                    run_one(kind, 1000u + static_cast<std::uint64_t>(t)));
        });
    for (std::thread& th : pool) th.join();

    for (int t = 0; t < kThreads; ++t)
        for (const RunOutcome& o : got[static_cast<std::size_t>(t)])
            EXPECT_EQ(o, refs[static_cast<std::size_t>(t)]) << "thread " << t;
}

TEST(ConcurrentSimulatorsMixed, BothEnginesSideBySide) {
    const RunOutcome ref_p = run_one(r::EngineKind::procedure_calls, 77);
    const RunOutcome ref_t = run_one(r::EngineKind::rtos_thread, 77);
    // Identical simulated-time behaviour is the engines' contract; the
    // reference runs must agree with each other before we go concurrent.
    EXPECT_EQ(ref_p, ref_t);

    RunOutcome got_p, got_t;
    std::thread a([&] { got_p = run_one(r::EngineKind::procedure_calls, 77); });
    std::thread b([&] { got_t = run_one(r::EngineKind::rtos_thread, 77); });
    a.join();
    b.join();
    EXPECT_EQ(got_p, ref_p);
    EXPECT_EQ(got_t, ref_t);
}

INSTANTIATE_TEST_SUITE_P(Engines, ConcurrentSimulators,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "rtos_thread";
                         });
