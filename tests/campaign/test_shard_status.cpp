// Live campaign status: the coordinator writes an advisory JSON snapshot
// (atomic rename) that appears while the campaign runs, parses as strict
// JSON (obs/json.hpp), folds worker heartbeat deltas exactly once, and —
// the contract that matters — never changes the deterministic report
// digest, including under injected crashes and retries.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/shard/coordinator.hpp"
#include "campaign/shard/status.hpp"
#include "kernel/simulator.hpp"
#include "obs/json.hpp"
#include "rtos/processor.hpp"
#include "workload/taskset.hpp"

namespace c = rtsc::campaign;
namespace shard = rtsc::campaign::shard;
namespace j = rtsc::obs::json;
namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
using namespace rtsc::kernel::time_literals;

namespace {

void simulate_taskset(c::ScenarioContext& ctx) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    const auto specs = w::random_task_set(3, 0.6, 1_ms, 10_ms, ctx.seed());
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(20_ms);
    ctx.metric("misses", static_cast<double>(ts.total_misses()));
}

[[nodiscard]] std::vector<c::ScenarioSpec> taskset_campaign(std::size_t n) {
    std::vector<c::ScenarioSpec> scenarios;
    for (std::size_t i = 0; i < n; ++i)
        scenarios.push_back({"taskset_" + std::to_string(i),
                             [](c::ScenarioContext& ctx) {
                                 simulate_taskset(ctx);
                             }});
    return scenarios;
}

struct TempStatus {
    TempStatus()
        : path("shard_status_" + std::to_string(::getpid()) + ".json") {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    ~TempStatus() {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    std::string path;
};

[[nodiscard]] j::ValuePtr parse_file(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return j::parse(ss.str());
}

[[nodiscard]] double num_field(const j::Value& obj, const char* name) {
    const j::Value* v = obj.get(name);
    EXPECT_NE(v, nullptr) << name;
    EXPECT_TRUE(v == nullptr || v->is_number()) << name;
    return v != nullptr && v->is_number() ? v->num : -1.0;
}

} // namespace

TEST(ShardStatus, SnapshotJsonRoundTripsThroughObsJson) {
    rtsc::obs::MetricsRegistry live;
    live.counter("shard.worker.scenarios_run").inc(7);
    live.histogram("shard.scenario_wall_us").record(1500);
    live.histogram("shard.scenario_wall_us").record(2500);

    shard::StatusSnapshot s;
    s.seed = 42;
    s.scenarios = 10;
    s.completed = 7;
    s.failed = 1;
    s.in_flight = 2;
    s.retries = 3;
    s.heartbeats = 7;
    s.elapsed_ms = 2000.0;
    s.live = &live;

    const auto root = j::parse(shard::status_to_json(s));
    ASSERT_TRUE(root->is_object());
    EXPECT_EQ(num_field(*root, "seed"), 42.0);
    EXPECT_EQ(num_field(*root, "completed"), 7.0);
    EXPECT_EQ(num_field(*root, "failed"), 1.0);
    EXPECT_EQ(num_field(*root, "in_flight"), 2.0);
    EXPECT_EQ(num_field(*root, "heartbeats"), 7.0);
    // 7 done in 2 s -> 3.5/s; 3 remaining -> ~857 ms.
    EXPECT_NEAR(num_field(*root, "throughput_per_s"), 3.5, 1e-9);
    EXPECT_NEAR(num_field(*root, "eta_ms"), 3.0 / 3.5 * 1000.0, 1e-6);
    const j::Value* wall = root->get("scenario_wall_us");
    ASSERT_NE(wall, nullptr);
    ASSERT_TRUE(wall->is_object());
    EXPECT_EQ(num_field(*wall, "count"), 2.0);
    const j::Value* metrics = root->get("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->is_object());
    EXPECT_NE(metrics->get("shard.worker.scenarios_run"), nullptr);
}

TEST(ShardStatus, ZeroProgressHasUnknownEta) {
    shard::StatusSnapshot s;
    s.scenarios = 5;
    s.elapsed_ms = 100.0;
    const auto root = j::parse(shard::status_to_json(s));
    EXPECT_EQ(num_field(*root, "throughput_per_s"), 0.0);
    EXPECT_EQ(num_field(*root, "eta_ms"), -1.0);
}

TEST(ShardStatus, WriteStatusFileIsAtomicReplace) {
    TempStatus tmp;
    ASSERT_TRUE(shard::write_status_file(tmp.path, "{\"v\": 1}\n"));
    ASSERT_TRUE(shard::write_status_file(tmp.path, "{\"v\": 2}\n"));
    const auto root = parse_file(tmp.path);
    EXPECT_EQ(num_field(*root, "v"), 2.0);
    // No .tmp litter after a successful replace.
    EXPECT_FALSE(std::ifstream(tmp.path + ".tmp").good());
}

TEST(ShardStatus, FileAppearsMidRunAndFinalSnapshotIsDone) {
    TempStatus tmp;
    const auto scenarios = taskset_campaign(6);

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 99;
    opt.status_path = tmp.path;
    opt.status_period = std::chrono::milliseconds(1);
    bool seen_mid_run = false;
    bool seen_not_done = false;
    opt.on_progress = [&](const c::Progress&) {
        // Fired mid-campaign from the coordinator loop: the status file
        // must already exist (an initial snapshot precedes any worker).
        std::ifstream in(tmp.path);
        if (!in.good()) return;
        seen_mid_run = true;
        std::stringstream ss;
        ss << in.rdbuf();
        const auto root = j::parse(ss.str()); // must parse at any instant
        const j::Value* done = root->get("done");
        if (done != nullptr && done->kind == j::Value::Kind::boolean &&
            !done->b)
            seen_not_done = true;
    };
    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);

    EXPECT_TRUE(seen_mid_run);
    EXPECT_TRUE(seen_not_done);
    EXPECT_GT(outcome.heartbeats, 0u);

    const auto root = parse_file(tmp.path);
    const j::Value* done = root->get("done");
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->kind, j::Value::Kind::boolean);
    EXPECT_TRUE(done->b);
    EXPECT_EQ(num_field(*root, "completed"), 6.0);
    EXPECT_EQ(num_field(*root, "scenarios"), 6.0);
    EXPECT_EQ(num_field(*root, "in_flight"), 0.0);
    EXPECT_EQ(num_field(*root, "heartbeats"),
              static_cast<double>(outcome.heartbeats));
    // Heartbeat deltas folded exactly once: the live runs counter equals
    // the campaign size even though each worker sent several frames.
    const j::Value* metrics = root->get("metrics");
    ASSERT_NE(metrics, nullptr);
    const j::Value* runs = metrics->get("shard.worker.scenarios_run");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->num, 6.0);
}

TEST(ShardStatus, StatusOutputNeverChangesTheDigest) {
    const auto scenarios = taskset_campaign(8);
    const auto in_process =
        c::CampaignRunner({.workers = 1, .seed = 2026}).run(scenarios);

    TempStatus tmp;
    shard::ShardOptions with_status;
    with_status.workers = 3;
    with_status.seed = 2026;
    with_status.status_path = tmp.path;
    with_status.status_period = std::chrono::milliseconds(1);
    const auto outcome = shard::ShardCoordinator(with_status).run(scenarios);

    EXPECT_EQ(outcome.report.digest(), in_process.digest());
    EXPECT_GT(outcome.heartbeats, 0u);
    // The final cumulative metrics path is also intact: every scenario ran
    // exactly once across the fleet.
    const auto* runs =
        outcome.metrics.find_counter("shard.worker.scenarios_run");
    ASSERT_NE(runs, nullptr);
    EXPECT_EQ(runs->value(), 8u);
}

TEST(ShardStatus, DigestIdenticalUnderCrashRetryWithStatusEnabled) {
    // An injected worker crash on one scenario: retries burn the attempt
    // budget, the scenario lands as a deterministic failed entry — and the
    // digest equals a run without any status output.
    auto scenarios = taskset_campaign(5);
    scenarios[3].body = [](c::ScenarioContext&) { std::raise(SIGKILL); };

    shard::ShardOptions plain;
    plain.workers = 2;
    plain.seed = 7;
    plain.max_attempts = 2;
    plain.backoff_base = std::chrono::milliseconds(1);
    const auto baseline = shard::ShardCoordinator(plain).run(scenarios);
    ASSERT_GT(baseline.crashes, 0u);

    TempStatus tmp;
    shard::ShardOptions with_status = plain;
    with_status.status_path = tmp.path;
    with_status.status_period = std::chrono::milliseconds(1);
    const auto outcome = shard::ShardCoordinator(with_status).run(scenarios);

    EXPECT_EQ(outcome.report.digest(), baseline.report.digest());
    EXPECT_GT(outcome.crashes, 0u);
    EXPECT_GT(outcome.retries, 0u);

    const auto root = parse_file(tmp.path);
    EXPECT_GE(num_field(*root, "crashes"), 1.0);
    EXPECT_GE(num_field(*root, "retries"), 1.0);
    EXPECT_EQ(num_field(*root, "failed"), 1.0);
}
