// Checkpoint journal: append/load round-trips, kill-9 torn-tail tolerance,
// header keying, first-wins dedup, record-level validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/shard/checkpoint.hpp"

namespace c = rtsc::campaign;
namespace shard = rtsc::campaign::shard;

namespace {

// Self-deleting journal path under the build dir (unique per test).
struct TempPath {
    explicit TempPath(const std::string& tag)
        : path("shard_ckpt_" + tag + "_" + std::to_string(::getpid()) +
               ".journal") {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    std::string path;
};

[[nodiscard]] std::vector<c::ScenarioSpec> campaign_of(std::size_t n) {
    std::vector<c::ScenarioSpec> s;
    for (std::size_t i = 0; i < n; ++i)
        s.push_back({"scn_" + std::to_string(i), [](c::ScenarioContext&) {}});
    return s;
}

[[nodiscard]] c::ScenarioResult result_for(const shard::CheckpointKey& key,
                                           std::size_t index, bool ok) {
    c::ScenarioResult r;
    r.name = "scn_" + std::to_string(index);
    r.index = index;
    r.seed = c::derive_seed(key.seed, index);
    r.ok = ok;
    if (!ok) r.error = "std::runtime_error: boom";
    r.wall_ms = 1.5;
    r.metrics = {{"misses", static_cast<double>(index)}};
    r.notes = {{"engine", index % 2 == 0 ? "procedure_calls" : "rtos_thread"}};
    return r;
}

[[nodiscard]] std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

} // namespace

TEST(ShardCheckpoint, MissingFileStartsFresh) {
    const TempPath tmp("missing");
    const auto load = shard::load_checkpoint(tmp.path, {1, 2, 3});
    EXPECT_FALSE(load.found);
    EXPECT_FALSE(load.compatible);
    EXPECT_TRUE(load.results.empty());
}

TEST(ShardCheckpoint, AppendLoadRoundTrip) {
    const TempPath tmp("roundtrip");
    const auto scenarios = campaign_of(5);
    const shard::CheckpointKey key{42, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};

    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, /*truncate=*/true));
        for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{4}})
            ASSERT_TRUE(w.append(result_for(key, i, i != 2)));
    }

    const auto load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.found);
    ASSERT_TRUE(load.compatible) << load.error;
    EXPECT_EQ(load.dropped, 0u);
    ASSERT_EQ(load.results.size(), 3u);
    for (std::size_t i = 0; i < load.results.size(); ++i) {
        const auto& got = load.results[i];
        const auto want = result_for(key, got.index, got.index != 2);
        EXPECT_EQ(got.name, want.name);
        EXPECT_EQ(got.seed, want.seed);
        EXPECT_EQ(got.ok, want.ok);
        EXPECT_EQ(got.error, want.error);
        EXPECT_EQ(got.metrics, want.metrics);
        EXPECT_EQ(got.notes, want.notes);
    }
}

TEST(ShardCheckpoint, ReopenWithoutTruncateAppends) {
    const TempPath tmp("reopen");
    const auto scenarios = campaign_of(4);
    const shard::CheckpointKey key{7, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};
    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, true));
        ASSERT_TRUE(w.append(result_for(key, 0, true)));
    }
    {
        // Resume-style reopen: keeps the old record, header not duplicated.
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, false));
        ASSERT_TRUE(w.append(result_for(key, 1, true)));
    }
    const auto load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.compatible) << load.error;
    EXPECT_EQ(load.results.size(), 2u);
    EXPECT_EQ(load.dropped, 0u);

    // ... while a truncate-open discards history (fresh run semantics).
    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, true));
    }
    EXPECT_TRUE(shard::load_checkpoint(tmp.path, key).results.empty());
}

TEST(ShardCheckpoint, TornTailIsDroppedIntactRecordsSurvive) {
    const TempPath tmp("torn");
    const auto scenarios = campaign_of(3);
    const shard::CheckpointKey key{9, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};
    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, true));
        ASSERT_TRUE(w.append(result_for(key, 0, true)));
        ASSERT_TRUE(w.append(result_for(key, 1, true)));
    }
    // Simulate SIGKILL mid-append: a half-written record with no newline.
    std::string content = slurp(tmp.path);
    const std::string full = content;
    dump(tmp.path, content + "R 0123456789abcdef 00ff"); // torn tail

    auto load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.compatible) << load.error;
    EXPECT_EQ(load.results.size(), 2u);
    EXPECT_EQ(load.dropped, 1u);

    // Corrupt checksum on an otherwise well-formed line: dropped too.
    std::string third_line;
    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, true));
        ASSERT_TRUE(w.append(result_for(key, 0, true)));
        ASSERT_TRUE(w.append(result_for(key, 2, true)));
    }
    content = slurp(tmp.path);
    const auto pos = content.rfind("R ");
    ASSERT_NE(pos, std::string::npos);
    content[pos + 2] = content[pos + 2] == '0' ? '1' : '0';
    dump(tmp.path, content);
    load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.compatible);
    EXPECT_EQ(load.results.size(), 1u);
    EXPECT_EQ(load.dropped, 1u);
    (void)full;
}

TEST(ShardCheckpoint, RefusesForeignCampaign) {
    const TempPath tmp("foreign");
    const auto scenarios = campaign_of(3);
    const shard::CheckpointKey key{1, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};
    {
        shard::CheckpointWriter w;
        ASSERT_TRUE(w.open(tmp.path, key, true));
        ASSERT_TRUE(w.append(result_for(key, 0, true)));
    }
    // Different master seed, different scenario count, different names —
    // each alone must make the journal incompatible, never silently mixed.
    for (const shard::CheckpointKey bad :
         {shard::CheckpointKey{2, key.scenario_count, key.names_digest},
          shard::CheckpointKey{1, key.scenario_count + 1, key.names_digest},
          shard::CheckpointKey{1, key.scenario_count, key.names_digest ^ 1}}) {
        const auto load = shard::load_checkpoint(tmp.path, bad);
        EXPECT_TRUE(load.found);
        EXPECT_FALSE(load.compatible);
        EXPECT_FALSE(load.error.empty());
        EXPECT_TRUE(load.results.empty());
    }

    // Garbage header: found but unusable.
    dump(tmp.path, "not a checkpoint\n");
    const auto load = shard::load_checkpoint(tmp.path, key);
    EXPECT_FALSE(load.compatible);
}

TEST(ShardCheckpoint, FirstRecordWinsOnDuplicateIndex) {
    const TempPath tmp("dup");
    const auto scenarios = campaign_of(2);
    const shard::CheckpointKey key{5, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};
    shard::CheckpointWriter w;
    ASSERT_TRUE(w.open(tmp.path, key, true));
    auto first = result_for(key, 0, true);
    first.notes = {{"which", "first"}};
    auto second = result_for(key, 0, true);
    second.notes = {{"which", "second"}};
    ASSERT_TRUE(w.append(first));
    ASSERT_TRUE(w.append(second));
    w.close();

    const auto load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.compatible);
    ASSERT_EQ(load.results.size(), 1u);
    ASSERT_EQ(load.results[0].notes.size(), 1u);
    EXPECT_EQ(load.results[0].notes[0].second, "first");
    EXPECT_EQ(load.dropped, 1u);
}

TEST(ShardCheckpoint, RejectsRecordsThatContradictTheCampaign) {
    const TempPath tmp("contradict");
    const auto scenarios = campaign_of(3);
    const shard::CheckpointKey key{11, scenarios.size(),
                                   shard::scenario_names_digest(scenarios)};
    shard::CheckpointWriter w;
    ASSERT_TRUE(w.open(tmp.path, key, true));

    auto out_of_range = result_for(key, 0, true);
    out_of_range.index = 99; // beyond scenario_count
    out_of_range.seed = c::derive_seed(key.seed, 99);
    ASSERT_TRUE(w.append(out_of_range));

    auto wrong_seed = result_for(key, 1, true);
    wrong_seed.seed ^= 1; // disagrees with derive_seed(campaign, index)
    ASSERT_TRUE(w.append(wrong_seed));

    ASSERT_TRUE(w.append(result_for(key, 2, true))); // the one honest record
    w.close();

    const auto load = shard::load_checkpoint(tmp.path, key);
    ASSERT_TRUE(load.compatible);
    ASSERT_EQ(load.results.size(), 1u);
    EXPECT_EQ(load.results[0].index, 2u);
    EXPECT_EQ(load.dropped, 2u);
}
