// ShardCoordinator end-to-end: digest parity with the in-process runner,
// crash/timeout retry with graceful degradation, kill-9 + resume identity,
// merged per-worker metrics. Everything here forks real worker processes.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "campaign/shard/checkpoint.hpp"
#include "campaign/shard/coordinator.hpp"
#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "workload/taskset.hpp"

namespace c = rtsc::campaign;
namespace shard = rtsc::campaign::shard;
namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
using namespace rtsc::kernel::time_literals;

namespace {

void simulate_taskset(c::ScenarioContext& ctx, r::EngineKind kind) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     kind);
    const auto specs = w::random_task_set(3, 0.6, 1_ms, 10_ms, ctx.seed());
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(50_ms);
    ctx.metric("misses", static_cast<double>(ts.total_misses()));
    for (const auto& res : ts.results())
        ctx.metric(res.name + ".max_response_us",
                   res.max_response.to_sec() * 1e6);
}

[[nodiscard]] std::vector<c::ScenarioSpec> taskset_campaign(std::size_t n) {
    std::vector<c::ScenarioSpec> scenarios;
    for (std::size_t i = 0; i < n; ++i) {
        const r::EngineKind kind = i % 2 == 0 ? r::EngineKind::procedure_calls
                                              : r::EngineKind::rtos_thread;
        scenarios.push_back({"taskset_" + std::to_string(i),
                             [kind](c::ScenarioContext& ctx) {
                                 simulate_taskset(ctx, kind);
                             }});
    }
    return scenarios;
}

struct TempPath {
    explicit TempPath(const std::string& tag)
        : path("shard_e2e_" + tag + "_" + std::to_string(::getpid()) +
               ".journal") {
        std::remove(path.c_str());
    }
    ~TempPath() { std::remove(path.c_str()); }
    std::string path;
};

[[nodiscard]] std::size_t journal_lines(const std::string& path) {
    std::ifstream in(path);
    std::size_t n = 0;
    std::string line;
    while (std::getline(in, line)) ++n;
    return n;
}

} // namespace

TEST(Shard, DigestMatchesInProcessRunnerForEveryWorkerCount) {
    const auto scenarios = taskset_campaign(8);
    const auto in_process =
        c::CampaignRunner({.workers = 1, .seed = 2026}).run(scenarios);
    ASSERT_EQ(in_process.failures(), 0u);

    for (const unsigned workers : {1u, 2u, 4u}) {
        shard::ShardOptions opt;
        opt.workers = workers;
        opt.seed = 2026;
        const auto outcome = shard::ShardCoordinator(opt).run(scenarios);
        EXPECT_EQ(outcome.report.digest(), in_process.digest())
            << workers << " workers";
        EXPECT_EQ(outcome.crashes, 0u);
        EXPECT_EQ(outcome.retries, 0u);
        ASSERT_EQ(outcome.report.results.size(), in_process.results.size());
        for (std::size_t i = 0; i < in_process.results.size(); ++i) {
            const auto& a = in_process.results[i];
            const auto& b = outcome.report.results[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.seed, b.seed);
            EXPECT_EQ(a.ok, b.ok);
            EXPECT_EQ(a.metrics, b.metrics);
            EXPECT_EQ(a.notes, b.notes);
        }
    }
}

TEST(Shard, ThrowingScenarioIsTerminalAndMatchesInProcessRunner) {
    auto scenarios = taskset_campaign(4);
    scenarios[2].body = [](c::ScenarioContext&) {
        throw std::runtime_error("deliberate");
    };
    const auto in_process =
        c::CampaignRunner({.workers = 1, .seed = 5}).run(scenarios);

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 5;
    opt.max_attempts = 3; // must NOT be consumed by an app-level throw
    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);

    EXPECT_EQ(outcome.report.digest(), in_process.digest());
    EXPECT_EQ(outcome.report.failures(), 1u);
    EXPECT_FALSE(outcome.report.results[2].ok);
    EXPECT_EQ(outcome.report.results[2].error, "std::runtime_error: deliberate");
    EXPECT_EQ(outcome.retries, 0u);
    EXPECT_EQ(outcome.crashes, 0u);
}

TEST(Shard, CrashingScenarioExhaustsRetryBudgetGracefully) {
    auto scenarios = taskset_campaign(6);
    scenarios[3].body = [](c::ScenarioContext&) {
        std::raise(SIGKILL); // uncatchable: deterministic worker death
    };

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 11;
    opt.max_attempts = 2;
    opt.backoff_base = std::chrono::milliseconds(1);
    opt.backoff_cap = std::chrono::milliseconds(4);

    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);
    ASSERT_EQ(outcome.report.results.size(), 6u);
    EXPECT_EQ(outcome.report.failures(), 1u);
    const auto& failed = outcome.report.results[3];
    EXPECT_FALSE(failed.ok);
    EXPECT_EQ(failed.error, "shard: worker killed by signal 9 (attempt 2/2)");
    EXPECT_EQ(failed.seed, c::derive_seed(11, 3));
    EXPECT_EQ(outcome.crashes, 2u);  // one per attempt
    EXPECT_EQ(outcome.retries, 1u);
    EXPECT_EQ(outcome.timeouts, 0u);
    for (std::size_t i = 0; i < 6; ++i) {
        if (i != 3) EXPECT_TRUE(outcome.report.results[i].ok) << i;
    }

    // Graceful degradation never changes healthy results: same campaign with
    // 1 worker (every scenario re-run after each crash lands on the sole
    // worker) produces the identical digest.
    opt.workers = 1;
    const auto serial = shard::ShardCoordinator(opt).run(scenarios);
    EXPECT_EQ(serial.report.digest(), outcome.report.digest());
}

TEST(Shard, NonzeroExitIsRecordedAsWorkerDeath) {
    auto scenarios = taskset_campaign(3);
    scenarios[1].body = [](c::ScenarioContext&) { ::_exit(7); };

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 3;
    opt.max_attempts = 1; // no retries: first death is terminal
    opt.backoff_base = std::chrono::milliseconds(1);

    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);
    EXPECT_EQ(outcome.report.failures(), 1u);
    EXPECT_EQ(outcome.report.results[1].error,
              "shard: worker exited with status 7 (attempt 1/1)");
    EXPECT_EQ(outcome.crashes, 1u);
    EXPECT_EQ(outcome.retries, 0u);
}

TEST(Shard, HungScenarioIsKilledAtTheDeadline) {
    auto scenarios = taskset_campaign(4);
    scenarios[1].body = [](c::ScenarioContext&) {
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    };

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 17;
    opt.timeout = std::chrono::milliseconds(200);
    opt.max_attempts = 2;
    opt.backoff_base = std::chrono::milliseconds(1);
    opt.backoff_cap = std::chrono::milliseconds(4);

    const auto t0 = std::chrono::steady_clock::now();
    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);
    const auto wall = std::chrono::steady_clock::now() - t0;

    EXPECT_EQ(outcome.report.failures(), 1u);
    EXPECT_EQ(outcome.report.results[1].error,
              "shard: scenario timed out after 200ms (attempt 2/2)");
    EXPECT_EQ(outcome.timeouts, 2u);
    EXPECT_EQ(outcome.retries, 1u);
    // Two 200 ms deadlines plus overhead — nowhere near the 1 s sleeps the
    // hung body would take. Generous bound for loaded CI machines.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(wall).count(), 20);
    for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}})
        EXPECT_TRUE(outcome.report.results[i].ok) << i;
}

TEST(Shard, CheckpointResumeReproducesTheDigest) {
    const TempPath tmp("resume");
    const auto scenarios = taskset_campaign(6);

    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 23;
    opt.checkpoint_path = tmp.path;

    const auto fresh = shard::ShardCoordinator(opt).run(scenarios);
    EXPECT_EQ(fresh.resumed, 0u);
    EXPECT_EQ(journal_lines(tmp.path), 1u + scenarios.size()); // header + N

    // Resume over a complete journal: nothing re-runs, digest identical.
    opt.resume = true;
    const auto resumed = shard::ShardCoordinator(opt).run(scenarios);
    EXPECT_EQ(resumed.resumed, scenarios.size());
    EXPECT_EQ(resumed.report.digest(), fresh.report.digest());

    // Resume keyed to a different campaign must throw, not mix results.
    opt.seed = 24;
    EXPECT_THROW((void)shard::ShardCoordinator(opt).run(scenarios),
                 std::runtime_error);
}

TEST(Shard, KillNineMidCampaignThenResumeMatchesUninterruptedRun) {
    const TempPath tmp("kill9");
    const std::size_t n = 12;

    // The uninterrupted reference, computed in-process (also proves
    // cross-runner digest identity once the resumed run matches it).
    const auto reference =
        c::CampaignRunner({.workers = 1, .seed = 71}).run(taskset_campaign(n));

    // Coordinator in a child process so we can SIGKILL it mid-campaign. The
    // child's scenarios sleep to guarantee the kill lands while the journal
    // is partially written.
    const pid_t child = ::fork();
    ASSERT_NE(child, -1);
    if (child == 0) {
        auto slow = taskset_campaign(n);
        for (auto& s : slow) {
            auto body = s.body;
            s.body = [body](c::ScenarioContext& ctx) {
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
                body(ctx);
            };
        }
        shard::ShardOptions opt;
        opt.workers = 2;
        opt.seed = 71;
        opt.checkpoint_path = tmp.path;
        try {
            (void)shard::ShardCoordinator(opt).run(slow);
        } catch (...) {
        }
        ::_exit(0);
    }

    // Wait until at least two records hit the journal, then kill -9.
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (journal_lines(tmp.path) < 3) { // header + 2 records
        if (std::chrono::steady_clock::now() > give_up) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(journal_lines(tmp.path), 3u) << "journal never grew";
    ::kill(child, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Resume in this process — no sleeps needed, the campaign definition
    // (seed, count, names) is what the journal is keyed on.
    shard::ShardOptions opt;
    opt.workers = 2;
    opt.seed = 71;
    opt.checkpoint_path = tmp.path;
    opt.resume = true;
    const auto outcome = shard::ShardCoordinator(opt).run(taskset_campaign(n));

    EXPECT_GE(outcome.resumed, 1u);   // something genuinely came from disk
    EXPECT_EQ(outcome.report.results.size(), n);
    EXPECT_EQ(outcome.report.failures(), 0u);
    EXPECT_EQ(outcome.report.digest(), reference.digest())
        << "resumed digest must equal the uninterrupted run's";
}

TEST(Shard, WorkerMetricsMergeIntoTheOutcome) {
    const auto scenarios = taskset_campaign(9);
    shard::ShardOptions opt;
    opt.workers = 3;
    opt.seed = 13;
    const auto outcome = shard::ShardCoordinator(opt).run(scenarios);
    ASSERT_EQ(outcome.report.failures(), 0u);

    // Per-worker registries merge exactly: the campaign-wide counters and
    // histogram counts must equal what one worker running everything would
    // have recorded.
    const auto* run = outcome.metrics.find_counter("shard.worker.scenarios_run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->value(), scenarios.size());
    const auto* failed =
        outcome.metrics.find_counter("shard.worker.scenarios_failed");
    ASSERT_NE(failed, nullptr);
    EXPECT_EQ(failed->value(), 0u);
    const auto* wall =
        outcome.metrics.find_histogram("shard.worker.scenario_wall_us");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->count(), scenarios.size());
    // Coordinator-side accounting rides along in the same registry.
    const auto* coord = outcome.metrics.find_histogram("shard.scenario_wall_us");
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->count(), scenarios.size());
}

TEST(Shard, EmptyCampaignAndProgressCallback) {
    shard::ShardOptions opt;
    opt.workers = 4;
    opt.seed = 1;
    const auto empty = shard::ShardCoordinator(opt).run({});
    EXPECT_TRUE(empty.report.results.empty());
    EXPECT_EQ(empty.report.failures(), 0u);

    std::size_t calls = 0;
    std::size_t last_completed = 0;
    opt.on_progress = [&](const c::Progress& p) {
        ++calls;
        EXPECT_EQ(p.total, 5u);
        EXPECT_GT(p.completed, last_completed);
        last_completed = p.completed;
    };
    opt.workers = 2;
    const auto outcome = shard::ShardCoordinator(opt).run(taskset_campaign(5));
    EXPECT_EQ(calls, 5u);
    EXPECT_EQ(last_completed, 5u);
    EXPECT_EQ(outcome.report.failures(), 0u);
}
