// Campaign runner: work distribution, failure isolation, and — the core
// contract — bit-identical aggregate reports for every worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <fstream>
#include <sstream>

#include "campaign/bench_json.hpp"
#include "campaign/campaign.hpp"
#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "workload/taskset.hpp"

namespace c = rtsc::campaign;
namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
using namespace rtsc::kernel::time_literals;

namespace {

/// A real simulation scenario: a random task set generated from the
/// scenario's deterministic seed, simulated to 50 ms, metrics extracted.
void simulate_taskset(c::ScenarioContext& ctx, r::EngineKind kind) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     kind);
    const auto specs = w::random_task_set(3, 0.6, 1_ms, 10_ms, ctx.seed());
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(50_ms);
    ctx.metric("misses", static_cast<double>(ts.total_misses()));
    for (const auto& res : ts.results())
        ctx.metric(res.name + ".max_response_us",
                   res.max_response.to_sec() * 1e6);
}

std::vector<c::ScenarioSpec> taskset_campaign(std::size_t n) {
    std::vector<c::ScenarioSpec> scenarios;
    for (std::size_t i = 0; i < n; ++i) {
        const r::EngineKind kind = i % 2 == 0 ? r::EngineKind::procedure_calls
                                              : r::EngineKind::rtos_thread;
        scenarios.push_back({"taskset_" + std::to_string(i),
                             [kind](c::ScenarioContext& ctx) {
                                 simulate_taskset(ctx, kind);
                             }});
    }
    return scenarios;
}

} // namespace

TEST(SeedDerivation, DeterministicAndSpread) {
    EXPECT_EQ(c::derive_seed(42, 0), c::derive_seed(42, 0));
    EXPECT_NE(c::derive_seed(42, 0), c::derive_seed(42, 1));
    EXPECT_NE(c::derive_seed(42, 0), c::derive_seed(43, 0));
    // Consecutive indices must not produce correlated (e.g. off-by-one) seeds.
    const auto a = c::derive_seed(7, 10);
    const auto b = c::derive_seed(7, 11);
    EXPECT_GT((a > b ? a - b : b - a), 1u << 20);
}

TEST(CampaignRunner, RunsEveryScenarioAndKeepsSubmissionOrder) {
    std::vector<c::ScenarioSpec> scenarios;
    for (int i = 0; i < 8; ++i)
        scenarios.push_back({"s" + std::to_string(i), [i](c::ScenarioContext& ctx) {
                                 ctx.metric("id", i);
                             }});
    const auto report =
        c::CampaignRunner({.workers = 3, .seed = 99}).run(scenarios);
    ASSERT_EQ(report.results.size(), 8u);
    EXPECT_EQ(report.failures(), 0u);
    EXPECT_EQ(report.workers, 3u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(report.results[i].index, i);
        EXPECT_EQ(report.results[i].name, "s" + std::to_string(i));
        EXPECT_EQ(report.results[i].seed, c::derive_seed(99, i));
        ASSERT_EQ(report.results[i].metrics.size(), 1u);
        EXPECT_EQ(report.results[i].metrics[0].second, static_cast<double>(i));
    }
}

TEST(CampaignRunner, ScenarioFailureIsIsolated) {
    std::vector<c::ScenarioSpec> scenarios = {
        {"good1", [](c::ScenarioContext& ctx) { ctx.metric("v", 1); }},
        {"bad", [](c::ScenarioContext&) { throw std::runtime_error("boom"); }},
        {"ugly", [](c::ScenarioContext&) { throw 42; }},
        {"good2", [](c::ScenarioContext& ctx) { ctx.metric("v", 2); }},
    };
    const auto report = c::CampaignRunner({.workers = 2}).run(scenarios);
    EXPECT_EQ(report.failures(), 2u);
    EXPECT_TRUE(report.results[0].ok);
    EXPECT_FALSE(report.results[1].ok);
    // failure_description: demangled dynamic type + what(), identical in
    // every runner (serial, threaded, sharded).
    EXPECT_EQ(report.results[1].error, "std::runtime_error: boom");
    EXPECT_FALSE(report.results[2].ok);
    EXPECT_EQ(report.results[2].error, "unknown exception type");
    EXPECT_TRUE(report.results[3].ok);
    ASSERT_NE(report.find("good2"), nullptr);
    EXPECT_EQ(report.find("good2")->metrics[0].second, 2.0);
    EXPECT_EQ(report.find("nope"), nullptr);
}

TEST(CampaignHandle, StartWaitForAndTakeMatchBlockingRun) {
    const auto scenarios = taskset_campaign(6);
    const auto blocking =
        c::CampaignRunner({.workers = 2, .seed = 31}).run(scenarios);

    auto handle = c::CampaignRunner({.workers = 2, .seed = 31}).start(scenarios);
    // wait_for with a timeout never blocks forever; repeated calls are safe
    // and the campaign keeps running across a timed-out wait.
    while (!handle.wait_for(std::chrono::milliseconds(5))) {
        EXPECT_LE(handle.completed(), scenarios.size());
    }
    EXPECT_TRUE(handle.done());
    EXPECT_EQ(handle.completed(), scenarios.size());
    const auto report = handle.take();
    EXPECT_EQ(report.digest(), blocking.digest());
    EXPECT_EQ(report.results.size(), scenarios.size());
}

TEST(CampaignHandle, WaitForTimesOutWhileScenariosRun) {
    std::atomic<bool> release{false};
    std::vector<c::ScenarioSpec> scenarios = {
        {"gate", [&release](c::ScenarioContext&) {
             while (!release.load()) std::this_thread::yield();
         }}};
    auto handle = c::CampaignRunner({.workers = 1}).start(scenarios);
    EXPECT_FALSE(handle.wait_for(std::chrono::milliseconds(20)));
    EXPECT_FALSE(handle.done());
    release.store(true);
    handle.wait();
    EXPECT_TRUE(handle.done());
    EXPECT_EQ(handle.take().results.size(), 1u);
}

TEST(CampaignHandle, DestructorJoinsWithoutTake) {
    std::vector<c::ScenarioSpec> scenarios;
    for (int i = 0; i < 4; ++i)
        scenarios.push_back({"s" + std::to_string(i), [](c::ScenarioContext&) {}});
    {
        auto handle = c::CampaignRunner({.workers = 2}).start(scenarios);
        (void)handle; // dropped while possibly still running: must join clean
    }
}

TEST(CampaignRunner, ProgressReportsEveryCompletion) {
    std::vector<c::ScenarioSpec> scenarios;
    for (int i = 0; i < 10; ++i)
        scenarios.push_back({"s" + std::to_string(i), [](c::ScenarioContext&) {}});
    std::size_t calls = 0;
    std::size_t max_completed = 0;
    c::CampaignRunner::Options opt;
    opt.workers = 4;
    opt.on_progress = [&](const c::Progress& p) {
        // Serialized by the runner's lock: plain counters are safe here.
        ++calls;
        EXPECT_EQ(p.total, 10u);
        EXPECT_GE(p.completed, 1u);
        EXPECT_LE(p.completed, 10u);
        if (p.completed > max_completed) max_completed = p.completed;
    };
    (void)c::CampaignRunner(opt).run(scenarios);
    EXPECT_EQ(calls, 10u);
    EXPECT_EQ(max_completed, 10u);
}

TEST(CampaignRunner, WorkerCountIsClampedToScenarioCount) {
    std::vector<c::ScenarioSpec> scenarios = {
        {"only", [](c::ScenarioContext&) {}}};
    const auto report = c::CampaignRunner({.workers = 16}).run(scenarios);
    EXPECT_EQ(report.workers, 1u);
    const auto empty = c::CampaignRunner({.workers = 16}).run({});
    EXPECT_EQ(empty.results.size(), 0u);
    EXPECT_EQ(empty.failures(), 0u);
}

TEST(CampaignDeterminism, AggregateReportIdenticalAcrossWorkerCounts) {
    const auto scenarios = taskset_campaign(10);
    const auto serial =
        c::CampaignRunner({.workers = 1, .seed = 2026}).run(scenarios);
    ASSERT_EQ(serial.failures(), 0u);

    for (const unsigned workers : {2u, 4u, 7u}) {
        const auto parallel =
            c::CampaignRunner({.workers = workers, .seed = 2026}).run(scenarios);
        EXPECT_EQ(parallel.digest(), serial.digest()) << workers << " workers";
        // The digest claim, verified field by field.
        ASSERT_EQ(parallel.results.size(), serial.results.size());
        for (std::size_t i = 0; i < serial.results.size(); ++i) {
            const auto& a = serial.results[i];
            const auto& b = parallel.results[i];
            EXPECT_EQ(a.name, b.name);
            EXPECT_EQ(a.seed, b.seed);
            EXPECT_EQ(a.ok, b.ok);
            EXPECT_EQ(a.metrics, b.metrics);
            EXPECT_EQ(a.notes, b.notes);
        }
    }
}

TEST(CampaignDeterminism, DifferentCampaignSeedChangesTheScience) {
    const auto scenarios = taskset_campaign(4);
    const auto a = c::CampaignRunner({.workers = 2, .seed = 1}).run(scenarios);
    const auto b = c::CampaignRunner({.workers = 2, .seed = 2}).run(scenarios);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(BenchJson, EntriesMergeByNameAndSurviveRewrites) {
    const std::string path = ::testing::TempDir() + "/bench_campaign_test.json";
    std::remove(path.c_str());

    c::BenchEntry a;
    a.name = "mpeg2_dse";
    a.scenarios = 16;
    a.hardware_cores = 4;
    a.workers = 4;
    a.serial_ms = 100.0;
    a.parallel_ms = 30.0;
    a.speedup = 100.0 / 30.0;
    a.digest = 0xdeadbeefull;
    a.digests_match = true;
    c::write_bench_entry(path, a);

    c::BenchEntry b = a;
    b.name = "overhead_sweep";
    b.serial_ms = 80.0;
    c::write_bench_entry(path, b);

    a.serial_ms = 200.0; // update in place: must replace, not duplicate
    c::write_bench_entry(path, a);

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    EXPECT_EQ(text.find("mpeg2_dse"), text.rfind("mpeg2_dse"));
    EXPECT_NE(text.find("overhead_sweep"), std::string::npos);
    EXPECT_NE(text.find("\"serial_ms\": 200.00"), std::string::npos);
    EXPECT_EQ(text.find("\"serial_ms\": 100.00"), std::string::npos);
    EXPECT_NE(text.find("00000000deadbeef"), std::string::npos);
    EXPECT_NE(text.find("\"digests_match\": true"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CampaignReport, TextAndCsvRenderings) {
    std::vector<c::ScenarioSpec> scenarios = {
        {"alpha", [](c::ScenarioContext& ctx) { ctx.metric("m", 1.5); }},
        {"beta", [](c::ScenarioContext&) { throw std::runtime_error("bad"); }},
    };
    const auto report = c::CampaignRunner({.workers = 1, .seed = 5}).run(scenarios);
    const std::string text = report.to_string();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("FAILED"), std::string::npos);
    EXPECT_NE(text.find("bad"), std::string::npos);
    const std::string csv = report.to_csv();
    EXPECT_NE(csv.find("scenario,index,seed,ok,metric,value"), std::string::npos);
    EXPECT_NE(csv.find("alpha,0,"), std::string::npos);
    EXPECT_NE(csv.find(",m,1.5"), std::string::npos);
    EXPECT_NE(csv.find("beta,1,"), std::string::npos);
}
