// RTOS timing-model tests (§3.2): fixed overheads, formula overheads
// evaluated against live system state, per-kind accounting, and the
// conservation invariant busy + overhead + idle == elapsed.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using k::Time;
using namespace rtsc::kernel::time_literals;

class OverheadTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(OverheadTest, DistinctComponentsChargeSeparately) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads({.scheduling = 3_us, .context_load = 7_us, .context_save = 11_us});
    RecordingObserver rec;
    cpu.add_observer(rec);
    cpu.create_task({.name = "A", .priority = 1},
                    [](r::Task& self) { self.compute(50_us); });
    sim.run();
    // sched 0-3, load 3-10, run 10-60, save 60-71, sched 71-74.
    EXPECT_EQ(sim.now(), 74_us);
    const auto a = rec.of("A");
    EXPECT_EQ(a[1].at, 10_us);
    EXPECT_EQ(a[2].at, 60_us);

    Time sched{}, load{}, save{};
    for (const auto& o : rec.overheads) {
        switch (o.kind) {
            case r::OverheadKind::scheduling: sched += o.duration; break;
            case r::OverheadKind::context_load: load += o.duration; break;
            case r::OverheadKind::context_save: save += o.duration; break;
        }
    }
    EXPECT_EQ(sched, 6_us); // two passes
    EXPECT_EQ(load, 7_us);
    EXPECT_EQ(save, 11_us);
}

TEST_P(OverheadTest, FormulaDependsOnReadyTaskCount) {
    // "scheduling duration [...] depends not only on the algorithm, but also
    // on the number of ready tasks when the algorithm runs."
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::RtosOverheads ov;
    ov.scheduling = r::OverheadModel::formula([](const r::SystemState& s) {
        return Time::us(1) * static_cast<Time::rep>(s.ready_tasks);
    });
    cpu.set_overheads(ov);
    RecordingObserver rec;
    cpu.add_observer(rec);
    auto body = [](r::Task& self) { self.compute(10_us); };
    cpu.create_task({.name = "A", .priority = 3}, body);
    cpu.create_task({.name = "B", .priority = 2}, body);
    cpu.create_task({.name = "C", .priority = 1}, body);
    sim.run();

    // The duration is evaluated when the scheduling pass starts: pass 1 at
    // t=0 sees all three same-instant arrivals -> 3us; pass 2 after A ends
    // sees {B,C} -> 2us; pass 3 sees {C} -> 1us; pass 4 sees {} -> 0us.
    std::vector<Time> scheds;
    for (const auto& o : rec.overheads)
        if (o.kind == r::OverheadKind::scheduling) scheds.push_back(o.duration);
    EXPECT_EQ(scheds, (std::vector<Time>{3_us, 2_us, 1_us, 0_us}));
    // A runs 3-13, B 15-25, C 26-36.
    EXPECT_EQ(rec.of("A")[1].at, 3_us);
    EXPECT_EQ(rec.of("B")[1].at, 15_us);
    EXPECT_EQ(rec.of("C")[1].at, 26_us);
}

TEST_P(OverheadTest, FormulaSeesOverheadKind) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::RtosOverheads ov;
    const auto record_kind = [](const r::SystemState& s) {
        EXPECT_EQ(s.kind, r::OverheadKind::context_load);
        return Time::us(2);
    };
    ov.context_load = r::OverheadModel::formula(record_kind);
    cpu.set_overheads(ov);
    cpu.create_task({.name = "A", .priority = 1},
                    [](r::Task& self) { self.compute(5_us); });
    sim.run();
    EXPECT_EQ(sim.now(), 7_us); // load 2us + run 5us; all other charges zero
}

TEST_P(OverheadTest, ConservationBusyOverheadIdle) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(4_us));
    m::Event irq("irq", m::EventPolicy::counter);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        for (int i = 0; i < 3; ++i) {
            irq.await();
            self.compute(7_us);
        }
    });
    cpu.create_task({.name = "L", .priority = 1}, [&](r::Task& self) {
        self.compute(200_us);
    });
    sim.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(50_us);
            irq.signal();
        }
    });
    sim.run();

    const auto ps = cpu.engine().phase_stats();
    EXPECT_EQ(ps.busy_time + ps.overhead_time + ps.idle_time, sim.now());
    // Busy time equals the sum of task computes: 3*7 + 200.
    EXPECT_EQ(ps.busy_time, 221_us);
}

TEST_P(OverheadTest, OverheadModelAccessors) {
    r::OverheadModel fixed(5_us);
    EXPECT_FALSE(fixed.is_formula());
    EXPECT_EQ(fixed.fixed_value(), 5_us);
    r::OverheadModel def;
    EXPECT_EQ(def.fixed_value(), Time::zero());
    auto f = r::OverheadModel::formula(
        [](const r::SystemState&) { return Time::us(9); });
    EXPECT_TRUE(f.is_formula());
    const r::SystemState s{Time::zero(), 0, 0, nullptr,
                           r::OverheadKind::scheduling};
    EXPECT_EQ(f.evaluate(s), 9_us);
    EXPECT_EQ(fixed.evaluate(s), 5_us);
}

TEST_P(OverheadTest, UniformHelper) {
    const auto ov = r::RtosOverheads::uniform(5_us);
    const r::SystemState s{Time::zero(), 1, 1, nullptr, r::OverheadKind::scheduling};
    EXPECT_EQ(ov.scheduling.evaluate(s), 5_us);
    EXPECT_EQ(ov.context_load.evaluate(s), 5_us);
    EXPECT_EQ(ov.context_save.evaluate(s), 5_us);
    const auto none = r::RtosOverheads::none();
    EXPECT_EQ(none.scheduling.evaluate(s), Time::zero());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, OverheadTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
