// Regression: SchedulerEngine::phase_stats() must fold the in-progress phase
// episode up to the current instant, so idle + overhead + busy always equals
// elapsed time — even when the simulation is stopped in the middle of an
// overhead charge (e.g. inside a context-load) on either engine.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
using namespace rtsc::kernel::time_literals;

namespace {

class PhaseStatsStopTest : public ::testing::TestWithParam<r::EngineKind> {};

} // namespace

TEST_P(PhaseStatsStopTest, PhaseTimesSumToElapsedAtAnyStopPoint) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    cpu.create_task({.name = "a", .priority = 1}, [](r::Task& self) {
        self.compute(10_us); // sched 0-5, load 5-10, run 10-20
        self.sleep_for(10_us); // save 20-25, sched 25-30, idle, wake at 30
        self.compute(10_us); // sched 30-35, load 35-40, run 40-50
    });                        // save 50-55, sched 55-60, idle afterwards

    // Stop inside every kind of episode: mid-sched (3), mid-context-load (7),
    // mid-run (15), mid-context-save (22), mid-second-sched (27), mid-load
    // after the idle gap (37), and in the trailing idle (70).
    for (const k::Time stop :
         {3_us, 7_us, 15_us, 22_us, 27_us, 37_us, 70_us}) {
        sim.run_until(stop);
        const auto ps = cpu.engine().phase_stats();
        EXPECT_EQ(ps.idle_time + ps.overhead_time + ps.busy_time, stop)
            << "stopped at " << stop.to_string();
    }

    // Final split at t=70: 20us of computation, 40us of charges (4 scheds,
    // 2 loads, 2 saves at 5us each), and the trailing 60-70 idle stretch.
    const auto ps = cpu.engine().phase_stats();
    EXPECT_EQ(ps.busy_time, 20_us);
    EXPECT_EQ(ps.overhead_time, 40_us);
    EXPECT_EQ(ps.idle_time, 10_us);
    EXPECT_EQ(ps.dispatches, 2u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PhaseStatsStopTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread));
