#pragma once
// Shared test helper: records task state transitions and overhead charges so
// tests can assert exact schedules.

#include <sstream>
#include <string>
#include <vector>

#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::test {

struct Transition {
    kernel::Time at;
    std::string task;
    rtos::TaskState to;

    [[nodiscard]] std::string str() const {
        std::ostringstream os;
        os << at.to_string() << " " << task << "->" << rtos::to_string(to);
        return os.str();
    }
    bool operator==(const Transition&) const = default;
};

class RecordingObserver final : public rtos::TaskObserver {
public:
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override {
        if (from == to) return; // creation announcement
        log.push_back({task.processor().simulator().now(), task.name(), to});
    }

    void on_overhead(const rtos::Processor&, rtos::OverheadKind kind,
                     kernel::Time start, kernel::Time duration,
                     const rtos::Task* about) override {
        overheads.push_back({start, duration, kind, about ? about->name() : ""});
    }

    struct Overhead {
        kernel::Time start;
        kernel::Time duration;
        rtos::OverheadKind kind;
        std::string about;
    };

    /// Transitions of one task only.
    [[nodiscard]] std::vector<Transition> of(const std::string& task) const {
        std::vector<Transition> out;
        for (const auto& t : log)
            if (t.task == task) out.push_back(t);
        return out;
    }

    [[nodiscard]] std::vector<std::string> strings() const {
        std::vector<std::string> out;
        out.reserve(log.size());
        for (const auto& t : log) out.push_back(t.str());
        return out;
    }

    std::vector<Transition> log;
    std::vector<Overhead> overheads;
};

} // namespace rtsc::test
