// DVFS model tests: operating-point table validation, the pinned
// round-half-up scaling arithmetic, energy accounting (bit-exact
// conservation), the RT-DVS policies (Pillai & Shin) and the frequency-
// switch overhead — under both engines wherever the schedule could differ.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "rtos/dvfs.hpp"
#include "rtos/processor.hpp"
#include "recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
using rtsc::test::RecordingObserver;
using k::Time;
using namespace rtsc::kernel::time_literals;

// ------------------------------------------------------------------- model

TEST(DvfsModel, SortsFastestFirstAndBreaksTiesByVoltage) {
    r::DvfsModel m({{200'000, 900}, {300'000, 1000}, {200'000, 950}});
    ASSERT_EQ(m.levels(), 3u);
    EXPECT_EQ(m.point(0).freq_khz, 300'000u);
    EXPECT_EQ(m.point(1).volt_mv, 950u);
    EXPECT_EQ(m.point(2).volt_mv, 900u);
    EXPECT_EQ(m.f_max_khz(), 300'000u);
}

TEST(DvfsModel, RejectsEmptyZeroAndOutOfRangePoints) {
    EXPECT_THROW(r::DvfsModel{std::vector<r::OperatingPoint>{}},
                 k::SimulationError);
    EXPECT_THROW(r::DvfsModel({{0, 1000}}), k::SimulationError);
    EXPECT_THROW(r::DvfsModel({{1000, 0}}), k::SimulationError);
    EXPECT_THROW(r::DvfsModel({{100'000'001u, 1000}}), k::SimulationError);
    EXPECT_THROW(r::DvfsModel({{1000, 100'001u}}), k::SimulationError);
}

TEST(DvfsModel, ScaleRoundsHalfUpAtPicosecondGranularity) {
    // 1.5x stretch: exact halves round up — pinned, both engines and the
    // skip-ahead fast path must agree on these very picoseconds.
    r::DvfsModel m({{300'000, 1000}, {200'000, 900}});
    EXPECT_EQ(m.scale(Time::ps(1), 1), Time::ps(2));  // 1.5 -> 2
    EXPECT_EQ(m.scale(Time::ps(2), 1), Time::ps(3));  // 3.0 -> 3
    EXPECT_EQ(m.scale(Time::ps(3), 1), Time::ps(5));  // 4.5 -> 5
    EXPECT_EQ(m.scale(Time::zero(), 1), Time::zero());
    // Level 0 is the exact identity, whatever the value.
    EXPECT_EQ(m.scale(Time::ps(7), 0), Time::ps(7));
}

TEST(DvfsModel, ScaleSaturatesInsteadOfWrapping) {
    r::DvfsModel m({{2'000'000, 1000}, {1'000, 600}});
    const Time huge = Time::ps(~std::uint64_t{0} - 5);
    EXPECT_EQ(m.scale(huge, 1), Time::ps(~std::uint64_t{0}));
    EXPECT_EQ(m.scale(huge, 0), huge); // identity path does not saturate
}

TEST(DvfsModel, LevelForUtilizationPicksSlowestCoveringLevel) {
    r::DvfsModel m({{1'000'000, 1000}, {600'000, 800}, {200'000, 600}});
    EXPECT_EQ(m.level_for_utilization(1.0), 0u);
    EXPECT_EQ(m.level_for_utilization(0.7), 0u);  // 600 MHz < 0.7 f_max
    EXPECT_EQ(m.level_for_utilization(0.6), 1u);
    EXPECT_EQ(m.level_for_utilization(0.5), 1u);
    EXPECT_EQ(m.level_for_utilization(0.2), 2u);
    EXPECT_EQ(m.level_for_utilization(0.0), 2u);  // coast
    EXPECT_EQ(m.level_for_utilization(1.5), 0u);  // overload clamps to full
}

TEST(DvfsModel, PowerAndEnergyStringAreExact) {
    r::DvfsModel m({{1'000'000, 1000}, {600'000, 800}});
    EXPECT_EQ(m.power(0), 1'000'000'000'000ull);           // f * V^2
    EXPECT_EQ(m.power(1), 600'000ull * 800 * 800);
    EXPECT_EQ(r::energy_to_string(0), "0");
    EXPECT_EQ(r::energy_to_string(42), "42");
    // Beyond 64 bits: 2^64 = 18446744073709551616.
    const r::Energy big = static_cast<r::Energy>(~std::uint64_t{0}) + 1;
    EXPECT_EQ(r::energy_to_string(big), "18446744073709551616");
    EXPECT_DOUBLE_EQ(r::energy_to_joules(1'000'000'000'000'000ull), 1.0);
}

// ------------------------------------------------------------------ engine

class DvfsEngineTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(DvfsEngineTest, SingleFullSpeedPointIsBitIdenticalToNoModel) {
    // The no-regression guard: DVFS compiled in but inert must not move a
    // single transition or overhead by even a picosecond — only the energy
    // ledger starts counting.
    auto workload = [&](r::Processor& cpu, RecordingObserver& rec) {
        cpu.set_overheads(r::RtosOverheads::uniform(3_us));
        cpu.add_observer(rec);
        auto body = [](r::Task& self) { self.compute(40_us); };
        cpu.create_task({.name = "hi", .priority = 5, .start_time = 10_us}, body);
        cpu.create_task({.name = "lo", .priority = 1}, body);
    };
    std::vector<std::string> plain, dvfs;
    Time plain_end, dvfs_end;
    {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         GetParam());
        RecordingObserver rec;
        workload(cpu, rec);
        sim.run();
        plain = rec.strings();
        plain_end = sim.now();
        EXPECT_EQ(cpu.energy().total(), r::Energy{0});
    }
    {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         GetParam());
        RecordingObserver rec;
        workload(cpu, rec);
        cpu.set_dvfs(r::DvfsModel::single(800'000, 1100));
        sim.run();
        dvfs = rec.strings();
        dvfs_end = sim.now();
        // busy + overhead time at constant power, all attributed or booked.
        EXPECT_GT(cpu.energy().total(), r::Energy{0});
        r::Energy attributed = 0;
        for (const auto& t : cpu.tasks())
            attributed += t->energy_exec() + t->energy_overhead();
        EXPECT_EQ(cpu.energy().busy + cpu.energy().overhead,
                  attributed + cpu.energy().unattributed);
    }
    EXPECT_EQ(plain, dvfs);
    EXPECT_EQ(plain_end, dvfs_end);
}

TEST_P(DvfsEngineTest, CcEdfReclaimsSlackWithHandComputedEnergy) {
    // Pillai & Shin CC-EDF, fully hand-computed. Levels {1 GHz, 1.0 V},
    // {600 MHz, 0.8 V}, {200 MHz, 0.6 V}; A: WCET 600 us / period 1000 us,
    // B: WCET 400 us / period 1000 us. U_wc = 1.0, so A's job (actual work
    // 100 us) runs at full speed. At A's completion its utilization drops to
    // 100/1000 = 0.1, U = 0.5 -> level 1 (600 MHz). B's 200 us of nominal
    // work then stretches to round_half_up(200us * 10/6) = 333333333 ps.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::CcEdfPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel(
        {{1'000'000, 1000}, {600'000, 800}, {200'000, 600}}));
    auto& pol = dynamic_cast<r::CcEdfPolicy&>(cpu.policy());
    r::Task& a = cpu.create_task({.name = "A", .priority = 1},
                                 [](r::Task& self) { self.compute(100_us); });
    r::Task& b = cpu.create_task({.name = "B", .priority = 1, .start_time = 300_us},
                                 [](r::Task& self) { self.compute(200_us); });
    pol.declare_task(a, 600_us, 1000_us);
    pol.declare_task(b, 400_us, 1000_us);
    RecordingObserver rec;
    cpu.add_observer(rec);
    sim.run();

    EXPECT_EQ(sim.now(), Time::ps(633'333'333));
    EXPECT_EQ(cpu.dvfs_level(), 1u); // U = 0.3 at the end still needs 600 MHz
    // A: 100 us at 1 GHz / 1.0 V; B: 333333333 ps at 600 MHz / 0.8 V.
    const r::Energy ea = r::Energy(1'000'000) * 1000 * 1000 * 100'000'000;
    const r::Energy eb = r::Energy(600'000) * 800 * 800 * 333'333'333;
    EXPECT_EQ(a.energy_exec(), ea);
    EXPECT_EQ(b.energy_exec(), eb);
    EXPECT_EQ(a.energy_overhead(), r::Energy{0});
    EXPECT_EQ(b.energy_overhead(), r::Energy{0});
    // Conservation, bit-exact: zero overheads, so everything is busy energy.
    EXPECT_EQ(cpu.energy().busy, ea + eb);
    EXPECT_EQ(cpu.energy().overhead, r::Energy{0});
    EXPECT_EQ(cpu.energy().unattributed, r::Energy{0});
}

TEST_P(DvfsEngineTest, FrequencySwitchChargeIsUnscaledAndAttributed) {
    // Static EDF with U = 0.25 drops straight to the 100 MHz point on the
    // first pass; the configured 5 us switch latency is charged *unscaled*
    // (PLL relock is hardware time), booked to the task the pass is about,
    // and its energy accrues at the new operating point.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::StaticEdfPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel({{400'000, 1000}, {100'000, 500}}));
    r::RtosOverheads ov;
    ov.frequency_switch = r::OverheadModel(5_us);
    cpu.set_overheads(ov);
    auto& pol = dynamic_cast<r::StaticEdfPolicy&>(cpu.policy());
    r::Task& t = cpu.create_task({.name = "t", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    pol.declare_task(t, 10_us, 40_us);
    RecordingObserver rec;
    cpu.add_observer(rec);
    sim.run();

    EXPECT_EQ(cpu.dvfs_level(), 1u);
    // switch 0-5 us, then the 10 us compute stretched 4x: ends at 45 us.
    EXPECT_EQ(sim.now(), 45_us);
    std::vector<RecordingObserver::Overhead> switches;
    for (const auto& o : rec.overheads)
        if (o.kind == r::OverheadKind::frequency_switch) switches.push_back(o);
    ASSERT_EQ(switches.size(), 1u);
    EXPECT_EQ(switches[0].start, Time::zero());
    EXPECT_EQ(switches[0].duration, 5_us); // NOT stretched to 20 us
    EXPECT_EQ(switches[0].about, "t");
    const r::Energy p1 = r::Energy(100'000) * 500 * 500;
    EXPECT_EQ(t.energy_overhead(), p1 * 5'000'000);
    EXPECT_EQ(t.energy_exec(), p1 * 40'000'000);
    EXPECT_EQ(cpu.energy().busy, t.energy_exec());
    EXPECT_EQ(cpu.energy().overhead, t.energy_overhead());
    EXPECT_EQ(cpu.energy().unattributed, r::Energy{0});
}

TEST_P(DvfsEngineTest, LaEdfCoastsAtSlowestWhenNothingIsPending) {
    // Look-ahead EDF defers against deadlines; with no released job holding
    // a deadline the non-deferrable work s is zero and the policy coasts at
    // the slowest point.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::LaEdfPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel(
        {{1'000'000, 1000}, {500'000, 800}, {250'000, 700}}));
    auto& pol = dynamic_cast<r::LaEdfPolicy&>(cpu.policy());
    r::Task& t = cpu.create_task({.name = "t", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    pol.declare_task(t, 20_us, 100_us);
    sim.run();
    // No deadline was ever set on t, so every pass coasts; the compute runs
    // 4x stretched at 250 MHz.
    EXPECT_EQ(cpu.dvfs_level(), 2u);
    EXPECT_EQ(sim.now(), 40_us);
}

TEST_P(DvfsEngineTest, LaEdfRunsFullSpeedAtTheDeadline) {
    // A released job whose deadline has (just) arrived leaves no horizon to
    // defer into: the policy demands full speed.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::LaEdfPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel({{1'000'000, 1000}, {250'000, 700}}));
    auto& pol = dynamic_cast<r::LaEdfPolicy&>(cpu.policy());
    r::Task& t = cpu.create_task({.name = "t", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    t.set_absolute_deadline(Time::zero());
    pol.declare_task(t, 10_us, 100_us);
    sim.run();
    EXPECT_EQ(sim.now(), 10_us); // never left full speed while running
}

TEST_P(DvfsEngineTest, OutOfRangePolicyLevelIsAnEngineError) {
    struct BadPolicy : r::PriorityPreemptivePolicy {
        std::size_t dvfs_level(const r::Processor&, const r::Task*) override {
            return 99;
        }
    };
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<BadPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel({{400'000, 1000}, {100'000, 500}}));
    cpu.create_task({.name = "t", .priority = 1},
                    [](r::Task& self) { self.compute(1_us); });
    // The threaded engine raises the error on the RTOS thread and sim.run()
    // rethrows it; the procedural engine raises it on the task's own thread,
    // which unwinds and terminates the task before it ever ran.
    bool threw = false;
    try {
        sim.run();
    } catch (const k::SimulationError&) {
        threw = true;
    }
    if (!threw) {
        EXPECT_TRUE(cpu.tasks()[0]->terminated());
        EXPECT_EQ(cpu.tasks()[0]->stats().running_time, Time::zero());
    }
}

TEST_P(DvfsEngineTest, EnergyConservationHoldsUnderPreemptionAndOverheads) {
    // A busier scene: CC-RM, three tasks with staggered starts, preemption,
    // uniform overheads and a switch cost. The ledger identity
    //   busy + overhead == sum(task exec + ov) + unattributed
    // must hold bit-exactly whatever the interleaving.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::CcRmPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel(
        {{800'000, 1100}, {600'000, 900}, {400'000, 800}, {200'000, 700}}));
    r::RtosOverheads ov = r::RtosOverheads::uniform(1_us);
    ov.frequency_switch = r::OverheadModel(2_us);
    cpu.set_overheads(ov);
    auto& pol = dynamic_cast<r::CcRmPolicy&>(cpu.policy());
    auto body = [](r::Task& self) { self.compute(30_us); };
    r::Task& t1 = cpu.create_task({.name = "t1", .priority = 3}, body);
    r::Task& t2 = cpu.create_task({.name = "t2", .priority = 7, .start_time = 20_us}, body);
    r::Task& t3 = cpu.create_task({.name = "t3", .priority = 5, .start_time = 40_us}, body);
    pol.declare_task(t1, 40_us, 200_us);
    pol.declare_task(t2, 40_us, 100_us);
    pol.declare_task(t3, 40_us, 400_us);
    sim.run();

    r::Energy attributed = 0;
    for (const auto& t : cpu.tasks()) {
        EXPECT_GT(t->energy_exec(), r::Energy{0}) << t->name();
        attributed += t->energy_exec() + t->energy_overhead();
    }
    EXPECT_EQ(cpu.energy().busy + cpu.energy().overhead,
              attributed + cpu.energy().unattributed);
    EXPECT_GT(cpu.energy().overhead, r::Energy{0});
}

INSTANTIATE_TEST_SUITE_P(BothEngines, DvfsEngineTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread));
