// Scheduling-policy tests: FIFO, round-robin/time-sharing, EDF, user-defined
// (lambda and Processor-override), rate-monotonic assignment — under both
// engines where behaviour could differ.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using rtsc::test::Transition;
using k::Time;
using namespace rtsc::kernel::time_literals;

class PolicyTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(PolicyTest, FifoRunsInArrivalOrderWithoutPreemption) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::FifoPolicy>(), GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    // Higher priority arrives later: FIFO must ignore it.
    cpu.create_task({.name = "first", .priority = 1}, body);
    cpu.create_task({.name = "second", .priority = 9, .start_time = 2_us}, body);
    cpu.create_task({.name = "third", .priority = 5, .start_time = 4_us}, body);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"first", "second", "third"}));
    for (const auto& t : cpu.tasks()) EXPECT_EQ(t->stats().preemptions, 0u);
}

TEST_P(PolicyTest, RoundRobinRotatesOnQuantum) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::RoundRobinPolicy>(10_us), GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    auto body = [](r::Task& self) { self.compute(25_us); };
    cpu.create_task({.name = "A", .priority = 0}, body);
    cpu.create_task({.name = "B", .priority = 0}, body);
    sim.run();

    // Zero overhead: A 0-10, B 10-20, A 20-30, B 30-40, A 40-45, B 45-55.
    const auto a = rec.of("A");
    std::vector<Time> a_run_starts;
    for (const auto& t : a)
        if (t.to == r::TaskState::running) a_run_starts.push_back(t.at);
    EXPECT_EQ(a_run_starts, (std::vector<Time>{0_us, 20_us, 40_us}));
    EXPECT_EQ(a.back(), (Transition{45_us, "A", r::TaskState::terminated}));
    const auto b = rec.of("B");
    EXPECT_EQ(b.back(), (Transition{50_us, "B", r::TaskState::terminated}));
    // Each task got sliced twice.
    EXPECT_EQ(cpu.tasks()[0]->stats().preemptions, 2u);
    EXPECT_EQ(cpu.tasks()[1]->stats().preemptions, 2u);
}

TEST_P(PolicyTest, RoundRobinAloneDoesNotRotate) {
    // A single runnable task must not pay any rotation overhead when its
    // quantum expires with an empty ready queue.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::RoundRobinPolicy>(10_us), GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    cpu.create_task({.name = "solo", .priority = 0},
                    [](r::Task& self) { self.compute(35_us); });
    sim.run();
    // sched 0-5, load 5-10, run 10-45 uninterrupted, save 45-50, sched 50-55.
    EXPECT_EQ(sim.now(), 55_us);
    EXPECT_EQ(cpu.tasks()[0]->stats().preemptions, 0u);
    EXPECT_EQ(cpu.tasks()[0]->stats().running_time, 35_us);
}

TEST_P(PolicyTest, RoundRobinQuantumWithOverheads) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::RoundRobinPolicy>(10_us), GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(1_us));
    RecordingObserver rec;
    cpu.add_observer(rec);
    auto body = [](r::Task& self) { self.compute(20_us); };
    cpu.create_task({.name = "A", .priority = 0}, body);
    cpu.create_task({.name = "B", .priority = 0}, body);
    sim.run();
    // A: sched 0-1, load 1-2, run 2-12 (quantum), save 12-13, sched 13-14,
    // B: load 14-15, run 15-25, ... rotation gaps of 3us each.
    const auto a = rec.of("A");
    ASSERT_GE(a.size(), 4u);
    EXPECT_EQ(a[1], (Transition{2_us, "A", r::TaskState::running}));
    EXPECT_EQ(a[2], (Transition{12_us, "A", r::TaskState::ready}));
    const auto b = rec.of("B");
    EXPECT_EQ(b[1], (Transition{15_us, "B", r::TaskState::running}));
}

TEST_P(PolicyTest, EdfPrefersEarliestDeadline) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::EdfPolicy>(), GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    auto& t1 = cpu.create_task({.name = "far", .priority = 0}, body);
    auto& t2 = cpu.create_task({.name = "near", .priority = 0}, body);
    auto& t3 = cpu.create_task({.name = "mid", .priority = 0}, body);
    t1.set_absolute_deadline(300_us);
    t2.set_absolute_deadline(100_us);
    t3.set_absolute_deadline(200_us);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"near", "mid", "far"}));
}

TEST_P(PolicyTest, EdfPreemptsOnEarlierDeadlineArrival) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::EdfPolicy>(), GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    auto& slow = cpu.create_task({.name = "slow", .priority = 0},
                                 [](r::Task& self) { self.compute(100_us); });
    slow.set_absolute_deadline(1000_us);
    auto& urgent = cpu.create_task(
        {.name = "urgent", .priority = 0, .start_time = 40_us},
        [](r::Task& self) { self.compute(10_us); });
    urgent.set_absolute_deadline(60_us);
    sim.run();
    const auto u = rec.of("urgent");
    EXPECT_EQ(u[1], (Transition{40_us, "urgent", r::TaskState::running}));
    EXPECT_EQ(u[2], (Transition{50_us, "urgent", r::TaskState::terminated}));
    EXPECT_EQ(slow.stats().preemptions, 1u);
    // All 100us of slow still execute.
    EXPECT_EQ(slow.stats().running_time, 100_us);
}

TEST_P(PolicyTest, EdfTaskWithoutDeadlineRanksLast) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::EdfPolicy>(), GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(5_us);
    };
    cpu.create_task({.name = "background", .priority = 0}, body);
    auto& rt = cpu.create_task({.name = "rt", .priority = 0}, body);
    rt.set_absolute_deadline(50_us);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"rt", "background"}));
}

TEST_P(PolicyTest, LambdaPolicyImplementsCustomRule) {
    // Shortest-job-first by a user lambda reading per-task deadline fields as
    // "remaining work" stand-ins.
    k::Simulator sim;
    auto select = [](const r::ReadyQueue& q) -> r::Task* {
        r::Task* best = nullptr;
        for (r::Task* t : q)
            if (best == nullptr || t->absolute_deadline() < best->absolute_deadline())
                best = t;
        return best;
    };
    auto preempt = [](const r::Task&, const r::Task&) { return false; };
    r::Processor cpu("cpu",
                     std::make_unique<r::LambdaPolicy>("sjf", select, preempt),
                     GetParam());
    EXPECT_EQ(cpu.policy().name(), "sjf");
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(5_us);
    };
    auto& big = cpu.create_task({.name = "big", .priority = 0}, body);
    auto& small = cpu.create_task({.name = "small", .priority = 0}, body);
    big.set_absolute_deadline(500_us);
    small.set_absolute_deadline(5_us);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"small", "big"}));
}

namespace {
/// The paper's extension idiom: override Processor::scheduling_policy.
class LowestPriorityFirstProcessor final : public r::Processor {
public:
    using r::Processor::Processor;
    [[nodiscard]] r::Task* scheduling_policy(const r::ReadyQueue& q) const override {
        r::Task* best = nullptr;
        for (r::Task* t : q)
            if (best == nullptr || t->effective_priority() < best->effective_priority())
                best = t;
        return best;
    }
    [[nodiscard]] bool should_preempt(const r::Task&, const r::Task&) const override {
        return false;
    }
};
} // namespace

TEST_P(PolicyTest, ProcessorOverrideDefinesOwnPolicy) {
    k::Simulator sim;
    LowestPriorityFirstProcessor cpu(
        "cpu", std::make_unique<r::PriorityPreemptivePolicy>(), GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(5_us);
    };
    cpu.create_task({.name = "p9", .priority = 9}, body);
    cpu.create_task({.name = "p1", .priority = 1}, body);
    cpu.create_task({.name = "p5", .priority = 5}, body);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"p1", "p5", "p9"}));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, PolicyTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });

TEST(RateMonotonicTest, ShorterPeriodGetsHigherPriority) {
    const std::vector<Time> periods{100_us, 20_us, 50_us};
    const auto prio = rtsc::rtos::rate_monotonic_priorities(periods);
    ASSERT_EQ(prio.size(), 3u);
    EXPECT_LT(prio[0], prio[2]);
    EXPECT_LT(prio[2], prio[1]);
}

TEST(RateMonotonicTest, EqualPeriodsShareRank) {
    const std::vector<Time> periods{40_us, 40_us, 10_us};
    const auto prio = rtsc::rtos::rate_monotonic_priorities(periods);
    EXPECT_EQ(prio[0], prio[1]);
    EXPECT_GT(prio[2], prio[0]);
}

TEST(RateMonotonicTest, EmptyAndSingle) {
    EXPECT_TRUE(rtsc::rtos::rate_monotonic_priorities({}).empty());
    const auto one = rtsc::rtos::rate_monotonic_priorities({Time::us(7)});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 1);
}

// ---- pinned dispatch-order contract --------------------------------------
// These tests freeze the priority + FIFO-tie-break semantics the ready queue
// must preserve however it is maintained (scanned or kept incrementally
// ordered): strict priority first, FIFO within one level, preempted tasks
// resuming before equal-priority later arrivals, and priority/deadline
// changes of Ready tasks taking effect at the next decision.

TEST_P(PolicyTest, PriorityFifoTieBreakWithinLevel) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    // Three equal-priority tasks in arrival order, one urgent later arrival.
    cpu.create_task({.name = "eq1", .priority = 4}, body);
    cpu.create_task({.name = "eq2", .priority = 4, .start_time = 1_us}, body);
    cpu.create_task({.name = "eq3", .priority = 4, .start_time = 2_us}, body);
    cpu.create_task({.name = "hi", .priority = 8, .start_time = 3_us}, body);
    sim.run();
    // hi preempts eq1 at 3us; eq1 then resumes before its equal-priority
    // peers; eq2/eq3 keep FIFO order.
    EXPECT_EQ(order, (std::vector<std::string>{"eq1", "hi", "eq2", "eq3"}));
}

TEST_P(PolicyTest, PreemptedResumesBeforeEqualPriorityArrivals) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    RecordingObserver rec;
    cpu.add_observer(rec);
    std::vector<std::string> order;
    auto log = [&](r::Task& self) { order.push_back(self.name()); };
    cpu.create_task({.name = "victim", .priority = 5}, [&](r::Task& self) {
        log(self);
        self.compute(50_us);
    });
    cpu.create_task({.name = "intruder", .priority = 9, .start_time = 10_us},
                    [&](r::Task& self) {
                        log(self);
                        self.compute(20_us);
                    });
    // Same priority as victim, becomes ready while victim sits preempted.
    cpu.create_task({.name = "peer", .priority = 5, .start_time = 20_us},
                    [&](r::Task& self) {
                        log(self);
                        self.compute(10_us);
                    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"victim", "intruder", "peer"}));
    // The preempted victim got the CPU back before the equally-ranked peer:
    // peer only starts after victim's remaining 40us (at 30+40=70us).
    const auto p = rec.of("peer");
    EXPECT_EQ(p[1], (Transition{70_us, "peer", r::TaskState::running}));
}

TEST_P(PolicyTest, RaisingReadyTaskPriorityReordersNextDecision) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    cpu.create_task({.name = "runner", .priority = 9}, [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(30_us);
    });
    cpu.create_task({.name = "a", .priority = 3, .start_time = 1_us}, body);
    auto& b = cpu.create_task({.name = "b", .priority = 2, .start_time = 2_us}, body);
    sim.spawn("controller", [&] {
        k::wait(5_us);
        b.set_base_priority(5); // b is Ready: must now beat a
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"runner", "b", "a"}));
}

TEST_P(PolicyTest, EdfDeadlineChangeOfReadyTaskReordersNextDecision) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::EdfPolicy>(), GetParam());
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    auto& runner = cpu.create_task({.name = "runner", .priority = 0},
                                   [&](r::Task& self) {
                                       order.push_back(self.name());
                                       self.compute(30_us);
                                   });
    runner.set_absolute_deadline(35_us);
    auto& a = cpu.create_task({.name = "a", .priority = 0, .start_time = 1_us}, body);
    a.set_absolute_deadline(200_us);
    auto& b = cpu.create_task({.name = "b", .priority = 0, .start_time = 2_us}, body);
    b.set_absolute_deadline(300_us);
    sim.spawn("controller", [&] {
        k::wait(5_us);
        b.set_absolute_deadline(100_us); // b is Ready: now earlier than a
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"runner", "b", "a"}));
}

TEST_P(PolicyTest, EqualPrioritySingleJobsNoPreemptionAmongPeers) {
    // FIFO within a level also means no preemption among equals.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    auto body = [](r::Task& self) { self.compute(10_us); };
    auto& t1 = cpu.create_task({.name = "p1", .priority = 4}, body);
    auto& t2 = cpu.create_task({.name = "p2", .priority = 4, .start_time = 3_us}, body);
    sim.run();
    EXPECT_EQ(t1.stats().preemptions, 0u);
    EXPECT_EQ(t2.stats().preemptions, 0u);
}
