// Task public-API tests: identity, priorities (base / inherited /
// effective), EDF deadline fields, stats_at folding, sleep_until semantics
// and error paths.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(TaskApiTest, IdentityAndDefaults) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    auto& t = cpu.create_task({.name = "worker", .priority = 7},
                              [](r::Task& self) { self.compute(1_us); });
    EXPECT_EQ(t.name(), "worker");
    EXPECT_EQ(&t.processor(), &cpu);
    EXPECT_EQ(t.base_priority(), 7);
    EXPECT_EQ(t.effective_priority(), 7);
    EXPECT_FALSE(t.has_deadline());
    EXPECT_EQ(t.state(), r::TaskState::created);
    sim.run();
    EXPECT_TRUE(t.terminated());
}

TEST(TaskApiTest, AutoNamingWhenEmpty) {
    k::Simulator sim;
    r::Processor cpu("cpu0");
    auto& t0 = cpu.create_task({.priority = 1}, [](r::Task&) {});
    auto& t1 = cpu.create_task({.priority = 1}, [](r::Task&) {});
    EXPECT_EQ(t0.name(), "cpu0.task0");
    EXPECT_EQ(t1.name(), "cpu0.task1");
}

TEST(TaskApiTest, InheritedPriorityOverridesBase) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    auto& t = cpu.create_task({.name = "t", .priority = 2},
                              [](r::Task& self) { self.compute(1_us); });
    t.inherit_priority(9);
    EXPECT_EQ(t.effective_priority(), 9);
    EXPECT_EQ(t.base_priority(), 2); // base untouched
    t.restore_base_priority();
    EXPECT_EQ(t.effective_priority(), 2);
}

TEST(TaskApiTest, DeadlineFieldRoundTrip) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    auto& t = cpu.create_task({.name = "t", .priority = 1}, [](r::Task&) {});
    t.set_absolute_deadline(123_us);
    EXPECT_TRUE(t.has_deadline());
    EXPECT_EQ(t.absolute_deadline(), 123_us);
    t.clear_deadline();
    EXPECT_FALSE(t.has_deadline());
}

TEST(TaskApiTest, StatsAtFoldsOpenEpisode) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.create_task({.name = "t", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.run_until(40_us); // mid-compute
    const r::Task& t = *cpu.tasks()[0];
    // Closed accumulators only reflect finished episodes...
    EXPECT_EQ(t.stats().running_time, Time::zero());
    // ...stats_at folds the in-progress Running span.
    EXPECT_EQ(t.stats_at(40_us).running_time, 40_us);
    sim.run();
    EXPECT_EQ(t.stats().running_time, 100_us);
}

TEST(TaskApiTest, SleepUntilPastInstantDoesNotBlock) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    Time after;
    cpu.create_task({.name = "t", .priority = 1}, [&](r::Task& self) {
        self.compute(50_us);
        self.sleep_until(20_us); // already past: must not block backwards
        after = sim.now();
        self.compute(10_us);
    });
    sim.run();
    EXPECT_EQ(after, 50_us);
    EXPECT_EQ(sim.now(), 60_us);
}

TEST(TaskApiTest, DelayIsComputeAlias) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.create_task({.name = "t", .priority = 1},
                    [](r::Task& self) { self.delay(25_us); });
    sim.run();
    EXPECT_EQ(cpu.tasks()[0]->stats().running_time, 25_us);
    EXPECT_EQ(sim.now(), 25_us);
}

TEST(TaskApiTest, MakeReadyOnTerminatedTaskIsAnError) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    auto& t = cpu.create_task({.name = "t", .priority = 1}, [](r::Task&) {});
    sim.run();
    ASSERT_TRUE(t.terminated());
    EXPECT_THROW(cpu.engine().make_ready(t), k::SimulationError);
}

TEST(TaskApiTest, ProcessorRequiresPolicy) {
    k::Simulator sim;
    EXPECT_THROW(r::Processor("bad", nullptr), k::SimulationError);
}

TEST(TaskApiTest, PreemptionLockUnderflowDetected) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    EXPECT_THROW(cpu.unlock_preemption(), k::SimulationError);
}
