// InterruptLine tests: HW -> ISR wiring, exact-time preemption, burst
// handling via the counter event, and latency statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "rtos/interrupt.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
using k::Time;
using namespace rtsc::kernel::time_literals;

class InterruptTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(InterruptTest, IsrRunsOncePerRaise) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("timer");
    int handled = 0;
    line.attach_isr(cpu, 9, [&](r::Task&) { ++handled; }, 5_us);
    sim.spawn("hw", [&] {
        for (int i = 0; i < 4; ++i) {
            k::wait(50_us);
            line.raise();
        }
    });
    sim.run();
    EXPECT_EQ(handled, 4);
    EXPECT_EQ(line.raised(), 4u);
    EXPECT_EQ(line.serviced(), 4u);
}

TEST_P(InterruptTest, LatencyOnIdleCpuIsZeroWithZeroOverheads) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("irq");
    line.attach_isr(cpu, 9, {}, 1_us);
    sim.spawn("hw", [&] {
        k::wait(100_us);
        line.raise();
    });
    sim.run();
    EXPECT_EQ(line.max_latency(), Time::zero());
    EXPECT_EQ(line.min_latency(), Time::zero());
}

TEST_P(InterruptTest, LatencyReflectsRtosOverheads) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    r::InterruptLine line("irq");
    line.attach_isr(cpu, 9, {}, 1_us);
    cpu.create_task({.name = "bg", .priority = 1},
                    [](r::Task& self) { self.compute(1_ms); });
    sim.spawn("hw", [&] {
        k::wait(100_us);
        line.raise();
    });
    sim.run_until(500_us);
    // Preempting the background task costs save+sched+load = 15us.
    EXPECT_EQ(line.max_latency(), 15_us);
    EXPECT_NEAR(line.average_latency_us(), 15.0, 1e-9);
}

TEST_P(InterruptTest, BurstsAreNotLost) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("irq");
    line.attach_isr(cpu, 9, {}, 10_us);
    sim.spawn("hw", [&] {
        k::wait(20_us);
        line.raise();
        line.raise();
        line.raise(); // burst of 3 while the ISR handles the first
    });
    sim.run();
    EXPECT_EQ(line.serviced(), 3u);
    // Third interrupt waits for two 10us handler executions.
    EXPECT_EQ(line.max_latency(), 20_us);
}

TEST_P(InterruptTest, LatencyGrowsUnderPreemptionLock) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("irq");
    line.attach_isr(cpu, 9, {}, 1_us);
    cpu.create_task({.name = "critical", .priority = 1}, [&](r::Task& self) {
        r::Processor::PreemptionGuard guard(cpu);
        self.compute(300_us); // irq at 100 must wait until 300
    });
    sim.run_until(400_us);
    EXPECT_EQ(line.max_latency(), Time::zero()); // not raised yet? see below
    // Raise during the critical region:
    k::Simulator sim2;
    r::Processor cpu2("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    r::InterruptLine line2("irq");
    line2.attach_isr(cpu2, 9, {}, 1_us);
    cpu2.create_task({.name = "critical", .priority = 1}, [&](r::Task& self) {
        r::Processor::PreemptionGuard guard(cpu2);
        self.compute(300_us);
    });
    sim2.spawn("hw", [&] {
        k::wait(100_us);
        line2.raise();
    });
    sim2.run_until(400_us);
    EXPECT_EQ(line2.max_latency(), 200_us); // served when the region ends
}

TEST_P(InterruptTest, BoundedPendingDropsOverflowRaises) {
    // set_max_pending(2): a burst of 5 raises against a busy CPU keeps only
    // the first two occurrences; the other three are counted in dropped(),
    // not serviced late.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("irq");
    line.set_max_pending(2);
    EXPECT_EQ(line.max_pending(), 2u);
    int handled = 0;
    line.attach_isr(cpu, 9, [&](r::Task&) { ++handled; }, 10_us);
    cpu.create_task({.name = "hog", .priority = 1},
                    [](r::Task& self) { self.compute(50_us); });
    // The ISR outranks the hog, but a preemption-locked region keeps it off
    // the CPU while the burst arrives.
    sim.spawn("hw", [&] {
        cpu.lock_preemption();
        k::wait(10_us);
        for (int i = 0; i < 5; ++i) line.raise();
        k::wait(5_us);
        cpu.unlock_preemption();
    });
    sim.run();

    EXPECT_EQ(line.raised(), 5u);
    EXPECT_EQ(line.dropped(), 3u);
    EXPECT_EQ(line.serviced(), 2u);
    EXPECT_EQ(handled, 2);
}

TEST_P(InterruptTest, UnboundedByDefaultKeepsWholeBurst) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    r::InterruptLine line("irq");
    int handled = 0;
    line.attach_isr(cpu, 9, [&](r::Task&) { ++handled; }, 10_us);
    cpu.create_task({.name = "hog", .priority = 1},
                    [](r::Task& self) { self.compute(50_us); });
    sim.spawn("hw", [&] {
        cpu.lock_preemption();
        k::wait(10_us);
        for (int i = 0; i < 5; ++i) line.raise();
        k::wait(5_us);
        cpu.unlock_preemption();
    });
    sim.run();

    EXPECT_EQ(line.raised(), 5u);
    EXPECT_EQ(line.dropped(), 0u);
    EXPECT_EQ(line.serviced(), 5u);
    EXPECT_EQ(handled, 5);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, InterruptTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
