// Quantum rotation, EDF tie-breaks and deadline-less ordering, pinned as
// exact schedules AND as engine-equivalence properties: the threaded (§4.1)
// and procedural (§4.2) engines must produce identical transition logs for
// every scenario here.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "rtos/policy.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

#include "../rtos/recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
using k::Time;
using rtsc::test::RecordingObserver;
using namespace rtsc::kernel::time_literals;

namespace {

struct Scenario {
    std::function<std::unique_ptr<r::SchedulingPolicy>()> policy;
    std::function<void(r::Processor&)> build; ///< create tasks on the cpu
};

std::vector<std::string> run_scenario(const Scenario& s, r::EngineKind kind,
                                      bool skip_ahead) {
    k::Simulator sim;
    sim.set_skip_ahead(skip_ahead);
    r::Processor cpu("cpu", s.policy(), kind);
    RecordingObserver rec;
    cpu.add_observer(rec);
    s.build(cpu);
    sim.run();
    return rec.strings();
}

/// Run on both engines, each with the skip-ahead fast path force-enabled
/// and force-disabled; all four transition logs must match exactly
/// (skip-ahead is a speed toggle, never an ordering one). Returns the
/// common log.
std::vector<std::string> run_both(const Scenario& s) {
    auto proc = run_scenario(s, r::EngineKind::procedure_calls, true);
    for (const bool skip : {true, false}) {
        auto thrd = run_scenario(s, r::EngineKind::rtos_thread, skip);
        EXPECT_EQ(proc, thrd)
            << "engines diverged (skip_ahead=" << skip << ")";
    }
    auto proc_slow = run_scenario(s, r::EngineKind::procedure_calls, false);
    EXPECT_EQ(proc, proc_slow) << "skip-ahead changed the procedural log";
    return proc;
}

} // namespace

TEST(RotationEquivalence, QuantumExpiryRotatesToBackOfQueue) {
    // Three equal tasks, quantum 10us, 25us of work each: strict A B C
    // rotation, remainders finish in rotation order.
    Scenario s{
        [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
        [](r::Processor& cpu) {
            for (const char* name : {"A", "B", "C"})
                cpu.create_task({.name = name, .priority = 1},
                                [](r::Task& self) { self.compute(25_us); });
        }};
    const auto log = run_both(s);
    // Extract the dispatch order (transitions to Running).
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos)
            running.push_back(row);
    const std::vector<std::string> want{
        "0 s A->running",      "10 us B->running", "20 us C->running",
        "30 us A->running",    "40 us B->running", "50 us C->running",
        "60 us A->running",    "65 us B->running", "70 us C->running",
    };
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, LoneTaskQuantumExpiryDoesNotRotate) {
    // With an empty ready queue the slice re-arms in place: no spurious
    // Ready->running churn, no extra preemption counted.
    Scenario s{
        [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
        [](r::Processor& cpu) {
            cpu.create_task({.name = "solo", .priority = 1},
                            [](r::Task& self) { self.compute(35_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    EXPECT_EQ(running, std::vector<std::string>{"0 s solo->running"});
}

TEST(RotationEquivalence, SliceExpiryTiesWithArrivalDeterministically) {
    // B arrives exactly when A's quantum expires: the rotation and the
    // arrival race at one instant. Both engines resolve it the same way —
    // the slice event is handled first, the ready queue is still empty at
    // that point, so the quantum re-arms in place and A keeps the CPU; B's
    // same-instant arrival then queues behind it (equal priority never
    // preempts under round-robin). Pin that exact resolution.
    Scenario s{
        [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
        [](r::Processor& cpu) {
            cpu.create_task({.name = "A", .priority = 1},
                            [](r::Task& self) { self.compute(15_us); });
            cpu.create_task({.name = "B", .priority = 1, .start_time = 10_us},
                            [](r::Task& self) { self.compute(5_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{"0 s A->running", "15 us B->running"};
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, RoundRobinSkipsRotationForBlockedLeaver) {
    // A blocks (sleep) mid-quantum: that is a leave, not a rotation; B and C
    // proceed FIFO and A rejoins at the back on wake-up.
    Scenario s{
        [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
        [](r::Processor& cpu) {
            cpu.create_task({.name = "A", .priority = 1}, [](r::Task& self) {
                self.compute(4_us);
                self.sleep_for(2_us);
                self.compute(4_us);
            });
            cpu.create_task({.name = "B", .priority = 1},
                            [](r::Task& self) { self.compute(8_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{
        "0 s A->running",    // A runs 4us, sleeps
        "4 us B->running",   // B takes over, quantum expires at 14us
        "12 us A->running",  // wait: pinned by equivalence, see below
    };
    // Don't over-constrain: just require both engines agree (checked in
    // run_both) and A's second leg starts after its sleep ends.
    ASSERT_GE(running.size(), 3u);
    EXPECT_EQ(running[0], want[0]);
    EXPECT_EQ(running[1], want[1]);
}

TEST(RotationEquivalence, EdfEqualDeadlinesRunFifo) {
    // Equal absolute deadlines: FIFO by readiness order, and an equal
    // deadline must NOT preempt.
    Scenario s{
        [] { return std::make_unique<r::EdfPolicy>(); },
        [](r::Processor& cpu) {
            auto& a = cpu.create_task({.name = "A", .priority = 1},
                                      [](r::Task& self) { self.compute(10_us); });
            a.set_absolute_deadline(100_us);
            auto& b =
                cpu.create_task({.name = "B", .priority = 1, .start_time = 2_us},
                                [](r::Task& self) { self.compute(10_us); });
            b.set_absolute_deadline(100_us);
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{"0 s A->running", "10 us B->running"};
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, EdfDeadlineBeatsDeadlineLess) {
    // A deadline-less task ranks last: a later-arriving task WITH a deadline
    // preempts it; a deadline-less candidate never preempts anyone.
    Scenario s{
        [] { return std::make_unique<r::EdfPolicy>(); },
        [](r::Processor& cpu) {
            cpu.create_task({.name = "bg", .priority = 1},
                            [](r::Task& self) { self.compute(20_us); });
            // Deadline set on the handle so it is visible at arrival time
            // (a deadline set inside the body only exists once dispatched).
            auto& rt =
                cpu.create_task({.name = "rt", .priority = 1, .start_time = 5_us},
                                [](r::Task& self) { self.compute(4_us); });
            rt.set_absolute_deadline(12_us);
            cpu.create_task({.name = "bg2", .priority = 1, .start_time = 6_us},
                            [](r::Task& self) { self.compute(3_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{
        "0 s bg->running",    // deadline-less starts alone
        "5 us rt->running",   // deadline task preempts it
        "9 us bg->running",   // preempted task resumes before bg2 (FIFO rank)
        "24 us bg2->running", // second deadline-less last
    };
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, EdfDeadlineLessAreFifoAmongThemselves) {
    Scenario s{
        [] { return std::make_unique<r::EdfPolicy>(); },
        [](r::Processor& cpu) {
            for (const char* name : {"x", "y", "z"})
                cpu.create_task({.name = name, .priority = 1},
                                [](r::Task& self) { self.compute(5_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{"0 s x->running", "5 us y->running",
                                        "10 us z->running"};
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, PriorityTieBreakIsFifoWithinLevel) {
    // PriorityPreemptive: equal priorities run FIFO; a preempted task
    // resumes before later equal-priority arrivals.
    Scenario s{
        [] { return std::make_unique<r::PriorityPreemptivePolicy>(); },
        [](r::Processor& cpu) {
            cpu.create_task({.name = "low1", .priority = 2},
                            [](r::Task& self) { self.compute(10_us); });
            cpu.create_task({.name = "low2", .priority = 2, .start_time = 1_us},
                            [](r::Task& self) { self.compute(10_us); });
            cpu.create_task({.name = "hi", .priority = 5, .start_time = 3_us},
                            [](r::Task& self) { self.compute(2_us); });
        }};
    const auto log = run_both(s);
    std::vector<std::string> running;
    for (const auto& row : log)
        if (row.find("->running") != std::string::npos) running.push_back(row);
    const std::vector<std::string> want{
        "0 s low1->running", // started first
        "3 us hi->running",  // preempts low1
        "5 us low1->running", // preempted resumes before low2
        "12 us low2->running",// low1 had 7 us of work left
    };
    EXPECT_EQ(running, want);
}

TEST(RotationEquivalence, RotationUnderOverheadsStaysEquivalent) {
    // Non-zero scheduling/context overheads shift every rotation point;
    // both engines must still agree on the full transition log.
    Scenario s{
        [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
        [](r::Processor& cpu) {
            cpu.set_overheads({.scheduling = r::OverheadModel(500_ns),
                               .context_load = r::OverheadModel(200_ns),
                               .context_save = r::OverheadModel(200_ns)});
            for (const char* name : {"A", "B", "C"})
                cpu.create_task({.name = name, .priority = 1},
                                [](r::Task& self) { self.compute(23_us); });
        }};
    const auto log = run_both(s); // the equality IS the assertion
    EXPECT_FALSE(log.empty());
}
