// Multi-processor scenarios: independent RTOS instances co-simulated in one
// kernel, cross-processor communication, mixed engines and policies, dynamic
// priority changes, and the SoC-style HW/SW partitioning of the paper's §6
// ("SoC composed of several processors and FPGA").
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "rtos/processor.hpp"
#include "recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(MultiProcessorTest, ProcessorsRunTrulyInParallel) {
    k::Simulator sim;
    r::Processor cpu1("cpu1");
    r::Processor cpu2("cpu2");
    Time end1, end2;
    cpu1.create_task({.name = "a", .priority = 1}, [&](r::Task& self) {
        self.compute(100_us);
        end1 = sim.now();
    });
    cpu2.create_task({.name = "b", .priority = 1}, [&](r::Task& self) {
        self.compute(100_us);
        end2 = sim.now();
    });
    sim.run();
    // No serialization across processors: both finish at 100us.
    EXPECT_EQ(end1, 100_us);
    EXPECT_EQ(end2, 100_us);
}

TEST(MultiProcessorTest, SameProcessorSerializes) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    Time end1, end2;
    cpu.create_task({.name = "a", .priority = 1}, [&](r::Task& self) {
        self.compute(100_us);
        end1 = sim.now();
    });
    cpu.create_task({.name = "b", .priority = 1}, [&](r::Task& self) {
        self.compute(100_us);
        end2 = sim.now();
    });
    sim.run();
    EXPECT_EQ(end1, 100_us);
    EXPECT_EQ(end2, 200_us);
}

TEST(MultiProcessorTest, CrossProcessorSignalPreemptsRemotely) {
    // A task on cpu1 signalling an event preempts the running task on cpu2
    // at the exact signal instant — the signal acts like an inter-processor
    // interrupt; the signalling CPU pays no overhead for the remote wake.
    k::Simulator sim;
    r::Processor cpu1("cpu1");
    r::Processor cpu2("cpu2");
    cpu2.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu2.add_observer(rec);
    m::Event ev("ipi", m::EventPolicy::counter);

    Time sender_done;
    cpu1.create_task({.name = "sender", .priority = 1}, [&](r::Task& self) {
        self.compute(30_us);
        ev.signal();
        self.compute(10_us);
        sender_done = sim.now();
    });
    cpu2.create_task({.name = "handler", .priority = 9}, [&](r::Task& self) {
        ev.await();
        self.compute(20_us);
    });
    cpu2.create_task({.name = "victim", .priority = 1},
                     [](r::Task& self) { self.compute(200_us); });
    sim.run();

    const auto victim = rec.of("victim");
    // victim starts after handler's block: 5(sched)+5(load) + handler block
    // overheads... handler runs first (prio 9): sched 0-5, load 5-10, awaits
    // at 10; save+sched 10-20, victim load 20-25, runs at 25. Signal at 30
    // preempts it at exactly 30.
    ASSERT_GE(victim.size(), 3u);
    EXPECT_EQ(victim[1].at, 25_us);
    EXPECT_EQ(victim[2], (rtsc::test::Transition{30_us, "victim",
                                                 r::TaskState::ready}));
    // The sender is unaffected by cpu2's overheads: finishes at 40.
    EXPECT_EQ(sender_done, 40_us);
}

TEST(MultiProcessorTest, MixedEnginesInteroperate) {
    // One processor per engine kind, communicating through a queue: the
    // engines must interoperate within a single simulation.
    k::Simulator sim;
    r::Processor proc_cpu("proc_cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                          r::EngineKind::procedure_calls);
    r::Processor thrd_cpu("thrd_cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                          r::EngineKind::rtos_thread);
    m::MessageQueue<int> q("q", 2);
    std::vector<int> got;
    proc_cpu.create_task({.name = "producer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 5; ++i) {
            self.compute(10_us);
            q.write(i);
        }
    });
    thrd_cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 5; ++i) {
            got.push_back(q.read());
            self.compute(5_us);
        }
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MultiProcessorTest, MixedPoliciesPerProcessor) {
    k::Simulator sim;
    r::Processor rr_cpu("rr_cpu", std::make_unique<r::RoundRobinPolicy>(10_us));
    r::Processor prio_cpu("prio_cpu");
    std::vector<std::string> rr_order;
    auto rr_body = [&](r::Task& self) {
        rr_order.push_back(self.name());
        self.compute(15_us);
    };
    rr_cpu.create_task({.name = "r1", .priority = 0}, rr_body);
    rr_cpu.create_task({.name = "r2", .priority = 0}, rr_body);
    Time high_done;
    prio_cpu.create_task({.name = "low", .priority = 1},
                         [](r::Task& self) { self.compute(100_us); });
    prio_cpu.create_task({.name = "high", .priority = 5, .start_time = 20_us},
                         [&](r::Task& self) {
                             self.compute(10_us);
                             high_done = sim.now();
                         });
    sim.run();
    EXPECT_EQ(rr_order, (std::vector<std::string>{"r1", "r2"}));
    EXPECT_EQ(high_done, 30_us); // preempted low on its own processor
}

TEST(MultiProcessorTest, PipelineAcrossThreeProcessors) {
    k::Simulator sim;
    r::Processor stage1("stage1"), stage2("stage2"), stage3("stage3");
    for (auto* cpu : {&stage1, &stage2, &stage3})
        cpu->set_overheads(r::RtosOverheads::uniform(1_us));
    m::MessageQueue<int> q12("q12", 1), q23("q23", 1);
    std::vector<Time> out_times;
    stage1.create_task({.name = "s1", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 4; ++i) {
            self.compute(10_us);
            q12.write(i);
        }
    });
    stage2.create_task({.name = "s2", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 4; ++i) {
            const int v = q12.read();
            self.compute(10_us);
            q23.write(v);
        }
    });
    stage3.create_task({.name = "s3", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(q23.read(), i);
            self.compute(10_us);
            out_times.push_back(sim.now());
        }
    });
    sim.run();
    ASSERT_EQ(out_times.size(), 4u);
    // Steady-state throughput: one item per ~10us once the pipe is full.
    const Time gap = out_times[3] - out_times[2];
    EXPECT_GE(gap, 10_us);
    EXPECT_LE(gap, 14_us); // 10us + wake overheads
}

TEST(MultiProcessorTest, RuntimePriorityRaisePreemptsImmediately) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    RecordingObserver rec;
    cpu.add_observer(rec);
    auto& bg = cpu.create_task({.name = "bg", .priority = 5},
                               [](r::Task& self) { self.compute(100_us); });
    auto& task = cpu.create_task({.name = "boostme", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    // A hardware controller raises the waiting task's priority mid-run.
    sim.spawn("controller", [&] {
        k::wait(40_us);
        task.set_base_priority(9); // above bg: preempts at exactly 40us
    });
    sim.run();
    const auto boosted = rec.of("boostme");
    // ready@0, running@40 (after preemption), terminated@50.
    ASSERT_GE(boosted.size(), 3u);
    EXPECT_EQ(boosted[1], (rtsc::test::Transition{40_us, "boostme",
                                                  r::TaskState::running}));
    EXPECT_EQ(bg.stats().preemptions, 1u);
}

TEST(MultiProcessorTest, SocStyleHwSwPartition) {
    // Paper §6: "explore the design space of real-time systems implemented on
    // SoC composed of several processors and FPGA". Two RTOS processors plus
    // an FPGA-style hardware block (kernel processes, no serialization).
    k::Simulator sim;
    r::Processor sw1("sw1"), sw2("sw2");
    m::MessageQueue<int> to_fpga("to_fpga", 4), from_fpga("from_fpga", 4);
    int results = 0;
    sw1.create_task({.name = "feeder", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 6; ++i) {
            self.compute(5_us);
            to_fpga.write(i);
        }
    });
    // FPGA: two parallel hardware lanes draining the same queue.
    for (int lane = 0; lane < 2; ++lane) {
        sim.spawn("fpga_lane" + std::to_string(lane), [&] {
            for (;;) {
                const int v = to_fpga.read();
                k::wait(20_us); // hardware latency, fully parallel
                from_fpga.write(v * v);
            }
        });
    }
    sw2.create_task({.name = "collector", .priority = 1}, [&](r::Task& self) {
        for (int i = 0; i < 6; ++i) {
            (void)from_fpga.read();
            self.compute(2_us);
            ++results;
        }
    });
    sim.run_until(1_ms);
    EXPECT_EQ(results, 6);
}
