// Core RTOS scheduling semantics, exercised under BOTH engine
// implementations (§4.1 dedicated RTOS thread, §4.2 procedure calls) via a
// parameterized suite: the two engines must produce identical simulated-time
// behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using rtsc::test::Transition;
using k::Time;
using namespace rtsc::kernel::time_literals;

class SchedulingTest : public ::testing::TestWithParam<r::EngineKind> {
protected:
    [[nodiscard]] r::EngineKind engine() const { return GetParam(); }
};

TEST_P(SchedulingTest, SingleTaskTimeline) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu.add_observer(rec);

    auto& a = cpu.create_task({.name = "A", .priority = 1},
                              [](r::Task& self) { self.compute(100_us); });
    sim.run();

    // ready@0, sched 0-5, load 5-10, run 10-110, save 110-115, sched 115-120.
    const std::vector<Transition> expected{
        {0_us, "A", r::TaskState::ready},
        {10_us, "A", r::TaskState::running},
        {110_us, "A", r::TaskState::terminated},
    };
    EXPECT_EQ(rec.log, expected);
    EXPECT_EQ(a.stats().running_time, 100_us);
    EXPECT_EQ(a.stats().ready_time, 10_us);
    EXPECT_EQ(a.stats().dispatches, 1u);
    EXPECT_EQ(sim.now(), 120_us);

    const auto ps = cpu.engine().phase_stats();
    EXPECT_EQ(ps.busy_time, 100_us);
    EXPECT_EQ(ps.overhead_time, 20_us); // sched+load+save+sched
    EXPECT_EQ(ps.dispatches, 1u);
}

TEST_P(SchedulingTest, ZeroOverheadSingleTask) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);
    cpu.create_task({.name = "A", .priority = 1},
                    [](r::Task& self) { self.compute(42_us); });
    sim.run();
    const std::vector<Transition> expected{
        {0_us, "A", r::TaskState::ready},
        {0_us, "A", r::TaskState::running},
        {42_us, "A", r::TaskState::terminated},
    };
    EXPECT_EQ(rec.log, expected);
}

TEST_P(SchedulingTest, PriorityOrderAtStart) {
    // All tasks ready at t=0: they execute sequentially by priority, exactly
    // as the beginning of the paper's Figure 6 shows.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu.add_observer(rec);

    std::vector<std::string> run_order;
    auto body = [&](r::Task& self) {
        run_order.push_back(self.name());
        self.compute(30_us);
    };
    cpu.create_task({.name = "low", .priority = 2}, body);
    cpu.create_task({.name = "mid", .priority = 3}, body);
    cpu.create_task({.name = "high", .priority = 5}, body);
    sim.run();

    EXPECT_EQ(run_order, (std::vector<std::string>{"high", "mid", "low"}));
    // high: sched 0-5, load 5-10, run 10-40; then save+sched+load = 15 us gap
    // before mid runs (Figure 6 annotation "(a)").
    EXPECT_EQ(rec.of("high")[1], (Transition{10_us, "high", r::TaskState::running}));
    EXPECT_EQ(rec.of("mid")[1], (Transition{55_us, "mid", r::TaskState::running}));
    EXPECT_EQ(rec.of("low")[1], (Transition{100_us, "low", r::TaskState::running}));
}

TEST_P(SchedulingTest, InterruptPreemptsAtExactTime) {
    // A hardware process signals an event at t=50us; the high-priority
    // handler task preempts the running low-priority task at *exactly* 50us
    // — the paper's time-accurate preemption claim.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu.add_observer(rec);

    m::Event irq("irq", m::EventPolicy::fugitive);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        irq.await();
        self.compute(20_us);
    });
    cpu.create_task({.name = "L", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.spawn("hw", [&] {
        k::wait(50_us);
        irq.signal();
    });
    sim.run();

    // t0: sched 0-5 selects H; load 5-10; H runs 10-10 (awaits immediately):
    // block at 10, save 10-15, sched 15-20, L load 20-25, L runs 25...
    // irq at 50: L preempted at exactly 50 (25us of its 100 done),
    // save 50-55, sched 55-60, H load 60-65, H runs 65-85, terminates;
    // save 85-90, sched 90-95, L load 95-100, L runs 100-175.
    const std::vector<Transition> expected{
        {0_us, "H", r::TaskState::ready},
        {0_us, "L", r::TaskState::ready},
        {10_us, "H", r::TaskState::running},
        {10_us, "H", r::TaskState::waiting},
        {25_us, "L", r::TaskState::running},
        {50_us, "H", r::TaskState::ready},
        {50_us, "L", r::TaskState::ready},
        {65_us, "H", r::TaskState::running},
        {85_us, "H", r::TaskState::terminated},
        {100_us, "L", r::TaskState::running},
        {175_us, "L", r::TaskState::terminated},
    };
    EXPECT_EQ(rec.strings(), [&] {
        std::vector<std::string> s;
        for (const auto& t : expected) s.push_back(t.str());
        return s;
    }());

    // The preempted task accounts one preemption and 50us of preempted time
    // (ready again at 50, resumes at 100).
    const auto& tasks = cpu.tasks();
    const r::Task& l = *tasks[1];
    EXPECT_EQ(l.stats().preemptions, 1u);
    EXPECT_EQ(l.stats().preempted_time, 50_us);
    EXPECT_EQ(l.stats().running_time, 100_us);
}

TEST_P(SchedulingTest, NonPreemptiveModeDefersDispatch) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);
    cpu.set_preemptive(false);

    m::Event irq("irq", m::EventPolicy::boolean);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        irq.await();
        self.compute(10_us);
    });
    cpu.create_task({.name = "L", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.spawn("hw", [&] {
        k::wait(30_us);
        irq.signal();
    });
    sim.run();

    // Zero overheads: H runs 0-0 (awaits), L runs 0-100. The irq at t=30 does
    // NOT preempt L; H runs only after L completes, at t=100.
    // H's log: ready@0, running@0, waiting@0, ready@30, running@100, ...
    const auto h = rec.of("H");
    ASSERT_GE(h.size(), 5u);
    EXPECT_EQ(h[3], (Transition{30_us, "H", r::TaskState::ready}));
    EXPECT_EQ(h[4], (Transition{100_us, "H", r::TaskState::running}));
    const auto& l = *cpu.tasks()[1];
    EXPECT_EQ(l.stats().preemptions, 0u);
}

TEST_P(SchedulingTest, PreemptionReenableTriggersImmediateSwitch) {
    // Model a critical region: preemption disabled while L computes; when L
    // re-enables it mid-computation, the pending higher-priority task
    // preempts at that exact point.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);

    m::Event irq("irq", m::EventPolicy::boolean);
    cpu.create_task({.name = "H", .priority = 5}, [&](r::Task& self) {
        irq.await();
        self.compute(10_us);
    });
    cpu.create_task({.name = "L", .priority = 1}, [&](r::Task& self) {
        cpu.lock_preemption();
        self.compute(60_us); // irq at 30 arrives inside the critical region
        cpu.unlock_preemption();
        self.compute(40_us);
    });
    sim.spawn("hw", [&] {
        k::wait(30_us);
        irq.signal();
    });
    sim.run();

    // H's log: ready@0, running@0, waiting@0, ready@30, running@60, ...
    const auto h = rec.of("H");
    ASSERT_GE(h.size(), 5u);
    EXPECT_EQ(h[3].at, 30_us);                     // ready at the interrupt
    EXPECT_EQ(h[4].at, 60_us);                     // runs when region ends
    EXPECT_EQ(h[4].to, r::TaskState::running);
    const auto l = rec.of("L");
    // L: running 0, preempted(ready) at 60, running 70+... terminated 110.
    EXPECT_EQ(l.back().at, 110_us);
    EXPECT_EQ(l.back().to, r::TaskState::terminated);
}

TEST_P(SchedulingTest, SleepForBlocksAndWakes) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu.add_observer(rec);

    cpu.create_task({.name = "A", .priority = 1}, [](r::Task& self) {
        self.compute(10_us);
        self.sleep_for(100_us);
        self.compute(10_us);
    });
    sim.run();

    // A runs 10-20; sleeps: timer starts at 20 (when it stops running), so
    // wake at 120 regardless of the 10us of save+sched overhead; then the
    // idle wake-up costs sched+load (no save) => running again at 130.
    const auto a = rec.of("A");
    const std::vector<Transition> expected{
        {0_us, "A", r::TaskState::ready},
        {10_us, "A", r::TaskState::running},
        {20_us, "A", r::TaskState::waiting},
        {120_us, "A", r::TaskState::ready},
        {130_us, "A", r::TaskState::running},
        {140_us, "A", r::TaskState::terminated},
    };
    EXPECT_EQ(a, expected);
}

TEST_P(SchedulingTest, SleepShorterThanOverheadStillWorks) {
    // Sleep shorter than the RTOS overhead: the task re-enters the ready
    // queue only after the scheduling pass triggered by its own blocking.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    RecordingObserver rec;
    cpu.add_observer(rec);
    cpu.create_task({.name = "A", .priority = 1}, [](r::Task& self) {
        self.compute(10_us);
        self.sleep_for(2_us); // < save+sched = 10us
        self.compute(10_us);
    });
    sim.run();
    const auto a = rec.of("A");
    ASSERT_EQ(a.size(), 6u);
    EXPECT_EQ(a[2], (Transition{20_us, "A", r::TaskState::waiting}));
    // save 20-25, sched 25-30 (finds nothing); wake timer (22) already
    // elapsed -> ready at 30, idle kick: sched 30-35, load 35-40.
    EXPECT_EQ(a[3], (Transition{30_us, "A", r::TaskState::ready}));
    EXPECT_EQ(a[4], (Transition{40_us, "A", r::TaskState::running}));
    EXPECT_EQ(a[5], (Transition{50_us, "A", r::TaskState::terminated}));
}

TEST_P(SchedulingTest, EqualPrioritiesRunFifoWithoutPreemption) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);
    std::vector<std::string> order;
    auto body = [&](r::Task& self) {
        order.push_back(self.name());
        self.compute(10_us);
    };
    cpu.create_task({.name = "A", .priority = 3}, body);
    cpu.create_task({.name = "B", .priority = 3}, body);
    cpu.create_task({.name = "C", .priority = 3}, body);
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"A", "B", "C"}));
    for (const auto& t : cpu.tasks()) EXPECT_EQ(t->stats().preemptions, 0u);
}

TEST_P(SchedulingTest, StartTimeDelaysRelease) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);
    cpu.create_task({.name = "late", .priority = 5, .start_time = 40_us},
                    [](r::Task& self) { self.compute(10_us); });
    cpu.create_task({.name = "early", .priority = 1},
                    [](r::Task& self) { self.compute(100_us); });
    sim.run();
    const auto late = rec.of("late");
    EXPECT_EQ(late[0], (Transition{40_us, "late", r::TaskState::ready}));
    EXPECT_EQ(late[1], (Transition{40_us, "late", r::TaskState::running}));
    // "early" was preempted at 40 and resumed at 50.
    const auto& early = *cpu.tasks()[1];
    EXPECT_EQ(early.stats().preemptions, 1u);
    EXPECT_EQ(early.stats().running_time, 100_us);
    EXPECT_EQ(sim.now(), 110_us);
}

TEST_P(SchedulingTest, YieldRotatesEqualPriorityTasks) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    RecordingObserver rec;
    cpu.add_observer(rec);
    std::vector<std::string> segments;
    auto body = [&](r::Task& self) {
        for (int i = 0; i < 2; ++i) {
            segments.push_back(self.name());
            self.compute(10_us);
            self.yield_cpu();
        }
    };
    cpu.create_task({.name = "A", .priority = 1}, body);
    cpu.create_task({.name = "B", .priority = 1}, body);
    sim.run();
    EXPECT_EQ(segments, (std::vector<std::string>{"A", "B", "A", "B"}));
}

TEST_P(SchedulingTest, YieldAloneIsNoop) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    cpu.create_task({.name = "A", .priority = 1}, [](r::Task& self) {
        self.compute(10_us);
        self.yield_cpu(); // nobody else ready: no overhead, no state change
        self.compute(10_us);
    });
    sim.run();
    // sched 0-5, load 5-10, run 10-30, save 30-35, sched 35-40.
    EXPECT_EQ(sim.now(), 40_us);
}

TEST_P(SchedulingTest, ComputeOutsideOwnThreadRejected) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(), engine());
    auto& a = cpu.create_task({.name = "A", .priority = 1},
                              [](r::Task& self) { self.compute(1_us); });
    sim.spawn("hw", [&] { a.compute(1_us); });
    EXPECT_THROW(sim.run(), k::SimulationError);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, SchedulingTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
