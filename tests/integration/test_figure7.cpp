// Integration test reproducing the paper's Figure 7: mutual-exclusion
// blocking on SharedVar_1.
//
//  (1) Function_3 is preempted by Function_1 *during a read operation* of
//      the SharedVar_1 shared variable (it keeps holding the resource);
//  (2) Function_2 then blocks, waiting for the SharedVar_1 resource;
//      Function_3 resumes its access after an overhead duration;
//  (3) when Function_3 releases the resource it is preempted by Function_2,
//      which has a higher priority.
//
// The companion test shows the paper's proposed fix — disabling preemption
// during access to shared data — removing the inversion.
#include <gtest/gtest.h>

#include <memory>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/shared_variable.hpp"
#include "rtos/processor.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

struct Figure7App {
    Figure7App(r::EngineKind kind, m::Protection protection)
        : cpu("Processor", std::make_unique<r::PriorityPreemptivePolicy>(), kind),
          clk("Clk", m::EventPolicy::fugitive),
          event1("Event_1", m::EventPolicy::boolean),
          shared_var("SharedVar_1", 0, protection) {
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        rec.attach(cpu);
        rec.attach(shared_var);

        cpu.create_task({.name = "Function_1", .priority = 5}, [this](r::Task& self) {
            clk.await();
            self.compute(20_us);
            event1.signal();
            self.compute(10_us);
        });
        cpu.create_task({.name = "Function_2", .priority = 3}, [this](r::Task&) {
            event1.await();
            (void)shared_var.read(10_us);
        });
        cpu.create_task({.name = "Function_3", .priority = 2}, [this](r::Task& self) {
            (void)shared_var.read(60_us); // long access; preempted inside
            self.compute(10_us);
        });
        k::Simulator::current().spawn("Clock", [this] {
            k::wait(70_us);
            clk.signal();
        });
    }

    r::Processor cpu;
    m::Event clk;
    m::Event event1;
    m::SharedVariable<int> shared_var;
    tr::Recorder rec;
};

class Figure7Test : public ::testing::TestWithParam<r::EngineKind> {};

} // namespace

TEST_P(Figure7Test, MutualExclusionBlockingScenario) {
    k::Simulator sim;
    Figure7App app(GetParam(), m::Protection::none);
    sim.run();

    tr::Timeline tl(app.rec);
    // Startup: F1 runs 10 then waits; F2 runs 25 then waits; F3 starts its
    // read at 40 and holds the resource while computing.
    EXPECT_EQ(tl.state_at("Function_3", 50_us), r::TaskState::running);

    // (1) tick at 70: F3 preempted mid-read, still owner of the resource.
    EXPECT_EQ(tl.state_at("Function_3", 71_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_1", 90_us), r::TaskState::running);

    // (2) F1 signals Event_1 at 105 ((c) overhead 105-110), finishes at 120;
    // F2 dispatched at 135, immediately blocks on the resource.
    EXPECT_EQ(tl.state_at("Function_2", 136_us), r::TaskState::waiting_resource);
    // F3 resumes its access after the overhead duration.
    EXPECT_EQ(tl.state_at("Function_3", 151_us), r::TaskState::running);

    // (3) F3 releases at 180 and is preempted by higher-priority F2.
    EXPECT_EQ(tl.state_at("Function_3", 181_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_2", 181_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_2", 196_us), r::TaskState::running);

    // F2's read completes at 205; F3 then resumes and finishes.
    const auto& f2 = *app.cpu.tasks()[1];
    EXPECT_EQ(f2.stats().waiting_resource_time, 45_us); // 135 -> 180
    const auto& f3 = *app.cpu.tasks()[2];
    EXPECT_EQ(f3.stats().preemptions, 2u); // by F1 at 70 and by F2 at 180
    EXPECT_EQ(f3.stats().running_time, 70_us); // 60us read + 10us compute

    // The resource was never free while F2 waited: it blocked from its lock
    // attempt at 135 until it acquired the resource at 195 (the release at
    // 180 plus the 15us dispatch overhead).
    const auto& sv_stats = app.shared_var.access_stats();
    EXPECT_EQ(sv_stats.blocked_accesses, 1u);
    EXPECT_EQ(sv_stats.blocked_time, 60_us);
}

TEST_P(Figure7Test, DisablingPreemptionAvoidsBlocking) {
    // "This priority inversion problem can be avoided by disabling preemption
    // during access to shared data. With our RTOS model, this behavior can be
    // modeled. Designers can easily check the need or benefit of such a
    // solution for their system."
    k::Simulator sim;
    Figure7App app(GetParam(), m::Protection::preemption_lock);
    sim.run();

    tr::Timeline tl(app.rec);
    // F3's read is never preempted: the tick at 70 leaves it running.
    EXPECT_EQ(tl.state_at("Function_3", 71_us), r::TaskState::running);
    const auto& f3 = *app.cpu.tasks()[2];

    // F3 holds 40-100; F1 (woken at 70) only runs after the access ends.
    EXPECT_EQ(tl.state_at("Function_1", 99_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_1", 116_us), r::TaskState::running);

    // Nobody ever blocks on the resource.
    EXPECT_EQ(app.shared_var.access_stats().blocked_accesses, 0u);
    const auto& f2 = *app.cpu.tasks()[1];
    EXPECT_EQ(f2.stats().waiting_resource_time, Time::zero());
    // F3 pays for it with a longer preempted/ready tail instead.
    EXPECT_GE(f3.stats().preempted_time, Time::zero());
}

INSTANTIATE_TEST_SUITE_P(BothEngines, Figure7Test,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
