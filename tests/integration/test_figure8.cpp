// Integration test reproducing the paper's Figure 8: global statistics from
// a TimeLine — per-task activity ratio (1), preempted ratio (2),
// waiting-for-resource ratio (3), and communication utilisation ratios (4) —
// for the same application as Figures 6/7.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "mcse/shared_variable.hpp"
#include "rtos/processor.hpp"
#include "trace/recorder.hpp"
#include "trace/statistics.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

class Figure8Test : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(Figure8Test, StatisticsFromFigure6Application) {
    k::Simulator sim;
    r::Processor cpu("Processor", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    m::Event clk("Clk", m::EventPolicy::fugitive);
    m::Event event1("Event_1", m::EventPolicy::boolean);
    tr::Recorder rec;
    rec.attach(cpu);
    rec.attach(clk);
    rec.attach(event1);

    cpu.create_task({.name = "Function_1", .priority = 5}, [&](r::Task& self) {
        for (;;) {
            clk.await();
            self.compute(30_us);
            event1.signal();
            self.compute(20_us);
        }
    });
    cpu.create_task({.name = "Function_2", .priority = 3}, [&](r::Task& self) {
        for (;;) {
            event1.await();
            self.compute(25_us);
        }
    });
    cpu.create_task({.name = "Function_3", .priority = 2},
                    [](r::Task& self) { self.compute(1_ms); });
    sim.spawn("Clock", [&] {
        k::wait(140_us);
        clk.signal();
    });
    sim.run_until(400_us);

    const auto rep = tr::StatisticsReport::collect(rec, sim.now());

    // (1) activity ratios.
    const auto* f1 = rep.task("Function_1");
    const auto* f2 = rep.task("Function_2");
    const auto* f3 = rep.task("Function_3");
    ASSERT_TRUE(f1 && f2 && f3);
    EXPECT_NEAR(f1->activity_ratio, 55.0 / 400.0, 1e-9);  // 30+5(c)+20
    EXPECT_NEAR(f2->activity_ratio, 25.0 / 400.0, 1e-9);
    EXPECT_NEAR(f3->activity_ratio, 235.0 / 400.0, 1e-9); // 100 + 135

    // (2) preempted ratio: only Function_3 was preempted (ready 140-265).
    EXPECT_NEAR(f3->preempted_ratio, 125.0 / 400.0, 1e-9);
    EXPECT_DOUBLE_EQ(f1->preempted_ratio, 0.0);
    EXPECT_DOUBLE_EQ(f2->preempted_ratio, 0.0);

    // (3) no shared resource in this run.
    EXPECT_DOUBLE_EQ(f3->waiting_resource_ratio, 0.0);

    // Processor-level conservation: busy + overhead + idle == 1.
    const auto* proc = rep.processor("Processor");
    ASSERT_TRUE(proc);
    EXPECT_NEAR(proc->busy_ratio + proc->overhead_ratio + proc->idle_ratio, 1.0,
                1e-9);
    // A task's activity includes the RTOS-call overhead it pays inline (the
    // 5us (c) charge runs in Function_1's context), while the processor books
    // that time as overhead — so busy == sum(activity) - inline charges.
    EXPECT_NEAR(proc->busy_ratio + 5.0 / 400.0,
                f1->activity_ratio + f2->activity_ratio + f3->activity_ratio,
                1e-9);
    // Overheads in this run: start 10us; F1 block 10; F2 block 10; F3 load 5;
    // preempt 15; (c) 5; F1 block 15; F2 block 15; F3 load 5 => 90us total.
    EXPECT_NEAR(proc->overhead_ratio, 90.0 / 400.0, 1e-9);
    EXPECT_EQ(proc->policy, "priority_preemptive");

    // (4) communication statistics. Blocked accesses are recorded when they
    // complete, so the final still-blocked awaits of F1/F2 do not count.
    const auto* ev1 = rep.relation("Event_1");
    ASSERT_TRUE(ev1);
    EXPECT_EQ(ev1->accesses, 2u); // signal + first await (completed at 225)
    EXPECT_EQ(ev1->blocked_accesses, 1u);
    const auto* clk_rel = rep.relation("Clk");
    ASSERT_TRUE(clk_rel);
    EXPECT_EQ(clk_rel->accesses, 2u); // 1 signal + F1's completed await

    // The printable report mentions every entity.
    std::ostringstream os;
    rep.print(os);
    const std::string text = os.str();
    for (const char* needle :
         {"Function_1", "Function_2", "Function_3", "Processor", "Event_1",
          "Clk", "active", "preempted", "resource"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST_P(Figure8Test, ResourceRatioAppearsWithSharedVariable) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::SharedVariable<int> sv("SharedVar_1", 0);
    tr::Recorder rec;
    rec.attach(cpu);
    rec.attach(sv);
    cpu.create_task({.name = "holder", .priority = 1},
                    [&](r::Task&) { (void)sv.read(80_us); });
    cpu.create_task({.name = "contender", .priority = 5, .start_time = 20_us},
                    [&](r::Task&) { (void)sv.read(20_us); });
    sim.run();

    // holder 0-20 preempted, contender blocks 20-80 (holder resumes, finishes
    // at 80), contender reads 80-100. Elapsed 100us.
    const auto rep = tr::StatisticsReport::collect(rec, sim.now());
    const auto* contender = rep.task("contender");
    ASSERT_TRUE(contender);
    EXPECT_NEAR(contender->waiting_resource_ratio, 60.0 / 100.0, 1e-9);
    const auto* svr = rep.relation("SharedVar_1");
    ASSERT_TRUE(svr);
    EXPECT_NEAR(svr->utilization, 1.0, 1e-9); // locked the whole run
    EXPECT_EQ(svr->blocked_accesses, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, Figure8Test,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
