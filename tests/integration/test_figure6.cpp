// Integration test reproducing the paper's Figure 6 TimeLine scenario:
// a hardware Clock plus three software tasks (priorities 5/3/2) under
// priority-based preemptive scheduling with SchedulingDuration =
// TaskContextLoad = TaskContextSave = 5 us.
//
// Asserted, exactly as annotated in the paper:
//   - at simulation start the functions execute sequentially by priority;
//   - (1) the Clk event wakes Function_1 which preempts Function_3 at the
//     exact tick time, with a (b) overhead gap of 15 us (save+sched+load);
//   - (2) Function_1 signals Event_1; Function_2 does NOT preempt it and the
//     RTOS charges the 5 us (c) scheduling overhead to Function_1;
//   - when Function_1 ends, Function_2 starts after the 15 us (a) gap;
//   - when Function_2 ends, Function_3 resumes where it was preempted.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

struct Figure6App {
    explicit Figure6App(r::EngineKind kind)
        : cpu("Processor", std::make_unique<r::PriorityPreemptivePolicy>(), kind),
          clk("Clk", m::EventPolicy::fugitive),
          event1("Event_1", m::EventPolicy::boolean) {
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        rec.attach(cpu);
        rec.attach(clk);
        rec.attach(event1);

        cpu.create_task({.name = "Function_1", .priority = 5}, [this](r::Task& self) {
            for (;;) {
                clk.await();
                self.compute(30_us);
                event1.signal(); // wakes Function_2 (lower priority: case (c))
                self.compute(20_us);
            }
        });
        cpu.create_task({.name = "Function_2", .priority = 3}, [this](r::Task& self) {
            for (;;) {
                event1.await();
                self.compute(25_us);
            }
        });
        cpu.create_task({.name = "Function_3", .priority = 2},
                        [](r::Task& self) { self.compute(1_ms); });

        // Hardware task "Clock": one tick at t = 140 us.
        k::Simulator::current().spawn("Clock", [this] {
            k::wait(140_us);
            clk.signal();
        });
    }

    r::Processor cpu;
    m::Event clk;
    m::Event event1;
    tr::Recorder rec;
};

class Figure6Test : public ::testing::TestWithParam<r::EngineKind> {};

} // namespace

TEST_P(Figure6Test, FullScenario) {
    k::Simulator sim;
    Figure6App app(GetParam());
    sim.run_until(400_us);

    tr::Timeline tl(app.rec);

    // --- sequential start by priority ---
    // F1: sched 0-5, load 5-10, runs at 10, immediately awaits Clk.
    auto f1 = tl.segments("Function_1");
    ASSERT_GE(f1.size(), 6u);
    EXPECT_EQ(f1[0], (tr::Timeline::Segment{0_us, 10_us, r::TaskState::ready}));
    EXPECT_EQ(f1[1], (tr::Timeline::Segment{10_us, 10_us, r::TaskState::running}));
    EXPECT_EQ(f1[2].state, r::TaskState::waiting);
    // F2 runs 25-25 (awaits Event_1), F3 starts computing at 40.
    auto f3 = tl.segments("Function_3");
    EXPECT_EQ(tl.state_at("Function_3", 40_us), r::TaskState::running);

    // --- (1) the tick preempts Function_3 at exactly 140 us ---
    EXPECT_EQ(tl.state_at("Function_3", 139_us), r::TaskState::running);
    EXPECT_EQ(tl.state_at("Function_3", 141_us), r::TaskState::ready);
    // (b): 15 us of overhead before Function_1 runs at 155.
    EXPECT_EQ(f1[2], (tr::Timeline::Segment{10_us, 140_us, r::TaskState::waiting}));
    EXPECT_EQ(f1[3], (tr::Timeline::Segment{140_us, 155_us, r::TaskState::ready}));
    EXPECT_EQ(f1[4].begin, 155_us);
    EXPECT_EQ(f1[4].state, r::TaskState::running);

    // --- (2) Event_1 at 185: Function_2 ready, no preemption, (c) = 5 us ---
    // Function_1 stays running 155-210 (30 + 5 overhead + 20).
    EXPECT_EQ(f1[4].end, 210_us);
    bool saw_c_overhead = false;
    for (const auto& o : app.rec.overheads()) {
        if (o.at == 185_us) {
            saw_c_overhead = true;
            EXPECT_EQ(o.kind, r::OverheadKind::scheduling);
            EXPECT_EQ(o.duration, 5_us);
            ASSERT_NE(o.about, nullptr);
            EXPECT_EQ(o.about->name(), "Function_1");
        }
    }
    EXPECT_TRUE(saw_c_overhead);
    EXPECT_EQ(tl.state_at("Function_2", 190_us), r::TaskState::ready);

    // --- (a) Function_2 starts 15 us after Function_1 blocks at 210 ---
    auto f2 = tl.segments("Function_2");
    EXPECT_EQ(tl.state_at("Function_2", 224_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_2", 226_us), r::TaskState::running);
    EXPECT_EQ(tl.state_at("Function_2", 249_us), r::TaskState::running);
    EXPECT_EQ(tl.state_at("Function_2", 251_us), r::TaskState::waiting);

    // --- Function_3 resumes where preempted, 15 us after F2 blocks at 250 ---
    EXPECT_EQ(tl.state_at("Function_3", 264_us), r::TaskState::ready);
    EXPECT_EQ(tl.state_at("Function_3", 266_us), r::TaskState::running);

    // Function_3's computation is conserved: 100 us before the preemption,
    // the rest after resuming.
    const auto f3_stats = app.cpu.tasks()[2]->stats_at(sim.now());
    EXPECT_EQ(f3_stats.running_time, 100_us + (400_us - 265_us));
    EXPECT_EQ(f3_stats.preempted_time, 125_us); // ready 140 -> 265
    EXPECT_EQ(f3_stats.preemptions, 1u);

    // The rendered chart contains the expected symbols.
    std::ostringstream os;
    tl.render(os, {.from = 0_us, .to = 400_us, .columns = 80});
    const std::string chart = os.str();
    EXPECT_NE(chart.find("Function_1"), std::string::npos);
    EXPECT_NE(chart.find("Function_3"), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos); // running
    EXPECT_NE(chart.find('p'), std::string::npos); // preempted
    EXPECT_NE(chart.find('o'), std::string::npos); // RTOS overhead
    EXPECT_NE(chart.find("signal Event_1"), std::string::npos);
}

TEST_P(Figure6Test, BothEnginesProduceIdenticalTrace) {
    std::vector<std::string> logs[2];
    const r::EngineKind kinds[2] = {r::EngineKind::procedure_calls,
                                    r::EngineKind::rtos_thread};
    for (int i = 0; i < 2; ++i) {
        k::Simulator sim;
        Figure6App app(kinds[i]);
        sim.run_until(400_us);
        for (const auto& s : app.rec.states()) {
            if (s.from == s.to) continue;
            logs[i].push_back(s.at.to_string() + " " + s.task->name() + " " +
                              r::to_string(s.to));
        }
    }
    EXPECT_EQ(logs[0], logs[1]);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, Figure6Test,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
