// Conservation properties over randomized workloads:
//  - processor accounting: busy + overhead + idle == elapsed, always;
//  - task accounting: the sum of a task's per-state times equals the span
//    from its first release to its termination (or the end of the run);
//  - work conservation: total Running time across tasks equals the
//    processor's busy time plus inline RTOS-call charges;
//  - compute conservation: every compute(d) contributes exactly d of
//    Running time regardless of preemptions.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

struct Workload {
    int n_tasks;
    int n_irqs;
    Time overhead;
    bool rr;
};

Workload make(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    return {pick(1, 6), pick(0, 8), Time::us(static_cast<Time::rep>(pick(0, 9))),
            pick(0, 3) == 0};
}

} // namespace

class ConservationTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, r::EngineKind>> {};

TEST_P(ConservationTest, AccountingAlwaysBalances) {
    const auto [seed, kind] = GetParam();
    const Workload wl = make(seed);
    std::mt19937_64 rng(seed * 7919u);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    k::Simulator sim;
    std::unique_ptr<r::SchedulingPolicy> pol;
    if (wl.rr)
        pol = std::make_unique<r::RoundRobinPolicy>(
            Time::us(static_cast<Time::rep>(pick(5, 30))));
    else
        pol = std::make_unique<r::PriorityPreemptivePolicy>();
    r::Processor cpu("cpu", std::move(pol), kind);
    cpu.set_overheads(r::RtosOverheads::uniform(wl.overhead));

    m::Event irq("irq", m::EventPolicy::counter);
    std::vector<Time> computes(static_cast<std::size_t>(wl.n_tasks));
    for (int i = 0; i < wl.n_tasks; ++i) {
        const Time total = Time::us(static_cast<Time::rep>(pick(20, 200)));
        computes[static_cast<std::size_t>(i)] = total;
        cpu.create_task(
            {.name = "t" + std::to_string(i),
             .priority = pick(1, 5),
             .start_time = Time::us(static_cast<Time::rep>(pick(0, 50)))},
            [total, &irq, i](r::Task& self) {
                // Split the budget into a few segments with blocking between.
                const Time chunk = total / 4u;
                for (int c = 0; c < 3; ++c) {
                    self.compute(chunk);
                    if (i % 2 == 0)
                        self.sleep_for(Time::us(10));
                    else
                        (void)irq.await_for(Time::us(15));
                }
                self.compute(total - 3u * chunk);
            });
    }
    sim.spawn("hw", [&, n = wl.n_irqs] {
        for (int i = 0; i < n; ++i) {
            k::wait(Time::us(static_cast<Time::rep>(20 + 13 * i)));
            irq.signal();
        }
    });
    sim.run_until(5_ms);
    const Time elapsed = sim.now();

    // Processor conservation.
    const auto ps = cpu.engine().phase_stats();
    EXPECT_EQ(ps.busy_time + ps.overhead_time + ps.idle_time, elapsed)
        << "seed " << seed;

    // Per-task accounting and compute conservation.
    Time total_running{};
    for (std::size_t i = 0; i < cpu.tasks().size(); ++i) {
        const r::Task& t = *cpu.tasks()[i];
        const auto s = t.stats_at(elapsed);
        total_running += s.running_time;
        if (t.terminated()) {
            // Every compute() consumed in full.
            EXPECT_EQ(s.running_time, computes[i]) << "seed " << seed << " t" << i;
        } else {
            EXPECT_LE(s.running_time, computes[i]) << "seed " << seed << " t" << i;
        }
        // No state time can exceed the elapsed simulation time.
        const Time sum = s.running_time + s.ready_time + s.preempted_time +
                         s.waiting_time + s.waiting_resource_time;
        EXPECT_LE(sum, elapsed) << "seed " << seed << " t" << i;
    }
    // Work conservation: tasks' running time accounts for all busy time
    // (inline RTOS-call charges may make task time exceed busy time, never
    // the other way around).
    EXPECT_GE(total_running, ps.busy_time) << "seed " << seed;
    EXPECT_LE(total_running, ps.busy_time + ps.overhead_time) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, ConservationTest,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Values(r::EngineKind::procedure_calls,
                                         r::EngineKind::rtos_thread)));
