// Property test: the paper's two RTOS model implementations (§4.1 dedicated
// RTOS thread, §4.2 procedure calls) must produce IDENTICAL simulated-time
// behaviour — same task-state transitions at the same instants — differing
// only in simulation cost (kernel context switches).
//
// Randomly generated task programs (computes, event signal/await, queue
// read/write, shared-variable accesses, sleeps, yields, plus hardware
// interrupt sources) are interpreted under both engines and the full
// transition logs are compared. The procedure-call engine must also never
// use more kernel activations than the RTOS-thread engine.
#include <gtest/gtest.h>

#include <memory>
#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "mcse/shared_variable.hpp"
#include "rtos/processor.hpp"
#include "trace/recorder.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

struct Op {
    enum class Kind {
        compute,
        signal_event,
        await_event,
        queue_write,
        queue_read,
        sv_read,
        sv_write,
        sleep,
        yield,
        lock_region,   // lock_preemption around a compute
        await_timeout, // Event::await_for
        read_timeout,  // MessageQueue::read_for
    };
    Kind kind;
    int target = 0; ///< which event/queue/svar
    Time dur{};
};

struct TaskProgram {
    int priority;
    Time start;
    std::vector<Op> ops;
};

struct Program {
    enum class Policy { priority, round_robin, edf };
    Policy policy;
    Time quantum{};
    Time overhead{};
    bool formula_overhead = false;
    int n_events = 2;
    int n_queues = 1;
    int n_svars = 1;
    std::vector<TaskProgram> tasks;
    std::vector<std::pair<Time, int>> hw_signals; ///< (time, event index)
    Time horizon{};
};

Program random_program(std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    Program p;
    switch (pick(0, 2)) {
        case 0: p.policy = Program::Policy::priority; break;
        case 1:
            p.policy = Program::Policy::round_robin;
            p.quantum = Time::us(static_cast<Time::rep>(pick(5, 20)));
            break;
        default: p.policy = Program::Policy::edf; break;
    }
    p.overhead = Time::us(static_cast<Time::rep>(pick(0, 6)));
    p.formula_overhead = pick(0, 3) == 0;
    const int n_tasks = pick(2, 6);
    for (int i = 0; i < n_tasks; ++i) {
        TaskProgram tp;
        tp.priority = pick(1, 5);
        tp.start = Time::us(static_cast<Time::rep>(pick(0, 30)));
        const int n_ops = pick(2, 8);
        for (int j = 0; j < n_ops; ++j) {
            Op op;
            switch (pick(0, 11)) {
                case 0:
                case 1:
                case 2:
                    op.kind = Op::Kind::compute;
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 40)));
                    break;
                case 3:
                    op.kind = Op::Kind::signal_event;
                    op.target = pick(0, p.n_events - 1);
                    break;
                case 4:
                    op.kind = Op::Kind::await_event;
                    op.target = pick(0, p.n_events - 1);
                    break;
                case 5:
                    op.kind = Op::Kind::queue_write;
                    op.target = 0;
                    break;
                case 6:
                    op.kind = Op::Kind::queue_read;
                    op.target = 0;
                    break;
                case 7:
                    op.kind = pick(0, 1) != 0 ? Op::Kind::sv_read : Op::Kind::sv_write;
                    op.target = 0;
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 15)));
                    break;
                case 8:
                    op.kind = Op::Kind::sleep;
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 25)));
                    break;
                case 9:
                    op.kind = pick(0, 1) != 0 ? Op::Kind::yield : Op::Kind::lock_region;
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 10)));
                    break;
                case 10:
                    op.kind = Op::Kind::await_timeout;
                    op.target = pick(0, p.n_events - 1);
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 30)));
                    break;
                default:
                    op.kind = Op::Kind::read_timeout;
                    op.dur = Time::us(static_cast<Time::rep>(pick(1, 30)));
                    break;
            }
            tp.ops.push_back(op);
        }
        p.tasks.push_back(std::move(tp));
    }
    const int n_irq = pick(0, 5);
    for (int i = 0; i < n_irq; ++i)
        p.hw_signals.emplace_back(Time::us(static_cast<Time::rep>(pick(5, 200))),
                                  pick(0, p.n_events - 1));
    p.horizon = 2_ms;
    return p;
}

struct RunResult {
    std::vector<std::string> log;
    std::uint64_t kernel_activations = 0;
    Time end{};
};

RunResult run_program(const Program& p, r::EngineKind kind) {
    k::Simulator sim;
    std::unique_ptr<r::SchedulingPolicy> pol;
    switch (p.policy) {
        case Program::Policy::priority:
            pol = std::make_unique<r::PriorityPreemptivePolicy>();
            break;
        case Program::Policy::round_robin:
            pol = std::make_unique<r::RoundRobinPolicy>(p.quantum);
            break;
        case Program::Policy::edf:
            pol = std::make_unique<r::EdfPolicy>();
            break;
    }
    r::Processor cpu("cpu", std::move(pol), kind);
    if (p.formula_overhead) {
        r::RtosOverheads ov;
        const Time base = p.overhead;
        ov.scheduling = r::OverheadModel::formula([base](const r::SystemState& s) {
            return base + Time::us(1) * static_cast<Time::rep>(s.ready_tasks);
        });
        ov.context_load = base;
        ov.context_save = base;
        cpu.set_overheads(ov);
    } else {
        cpu.set_overheads(r::RtosOverheads::uniform(p.overhead));
    }

    tr::Recorder rec;
    rec.attach(cpu);

    std::vector<std::unique_ptr<m::Event>> events;
    for (int i = 0; i < p.n_events; ++i)
        events.push_back(std::make_unique<m::Event>(
            "ev" + std::to_string(i),
            i % 3 == 0 ? m::EventPolicy::counter
                       : (i % 3 == 1 ? m::EventPolicy::boolean
                                     : m::EventPolicy::fugitive)));
    m::MessageQueue<int> queue("q0", 3);
    m::SharedVariable<int> svar("sv0", 0);

    for (std::size_t i = 0; i < p.tasks.size(); ++i) {
        const TaskProgram& tp = p.tasks[i];
        auto& task = cpu.create_task(
            {.name = "t" + std::to_string(i),
             .priority = tp.priority,
             .start_time = tp.start},
            [&, tp](r::Task& self) {
                for (const Op& op : tp.ops) {
                    switch (op.kind) {
                        case Op::Kind::compute: self.compute(op.dur); break;
                        case Op::Kind::signal_event:
                            events[static_cast<std::size_t>(op.target)]->signal();
                            break;
                        case Op::Kind::await_event:
                            events[static_cast<std::size_t>(op.target)]->await();
                            break;
                        case Op::Kind::queue_write: queue.write(1); break;
                        case Op::Kind::queue_read: (void)queue.read(); break;
                        case Op::Kind::sv_read: (void)svar.read(op.dur); break;
                        case Op::Kind::sv_write: svar.write(1, op.dur); break;
                        case Op::Kind::sleep: self.sleep_for(op.dur); break;
                        case Op::Kind::yield: self.yield_cpu(); break;
                        case Op::Kind::lock_region: {
                            r::Processor::PreemptionGuard g(cpu);
                            self.compute(op.dur);
                            break;
                        }
                        case Op::Kind::await_timeout:
                            (void)events[static_cast<std::size_t>(op.target)]
                                ->await_for(op.dur);
                            break;
                        case Op::Kind::read_timeout: {
                            int v = 0;
                            (void)queue.read_for(v, op.dur);
                            break;
                        }
                    }
                    // EDF needs live deadlines; derive one deterministically.
                    self.set_absolute_deadline(
                        k::Simulator::current().now() +
                        Time::us(50) * static_cast<Time::rep>(tp.priority));
                }
            });
        (void)task;
    }
    for (const auto& [at, ev] : p.hw_signals) {
        sim.spawn("hw", [&, at = at, ev = ev] {
            k::wait(at);
            events[static_cast<std::size_t>(ev)]->signal();
        });
    }

    sim.run_until(p.horizon);

    RunResult res;
    res.kernel_activations = sim.process_activations();
    res.end = sim.now();
    // Collect (time, record) pairs and canonicalize the order of records
    // within one instant: the engines may interleave independent same-instant
    // activities differently (e.g. a sleep timer firing vs a context load
    // completing), which is not an observable scheduling difference. Any
    // *consequential* difference shows up as a different state or timestamp
    // and still fails the comparison.
    std::vector<std::pair<Time, std::string>> rows;
    for (const auto& s : rec.states()) {
        if (s.from == s.to) continue;
        rows.emplace_back(s.at, s.task->name() + " " + r::to_string(s.to));
    }
    std::sort(rows.begin(), rows.end());
    for (const auto& [at, text] : rows) {
        std::ostringstream os;
        os << at.raw_ps() << ' ' << text;
        res.log.push_back(os.str());
    }
    return res;
}

} // namespace

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, EnginesProduceIdenticalSchedules) {
    const Program p = random_program(GetParam());
    const RunResult proc = run_program(p, r::EngineKind::procedure_calls);
    const RunResult thrd = run_program(p, r::EngineKind::rtos_thread);
    auto context = [&](std::size_t row) {
        std::ostringstream os;
        os << "seed " << GetParam() << " around row " << row << "\n";
        const std::size_t lo = row > 6 ? row - 6 : 0;
        for (std::size_t j = lo; j < row + 6; ++j) {
            os << j << "  proc: "
               << (j < proc.log.size() ? proc.log[j] : "<none>") << "  |  thrd: "
               << (j < thrd.log.size() ? thrd.log[j] : "<none>") << "\n";
        }
        return os.str();
    };
    ASSERT_EQ(proc.log.size(), thrd.log.size())
        << context(std::min(proc.log.size(), thrd.log.size()));
    for (std::size_t i = 0; i < proc.log.size(); ++i)
        ASSERT_EQ(proc.log[i], thrd.log[i]) << context(i);
    // §4.2's raison d'être: the procedure-call engine needs no more kernel
    // context switches than the RTOS-thread engine.
    EXPECT_LE(proc.kernel_activations, thrd.kernel_activations);
}

TEST_P(EquivalenceTest, RunsAreDeterministic) {
    const Program p = random_program(GetParam());
    const RunResult a = run_program(p, r::EngineKind::procedure_calls);
    const RunResult b = run_program(p, r::EngineKind::procedure_calls);
    EXPECT_EQ(a.log, b.log);
    EXPECT_EQ(a.kernel_activations, b.kernel_activations);
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 41));
