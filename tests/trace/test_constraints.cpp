// Tests for automatic timing-constraint verification (the paper's §6 future
// work): per-activation response constraints and event-to-reaction latency
// constraints, satisfied and violated, under both engines.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "rtos/interrupt.hpp"
#include "rtos/processor.hpp"
#include "trace/constraints.hpp"
#include "workload/taskset.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
namespace w = rtsc::workload;
using k::Time;
using namespace rtsc::kernel::time_literals;

class ConstraintTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(ConstraintTest, ResponseConstraintSatisfied) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event irq("irq", m::EventPolicy::counter);
    auto& handler = cpu.create_task({.name = "handler", .priority = 5},
                                    [&](r::Task& self) {
                                        for (;;) {
                                            irq.await();
                                            self.compute(10_us);
                                        }
                                    });
    tr::ConstraintMonitor mon;
    mon.require_response(handler, 20_us);
    sim.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(100_us);
            irq.signal();
        }
    });
    sim.run_until(500_us);
    EXPECT_TRUE(mon.ok());
    // 4 activations: the creation release (completes instantly when the task
    // first blocks on the event) plus one per interrupt.
    EXPECT_EQ(mon.checks_performed(), 4u);
}

TEST_P(ConstraintTest, ResponseConstraintViolatedByInterference) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event irq("irq", m::EventPolicy::counter);
    // The handler has LOW priority here, so the 200us hog delays it way past
    // its 20us bound.
    auto& handler = cpu.create_task({.name = "handler", .priority = 1},
                                    [&](r::Task& self) {
                                        for (;;) {
                                            irq.await();
                                            self.compute(10_us);
                                        }
                                    });
    cpu.create_task({.name = "hog", .priority = 9},
                    [](r::Task& self) { self.compute(200_us); });
    tr::ConstraintMonitor mon;
    mon.require_response(handler, 20_us, "handler_deadline");
    sim.spawn("hw", [&] {
        k::wait(50_us);
        irq.signal();
    });
    sim.run_until(500_us);
    ASSERT_EQ(mon.violations().size(), 1u);
    const auto& v = mon.violations()[0];
    EXPECT_EQ(v.constraint, "handler_deadline");
    // The creation activation is released at 0 but the hog runs first; the
    // irq at 50 lands while the handler is still Ready, so its first await
    // consumes the memorized occurrence without blocking and the single
    // activation stretches 0 -> 210.
    EXPECT_EQ(v.measured, 210_us);
    EXPECT_EQ(v.bound, 20_us);
    std::ostringstream os;
    mon.print(os);
    EXPECT_NE(os.str().find("VIOLATION handler_deadline"), std::string::npos);
}

TEST_P(ConstraintTest, PreemptionDoesNotSplitActivation) {
    // An activation that is preempted midway is still ONE activation; the
    // response covers release -> completion including the preempted span.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    m::Event go("go", m::EventPolicy::counter);
    auto& worker = cpu.create_task({.name = "worker", .priority = 1},
                                   [&](r::Task& self) {
                                       go.await();
                                       self.compute(100_us);
                                   });
    cpu.create_task({.name = "mid", .priority = 5, .start_time = 30_us},
                    [](r::Task& self) { self.compute(50_us); });
    tr::ConstraintMonitor mon;
    mon.require_response(worker, 120_us);
    sim.spawn("hw", [&] { go.signal(); });
    sim.run();
    // The go signal lands before the worker's await, so the await consumes it
    // without blocking and the whole run is ONE activation: released at 0,
    // runs 0-30, preempted 30-80, runs 80-150. 150 > 120 -> violation.
    ASSERT_EQ(mon.violations().size(), 1u);
    EXPECT_EQ(mon.violations()[0].measured, 150_us);
    EXPECT_EQ(mon.checks_performed(), 1u);
}

TEST_P(ConstraintTest, LatencyConstraintAcrossRelations) {
    // "Time spent between an external event and the system's reaction":
    // irq.signal -> out.write, checked per occurrence.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    m::Event irq("irq", m::EventPolicy::counter);
    m::MessageQueue<int> out("out", 4);
    cpu.create_task({.name = "reactor", .priority = 5}, [&](r::Task& self) {
        for (;;) {
            irq.await();
            self.compute(30_us);
            out.write(1);
        }
    });
    tr::ConstraintMonitor mon;
    mon.require_latency("reaction", irq, m::AccessKind::signal_op, out,
                        m::AccessKind::write_op, 45_us);
    sim.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(200_us);
            irq.signal();
        }
    });
    sim.run_until(1_ms);
    // Reaction: idle wake sched+load (10us) + 30us compute = 40us <= 45us.
    EXPECT_TRUE(mon.ok()) << mon.violations().size();
    EXPECT_EQ(mon.checks_performed(), 3u);

    // Tighten the bound below the achievable latency: every occurrence fails.
    tr::ConstraintMonitor strict;
    strict.require_latency("strict", irq, m::AccessKind::signal_op, out,
                           m::AccessKind::write_op, 35_us);
    k::Simulator sim2;
    r::Processor cpu2("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                      GetParam());
    cpu2.set_overheads(r::RtosOverheads::uniform(5_us));
    m::Event irq2("irq", m::EventPolicy::counter);
    m::MessageQueue<int> out2("out", 4);
    cpu2.create_task({.name = "reactor", .priority = 5}, [&](r::Task& self) {
        for (;;) {
            irq2.await();
            self.compute(30_us);
            out2.write(1);
        }
    });
    strict.require_latency("strict", irq2, m::AccessKind::signal_op, out2,
                           m::AccessKind::write_op, 35_us);
    sim2.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(200_us);
            irq2.signal();
        }
    });
    sim2.run_until(1_ms);
    EXPECT_EQ(strict.violations().size(), 3u);
    EXPECT_EQ(strict.violations()[0].measured, 40_us);
}

TEST_P(ConstraintTest, PeriodicTaskSetUnderConstraintMonitor) {
    // Combine with the workload layer: constraint bound == RTA response of
    // the lowest-priority task => no violations; bound just below => some.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    w::PeriodicTaskSet ts(cpu, {
        {.name = "t1", .period = 4_ms, .wcet = 1_ms, .priority = 3},
        {.name = "t2", .period = 6_ms, .wcet = 2_ms, .priority = 2},
        {.name = "t3", .period = 10_ms, .wcet = 3_ms, .priority = 1},
    });
    // Monitor the top-priority task: its activations are cleanly separated
    // by sleeps (the lowest-priority task runs back to back at its critical
    // instant, which merges activations — a documented limitation of the
    // activation heuristic).
    tr::ConstraintMonitor mon;
    mon.require_response(*cpu.tasks()[0], 1_ms, "t1_at_rta"); // RTA: 1ms
    tr::ConstraintMonitor tight;
    tight.require_response(*cpu.tasks()[0], 999_us, "t1_below_rta");
    sim.run_until(60_ms);
    EXPECT_TRUE(mon.ok());
    EXPECT_FALSE(tight.ok());
    EXPECT_GE(mon.checks_performed(), 14u); // 15 jobs in 60ms
}

TEST_P(ConstraintTest, DroppedInterruptDoesNotMisPairLatencyIndices) {
    // A dropped raise() never signals the line's event, so it contributes no
    // source occurrence: the latency rule keeps pairing the n-th surviving
    // signal with the n-th reaction instead of sliding one index off.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    r::InterruptLine line("line");
    m::MessageQueue<int> out("out", 4);
    line.attach_isr(cpu, 5, [&](r::Task&) { out.write(1); }, 30_us);

    // Deterministic fault: drop exactly the second raise.
    unsigned nth = 0;
    line.set_raise_filter([&nth]() -> unsigned { return ++nth == 2 ? 0u : 1u; });

    tr::ConstraintMonitor mon;
    mon.require_latency("reaction", line.event(), m::AccessKind::signal_op, out,
                        m::AccessKind::write_op, 45_us);
    sim.spawn("hw", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(100_us);
            line.raise();
        }
    });
    sim.run_until(600_us);

    EXPECT_EQ(line.raised(), 3u);
    EXPECT_EQ(line.dropped(), 1u);
    EXPECT_EQ(line.serviced(), 2u);
    // Surviving raises at 100 and 300 react at 140 and 340 (idle wake
    // sched+load 10us + 30us handler): both within the 45us bound. A
    // mis-paired index would match the 300us signal against a stale
    // reaction and report a spurious violation.
    EXPECT_TRUE(mon.ok()) << mon.violations().size();
    EXPECT_EQ(mon.checks_performed(), 2u);
}

TEST_P(ConstraintTest, KilledTaskClosesOpenResponseEpisodeAsViolation) {
    // A task killed mid-activation never completes that activation; the
    // monitor must close the episode as a violation instead of leaving it
    // dangling (or silently matching a later activation).
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    auto& a = cpu.create_task({.name = "a", .priority = 1},
                              [](r::Task& self) { self.compute(100_us); });
    tr::ConstraintMonitor mon;
    mon.require_response(a, 50_us, "a.resp");
    sim.spawn("killer", [&] {
        k::wait(30_us);
        a.kill();
    });
    sim.run();

    ASSERT_EQ(mon.violations().size(), 1u);
    const auto& v = mon.violations()[0];
    EXPECT_EQ(v.constraint, "a.resp [killed]");
    EXPECT_EQ(v.at, 30_us);
    EXPECT_EQ(v.measured, 30_us); // release at 0, killed at 30
    EXPECT_EQ(v.task, &a);
    // The kill episode is still one performed check.
    EXPECT_EQ(mon.checks_performed(), 1u);
}

TEST_P(ConstraintTest, NormalTerminationStillCompletesTheEpisode) {
    // Counterpart to the killed-episode rule: a task that terminates
    // normally within its bound stays green.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    auto& a = cpu.create_task({.name = "a", .priority = 1},
                              [](r::Task& self) { self.compute(20_us); });
    tr::ConstraintMonitor mon;
    mon.require_response(a, 50_us, "a.resp");
    sim.run();
    EXPECT_TRUE(mon.ok());
    EXPECT_EQ(mon.checks_performed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ConstraintTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "threaded";
                         });
