// Trace-layer tests: recorder contents, timeline segments and rendering,
// CSV and VCD exporters.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "trace/csv.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"
#include "trace/vcd.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {
/// Two-task scenario with one preemption, used by most tests.
struct Scenario {
    Scenario() : cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>()) {
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        rec.attach(cpu);
        rec.attach(irq);
        cpu.create_task({.name = "H", .priority = 5}, [this](r::Task& self) {
            irq.await();
            self.compute(20_us);
        });
        cpu.create_task({.name = "L", .priority = 1},
                        [](r::Task& self) { self.compute(100_us); });
        k::Simulator::current().spawn("hw", [this] {
            k::wait(50_us);
            irq.signal();
        });
    }
    r::Processor cpu;
    m::Event irq{"irq", m::EventPolicy::boolean};
    tr::Recorder rec;
};
} // namespace

TEST(RecorderTest, CapturesStatesOverheadsAndComms) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    EXPECT_FALSE(s.rec.states().empty());
    EXPECT_FALSE(s.rec.overheads().empty());
    ASSERT_FALSE(s.rec.comms().empty());
    // First comm record: H's await did block.
    bool saw_signal = false, saw_await = false;
    for (const auto& c : s.rec.comms()) {
        if (c.kind == m::AccessKind::signal_op) {
            saw_signal = true;
            EXPECT_EQ(c.task, nullptr); // from hardware
            EXPECT_EQ(c.at, 50_us);
        }
        if (c.kind == m::AccessKind::await_op) saw_await = true;
    }
    EXPECT_TRUE(saw_signal);
    EXPECT_TRUE(saw_await);
    EXPECT_EQ(s.rec.all_tasks().size(), 2u);
    s.rec.clear();
    EXPECT_TRUE(s.rec.states().empty());
}

TEST(TimelineTest, SegmentsAreContiguousAndOrdered) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    tr::Timeline tl(s.rec);
    for (const char* name : {"H", "L"}) {
        const auto segs = tl.segments(name);
        ASSERT_FALSE(segs.empty()) << name;
        for (std::size_t i = 1; i < segs.size(); ++i)
            EXPECT_EQ(segs[i].begin, segs[i - 1].end) << name;
        EXPECT_EQ(segs.back().end, Time::max());
        EXPECT_EQ(segs.back().state, r::TaskState::terminated);
    }
    // L was preempted at 50 and resumed at 100 (save/sched + H 20us + save/
    // sched/load). state_at picks the right segment.
    EXPECT_EQ(tl.state_at("L", 49_us), r::TaskState::running);
    EXPECT_EQ(tl.state_at("L", 60_us), r::TaskState::ready);
    EXPECT_EQ(tl.segments("no_such_task").size(), 0u);
}

TEST(TimelineTest, RenderProducesReadableChart) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::Timeline(s.rec).render(os, {.columns = 60});
    const std::string chart = os.str();
    EXPECT_NE(chart.find("legend:"), std::string::npos);
    EXPECT_NE(chart.find("H"), std::string::npos);
    EXPECT_NE(chart.find("cpu.rtos"), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos);
    EXPECT_NE(chart.find('o'), std::string::npos);
    EXPECT_NE(chart.find("accesses:"), std::string::npos);
    EXPECT_NE(chart.find("[blocked]"), std::string::npos);
}

TEST(TimelineTest, EmptyWindowHandled) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::Timeline(s.rec).render(os, {.from = 10_us, .to = 10_us});
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(CsvTest, StateRowsWellFormed) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::write_states_csv(os, s.rec);
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time_us,task,processor,from,to");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4) << line;
    }
    EXPECT_GE(rows, 8u);
}

TEST(CsvTest, CommAndOverheadRows) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream comms, ovh;
    tr::write_comms_csv(comms, s.rec);
    tr::write_overheads_csv(ovh, s.rec);
    EXPECT_NE(comms.str().find("irq"), std::string::npos);
    EXPECT_NE(comms.str().find("<hw>"), std::string::npos);
    EXPECT_NE(ovh.str().find("context_save"), std::string::npos);
    EXPECT_NE(ovh.str().find("scheduling"), std::string::npos);
}

TEST(VcdTest, WellFormedOutput) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::write_vcd(os, s.rec);
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 3"), std::string::npos);
    EXPECT_NE(vcd.find("cpu_rtos_overhead"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    // Timestamps are monotonically non-decreasing.
    std::istringstream in(vcd);
    std::string line;
    long long prev = -1;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#') {
            const long long t = std::stoll(line.substr(1));
            EXPECT_GE(t, prev);
            prev = t;
        }
    }
    EXPECT_GE(prev, 0);
}

TEST(VcdTest, VarNamesAreSanitized) {
    // Regression: raw task names went into $var declarations verbatim, so a
    // name with a space produced "$var wire 3 ! my task $end" — an extra
    // token no VCD parser accepts. Reserved characters break parsing too.
    k::Simulator sim;
    r::Processor cpu("main cpu");
    cpu.create_task({.name = "frame decoder", .priority = 2},
                    [](r::Task& self) { self.compute(10_us); });
    cpu.create_task({.name = "io$drain[0]", .priority = 1},
                    [](r::Task& self) { self.compute(5_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    tr::write_vcd(os, rec);
    std::istringstream in(os.str());
    std::string line;
    int vars = 0;
    while (std::getline(in, line)) {
        if (line.rfind("$var", 0) != 0) continue;
        ++vars;
        // "$var wire <w> <id> <name> $end" — exactly 6 tokens.
        std::istringstream tok(line);
        std::string word;
        int words = 0;
        std::string name;
        while (tok >> word) {
            if (++words == 5) name = word;
        }
        EXPECT_EQ(words, 6) << line;
        EXPECT_EQ(name.find('$'), std::string::npos) << line;
        EXPECT_EQ(name.find('['), std::string::npos) << line;
    }
    EXPECT_EQ(vars, 3); // two tasks + one processor overhead wire
    EXPECT_NE(os.str().find("frame_decoder"), std::string::npos);
    EXPECT_NE(os.str().find("io_drain_0_"), std::string::npos);
    EXPECT_NE(os.str().find("main_cpu_rtos_overhead"), std::string::npos);
}

TEST(VcdTest, CollidingNamesAreDeduped) {
    // "a b" and "a_b" both sanitize to "a_b"; identical references would
    // silently merge two signals in the viewer.
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.create_task({.name = "a b", .priority = 2},
                    [](r::Task& self) { self.compute(1_us); });
    cpu.create_task({.name = "a_b", .priority = 1},
                    [](r::Task& self) { self.compute(1_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    tr::write_vcd(os, rec);
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find(" a_b "), std::string::npos);
    EXPECT_NE(vcd.find(" a_b_2 "), std::string::npos);
}
