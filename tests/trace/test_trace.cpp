// Trace-layer tests: recorder contents, timeline segments and rendering,
// CSV and VCD exporters.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "trace/csv.hpp"
#include "trace/recorder.hpp"
#include "trace/timeline.hpp"
#include "trace/vcd.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {
/// Two-task scenario with one preemption, used by most tests.
struct Scenario {
    Scenario() : cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>()) {
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        rec.attach(cpu);
        rec.attach(irq);
        cpu.create_task({.name = "H", .priority = 5}, [this](r::Task& self) {
            irq.await();
            self.compute(20_us);
        });
        cpu.create_task({.name = "L", .priority = 1},
                        [](r::Task& self) { self.compute(100_us); });
        k::Simulator::current().spawn("hw", [this] {
            k::wait(50_us);
            irq.signal();
        });
    }
    r::Processor cpu;
    m::Event irq{"irq", m::EventPolicy::boolean};
    tr::Recorder rec;
};
} // namespace

TEST(RecorderTest, CapturesStatesOverheadsAndComms) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    EXPECT_FALSE(s.rec.states().empty());
    EXPECT_FALSE(s.rec.overheads().empty());
    ASSERT_FALSE(s.rec.comms().empty());
    // First comm record: H's await did block.
    bool saw_signal = false, saw_await = false;
    for (const auto& c : s.rec.comms()) {
        if (c.kind == m::AccessKind::signal_op) {
            saw_signal = true;
            EXPECT_EQ(c.task, nullptr); // from hardware
            EXPECT_EQ(c.at, 50_us);
        }
        if (c.kind == m::AccessKind::await_op) saw_await = true;
    }
    EXPECT_TRUE(saw_signal);
    EXPECT_TRUE(saw_await);
    EXPECT_EQ(s.rec.all_tasks().size(), 2u);
    s.rec.clear();
    EXPECT_TRUE(s.rec.states().empty());
}

TEST(TimelineTest, SegmentsAreContiguousAndOrdered) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    tr::Timeline tl(s.rec);
    // The trace ends at the last record; final segments close there, never
    // at Time::max() (which used to leak into duration math downstream).
    Time trace_end{};
    for (const auto& st : s.rec.states()) trace_end = std::max(trace_end, st.at);
    for (const auto& o : s.rec.overheads())
        trace_end = std::max(trace_end, o.at + o.duration);
    for (const char* name : {"H", "L"}) {
        const auto segs = tl.segments(name);
        ASSERT_FALSE(segs.empty()) << name;
        for (std::size_t i = 1; i < segs.size(); ++i)
            EXPECT_EQ(segs[i].begin, segs[i - 1].end) << name;
        EXPECT_LT(segs.back().end, Time::max());
        EXPECT_EQ(segs.back().end, trace_end);
        EXPECT_EQ(segs.back().state, r::TaskState::terminated);
    }
    // L was preempted at 50 and resumed at 100 (save/sched + H 20us + save/
    // sched/load). state_at picks the right segment.
    EXPECT_EQ(tl.state_at("L", 49_us), r::TaskState::running);
    EXPECT_EQ(tl.state_at("L", 60_us), r::TaskState::ready);
    EXPECT_EQ(tl.segments("no_such_task").size(), 0u);
}

TEST(TimelineTest, RenderProducesReadableChart) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::Timeline(s.rec).render(os, {.columns = 60});
    const std::string chart = os.str();
    EXPECT_NE(chart.find("legend:"), std::string::npos);
    EXPECT_NE(chart.find("H"), std::string::npos);
    EXPECT_NE(chart.find("cpu.rtos"), std::string::npos);
    EXPECT_NE(chart.find('#'), std::string::npos);
    EXPECT_NE(chart.find('o'), std::string::npos);
    EXPECT_NE(chart.find("accesses:"), std::string::npos);
    EXPECT_NE(chart.find("[blocked]"), std::string::npos);
}

TEST(TimelineTest, EmptyWindowHandled) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::Timeline(s.rec).render(os, {.from = 10_us, .to = 10_us});
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(TimelineTest, DegenerateWindowsNeverDivideByZero) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    // from == to at a non-zero instant, and from beyond the trace end with
    // to defaulted (t1 resolves to the trace end, *before* t0): both spans
    // are degenerate and must not reach the span division.
    for (const tr::Timeline::Options opts :
         {tr::Timeline::Options{.from = 50_us, .to = 50_us},
          tr::Timeline::Options{.from = 10_sec}}) {
        std::ostringstream os;
        tr::Timeline(s.rec).render(os, opts);
        EXPECT_NE(os.str().find("empty"), std::string::npos);
    }
    // An empty recorder renders the same way (trace end == 0 == from).
    tr::Recorder empty;
    std::ostringstream os;
    tr::Timeline(empty).render(os);
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

/// Both engines: state_at past the trace end clamps to the last recorded
/// state instead of reporting a stale mid-trace one.
class TimelineEngineTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(TimelineEngineTest, StateAtClampsPastTraceEnd) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                     GetParam());
    cpu.set_overheads(r::RtosOverheads::uniform(5_us));
    tr::Recorder rec;
    rec.attach(cpu);
    cpu.create_task({.name = "T", .priority = 1},
                    [](r::Task& self) { self.compute(30_us); });
    sim.run();

    tr::Timeline tl(rec);
    const auto segs = tl.segments("T");
    ASSERT_FALSE(segs.empty());
    const Time end = segs.back().end;
    EXPECT_LT(end, Time::max());
    EXPECT_EQ(tl.state_at("T", end), r::TaskState::terminated);
    EXPECT_EQ(tl.state_at("T", end + 1_sec), r::TaskState::terminated);
    EXPECT_EQ(tl.state_at("T", Time::max()), r::TaskState::terminated);
    // Mid-trace queries still hit the enclosing segment (task is computing
    // well past the initial scheduling + context-load overheads).
    EXPECT_EQ(tl.state_at("T", 20_us), r::TaskState::running);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TimelineEngineTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread),
                         [](const auto& info) {
                             return info.param == r::EngineKind::procedure_calls
                                        ? "procedural"
                                        : "rtos_thread";
                         });

TEST(CsvTest, StateRowsWellFormed) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::write_states_csv(os, s.rec);
    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "time_us,task,processor,from,to");
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4) << line;
    }
    EXPECT_GE(rows, 8u);
}

TEST(CsvTest, FieldQuotingFollowsRfc4180) {
    // Unremarkable fields pass through untouched...
    EXPECT_EQ(tr::csv_field("decoder"), "decoder");
    EXPECT_EQ(tr::csv_field("a b"), "a b");
    // ...fields with separators/quotes/newlines are quoted, inner quotes
    // doubled.
    EXPECT_EQ(tr::csv_field("a,b"), "\"a,b\"");
    EXPECT_EQ(tr::csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(tr::csv_field("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(tr::csv_field("cr\rlf"), "\"cr\rlf\"");
    EXPECT_EQ(tr::csv_field(""), "");
}

TEST(CsvTest, HostileTaskNamesStayOneFieldPerColumn) {
    // Regression: writers emitted names verbatim, so "dec,oder" injected an
    // extra CSV column and '"' unbalanced the row.
    k::Simulator sim;
    r::Processor cpu("cpu,0");
    cpu.create_task({.name = "dec,oder", .priority = 2},
                    [](r::Task& self) { self.compute(10_us); });
    cpu.create_task({.name = "say \"hi\"", .priority = 1},
                    [](r::Task& self) { self.compute(5_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    tr::write_states_csv(os, rec);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("\"dec,oder\""), std::string::npos);
    EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_NE(csv.find("\"cpu,0\""), std::string::npos);

    // Every row still parses to exactly 5 fields under RFC-4180 rules.
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line); // header
    while (std::getline(in, line)) {
        int fields = 1;
        bool quoted = false;
        for (const char c : line) {
            if (c == '"') quoted = !quoted;
            if (c == ',' && !quoted) ++fields;
        }
        EXPECT_FALSE(quoted) << line;
        EXPECT_EQ(fields, 5) << line;
    }

    std::ostringstream ovh;
    tr::write_overheads_csv(ovh, rec);
    EXPECT_NE(ovh.str().find("\"dec,oder\""), std::string::npos);
}

TEST(CsvTest, TimestampsKeepSubMicrosecondPrecision) {
    // Regression: times went through Time::to_us() and were printed with
    // default stream precision, collapsing distinct ps instants onto one
    // value. format_us emits the exact decimal instead.
    EXPECT_EQ(tr::format_us(Time::ps(0)), "0");
    EXPECT_EQ(tr::format_us(Time::ps(1)), "0.000001");
    EXPECT_EQ(tr::format_us(Time::ps(1'500'000)), "1.5");
    EXPECT_EQ(tr::format_us(Time::ps(123'456'789)), "123.456789");
    EXPECT_EQ(tr::format_us(Time::us(42)), "42");
    EXPECT_EQ(tr::format_us(Time::ps(1'000'001)), "1.000001");

    // End-to-end: two transitions 500 ns apart stay distinct in the CSV.
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.create_task({.name = "T", .priority = 1}, [](r::Task& self) {
        self.compute(Time::ns(1500));
    });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();
    std::ostringstream os;
    tr::write_states_csv(os, rec);
    EXPECT_NE(os.str().find("1.5,T,"), std::string::npos);
}

TEST(RecorderTest, MarkersCaptureInstantEvents) {
    k::Simulator sim;
    tr::Recorder rec;
    sim.spawn("marker_source", [&rec] {
        k::wait(10_us);
        rec.mark("fault", "crash:ctl");
        k::wait(5_us);
        rec.mark("watchdog", "timeout:ctl");
    });
    sim.run();
    ASSERT_EQ(rec.markers().size(), 2u);
    EXPECT_EQ(rec.markers()[0].at, 10_us);
    EXPECT_EQ(rec.markers()[0].category, "fault");
    EXPECT_EQ(rec.markers()[0].name, "crash:ctl");
    EXPECT_EQ(rec.markers()[1].at, 15_us);
    EXPECT_EQ(rec.markers()[1].category, "watchdog");
    rec.clear();
    EXPECT_TRUE(rec.markers().empty());
}

TEST(CsvTest, CommAndOverheadRows) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream comms, ovh;
    tr::write_comms_csv(comms, s.rec);
    tr::write_overheads_csv(ovh, s.rec);
    EXPECT_NE(comms.str().find("irq"), std::string::npos);
    EXPECT_NE(comms.str().find("<hw>"), std::string::npos);
    EXPECT_NE(ovh.str().find("context_save"), std::string::npos);
    EXPECT_NE(ovh.str().find("scheduling"), std::string::npos);
}

TEST(VcdTest, WellFormedOutput) {
    k::Simulator sim;
    Scenario s;
    sim.run();
    std::ostringstream os;
    tr::write_vcd(os, s.rec);
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 3"), std::string::npos);
    EXPECT_NE(vcd.find("cpu_rtos_overhead"), std::string::npos);
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    // Timestamps are monotonically non-decreasing.
    std::istringstream in(vcd);
    std::string line;
    long long prev = -1;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] == '#') {
            const long long t = std::stoll(line.substr(1));
            EXPECT_GE(t, prev);
            prev = t;
        }
    }
    EXPECT_GE(prev, 0);
}

TEST(VcdTest, VarNamesAreSanitized) {
    // Regression: raw task names went into $var declarations verbatim, so a
    // name with a space produced "$var wire 3 ! my task $end" — an extra
    // token no VCD parser accepts. Reserved characters break parsing too.
    k::Simulator sim;
    r::Processor cpu("main cpu");
    cpu.create_task({.name = "frame decoder", .priority = 2},
                    [](r::Task& self) { self.compute(10_us); });
    cpu.create_task({.name = "io$drain[0]", .priority = 1},
                    [](r::Task& self) { self.compute(5_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    tr::write_vcd(os, rec);
    std::istringstream in(os.str());
    std::string line;
    int vars = 0;
    while (std::getline(in, line)) {
        if (line.rfind("$var", 0) != 0) continue;
        ++vars;
        // "$var wire <w> <id> <name> $end" — exactly 6 tokens.
        std::istringstream tok(line);
        std::string word;
        int words = 0;
        std::string name;
        while (tok >> word) {
            if (++words == 5) name = word;
        }
        EXPECT_EQ(words, 6) << line;
        EXPECT_EQ(name.find('$'), std::string::npos) << line;
        EXPECT_EQ(name.find('['), std::string::npos) << line;
    }
    EXPECT_EQ(vars, 3); // two tasks + one processor overhead wire
    EXPECT_NE(os.str().find("frame_decoder"), std::string::npos);
    EXPECT_NE(os.str().find("io_drain_0_"), std::string::npos);
    EXPECT_NE(os.str().find("main_cpu_rtos_overhead"), std::string::npos);
}

TEST(VcdTest, CollidingNamesAreDeduped) {
    // "a b" and "a_b" both sanitize to "a_b"; identical references would
    // silently merge two signals in the viewer.
    k::Simulator sim;
    r::Processor cpu("cpu");
    cpu.create_task({.name = "a b", .priority = 2},
                    [](r::Task& self) { self.compute(1_us); });
    cpu.create_task({.name = "a_b", .priority = 1},
                    [](r::Task& self) { self.compute(1_us); });
    tr::Recorder rec;
    rec.attach(cpu);
    sim.run();

    std::ostringstream os;
    tr::write_vcd(os, rec);
    const std::string vcd = os.str();
    EXPECT_NE(vcd.find(" a_b "), std::string::npos);
    EXPECT_NE(vcd.find(" a_b_2 "), std::string::npos);
}
