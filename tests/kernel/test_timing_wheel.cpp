// Regression tests for the timing-wheel timed queue: generation-checked
// lazy cancellation must keep the queue bounded under arm/cancel storms
// (tombstones are reclaimed by slot drains and compaction sweeps), and
// tombstoned entries must never count as pending work — a run that goes
// dry with only dead entries still produces a StallReport naming the stuck
// processes instead of advancing time to the corpses' expiry instants.
#include <gtest/gtest.h>

#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Event;
using k::Process;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

// Arms 10k long timeouts that are each cancelled by an event arriving
// first. Without compaction every cancellation would leave a tombstone in
// the 1s bucket and the queue would grow without bound; with it the arena
// high-water mark stays a small constant.
void arm_cancel_storm(bool skip_ahead) {
    Simulator sim;
    sim.set_skip_ahead(skip_ahead);
    Event ev("ev");
    constexpr int kRounds = 10000;
    int woken_by_event = 0;
    sim.spawn("waiter", [&] {
        for (int i = 0; i < kRounds; ++i)
            if (k::wait(1_sec, ev) == Process::WakeReason::event)
                ++woken_by_event;
    });
    sim.spawn("notifier", [&] {
        for (int i = 0; i < kRounds; ++i) {
            k::wait(1_us);
            ev.notify();
        }
    });
    sim.run();
    EXPECT_EQ(woken_by_event, kRounds);
    // Every cancelled timeout was reclaimed: nothing live is left, the
    // tombstone backlog is below the compaction threshold, and the arena
    // never grew anywhere near the 10k entries that were armed.
    EXPECT_EQ(sim.timed_live(), 0u);
    EXPECT_LE(sim.timed_tombstones(), 32u);
    EXPECT_LE(sim.timed_arena_size(), 64u);
    EXPECT_GE(sim.timed_compactions(), 1u);
}

} // namespace

TEST(TimingWheelTest, ArmCancelStormStaysBounded) {
    arm_cancel_storm(/*skip_ahead=*/false);
}

TEST(TimingWheelTest, ArmCancelStormStaysBoundedWithSkipAhead) {
    arm_cancel_storm(/*skip_ahead=*/true);
}

namespace {

// A process arms a long timeout, is woken early by an event (leaving a
// tombstone in the wheel), then blocks forever. The run must go dry at the
// wake instant — the tombstone is not pending work — and the stall report
// must name the stuck process.
void tombstone_only_stall(bool skip_ahead) {
    Simulator sim;
    sim.set_skip_ahead(skip_ahead);
    sim.set_deadlock_detection(true);
    Event ev("ev");
    Event never("never");
    sim.spawn("victim", [&] {
        const auto r = k::wait(Time::sec(3600), ev); // 1h timeout, cancelled by the notify below
        EXPECT_EQ(r, Process::WakeReason::event);
        k::wait(never); // no one will ever notify this
    });
    sim.spawn("notifier", [&] {
        k::wait(1_us);
        ev.notify();
    });
    sim.run();
    // The cancelled 1h timeout is still a tombstone (far below the
    // compaction threshold), yet the run ended at the wake instant: dead
    // entries neither hold the simulation alive nor advance time.
    EXPECT_GE(sim.timed_tombstones(), 1u);
    EXPECT_EQ(sim.timed_live(), 0u);
    EXPECT_EQ(sim.now(), 1_us);
    const Simulator::StallReport& report = sim.deadlock_report();
    ASSERT_TRUE(report.detected());
    EXPECT_EQ(report.at, 1_us);
    ASSERT_EQ(report.blocked.size(), 1u);
    EXPECT_EQ(report.blocked[0].process, "victim");
    ASSERT_EQ(report.blocked[0].waiting_on.size(), 1u);
    EXPECT_EQ(report.blocked[0].waiting_on[0], "never");
}

} // namespace

TEST(TimingWheelTest, TombstoneOnlyQueueStillReportsStall) {
    tombstone_only_stall(/*skip_ahead=*/false);
}

TEST(TimingWheelTest, TombstoneOnlyQueueStillReportsStallWithSkipAhead) {
    tombstone_only_stall(/*skip_ahead=*/true);
}
