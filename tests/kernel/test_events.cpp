// Unit tests for Event notification semantics (immediate / delta / timed,
// SystemC override rules) and the wait() family.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Event;
using k::Process;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(EventTest, TimedNotifyWakesWaiterAtExactTime) {
    Simulator sim;
    Event e("e");
    Time woke_at;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        k::wait(10_us);
        e.notify(5_us);
    });
    sim.run();
    EXPECT_EQ(woke_at, 15_us);
}

TEST(EventTest, ImmediateNotifyWakesInCurrentEvaluationPhase) {
    Simulator sim;
    Event e("e");
    std::vector<int> order;
    sim.spawn("waiter", [&] {
        k::wait(e);
        order.push_back(2);
    });
    sim.spawn("notifier", [&] {
        k::wait(1_us);
        order.push_back(1);
        e.notify(); // immediate: waiter runs in this same evaluation phase
        order.push_back(3);
    });
    const auto deltas_before = sim.delta_count();
    sim.run();
    // Waiter resumed after the notifier yielded, same time, and because the
    // notification was immediate no extra delta cycle was required for it.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(sim.now(), 1_us);
    (void)deltas_before;
}

TEST(EventTest, DeltaNotifyWakesNextDeltaSameTime) {
    Simulator sim;
    Event e("e");
    Time woke_at = Time::max();
    std::uint64_t woke_delta = 0;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke_at = sim.now();
        woke_delta = sim.delta_count();
    });
    sim.spawn("notifier", [&] {
        k::wait(3_us);
        e.notify_delta();
    });
    sim.run();
    EXPECT_EQ(woke_at, 3_us);
    EXPECT_GE(woke_delta, 1u);
}

TEST(EventTest, NotifyZeroIsDelta) {
    Simulator sim;
    Event e("e");
    bool woke = false;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke = true;
        EXPECT_EQ(sim.now(), Time::zero());
    });
    sim.spawn("notifier", [&] { e.notify(Time::zero()); });
    sim.run();
    EXPECT_TRUE(woke);
}

TEST(EventTest, EarlierTimedNotifyWinsOverLater) {
    Simulator sim;
    Event e("e");
    Time woke_at;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        e.notify(10_us);
        e.notify(4_us); // earlier: replaces the pending one
        e.notify(8_us); // later than pending: discarded
    });
    sim.run();
    EXPECT_EQ(woke_at, 4_us);
}

TEST(EventTest, DeltaOverridesTimed) {
    Simulator sim;
    Event e("e");
    Time woke_at = Time::max();
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        k::wait(2_us);
        e.notify(10_us);
        e.notify_delta(); // overrides the timed notification
    });
    sim.run();
    EXPECT_EQ(woke_at, 2_us);
}

TEST(EventTest, CancelDiscardsPendingNotification) {
    Simulator sim;
    Event e("e");
    bool woke = false;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke = true;
    });
    sim.spawn("notifier", [&] {
        e.notify(5_us);
        k::wait(1_us);
        e.cancel();
    });
    sim.run();
    EXPECT_FALSE(woke);
}

TEST(EventTest, CancelThenRenotifyWorks) {
    Simulator sim;
    Event e("e");
    Time woke_at = Time::max();
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        e.notify(5_us);
        e.cancel();
        e.notify(9_us);
    });
    sim.run();
    EXPECT_EQ(woke_at, 9_us);
}

TEST(EventTest, NotifyWithNoWaitersIsLost) {
    // "Fugitive" kernel-event semantics: no memorization (the paper's
    // Event relation adds boolean/counter memorization on top of this).
    Simulator sim;
    Event e("e");
    bool woke = false;
    sim.spawn("notifier", [&] { e.notify(); });
    sim.spawn("late_waiter", [&] {
        k::wait(1_us); // starts waiting after the notify
        k::wait(e);
        woke = true;
    });
    sim.run();
    EXPECT_FALSE(woke);
}

TEST(EventTest, MultipleWaitersAllWake) {
    Simulator sim;
    Event e("e");
    int woken = 0;
    for (int i = 0; i < 5; ++i) {
        sim.spawn("w" + std::to_string(i), [&] {
            k::wait(e);
            ++woken;
        });
    }
    sim.spawn("notifier", [&] {
        k::wait(2_us);
        e.notify();
    });
    sim.run();
    EXPECT_EQ(woken, 5);
}

TEST(EventTest, WaitWithTimeoutTimesOut) {
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    sim.spawn("waiter", [&] {
        reason = sim.wait(5_us, e);
        EXPECT_EQ(sim.now(), 5_us);
    });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::timeout);
}

TEST(EventTest, WaitWithTimeoutEventFirst) {
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    sim.spawn("waiter", [&] {
        reason = sim.wait(5_us, e);
        EXPECT_EQ(sim.now(), 2_us);
    });
    sim.spawn("notifier", [&] {
        k::wait(2_us);
        e.notify();
    });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::event);
    // After an event wake the timeout must not fire later.
    EXPECT_EQ(sim.now(), 2_us);
}

TEST(EventTest, WaitAnyReturnsFiringEvent) {
    Simulator sim;
    Event a("a"), b("b");
    Event* fired = nullptr;
    sim.spawn("waiter", [&] { fired = &sim.wait_any({&a, &b}); });
    sim.spawn("notifier", [&] {
        k::wait(1_us);
        b.notify();
    });
    sim.run();
    ASSERT_NE(fired, nullptr);
    EXPECT_EQ(fired, &b);
}

TEST(EventTest, WaitAnyWithTimeout) {
    Simulator sim;
    Event a("a"), b("b");
    Event* fired = &a;
    sim.spawn("waiter", [&] {
        std::vector<Event*> evs{&a, &b};
        fired = sim.wait_any(3_us, evs);
        EXPECT_EQ(sim.now(), 3_us);
    });
    sim.run();
    EXPECT_EQ(fired, nullptr);
}

TEST(EventTest, DestroyedEventUnregistersWaiter) {
    Simulator sim;
    auto e = std::make_unique<Event>("short_lived");
    Event other("other");
    Event* fired = nullptr;
    sim.spawn("waiter", [&] { fired = &sim.wait_any({e.get(), &other}); });
    sim.spawn("killer", [&] {
        k::wait(1_us);
        e.reset(); // destroy while waited upon
        k::wait(1_us);
        other.notify();
    });
    sim.run();
    EXPECT_EQ(fired, &other);
}

TEST(EventTest, WaitZeroIsOneDeltaNotATimeAdvance) {
    Simulator sim;
    std::vector<int> order;
    sim.spawn("a", [&] {
        k::wait(Time::zero());
        order.push_back(2);
        EXPECT_EQ(sim.now(), Time::zero());
    });
    sim.spawn("b", [&] { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventTest, HasPendingReflectsState) {
    Simulator sim;
    Event e("e");
    sim.spawn("p", [&] {
        EXPECT_FALSE(e.has_pending());
        e.notify(5_us);
        EXPECT_TRUE(e.has_pending());
        EXPECT_EQ(e.pending_time(), sim.now() + 5_us);
        e.cancel();
        EXPECT_FALSE(e.has_pending());
    });
    sim.run();
}

TEST(EventTest, MaxTimeoutMeansNever) {
    // Regression: now + Time::max() used to wrap and fire the "infinite"
    // timeout in the past, i.e. immediately. A Time::max() timeout must
    // never fire: the event still wins whenever it is delivered...
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    Time woke_at;
    sim.spawn("waiter", [&] {
        k::wait(25_us); // start the wait from a non-zero now()
        reason = sim.wait(Time::max(), e);
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        k::wait(40_us);
        e.notify();
    });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::event);
    EXPECT_EQ(woke_at, 40_us);
}

TEST(EventTest, MaxTimeoutWithoutDeliveryBlocksForever) {
    // ...and with no delivery the waiter stays blocked: the run goes dry at
    // the last real activity instead of jumping to t = Time::max().
    Simulator sim;
    Event e("never");
    bool woke = false;
    sim.spawn("waiter", [&] {
        (void)sim.wait(Time::max(), e);
        woke = true;
    });
    sim.spawn("other", [&] { k::wait(10_us); });
    sim.run();
    EXPECT_FALSE(woke);
    EXPECT_EQ(sim.now(), 10_us);
}

TEST(EventTest, MaxTimeoutFromTimeZero) {
    // The sentinel also holds at now() == 0 (no offset to saturate away).
    Simulator sim;
    Event e("never");
    bool woke = false;
    sim.spawn("waiter", [&] {
        (void)sim.wait(Time::max(), e);
        woke = true;
    });
    sim.run();
    EXPECT_FALSE(woke);
    EXPECT_EQ(sim.now(), Time::zero());
}

// ---- timeout-tie semantics: "on an exact tie the event wins" ----
//
// The tie must hold regardless of which side armed its timed entry first.
// Before kind-aware ordering in the timed heap, a timeout armed *before* the
// event's timed notification popped first and stole the tie.

TEST(EventTest, TimeoutTieEventWinsWhenTimeoutArmedFirst) {
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    Time woke_at;
    sim.spawn("waiter", [&] {
        reason = sim.wait(5_us, e); // arms the timeout entry first
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] {
        e.notify(5_us); // timed notify lands on the exact deadline
    });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::event);
    EXPECT_EQ(woke_at, 5_us);
}

TEST(EventTest, TimeoutTieEventWinsWhenNotifyArmedFirst) {
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    sim.spawn("notifier", [&] { e.notify(5_us); });
    sim.spawn("waiter", [&] { reason = sim.wait(5_us, e); });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::event);
}

TEST(EventTest, WaitAnyTimeoutTieEventWins) {
    Simulator sim;
    Event a("a");
    Event b("b");
    Event* fired = nullptr;
    Time woke_at;
    sim.spawn("waiter", [&] {
        std::vector<Event*> evs{&a, &b};
        fired = sim.wait_any(7_us, evs); // timeout armed before the notify
        woke_at = sim.now();
    });
    sim.spawn("notifier", [&] { b.notify(7_us); });
    sim.run();
    EXPECT_EQ(fired, &b);
    EXPECT_EQ(woke_at, 7_us);
}

TEST(EventTest, TimeoutTieLosesToEventEvenAcrossReArm) {
    // A canceled-then-re-armed notification still beats a timeout armed
    // earlier at the same instant.
    Simulator sim;
    Event e("e");
    Process::WakeReason reason{};
    sim.spawn("waiter", [&] { reason = sim.wait(10_us, e); });
    sim.spawn("notifier", [&] {
        e.notify(4_us);
        e.cancel();
        e.notify(10_us);
    });
    sim.run();
    EXPECT_EQ(reason, Process::WakeReason::event);
    EXPECT_EQ(sim.now(), 10_us);
}
