// Kernel robustness and edge-case tests: reporter behaviour, stale timed
// entries, stop/resume, mid-run spawning, event lifetime corner cases and
// large-scale stability.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Event;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(ReporterTest, ThresholdFiltersAndCounts) {
    k::Reporter rep;
    std::vector<std::string> seen;
    rep.set_sink([&](k::Severity s, const std::string& msg) {
        seen.push_back(std::string(k::to_string(s)) + ":" + msg);
    });
    rep.set_threshold(k::Severity::warning);
    rep.report(k::Severity::debug, "d");
    rep.report(k::Severity::info, "i");
    rep.report(k::Severity::warning, "w");
    EXPECT_EQ(seen, (std::vector<std::string>{"warning:w"}));
    EXPECT_EQ(rep.count(k::Severity::debug), 1u);
    EXPECT_EQ(rep.count(k::Severity::info), 1u);
    EXPECT_EQ(rep.count(k::Severity::warning), 1u);
    EXPECT_THROW(rep.report(k::Severity::error, "boom"), k::SimulationError);
    EXPECT_EQ(rep.count(k::Severity::error), 1u);
    EXPECT_EQ(seen.back(), "error:boom"); // sink sees errors before the throw
}

TEST(RobustnessTest, RepeatedRenotifyLeavesNoStaleWakeups) {
    // Hammer the timed queue with overridden notifications: only the final
    // schedule must fire.
    Simulator sim;
    Event e("e");
    int wakes = 0;
    sim.spawn("waiter", [&] {
        for (;;) {
            k::wait(e);
            ++wakes;
        }
    });
    sim.spawn("renotifier", [&] {
        for (int i = 100; i >= 1; --i) e.notify(Time::us(static_cast<Time::rep>(i)));
        // pending is now at +1us; all later ones were discarded/overridden
    });
    sim.run_until(500_us);
    EXPECT_EQ(wakes, 1);
}

TEST(RobustnessTest, CancelInsideHandlerChain) {
    Simulator sim;
    Event a("a"), b("b");
    int b_wakes = 0;
    sim.spawn("w", [&] {
        k::wait(a);
        b.cancel(); // cancel b's pending notification from within a handler
    });
    sim.spawn("w2", [&] {
        k::wait(b);
        ++b_wakes;
    });
    sim.spawn("driver", [&] {
        b.notify(10_us);
        a.notify(5_us);
    });
    sim.run();
    EXPECT_EQ(b_wakes, 0);
}

TEST(RobustnessTest, StopAndResumeKeepsState) {
    Simulator sim;
    int ticks = 0;
    sim.spawn("p", [&] {
        for (;;) {
            k::wait(10_us);
            ++ticks;
            if (ticks == 3) sim.stop();
        }
    });
    sim.run();
    EXPECT_EQ(ticks, 3);
    sim.run_until(100_us); // resume after stop
    EXPECT_EQ(ticks, 10);
}

TEST(RobustnessTest, CascadedMidRunSpawns) {
    Simulator sim;
    int leaves = 0;
    std::function<void(int)> spawn_tree = [&](int depth) {
        if (depth == 0) {
            ++leaves;
            return;
        }
        for (int i = 0; i < 2; ++i) {
            sim.spawn("n", [&, depth] {
                k::wait(1_us);
                spawn_tree(depth - 1);
            });
        }
    };
    sim.spawn("root", [&] { spawn_tree(4); });
    sim.run();
    EXPECT_EQ(leaves, 16);
    EXPECT_EQ(sim.process_count(), 1u + 2 + 4 + 8 + 16);
}

TEST(RobustnessTest, ManyProcessesManyEvents) {
    // Stability at scale: 200 processes ping-ponging through 200 events for
    // many rounds; checks completion and bounded delta counts.
    Simulator sim;
    constexpr int n = 200;
    constexpr int rounds = 50;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < n; ++i)
        evs.push_back(std::make_unique<Event>("e" + std::to_string(i)));
    int done = 0;
    for (int i = 0; i < n; ++i) {
        sim.spawn("p" + std::to_string(i), [&, i] {
            for (int round = 0; round < rounds; ++round) {
                if (i == 0) {
                    k::wait(1_us);
                    evs[1]->notify();
                    if (n > 2) k::wait(*evs[0]);
                } else {
                    k::wait(*evs[static_cast<std::size_t>(i)]);
                    evs[static_cast<std::size_t>((i + 1) % n)]->notify();
                }
            }
            ++done;
        });
    }
    sim.run_until(1_sec);
    EXPECT_EQ(done, n);
}

TEST(RobustnessTest, TerminatedProcessIgnoresLateNotifications) {
    Simulator sim;
    Event e("e");
    auto& p = sim.spawn("short", [&] { k::wait(1_us); });
    sim.spawn("late", [&] {
        k::wait(10_us);
        e.notify(); // p is long gone
    });
    sim.run();
    EXPECT_TRUE(p.terminated());
}

TEST(RobustnessTest, RunIsNotReentrant) {
    Simulator sim;
    sim.spawn("p", [&] {
        EXPECT_THROW(sim.run(), k::SimulationError);
        k::wait(1_us);
    });
    sim.run();
}

TEST(RobustnessTest, ZeroLengthRunUntil) {
    Simulator sim;
    bool ran = false;
    sim.spawn("p", [&] { ran = true; });
    sim.run_until(Time::zero()); // processes at t=0 still execute
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.now(), Time::zero());
}

TEST(RobustnessTest, EventNotifyFromSchedulerContextBeforeRun) {
    Simulator sim;
    Event e("e");
    bool woke = false;
    sim.spawn("waiter", [&] {
        k::wait(e);
        woke = true;
    });
    e.notify(5_us); // scheduled from outside any process
    sim.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(sim.now(), 5_us);
}

TEST(RobustnessTest, WaitAnyWithManyEvents) {
    Simulator sim;
    std::vector<std::unique_ptr<Event>> evs;
    for (int i = 0; i < 64; ++i)
        evs.push_back(std::make_unique<Event>("e" + std::to_string(i)));
    Event* fired = nullptr;
    sim.spawn("waiter", [&] {
        std::vector<Event*> ptrs;
        for (auto& e : evs) ptrs.push_back(e.get());
        fired = &sim.wait_any(ptrs);
    });
    sim.spawn("notifier", [&] {
        k::wait(3_us);
        evs[37]->notify();
    });
    sim.run();
    EXPECT_EQ(fired, evs[37].get());
    // All other registrations were cleaned up: a second notify wakes nobody.
    for (auto& e : evs) e->notify();
    SUCCEED();
}

TEST(RobustnessTest, LongHorizonTimeArithmetic) {
    // Days of simulated time with microsecond events must not overflow.
    Simulator sim;
    Time last{};
    sim.spawn("p", [&] {
        for (int i = 0; i < 5; ++i) {
            k::wait(Time::sec(86400)); // one day per step
            last = sim.now();
        }
    });
    sim.run();
    EXPECT_EQ(last, Time::sec(5 * 86400));
}
