// Method-process tests (SC_METHOD-like): initialization run, static
// sensitivity, next_trigger overrides, interaction with signals and threads,
// and the wait()-inside-method error.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/channels.hpp"
#include "kernel/clock.hpp"
#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Event;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(MethodTest, RunsOnceAtStartWithoutSensitivity) {
    Simulator sim;
    int runs = 0;
    sim.spawn_method("m", [&] { ++runs; }, {});
    sim.spawn("t", [] { k::wait(10_us); });
    sim.run();
    EXPECT_EQ(runs, 1); // initialization only; stays dormant afterwards
}

TEST(MethodTest, StaticSensitivityRetriggers) {
    Simulator sim;
    Event e("e");
    std::vector<Time> runs;
    sim.spawn_method("m", [&] { runs.push_back(sim.now()); }, {&e});
    sim.spawn("driver", [&] {
        for (int i = 0; i < 3; ++i) {
            k::wait(10_us);
            e.notify();
        }
    });
    sim.run();
    EXPECT_EQ(runs, (std::vector<Time>{Time::zero(), 10_us, 20_us, 30_us}));
}

TEST(MethodTest, NextTriggerTimeOverridesSensitivity) {
    Simulator sim;
    Event e("e");
    std::vector<Time> runs;
    sim.spawn_method("m",
                     [&] {
                         runs.push_back(sim.now());
                         if (runs.size() == 1)
                             sim.next_trigger(7_us); // ignore e this once
                     },
                     {&e});
    sim.spawn("driver", [&] {
        k::wait(3_us);
        e.notify(); // absorbed: next_trigger(7us) overrides sensitivity
        k::wait(10_us);
        e.notify(); // static sensitivity is back: retriggers at 13us
    });
    sim.run();
    EXPECT_EQ(runs, (std::vector<Time>{Time::zero(), 7_us, 13_us}));
}

TEST(MethodTest, NextTriggerEventOverridesSensitivity) {
    Simulator sim;
    Event normal("normal"), special("special");
    std::vector<std::string> log;
    sim.spawn_method("m",
                     [&] {
                         log.push_back(sim.now().to_string());
                         sim.next_trigger(special); // only special wakes us
                     },
                     {&normal});
    sim.spawn("driver", [&] {
        k::wait(5_us);
        normal.notify(); // ignored
        k::wait(5_us);
        special.notify(); // triggers at 10us
    });
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{"0 s", "10 us"}));
}

TEST(MethodTest, LastNextTriggerWins) {
    Simulator sim;
    Event e("e");
    std::vector<Time> runs;
    sim.spawn_method("m",
                     [&] {
                         runs.push_back(sim.now());
                         if (runs.size() == 1) {
                             sim.next_trigger(100_us);
                             sim.next_trigger(5_us); // replaces the 100us one
                         }
                     },
                     {});
    sim.run();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[1], 5_us);
}

TEST(MethodTest, WaitInsideMethodThrows) {
    Simulator sim;
    sim.spawn_method("bad", [&] { sim.wait(1_us); }, {});
    EXPECT_THROW(sim.run(), k::SimulationError);
}

TEST(MethodTest, MethodWatchesSignalAndClock) {
    // Hardware-style usage: a method sensitive to a signal's value-changed
    // event, driven by a thread toggling the signal on clock ticks.
    Simulator sim;
    k::Signal<bool> sig("sig", false);
    k::Clock clk("clk", 10_us);
    clk.set_max_ticks(6);
    int edges = 0;
    sim.spawn_method("edge_counter", [&] { ++edges; },
                     {&sig.value_changed_event()});
    sim.spawn("driver", [&] {
        for (;;) {
            k::wait(clk.tick_event());
            sig.write(!sig.read());
        }
    });
    sim.run();
    // The method's initialization run counts too: 1 + 5 observed toggles
    // (the driver misses the first tick while reaching its wait).
    EXPECT_EQ(edges, 1 + 5);
}

TEST(MethodTest, MethodAndThreadInterleaveDeterministically) {
    Simulator sim;
    Event e("e");
    std::vector<std::string> order;
    sim.spawn_method("m", [&] { order.push_back("m@" + sim.now().to_string()); },
                     {&e});
    sim.spawn("t", [&] {
        order.push_back("t@" + sim.now().to_string());
        k::wait(5_us);
        e.notify();
        order.push_back("t2@" + sim.now().to_string());
    });
    sim.run();
    EXPECT_EQ(order, (std::vector<std::string>{"m@0 s", "t@0 s", "t2@5 us",
                                               "m@5 us"}));
}

TEST(MethodTest, MethodsNeverTerminate) {
    Simulator sim;
    auto& m = sim.spawn_method("m", [] {}, {});
    sim.run();
    EXPECT_FALSE(m.terminated());
    EXPECT_EQ(m.kind(), k::Process::Kind::method);
    EXPECT_EQ(m.activations(), 1u);
}
