// Tests for the Module base class (sc_module-like container) and for
// building hierarchical hardware blocks out of it.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/channels.hpp"
#include "kernel/module.hpp"
#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {

/// A small hardware block: doubles every input token after a fixed delay.
class Doubler final : public k::Module {
public:
    Doubler(std::string name, k::Fifo<int>& in, k::Fifo<int>& out, Time delay)
        : Module(std::move(name)), in_(in), out_(out), delay_(delay) {
        spawn_thread("main", [this] {
            for (;;) {
                const int v = in_.read();
                k::wait(delay_);
                out_.write(2 * v);
            }
        });
    }

private:
    k::Fifo<int>& in_;
    k::Fifo<int>& out_;
    Time delay_;
};

} // namespace

TEST(ModuleTest, NamesAndSimulatorBinding) {
    Simulator sim;
    k::Fifo<int> in("in", 4), out("out", 4);
    Doubler d("doubler", in, out, 5_us);
    EXPECT_EQ(d.name(), "doubler");
    EXPECT_EQ(&d.simulator(), &sim);
    // The spawned process carries the hierarchical name.
    EXPECT_EQ(sim.process_count(), 1u);
}

TEST(ModuleTest, PipelineOfModules) {
    Simulator sim;
    k::Fifo<int> a("a", 4), b("b", 4), c("c", 4);
    Doubler first("first", a, b, 3_us);
    Doubler second("second", b, c, 3_us);
    std::vector<int> results;
    std::vector<Time> at;
    sim.spawn("source", [&] {
        for (int i = 1; i <= 3; ++i) a.write(i);
    });
    sim.spawn("sink", [&] {
        for (int i = 0; i < 3; ++i) {
            results.push_back(c.read());
            at.push_back(sim.now());
        }
    });
    sim.run();
    EXPECT_EQ(results, (std::vector<int>{4, 8, 12}));
    // First token: 3us + 3us pipeline latency.
    EXPECT_EQ(at[0], 6_us);
    // Steady state: one token per 3us (pipelined).
    EXPECT_EQ(at[1], 9_us);
    EXPECT_EQ(at[2], 12_us);
}

TEST(ModuleTest, MethodAndThreadMixInsideModule) {
    // A module may combine a clocked method (edge detector) with a worker
    // thread, the common SystemC structuring idiom.
    Simulator sim;

    class EdgeCounter final : public k::Module {
    public:
        explicit EdgeCounter(k::Signal<bool>& sig)
            : Module("edges"), sig_(sig) {
            simulator().spawn_method(
                name() + ".watch", [this] { ++activations_; },
                {&sig_.value_changed_event()});
        }
        int activations() const { return activations_; }

    private:
        k::Signal<bool>& sig_;
        int activations_ = 0;
    };

    k::Signal<bool> sig("sig", false);
    EdgeCounter counter(sig);
    sim.spawn("driver", [&] {
        for (int i = 0; i < 4; ++i) {
            k::wait(10_us);
            sig.write(!sig.read());
        }
    });
    sim.run();
    EXPECT_EQ(counter.activations(), 1 + 4); // init run + 4 edges
}
