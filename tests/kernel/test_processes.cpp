// Unit tests for process scheduling: spawn, wait(Time), termination,
// done-events, run/run_until, stop, statistics, error paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Event;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(ProcessTest, RunsAtTimeZero) {
    Simulator sim;
    Time started = Time::max();
    sim.spawn("p", [&] { started = sim.now(); });
    sim.run();
    EXPECT_EQ(started, Time::zero());
}

TEST(ProcessTest, WaitAdvancesTime) {
    Simulator sim;
    std::vector<Time> stamps;
    sim.spawn("p", [&] {
        stamps.push_back(sim.now());
        k::wait(10_us);
        stamps.push_back(sim.now());
        k::wait(5_us);
        stamps.push_back(sim.now());
    });
    sim.run();
    EXPECT_EQ(stamps, (std::vector<Time>{Time::zero(), 10_us, 15_us}));
}

TEST(ProcessTest, ProcessesInterleaveByTime) {
    Simulator sim;
    std::vector<std::string> log;
    sim.spawn("a", [&] {
        k::wait(2_us);
        log.push_back("a@2");
        k::wait(4_us);
        log.push_back("a@6");
    });
    sim.spawn("b", [&] {
        k::wait(3_us);
        log.push_back("b@3");
        k::wait(4_us);
        log.push_back("b@7");
    });
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a@2", "b@3", "a@6", "b@7"}));
}

TEST(ProcessTest, EqualTimeWakesAreFifoOrdered) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        sim.spawn("p" + std::to_string(i), [&, i] {
            k::wait(5_us);
            order.push_back(i);
        });
    }
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ProcessTest, DoneEventFiresOnTermination) {
    Simulator sim;
    bool joined = false;
    auto& worker = sim.spawn("worker", [&] { k::wait(7_us); });
    sim.spawn("joiner", [&] {
        k::wait(worker.done_event());
        joined = true;
        EXPECT_EQ(sim.now(), 7_us);
        EXPECT_TRUE(worker.terminated());
    });
    sim.run();
    EXPECT_TRUE(joined);
}

TEST(ProcessTest, SpawnDuringSimulationRunsSameInstant) {
    Simulator sim;
    Time child_started = Time::max();
    sim.spawn("parent", [&] {
        k::wait(4_us);
        sim.spawn("child", [&] { child_started = sim.now(); });
        k::wait(1_us);
    });
    sim.run();
    EXPECT_EQ(child_started, 4_us);
}

TEST(ProcessTest, RunUntilStopsAtBoundaryAndSetsNow) {
    Simulator sim;
    int ticks = 0;
    sim.spawn("p", [&] {
        for (;;) {
            k::wait(10_us);
            ++ticks;
        }
    });
    sim.run_until(35_us);
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(sim.now(), 35_us);
    sim.run_until(40_us);
    EXPECT_EQ(ticks, 4);
    EXPECT_EQ(sim.now(), 40_us);
}

TEST(ProcessTest, RunUntilIsResumable) {
    Simulator sim;
    std::vector<Time> stamps;
    sim.spawn("p", [&] {
        for (int i = 0; i < 4; ++i) {
            k::wait(10_us);
            stamps.push_back(sim.now());
        }
    });
    sim.run_until(15_us);
    EXPECT_EQ(stamps.size(), 1u);
    sim.run_until(45_us);
    EXPECT_EQ(stamps.size(), 4u);
    EXPECT_EQ(stamps.back(), 40_us);
}

TEST(ProcessTest, StopRequestEndsRun) {
    Simulator sim;
    int iterations = 0;
    sim.spawn("p", [&] {
        for (;;) {
            k::wait(1_us);
            if (++iterations == 5) sim.stop();
        }
    });
    sim.run();
    EXPECT_EQ(iterations, 5);
    EXPECT_EQ(sim.now(), 5_us);
}

TEST(ProcessTest, ActivationCountsTracked) {
    Simulator sim;
    auto& p = sim.spawn("p", [&] {
        k::wait(1_us);
        k::wait(1_us);
    });
    sim.run();
    // initial start + two wake-ups
    EXPECT_EQ(p.activations(), 3u);
    EXPECT_GE(sim.process_activations(), 3u);
}

TEST(ProcessTest, WaitOutsideProcessThrows) {
    Simulator sim;
    EXPECT_THROW(sim.wait(1_us), k::SimulationError);
    Event e("e");
    EXPECT_THROW(sim.wait(e), k::SimulationError);
}

TEST(ProcessTest, ExceptionInProcessPropagatesFromRun) {
    Simulator sim;
    sim.spawn("bad", [&] {
        k::wait(1_us);
        throw std::runtime_error("model bug");
    });
    EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(ProcessTest, DeltaLoopDetected) {
    Simulator sim;
    sim.set_max_deltas_per_instant(1000);
    sim.reporter().set_sink([](k::Severity, const std::string&) {});
    Event ping("ping"), pong("pong");
    sim.spawn("a", [&] {
        for (;;) {
            ping.notify_delta();
            k::wait(pong);
        }
    });
    sim.spawn("b", [&] {
        for (;;) {
            k::wait(ping);
            pong.notify_delta();
        }
    });
    EXPECT_THROW(sim.run(), k::SimulationError);
}

TEST(ProcessTest, CurrentSimulatorRestoredAfterDestruction) {
    Simulator outer;
    {
        Simulator inner;
        EXPECT_EQ(&Simulator::current(), &inner);
    }
    EXPECT_EQ(&Simulator::current(), &outer);
}

TEST(ProcessTest, NamesAreKept) {
    Simulator sim;
    auto& p = sim.spawn("my_process", [] {});
    EXPECT_EQ(p.name(), "my_process");
    EXPECT_EQ(p.done_event().name(), "my_process.done");
}

TEST(ProcessTest, UserDataRoundTrips) {
    Simulator sim;
    int tag = 42;
    auto& p = sim.spawn("p", [] {});
    p.user_data = &tag;
    EXPECT_EQ(*static_cast<int*>(p.user_data), 42);
}
