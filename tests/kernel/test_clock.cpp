// Unit tests for the periodic Clock module.
#include <gtest/gtest.h>

#include <vector>

#include "kernel/clock.hpp"
#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(ClockTest, TicksAtPeriod) {
    Simulator sim;
    k::Clock clk("clk", 10_us);
    std::vector<Time> ticks;
    sim.spawn("listener", [&] {
        for (;;) {
            k::wait(clk.tick_event());
            ticks.push_back(sim.now());
        }
    });
    sim.run_until(35_us);
    // First tick at t=0 fires before the listener waits, so it is missed
    // (fugitive kernel event); subsequent ticks at 10, 20, 30 are seen.
    EXPECT_EQ(ticks, (std::vector<Time>{10_us, 20_us, 30_us}));
    EXPECT_EQ(clk.tick_count(), 4u);
}

TEST(ClockTest, StartOffsetDelaysFirstTick) {
    Simulator sim;
    k::Clock clk("clk", 10_us, 3_us);
    std::vector<Time> ticks;
    sim.spawn("listener", [&] {
        for (;;) {
            k::wait(clk.tick_event());
            ticks.push_back(sim.now());
        }
    });
    sim.run_until(25_us);
    EXPECT_EQ(ticks, (std::vector<Time>{3_us, 13_us, 23_us}));
}

TEST(ClockTest, MaxTicksStopsGenerator) {
    Simulator sim;
    k::Clock clk("clk", 5_us, 5_us);
    clk.set_max_ticks(3);
    int seen = 0;
    sim.spawn("listener", [&] {
        for (;;) {
            k::wait(clk.tick_event());
            ++seen;
        }
    });
    sim.run(); // terminates because the clock stops generating events
    EXPECT_EQ(seen, 3);
    EXPECT_EQ(clk.tick_count(), 3u);
    EXPECT_EQ(sim.now(), 15_us);
}

TEST(ClockTest, ZeroPeriodRejected) {
    Simulator sim;
    EXPECT_THROW(k::Clock("bad", Time::zero()), k::SimulationError);
}
