// Unit tests for the kernel-level primitive channels: Signal, Fifo, KMutex,
// KSemaphore.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/channels.hpp"
#include "kernel/simulator.hpp"

namespace k = rtsc::kernel;
using k::Simulator;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(SignalTest, ReadReturnsInitialValue) {
    Simulator sim;
    k::Signal<int> s("s", 7);
    EXPECT_EQ(s.read(), 7);
}

TEST(SignalTest, WriteCommitsInUpdatePhase) {
    Simulator sim;
    k::Signal<int> s("s", 0);
    int seen_same_phase = -1;
    int seen_next_delta = -1;
    sim.spawn("writer", [&] {
        s.write(5);
        seen_same_phase = s.read(); // still old value: update phase not yet run
        k::wait(Time::zero());
        seen_next_delta = s.read();
    });
    sim.run();
    EXPECT_EQ(seen_same_phase, 0);
    EXPECT_EQ(seen_next_delta, 5);
}

TEST(SignalTest, ValueChangedEventFiresOnChangeOnly) {
    Simulator sim;
    k::Signal<int> s("s", 0);
    int changes = 0;
    sim.spawn("watcher", [&] {
        for (;;) {
            k::wait(s.value_changed_event());
            ++changes;
        }
    });
    sim.spawn("writer", [&] {
        k::wait(1_us);
        s.write(1); // change
        k::wait(1_us);
        s.write(1); // no change: no notification
        k::wait(1_us);
        s.write(2); // change
    });
    sim.run_until(10_us);
    EXPECT_EQ(changes, 2);
}

TEST(SignalTest, LastWriteInDeltaWins) {
    Simulator sim;
    k::Signal<int> s("s", 0);
    sim.spawn("writer", [&] {
        s.write(1);
        s.write(2);
        s.write(3);
    });
    sim.run();
    EXPECT_EQ(s.read(), 3);
}

TEST(FifoTest, WriteThenReadSameData) {
    Simulator sim;
    k::Fifo<int> f("f", 4);
    std::vector<int> got;
    sim.spawn("producer", [&] {
        for (int i = 1; i <= 3; ++i) f.write(i);
    });
    sim.spawn("consumer", [&] {
        for (int i = 0; i < 3; ++i) got.push_back(f.read());
    });
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(FifoTest, ReaderBlocksUntilDataArrives) {
    Simulator sim;
    k::Fifo<int> f("f", 4);
    Time read_at;
    sim.spawn("consumer", [&] {
        int v = f.read();
        EXPECT_EQ(v, 42);
        read_at = sim.now();
    });
    sim.spawn("producer", [&] {
        k::wait(9_us);
        f.write(42);
    });
    sim.run();
    EXPECT_EQ(read_at, 9_us);
}

TEST(FifoTest, WriterBlocksWhenFull) {
    Simulator sim;
    k::Fifo<int> f("f", 2);
    Time third_written;
    sim.spawn("producer", [&] {
        f.write(1);
        f.write(2);
        f.write(3); // blocks until the consumer reads
        third_written = sim.now();
    });
    sim.spawn("consumer", [&] {
        k::wait(5_us);
        EXPECT_EQ(f.read(), 1);
    });
    sim.run();
    EXPECT_EQ(third_written, 5_us);
    EXPECT_EQ(f.size(), 2u);
}

TEST(FifoTest, NonBlockingVariants) {
    Simulator sim;
    k::Fifo<int> f("f", 1);
    sim.spawn("p", [&] {
        int v = 0;
        EXPECT_FALSE(f.nb_read(v));
        EXPECT_TRUE(f.nb_write(10));
        EXPECT_FALSE(f.nb_write(11)); // full
        EXPECT_TRUE(f.nb_read(v));
        EXPECT_EQ(v, 10);
    });
    sim.run();
}

TEST(FifoTest, ZeroCapacityRejected) {
    Simulator sim;
    EXPECT_THROW(k::Fifo<int>("bad", 0), k::SimulationError);
}

TEST(KMutexTest, MutualExclusion) {
    Simulator sim;
    k::KMutex m("m");
    std::vector<std::string> log;
    auto worker = [&](const std::string& who, Time hold) {
        return [&, who, hold] {
            m.lock();
            log.push_back(who + "+");
            k::wait(hold);
            log.push_back(who + "-");
            m.unlock();
        };
    };
    sim.spawn("a", worker("a", 5_us));
    sim.spawn("b", worker("b", 5_us));
    sim.run();
    EXPECT_EQ(log, (std::vector<std::string>{"a+", "a-", "b+", "b-"}));
}

TEST(KMutexTest, TryLockAndOwnershipChecks) {
    Simulator sim;
    k::KMutex m("m");
    sim.spawn("a", [&] {
        EXPECT_TRUE(m.try_lock());
        k::wait(5_us);
        m.unlock();
    });
    sim.spawn("b", [&] {
        k::wait(1_us);
        EXPECT_FALSE(m.try_lock());
        EXPECT_THROW(m.unlock(), k::SimulationError); // not the owner
    });
    sim.run();
    EXPECT_FALSE(m.locked());
}

TEST(KSemaphoreTest, CountingBehaviour) {
    Simulator sim;
    k::KSemaphore s("s", 2);
    std::vector<Time> entered;
    for (int i = 0; i < 3; ++i) {
        sim.spawn("w" + std::to_string(i), [&] {
            s.wait();
            entered.push_back(sim.now());
            k::wait(10_us);
            s.post();
        });
    }
    sim.run();
    ASSERT_EQ(entered.size(), 3u);
    EXPECT_EQ(entered[0], Time::zero());
    EXPECT_EQ(entered[1], Time::zero());
    EXPECT_EQ(entered[2], 10_us); // third waits for a post
    EXPECT_EQ(s.value(), 2);
}

TEST(KSemaphoreTest, TrywaitAndValidation) {
    Simulator sim;
    k::KSemaphore s("s", 1);
    sim.spawn("p", [&] {
        EXPECT_TRUE(s.trywait());
        EXPECT_FALSE(s.trywait());
        s.post();
        EXPECT_EQ(s.value(), 1);
    });
    sim.run();
    EXPECT_THROW(k::KSemaphore("neg", -1), k::SimulationError);
}
