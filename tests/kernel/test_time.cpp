// Unit tests for rtsc::kernel::Time.
#include <gtest/gtest.h>

#include <sstream>

#include "kernel/time.hpp"

using rtsc::kernel::Time;
using namespace rtsc::kernel::time_literals;

TEST(TimeTest, DefaultIsZero) {
    Time t;
    EXPECT_TRUE(t.is_zero());
    EXPECT_EQ(t, Time::zero());
    EXPECT_EQ(t.raw_ps(), 0u);
}

TEST(TimeTest, FactoriesScaleCorrectly) {
    EXPECT_EQ(Time::ns(1).raw_ps(), 1'000u);
    EXPECT_EQ(Time::us(1).raw_ps(), 1'000'000u);
    EXPECT_EQ(Time::ms(1).raw_ps(), 1'000'000'000u);
    EXPECT_EQ(Time::sec(1).raw_ps(), 1'000'000'000'000u);
    EXPECT_EQ(Time::us(5), 5_us);
    EXPECT_EQ(1_ms, 1000_us);
    EXPECT_EQ(1_sec, 1000_ms);
}

TEST(TimeTest, FractionalFactoriesRound) {
    EXPECT_EQ(Time::us_f(2.5).raw_ps(), 2'500'000u);
    EXPECT_EQ(Time::ns_f(0.5).raw_ps(), 500u);
    EXPECT_EQ(Time::us_f(0.0), Time::zero());
}

TEST(TimeTest, Arithmetic) {
    EXPECT_EQ(3_us + 2_us, 5_us);
    EXPECT_EQ(5_us - 2_us, 3_us);
    EXPECT_EQ(2_us * 3u, 6_us);
    EXPECT_EQ(3u * 2_us, 6_us);
    EXPECT_EQ(6_us / 2u, 3_us);
    EXPECT_EQ(7_us / 2_us, 3u);   // whole periods
    EXPECT_EQ(7_us % 2_us, 1_us); // remainder
}

TEST(TimeTest, CompoundAssignment) {
    Time t = 1_us;
    t += 2_us;
    EXPECT_EQ(t, 3_us);
    t -= 1_us;
    EXPECT_EQ(t, 2_us);
}

TEST(TimeTest, Ordering) {
    EXPECT_LT(1_us, 2_us);
    EXPECT_LE(2_us, 2_us);
    EXPECT_GT(1_ms, 999_us);
    EXPECT_EQ(Time::max(), Time::max());
    EXPECT_LT(1_sec, Time::max());
}

TEST(TimeTest, SaturatingSubtraction) {
    EXPECT_EQ(Time::sat_sub(5_us, 2_us), 3_us);
    EXPECT_EQ(Time::sat_sub(2_us, 5_us), Time::zero());
    EXPECT_EQ(Time::sat_sub(2_us, 2_us), Time::zero());
}

TEST(TimeTest, Conversions) {
    EXPECT_DOUBLE_EQ((15_us).to_us(), 15.0);
    EXPECT_DOUBLE_EQ((1500_ns).to_us(), 1.5);
    EXPECT_DOUBLE_EQ((2_ms).to_ms(), 2.0);
    EXPECT_DOUBLE_EQ((1_sec).to_sec(), 1.0);
}

TEST(TimeTest, ToStringPicksUnit) {
    EXPECT_EQ((15_us).to_string(), "15 us");
    EXPECT_EQ((1_ms).to_string(), "1 ms");
    EXPECT_EQ((2500_ns).to_string(), "2.500 us");
    EXPECT_EQ(Time::zero().to_string(), "0 s");
    EXPECT_EQ((3_sec).to_string(), "3 s");
    EXPECT_EQ((7_ps).to_string(), "7 ps");
}

TEST(TimeTest, StreamOutput) {
    std::ostringstream os;
    os << 15_us;
    EXPECT_EQ(os.str(), "15 us");
}

TEST(TimeTest, SaturatingAddition) {
    // Time::max() is the "never" sentinel: adding an offset must not wrap
    // backwards in time.
    EXPECT_EQ(Time::max() + 1_ps, Time::max());
    EXPECT_EQ(1_us + Time::max(), Time::max());
    EXPECT_EQ(Time::max() + Time::max(), Time::max());
    EXPECT_EQ(Time::ps(~Time::rep{0} - 1) + 1_ps, Time::max());
    EXPECT_EQ(Time::ps(~Time::rep{0} - 2) + 1_ps, Time::ps(~Time::rep{0} - 1));

    Time t = Time::max();
    t += 5_ms;
    EXPECT_EQ(t, Time::max());

    // Ordinary additions are unaffected.
    EXPECT_EQ(1_us + 2_us, 3_us);
    t = 1_us;
    t += 2_us;
    EXPECT_EQ(t, 3_us);
}

TEST(TimeTest, SaturatingMultiplication) {
    // Overhead formulas scale durations by live counts (Time::ns(200) *
    // ready_tasks) and DVFS stretches them by frequency ratios: a wrapping
    // product would silently travel back in time, just like a wrapping add.
    EXPECT_EQ(Time::max() * 2u, Time::max());
    EXPECT_EQ(2u * Time::max(), Time::max());
    EXPECT_EQ(Time::ps(~Time::rep{0} / 2 + 1) * 2u, Time::max());
    EXPECT_EQ(Time::ps(~Time::rep{0} / 3) * 4u, Time::max());

    // Largest exact products are preserved, one step beyond saturates.
    EXPECT_EQ(Time::ps(~Time::rep{0} / 2) * 2u, Time::ps(~Time::rep{0} - 1));
    EXPECT_EQ(Time::ps(~Time::rep{0} / 3) * 3u, Time::ps(~Time::rep{0} / 3 * 3));

    // Zero factors stay exact (no saturation path).
    EXPECT_EQ(Time::max() * 0u, Time::zero());
    EXPECT_EQ(0u * Time::max(), Time::zero());
    EXPECT_EQ(Time::zero() * 7u, Time::zero());

    // Ordinary products are unaffected.
    EXPECT_EQ(2_us * 3u, 6_us);
    EXPECT_EQ(3u * 2_us, 6_us);
}

TEST(TimeTest, NeverSentinelStaysTerminal) {
    // now + Time::max() used as an absolute deadline keeps comparing larger
    // than any reachable simulation time.
    const Time deadline = 123_sec + Time::max();
    EXPECT_EQ(deadline, Time::max());
    EXPECT_GT(deadline, 200_sec);
    EXPECT_EQ(Time::sat_sub(deadline, 123_sec), Time::max() - 123_sec);
}
