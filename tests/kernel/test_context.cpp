// Unit tests for the ucontext coroutine layer.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/report.hpp"

using rtsc::kernel::Coroutine;
using rtsc::kernel::SimulationError;

TEST(CoroutineTest, RunsToCompletion) {
    bool ran = false;
    Coroutine co([&] { ran = true; });
    EXPECT_FALSE(co.started());
    co.resume();
    EXPECT_TRUE(ran);
    EXPECT_TRUE(co.finished());
}

TEST(CoroutineTest, YieldSuspendsAndResumeContinues) {
    std::vector<int> order;
    Coroutine* self = nullptr;
    Coroutine co([&] {
        order.push_back(1);
        self->yield();
        order.push_back(3);
        self->yield();
        order.push_back(5);
    });
    self = &co;
    co.resume();
    order.push_back(2);
    co.resume();
    order.push_back(4);
    co.resume();
    EXPECT_TRUE(co.finished());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(CoroutineTest, CurrentTracksExecution) {
    EXPECT_EQ(Coroutine::current(), nullptr);
    Coroutine* seen = nullptr;
    Coroutine co([&] { seen = Coroutine::current(); });
    co.resume();
    EXPECT_EQ(seen, &co);
    EXPECT_EQ(Coroutine::current(), nullptr);
}

TEST(CoroutineTest, NestedCoroutines) {
    std::vector<int> order;
    Coroutine inner([&] { order.push_back(2); });
    Coroutine outer([&] {
        order.push_back(1);
        inner.resume();
        order.push_back(3);
    });
    outer.resume();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(inner.finished());
    EXPECT_TRUE(outer.finished());
}

TEST(CoroutineTest, ExceptionPropagatesToResumer) {
    Coroutine co([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(co.resume(), std::runtime_error);
    EXPECT_TRUE(co.finished());
}

TEST(CoroutineTest, ResumeAfterFinishThrows) {
    Coroutine co([] {});
    co.resume();
    EXPECT_THROW(co.resume(), SimulationError);
}

TEST(CoroutineTest, DestroySuspendedCoroutineIsSafe) {
    auto* co = new Coroutine([] {
        Coroutine::current()->yield();
        FAIL() << "should never run past the yield";
    });
    co->resume();
    delete co; // releases stack without unwinding
    SUCCEED();
}

TEST(CoroutineTest, ManyCoroutinesInterleave) {
    constexpr int n = 50;
    std::vector<std::unique_ptr<Coroutine>> cos;
    int sum = 0;
    for (int i = 0; i < n; ++i) {
        cos.push_back(std::make_unique<Coroutine>([&sum, i] {
            sum += i;
            Coroutine::current()->yield();
            sum += 1000;
        }));
    }
    for (auto& c : cos) c->resume();
    EXPECT_EQ(sum, n * (n - 1) / 2);
    for (auto& c : cos) c->resume();
    EXPECT_EQ(sum, n * (n - 1) / 2 + 1000 * n);
    for (auto& c : cos) EXPECT_TRUE(c->finished());
}

TEST(CoroutineTest, DeepStackUsageWithinLimit) {
    // Recursion that uses a good chunk of the default 128 KiB stack.
    std::function<int(int)> rec = [&](int d) -> int {
        char pad[512];
        pad[0] = static_cast<char>(d);
        if (d == 0) return pad[0];
        return rec(d - 1) + (pad[0] ? 0 : 1);
    };
    int result = -1;
    Coroutine co([&] { result = rec(100); });
    co.resume();
    EXPECT_EQ(result, 0);
}
