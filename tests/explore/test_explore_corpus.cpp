// Exhaustive schedule-space verification of the fuzz corpus: every .model
// under tests/fuzz/corpus/ has its ENTIRE bounded decision space enumerated
// (same-instant tie-breaks, both engines x skip-ahead on/off per schedule)
// and must come back clean AND complete. The per-model schedule counts are
// pinned exactly: a count drift means the model's same-instant structure
// changed — either a new decision point appeared (extend the table after
// auditing it) or an engine change silently altered tie-break exposure.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "explore/model_check.hpp"
#include "fuzz/spec.hpp"

#ifndef RTSC_FUZZ_CORPUS_DIR
#error "RTSC_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace ex = rtsc::explore;
namespace fuzz = rtsc::fuzz;

namespace {

std::vector<std::filesystem::path> corpus_files() {
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(RTSC_FUZZ_CORPUS_DIR))
        if (entry.path().extension() == ".model") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Exact enumerated schedule count per corpus model ("N schedules" in the
/// explore_schedules CLI output). Every corpus file must appear here.
const std::map<std::string, std::uint64_t> kPinnedSchedules = {
    {"gen_seed1.model", 1},
    {"gen_seed101.model", 6},
    {"gen_seed137.model", 2},
    {"gen_seed19.model", 1},
    {"gen_seed256.model", 1},
    {"gen_seed333.model", 1},
    {"gen_seed42.model", 6},
    {"gen_seed7.model", 6},
    {"seed167_same_instant_leave_sample.model", 2},
    {"seed401_cross_cpu_sem_instant.model", 2},
    {"seed415_fswitch_sync_leaver_resume.model", 1},
    {"seed75_formula_load_timeout_tie.model", 2},
    {"seed881_horizon_cut_dvfs_overhead.model", 1},
    {"sv_chain_depth2.model", 1},
};

} // namespace

TEST(ExploreCorpus, EveryModelIsPinned) {
    for (const auto& path : corpus_files())
        EXPECT_TRUE(kPinnedSchedules.count(path.filename().string()) != 0)
            << path.filename().string()
            << " is not in the pinned schedule-count table; explore it and "
               "add its count";
}

TEST(ExploreCorpus, EveryScheduleOfEveryModelIsClean) {
    for (const auto& path : corpus_files()) {
        SCOPED_TRACE(path.filename().string());
        const fuzz::ModelSpec spec = fuzz::from_text(slurp(path));
        const ex::ModelReport r =
            ex::explore_model(spec, ex::ModelCheckConfig{});
        EXPECT_FALSE(r.violation)
            << r.diagnosis << "\nvariant: " << r.violating_variant
            << "\ntrace: " << ex::to_text(r.counterexample);
        EXPECT_TRUE(r.complete)
            << "corpus models must fit the default bounds entirely";
        const auto it = kPinnedSchedules.find(path.filename().string());
        if (it != kPinnedSchedules.end())
            EXPECT_EQ(r.schedules, it->second)
                << "enumerated schedule count drifted";
    }
}
