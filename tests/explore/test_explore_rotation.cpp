// The nine pinned schedules of tests/rtos/test_rotation_equivalence.cpp,
// run through the explorer's exhaustive mode: instead of checking only the
// engines' pinned default tie-break, enumerate EVERY reachable same-instant
// ready-queue resolution of each scenario and require all four legs
// (threaded/procedural x skip-ahead on/off) to agree on the transition log
// and the per-CPU decision stream under each one. The enumerated schedule
// count per scenario is asserted exactly — stable across engines and
// skip-ahead settings; a drift means the scenario's same-instant structure
// changed.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "fuzz/runner.hpp" // fnv1a
#include "kernel/simulator.hpp"
#include "rtos/policy.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

#include "../rtos/recording.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace ex = rtsc::explore;
using rtsc::test::RecordingObserver;
using namespace rtsc::kernel::time_literals;

namespace {

struct Scenario {
    std::string name;
    std::uint64_t schedules; ///< pinned exhaustive enumeration count
    std::function<std::unique_ptr<r::SchedulingPolicy>()> policy;
    std::function<void(r::Processor&)> build;
};

/// One leg: run the scenario with a replaying oracle; returns the
/// transition log and fills the oracle's decision log.
std::vector<std::string> run_leg(const Scenario& s, r::EngineKind kind,
                                 bool skip_ahead, ex::TraceOracle& oracle) {
    k::Simulator sim;
    sim.set_skip_ahead(skip_ahead);
    r::Processor cpu("cpu", s.policy(), kind);
    cpu.engine().set_schedule_oracle(&oracle);
    RecordingObserver rec;
    cpu.add_observer(rec);
    s.build(cpu);
    sim.run();
    return rec.strings();
}

/// RunCheck over a scenario: all four legs replay the same trace; a
/// violation is any cross-leg disagreement (transition log, per-CPU
/// decision stream) or a replay desync.
ex::RunCheck scenario_check(const Scenario& s) {
    return [&s](const ex::DecisionTrace& trace) {
        struct Leg {
            const char* name;
            r::EngineKind kind;
            bool skip;
        };
        static constexpr Leg legs[] = {
            {"procedural/skip", r::EngineKind::procedure_calls, true},
            {"threaded/skip", r::EngineKind::rtos_thread, true},
            {"procedural/exact", r::EngineKind::procedure_calls, false},
            {"threaded/exact", r::EngineKind::rtos_thread, false},
        };
        ex::RunOutcome out;
        std::vector<std::string> base;
        std::vector<std::string> base_rows;
        for (std::size_t i = 0; i < 4; ++i) {
            ex::TraceOracle oracle(&trace);
            const auto log = run_leg(s, legs[i].kind, legs[i].skip, oracle);
            if (!oracle.replay_ok() && !out.violation) {
                out.violation = true;
                out.diagnosis = std::string("replay desync on ") +
                                legs[i].name + ": " + oracle.replay_error();
            }
            const auto rows = ex::decision_rows(oracle.log());
            if (i == 0) {
                base = log;
                base_rows = rows;
                out.log = oracle.take_log();
            } else if (!out.violation) {
                if (log != base) {
                    out.violation = true;
                    out.diagnosis = std::string("transition log of ") +
                                    legs[i].name + " differs from " +
                                    legs[0].name;
                } else if (rows != base_rows) {
                    out.violation = true;
                    out.diagnosis = std::string("decision stream of ") +
                                    legs[i].name + " differs from " +
                                    legs[0].name;
                }
            }
        }
        std::uint64_t d = 1469598103934665603ull;
        for (const auto& row : base) d = rtsc::fuzz::fnv1a(d, row);
        out.digest = rtsc::fuzz::fnv1a(d, ex::to_text(trace));
        return out;
    };
}

std::vector<Scenario> scenarios() {
    std::vector<Scenario> out;
    out.push_back({"QuantumExpiryRotates", 6,
                   [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
                   [](r::Processor& cpu) {
                       for (const char* name : {"A", "B", "C"})
                           cpu.create_task({.name = name, .priority = 1},
                                           [](r::Task& self) {
                                               self.compute(25_us);
                                           });
                   }});
    out.push_back({"LoneTaskQuantumExpiry", 1,
                   [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
                   [](r::Processor& cpu) {
                       cpu.create_task({.name = "solo", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(35_us);
                                       });
                   }});
    out.push_back({"SliceExpiryTiesWithArrival", 1,
                   [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
                   [](r::Processor& cpu) {
                       cpu.create_task({.name = "A", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(15_us);
                                       });
                       cpu.create_task(
                           {.name = "B", .priority = 1, .start_time = 10_us},
                           [](r::Task& self) { self.compute(5_us); });
                   }});
    out.push_back({"RoundRobinBlockedLeaver", 2,
                   [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
                   [](r::Processor& cpu) {
                       cpu.create_task({.name = "A", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(4_us);
                                           self.sleep_for(2_us);
                                           self.compute(4_us);
                                       });
                       cpu.create_task({.name = "B", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(8_us);
                                       });
                   }});
    out.push_back({"EdfEqualDeadlines", 1,
                   [] { return std::make_unique<r::EdfPolicy>(); },
                   [](r::Processor& cpu) {
                       auto& a = cpu.create_task({.name = "A", .priority = 1},
                                                 [](r::Task& self) {
                                                     self.compute(10_us);
                                                 });
                       a.set_absolute_deadline(100_us);
                       auto& b = cpu.create_task(
                           {.name = "B", .priority = 1, .start_time = 2_us},
                           [](r::Task& self) { self.compute(10_us); });
                       b.set_absolute_deadline(100_us);
                   }});
    out.push_back({"EdfDeadlineBeatsDeadlineLess", 1,
                   [] { return std::make_unique<r::EdfPolicy>(); },
                   [](r::Processor& cpu) {
                       cpu.create_task({.name = "bg", .priority = 1},
                                       [](r::Task& self) {
                                           self.compute(20_us);
                                       });
                       auto& rt = cpu.create_task(
                           {.name = "rt", .priority = 1, .start_time = 5_us},
                           [](r::Task& self) { self.compute(4_us); });
                       rt.set_absolute_deadline(12_us);
                       cpu.create_task(
                           {.name = "bg2", .priority = 1, .start_time = 6_us},
                           [](r::Task& self) { self.compute(3_us); });
                   }});
    out.push_back({"EdfDeadlineLessFifo", 6,
                   [] { return std::make_unique<r::EdfPolicy>(); },
                   [](r::Processor& cpu) {
                       for (const char* name : {"x", "y", "z"})
                           cpu.create_task({.name = name, .priority = 1},
                                           [](r::Task& self) {
                                               self.compute(5_us);
                                           });
                   }});
    out.push_back({"PriorityTieBreakFifo", 1,
                   [] { return std::make_unique<r::PriorityPreemptivePolicy>(); },
                   [](r::Processor& cpu) {
                       cpu.create_task({.name = "low1", .priority = 2},
                                       [](r::Task& self) {
                                           self.compute(10_us);
                                       });
                       cpu.create_task(
                           {.name = "low2", .priority = 2, .start_time = 1_us},
                           [](r::Task& self) { self.compute(10_us); });
                       cpu.create_task(
                           {.name = "hi", .priority = 5, .start_time = 3_us},
                           [](r::Task& self) { self.compute(2_us); });
                   }});
    out.push_back({"RotationUnderOverheads", 6,
                   [] { return std::make_unique<r::RoundRobinPolicy>(10_us); },
                   [](r::Processor& cpu) {
                       cpu.set_overheads(
                           {.scheduling = r::OverheadModel(500_ns),
                            .context_load = r::OverheadModel(200_ns),
                            .context_save = r::OverheadModel(200_ns)});
                       for (const char* name : {"A", "B", "C"})
                           cpu.create_task({.name = name, .priority = 1},
                                           [](r::Task& self) {
                                               self.compute(23_us);
                                           });
                   }});
    return out;
}

} // namespace

TEST(ExploreRotation, AllNineScenariosExhaustivelyEquivalent) {
    for (const auto& s : scenarios()) {
        SCOPED_TRACE(s.name);
        ex::Bounds b;
        b.collect_digests = true;
        ex::Explorer e(scenario_check(s), b);
        const ex::ExploreResult r = e.run();
        EXPECT_FALSE(r.violation)
            << r.diagnosis << "\ntrace: " << ex::to_text(r.counterexample);
        EXPECT_TRUE(r.complete);
        EXPECT_EQ(r.schedules, s.schedules)
            << "enumerated schedule count drifted for " << s.name;
    }
}

TEST(ExploreRotation, CountsAreSkipAheadAndEngineStable) {
    // The pinned counts above come from the 4-leg check; additionally run
    // the DFS against each single leg and require the same enumeration —
    // neither the engine choice nor the fast path may change the decision
    // structure the explorer sees.
    const auto all = scenarios();
    const Scenario& s = all[0]; // three-way rotation: the richest structure
    for (const r::EngineKind kind :
         {r::EngineKind::procedure_calls, r::EngineKind::rtos_thread}) {
        for (const bool skip : {true, false}) {
            ex::RunCheck one = [&](const ex::DecisionTrace& trace) {
                ex::TraceOracle oracle(&trace);
                const auto log = run_leg(s, kind, skip, oracle);
                ex::RunOutcome out;
                out.log = oracle.take_log();
                std::uint64_t d = 1469598103934665603ull;
                for (const auto& row : log) d = rtsc::fuzz::fnv1a(d, row);
                out.digest = d;
                return out;
            };
            ex::Explorer e(one, ex::Bounds{});
            const ex::ExploreResult r = e.run();
            EXPECT_TRUE(r.complete);
            EXPECT_EQ(r.schedules, s.schedules)
                << "leg kind=" << static_cast<int>(kind) << " skip=" << skip;
        }
    }
}
