// Unit tests for the bounded schedule-space explorer: the stateless-DFS
// enumeration itself (driven by a synthetic RunCheck with a fixed decision
// structure — no simulator involved), the frontier persistence round-trip,
// the DPOR-style pruning soundness on models where the commutativity is
// known by construction, and the ModelSpec adapter on small hand-written
// models with a countable schedule space.
//
// Also pins the two bugs the explorer's first sweeps found (regression
// tests live here because they assert through explore_model, which the
// plain fuzz regression suite does not link):
//  - seed 401: a synchronously self-granted task body (procedural engine)
//    started at its sweep position instead of the runnable-queue tail a
//    notify-granted winner gets, so a flipped same-instant tie-break made
//    cross-CPU semaphore traffic interleave differently per engine. Fixed
//    with kernel yield() in await_dispatch/block_timed.
//  - seed 881: charge() booked the full overhead energy before k::wait(d);
//    a simulation horizon cutting the run mid-wait left the attributed
//    split ahead of the time-folded ledger total (BROKEN-ENERGY). Fixed by
//    booking charge-wise energy only after the wait completes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/model_check.hpp"
#include "fuzz/spec.hpp"

namespace ex = rtsc::explore;
namespace fuzz = rtsc::fuzz;

namespace {

/// One synthetic decision point: CPU it belongs to, slot count, and whether
/// the run reports its order as consumed (mattered).
struct Point {
    std::string cpu;
    std::uint32_t n;
    bool mattered = true;
};

/// A deterministic RunCheck over a fixed decision structure. Prescribed
/// slots replay per-CPU in observation order, free decisions take preset 0.
/// The digest folds only the *mattered* decisions' choices, mirroring the
/// engine property pruning relies on: unmattered tie-breaks are
/// behaviourally invisible.
ex::RunCheck synthetic(std::vector<Point> points,
                       std::function<bool(const std::vector<std::uint32_t>&)>
                           violates = nullptr) {
    return [points = std::move(points),
            violates = std::move(violates)](const ex::DecisionTrace& trace) {
        ex::RunOutcome out;
        std::map<std::string, std::size_t> cursor;
        std::vector<std::uint32_t> chosen;
        std::uint64_t digest = 1469598103934665603ull;
        for (const auto& p : points) {
            ex::Decision d;
            d.cpu = p.cpu;
            d.task = "t";
            d.n = p.n;
            d.preset = 0;
            d.mattered = p.mattered;
            std::size_t& cur = cursor[p.cpu];
            const auto it = trace.find(p.cpu);
            if (it != trace.end() && cur < it->second.size()) {
                d.chosen = it->second[cur];
                d.forced = true;
            } else {
                d.chosen = d.preset;
            }
            ++cur;
            chosen.push_back(d.chosen);
            const std::uint32_t fold = p.mattered ? d.chosen : 0;
            digest = (digest ^ (fold + 1)) * 1099511628211ull;
            out.log.push_back(std::move(d));
        }
        out.digest = digest;
        if (violates != nullptr && violates(chosen)) {
            out.violation = true;
            out.diagnosis = "synthetic violation";
        }
        return out;
    };
}

} // namespace

TEST(Explorer, EnumeratesFullProductOnOneCpu) {
    // Two mattered decision points with 2 and 3 slots: 6 distinct schedules.
    ex::Bounds b;
    b.collect_digests = true;
    ex::Explorer e(synthetic({{"cpu0", 2}, {"cpu0", 3}}), b);
    const ex::ExploreResult r = e.run();
    EXPECT_EQ(r.schedules, 6u);
    EXPECT_TRUE(r.complete);
    EXPECT_FALSE(r.violation);
    EXPECT_EQ(r.clipped_branches, 0u);
    const std::set<std::uint64_t> uniq(r.digests.begin(), r.digests.end());
    EXPECT_EQ(uniq.size(), 6u) << "each schedule must be visited exactly once";
}

TEST(Explorer, EnumeratesCrossCpuProduct) {
    ex::Bounds b;
    b.collect_digests = true;
    ex::Explorer e(synthetic({{"cpu0", 2}, {"cpu1", 2}}), b);
    const ex::ExploreResult r = e.run();
    EXPECT_EQ(r.schedules, 4u);
    EXPECT_TRUE(r.complete);
    const std::set<std::uint64_t> uniq(r.digests.begin(), r.digests.end());
    EXPECT_EQ(uniq.size(), 4u);
}

TEST(Explorer, PruningSkipsUnmatteredGroupsWithoutLosingBehaviours) {
    // First decision never mattered (its order is invisible to the digest):
    // pruning must skip its alternative, and the *behaviour set* (digest
    // set) must equal the unpruned enumeration's.
    const std::vector<Point> pts{{"cpu0", 2, false}, {"cpu0", 3, true}};
    ex::Bounds pruned;
    pruned.collect_digests = true;
    ex::Explorer ep(synthetic(pts), pruned);
    const ex::ExploreResult rp = ep.run();

    ex::Bounds full;
    full.collect_digests = true;
    full.prune = false;
    ex::Explorer ef(synthetic(pts), full);
    const ex::ExploreResult rf = ef.run();

    EXPECT_EQ(rf.schedules, 6u);
    EXPECT_EQ(rp.schedules, 3u) << "unmattered group must not be branched";
    EXPECT_GT(rp.pruned_branches, 0u);
    EXPECT_TRUE(rp.complete);
    const std::set<std::uint64_t> dp(rp.digests.begin(), rp.digests.end());
    const std::set<std::uint64_t> df(rf.digests.begin(), rf.digests.end());
    EXPECT_EQ(dp, df) << "pruning dropped a distinct behaviour";
}

TEST(Explorer, FindsViolatingScheduleAndItsCounterexampleReplays) {
    // Exactly one of the 6 choice strings violates; the DFS must find it
    // and hand back a trace that reproduces it.
    const auto bad = [](const std::vector<std::uint32_t>& chosen) {
        return chosen == std::vector<std::uint32_t>{1, 2};
    };
    const auto check = synthetic({{"cpu0", 2}, {"cpu0", 3}}, bad);
    ex::Explorer e(check, ex::Bounds{});
    const ex::ExploreResult r = e.run();
    ASSERT_TRUE(r.violation);
    EXPECT_EQ(r.diagnosis, "synthetic violation");
    const ex::RunOutcome replay = check(r.counterexample);
    EXPECT_TRUE(replay.violation) << "counterexample did not reproduce";
}

TEST(Explorer, FrontierRoundTripResumesToCompletion) {
    const std::vector<Point> pts{{"cpu0", 2}, {"cpu0", 3}};
    ex::Bounds b;
    b.max_schedules = 2; // stop early, twice
    ex::Explorer e1(synthetic(pts), b);
    const ex::ExploreResult r1 = e1.run();
    EXPECT_EQ(r1.schedules, 2u);
    EXPECT_FALSE(r1.complete);
    ASSERT_FALSE(e1.frontier_empty());

    std::stringstream saved;
    e1.save_frontier(saved);

    ex::Bounds rest;
    rest.max_schedules = 1u << 20;
    ex::Explorer e2(synthetic(pts), rest);
    e2.load_frontier(saved);
    const ex::ExploreResult r2 = e2.run();
    EXPECT_TRUE(r2.complete);
    EXPECT_TRUE(e2.frontier_empty());
    // Totals are cumulative across the resumed runs.
    EXPECT_EQ(r2.schedules, 6u);
}

TEST(Explorer, LoadFrontierRejectsMalformedInput) {
    ex::Explorer e(synthetic({{"cpu0", 2}}), ex::Bounds{});
    std::stringstream bad("not-a-frontier v9\n");
    EXPECT_THROW(e.load_frontier(bad), std::runtime_error);
}

TEST(Explorer, MaxGroupClipsWideWindowsAndReportsIncomplete) {
    ex::Bounds b;
    b.max_group = 2; // window wider than 2 alternatives is clipped
    ex::Explorer e(synthetic({{"cpu0", 5}}), b);
    const ex::ExploreResult r = e.run();
    EXPECT_GT(r.clipped_branches, 0u);
    EXPECT_FALSE(r.complete) << "a clipped enumeration must not claim completeness";
    EXPECT_FALSE(r.violation);
}

TEST(Explorer, MaxDecisionsClipsDeepTraces) {
    ex::Bounds b;
    b.max_decisions = 1;
    ex::Explorer e(synthetic({{"cpu0", 2}, {"cpu0", 2}}), b);
    const ex::ExploreResult r = e.run();
    EXPECT_EQ(r.schedules, 2u) << "only the first decision may branch";
    EXPECT_GT(r.clipped_branches, 0u);
    EXPECT_FALSE(r.complete);
}

TEST(DecisionTrace, TextRoundTrip) {
    ex::DecisionTrace t;
    t["cpu0"] = {1, 0, 2};
    t["cpu1"] = {0};
    const std::string text = ex::to_text(t);
    EXPECT_EQ(text, "cpu0:1,0,2;cpu1:0");
    EXPECT_EQ(ex::trace_from_text(text), t);
    EXPECT_EQ(ex::to_text(ex::DecisionTrace{}), "-");
    EXPECT_EQ(ex::trace_from_text("-"), ex::DecisionTrace{});
    EXPECT_THROW(ex::trace_from_text("cpu0:x"), std::runtime_error);
}

// ---------------------------------------------------------- model adapter

TEST(ExploreModel, TwoEqualTasksHaveExactlyTwoSchedules) {
    // Two same-priority, same-start tasks on one FIFO CPU: the only
    // reachable nondeterminism is their arrival tie-break — exactly two
    // schedules, both clean.
    const fuzz::ModelSpec spec = fuzz::from_text(R"spec(
model seed=1 horizon=0
cpu policy=fifo quantum=0 preemptive=0 sched=0 load=0 save=0 formula=0 fswitch=0 dvfs=-
task name=A cpu=0 prio=1 start=0 period=0 act=1 deadline=0 trigger=0
op d=0 kind=compute target=0 dur=5000000 timeout=0 repeat=1
task name=B cpu=0 prio=1 start=0 period=0 act=1 deadline=0 trigger=0
op d=0 kind=compute target=0 dur=3000000 timeout=0 repeat=1
)spec");
    const ex::ModelReport r = ex::explore_model(spec, ex::ModelCheckConfig{});
    EXPECT_FALSE(r.violation) << r.diagnosis;
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.schedules, 2u);
}

TEST(ExploreModel, SporadicOffsetsMultiplyVariants) {
    // One aperiodic task quantized over 4 offsets: 4 variants, each its own
    // (singleton) schedule space.
    const fuzz::ModelSpec spec = fuzz::from_text(R"spec(
model seed=1 horizon=0
cpu policy=fifo quantum=0 preemptive=0 sched=0 load=0 save=0 formula=0 fswitch=0 dvfs=-
task name=A cpu=0 prio=1 start=0 period=0 act=1 deadline=0 trigger=0
op d=0 kind=compute target=0 dur=5000000 timeout=0 repeat=1
)spec");
    ex::ModelCheckConfig cfg;
    cfg.offsets = 4;
    cfg.offset_window_ps = 4'000'000;
    const ex::ModelReport r = ex::explore_model(spec, cfg);
    EXPECT_FALSE(r.violation) << r.diagnosis;
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.variants.size(), 4u);
    EXPECT_EQ(r.schedules, 4u);
}

// ------------------------------------------------- pinned explorer finds

TEST(FuzzRegression, Seed401CrossCpuSemaphoreInstant) {
    // Shrunk from generated seed 401. Under the flipped tie-break (T0 ahead
    // of the ISR in cpu0's round-robin queue) T0's sem_release collides at
    // one instant with T2's acquires on cpu1; the engines must resolve the
    // cross-CPU interleaving identically for EVERY enumerable schedule.
    const fuzz::ModelSpec spec = fuzz::from_text(R"spec(
model seed=401 horizon=0
cpu policy=rr quantum=32000000 preemptive=1 sched=1500000 load=0 save=500000 formula=0 fswitch=0 dvfs=-
cpu policy=rr quantum=22000000 preemptive=0 sched=1500000 load=0 save=0 formula=0 fswitch=0 dvfs=-
sem initial=2 prio=0
irq cpu=0 prio=12 period=105000000 jitter=0 until=886000000 cost=8000000 maxpend=0
task name=T0 cpu=0 prio=5 start=0 period=311000000 act=1 deadline=0 trigger=0
op d=0 kind=sem_release target=2 dur=25000000 timeout=44000000 repeat=1
task name=T2 cpu=1 prio=5 start=0 period=0 act=1 deadline=0 trigger=0
op d=0 kind=sem_acquire target=4 dur=8000000 timeout=30000000 repeat=3
)spec");
    const ex::ModelReport r = ex::explore_model(spec, ex::ModelCheckConfig{});
    EXPECT_FALSE(r.violation) << r.diagnosis << "\ntrace: "
                              << ex::to_text(r.counterexample);
    EXPECT_TRUE(r.complete);
}

TEST(FuzzRegression, Seed881HorizonCutDvfsOverheadEnergy) {
    // Shrunk from generated seed 881: the horizon cuts the last ISR's
    // overhead charge on the DVFS CPU mid-wait. The charge-wise energy
    // booking must stay behind the time-based fold (conservation row).
    const fuzz::ModelSpec spec = fuzz::from_text(R"spec(
model seed=881 horizon=542612048
cpu policy=fifo quantum=0 preemptive=0 sched=0 load=0 save=0 formula=0 fswitch=0 dvfs=-
cpu policy=static_rm quantum=0 preemptive=1 sched=1500000 load=500000 save=500000 formula=0 fswitch=0 dvfs=2000000:1000,1000000:800
irq cpu=1 prio=8 period=180000000 jitter=1000000 until=1491000000 cost=1000000 maxpend=0
)spec");
    const ex::ModelReport r = ex::explore_model(spec, ex::ModelCheckConfig{});
    EXPECT_FALSE(r.violation) << r.diagnosis;
    EXPECT_TRUE(r.complete);
}
