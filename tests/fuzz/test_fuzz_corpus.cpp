// Corpus replay: every .model file under tests/fuzz/corpus/ is run on both
// engines and must produce identical behavior. The corpus holds (a) shrunk
// reproducers of every divergence the fuzzer ever found — permanent
// regression tests — and (b) generator snapshots chosen for feature
// coverage (round-robin, EDF, interrupts, fault plans, bounded queues), so
// sanitizer CI replays representative models without paying for a full
// sweep. Add to it with:
//   tools/fuzz_engines --print SEED > tests/fuzz/corpus/gen_seedSEED.model
// or by copying the fuzz_divergence_<seed>.model a failed sweep wrote.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/runner.hpp"
#include "fuzz/spec.hpp"

#ifndef RTSC_FUZZ_CORPUS_DIR
#error "RTSC_FUZZ_CORPUS_DIR must be defined by the build"
#endif

namespace fuzz = rtsc::fuzz;

namespace {

std::vector<std::filesystem::path> corpus_files() {
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(RTSC_FUZZ_CORPUS_DIR))
        if (entry.path().extension() == ".model") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

std::string slurp(const std::filesystem::path& p) {
    std::ifstream in(p);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(FuzzCorpus, DirectoryIsNotEmpty) {
    ASSERT_FALSE(corpus_files().empty())
        << "no .model files in " << RTSC_FUZZ_CORPUS_DIR;
}

TEST(FuzzCorpus, EveryModelParsesAndRoundTrips) {
    for (const auto& path : corpus_files()) {
        SCOPED_TRACE(path.filename().string());
        const std::string text = slurp(path);
        ASSERT_FALSE(text.empty());
        const fuzz::ModelSpec spec = fuzz::from_text(text);
        EXPECT_EQ(fuzz::to_text(fuzz::from_text(fuzz::to_text(spec))),
                  fuzz::to_text(spec));
    }
}

TEST(FuzzCorpus, EnginesAgreeOnEveryModel) {
    for (const auto& path : corpus_files()) {
        SCOPED_TRACE(path.filename().string());
        const fuzz::ModelSpec spec = fuzz::from_text(slurp(path));
        const fuzz::Divergence d = fuzz::diff_engines(spec);
        EXPECT_FALSE(d.diverged) << d.to_string();
    }
}

} // namespace
