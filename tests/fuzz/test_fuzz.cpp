// Unit tests for the differential-fuzzing toolkit itself (src/fuzz/):
// generator determinism, spec serialization round-trips, the runner's
// divergence detector and the delta-debugging shrinker. The actual
// engine-equivalence sweep lives in tools/fuzz_engines; corpus replay is
// tests/fuzz/test_fuzz_corpus.cpp.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/generate.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/spec.hpp"

namespace fuzz = rtsc::fuzz;

namespace {

// ------------------------------------------------------------- generator

TEST(FuzzGenerate, DeterministicForSeed) {
    // Same seed, same spec text — platform-independent reproducibility is
    // what makes a seed number a bug report.
    const std::string a = fuzz::to_text(fuzz::generate(12345));
    const std::string b = fuzz::to_text(fuzz::generate(12345));
    EXPECT_EQ(a, b);
}

TEST(FuzzGenerate, DistinctSeedsDiffer) {
    EXPECT_NE(fuzz::to_text(fuzz::generate(1)), fuzz::to_text(fuzz::generate(2)));
}

TEST(FuzzGenerate, RespectsKnobs) {
    fuzz::GenKnobs knobs;
    knobs.max_cpus = 1;
    knobs.max_tasks = 3;
    knobs.allow_faults = false;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const fuzz::ModelSpec spec = fuzz::generate(seed, knobs);
        EXPECT_EQ(spec.cpus.size(), 1u);
        EXPECT_LE(spec.tasks.size(), 3u);
        EXPECT_GE(spec.tasks.size(), 2u);
        EXPECT_TRUE(spec.faults.empty());
    }
}

TEST(FuzzGenerate, EveryFeatureClassAppearsAcrossSeeds) {
    bool rr = false, edf = false, irq = false, faults = false, sems = false,
         queues = false, events = false, svars = false, horizon = false;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const fuzz::ModelSpec s = fuzz::generate(seed);
        for (const fuzz::CpuSpec& c : s.cpus) {
            rr = rr || c.policy == fuzz::PolicyKind::round_robin;
            edf = edf || c.policy == fuzz::PolicyKind::edf;
        }
        irq = irq || !s.irqs.empty();
        faults = faults || !s.faults.empty();
        sems = sems || !s.sems.empty();
        queues = queues || !s.queues.empty();
        events = events || !s.events.empty();
        svars = svars || !s.svars.empty();
        horizon = horizon || s.horizon_ps != 0;
    }
    EXPECT_TRUE(rr && edf && irq && faults && sems && queues && events &&
                svars && horizon);
}

// ------------------------------------------------------------ spec text

TEST(FuzzSpec, RoundTripsThroughText) {
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const fuzz::ModelSpec spec = fuzz::generate(seed);
        const std::string text = fuzz::to_text(spec);
        const fuzz::ModelSpec back = fuzz::from_text(text);
        EXPECT_EQ(text, fuzz::to_text(back)) << "seed " << seed;
    }
}

TEST(FuzzSpec, IgnoresBlankLinesAndComments) {
    const fuzz::ModelSpec spec = fuzz::from_text(
        "# a comment\n\nmodel seed=9 horizon=0\n"
        "cpu policy=fifo quantum=0 preemptive=1 sched=0 load=0 save=0 formula=0\n"
        "task name=A cpu=0 prio=1 start=0 period=0 act=1 deadline=0 trigger=0\n"
        "op d=0 kind=compute target=0 dur=1000000 timeout=0 repeat=1\n");
    EXPECT_EQ(spec.seed, 9u);
    ASSERT_EQ(spec.tasks.size(), 1u);
    EXPECT_EQ(spec.tasks[0].name, "A");
    ASSERT_EQ(spec.tasks[0].body.size(), 1u);
}

TEST(FuzzSpec, RejectsMalformedInput) {
    EXPECT_THROW((void)fuzz::from_text("model seed=oops"), std::runtime_error);
    EXPECT_THROW((void)fuzz::from_text("cpu policy=bogus quantum=0 preemptive=1 "
                                       "sched=0 load=0 save=0 formula=0"),
                 std::runtime_error);
    // op before any task: nothing to attach the body to.
    EXPECT_THROW((void)fuzz::from_text(
                     "model seed=1 horizon=0\n"
                     "op d=0 kind=compute target=0 dur=0 timeout=0 repeat=1\n"),
                 std::runtime_error);
}

TEST(FuzzSpec, RejectsOutOfRangeNumbers) {
    // strtoull wraps "-1" to 2^64-1 without setting errno: a negative must
    // fail loudly, not silently become a huge unsigned.
    EXPECT_THROW((void)fuzz::from_text("model seed=-1 horizon=0"),
                 std::runtime_error);
    EXPECT_THROW((void)fuzz::from_text("model seed=+3 horizon=0"),
                 std::runtime_error);
    // Larger than 2^64: ERANGE path.
    EXPECT_THROW(
        (void)fuzz::from_text("model seed=99999999999999999999999 horizon=0"),
        std::runtime_error);
    // Trailing garbage after a valid prefix.
    EXPECT_THROW((void)fuzz::from_text("model seed=12abc horizon=0"),
                 std::runtime_error);
    // Empty value.
    EXPECT_THROW((void)fuzz::from_text("model seed= horizon=0"),
                 std::runtime_error);
}

// --------------------------------------------------------------- runner

TEST(FuzzRunner, EnginesAgreeOnSmokeSeeds) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const fuzz::Divergence d = fuzz::diff_engines(fuzz::generate(seed));
        EXPECT_FALSE(d.diverged) << "seed " << seed << "\n" << d.to_string();
    }
}

TEST(FuzzRunner, RunsAreReproducible) {
    const fuzz::ModelSpec spec = fuzz::generate(77);
    const fuzz::RunResult a = fuzz::run_model(spec, rtsc::rtos::EngineKind::procedure_calls);
    const fuzz::RunResult b = fuzz::run_model(spec, rtsc::rtos::EngineKind::procedure_calls);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.end_ps, b.end_ps);
}

TEST(FuzzRunner, CompareFlagsInjectedStateDifference) {
    const fuzz::ModelSpec spec = fuzz::generate(3);
    fuzz::RunResult a = fuzz::run_model(spec, rtsc::rtos::EngineKind::procedure_calls);
    fuzz::RunResult b = a;
    ASSERT_FALSE(b.states.empty());
    b.states[b.states.size() / 2] += " tampered";
    const fuzz::Divergence d = fuzz::compare(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.stream, "states");
    EXPECT_EQ(d.index, b.states.size() / 2);
}

TEST(FuzzRunner, CompareFlagsEndTimeDifference) {
    const fuzz::ModelSpec spec = fuzz::generate(3);
    fuzz::RunResult a = fuzz::run_model(spec, rtsc::rtos::EngineKind::procedure_calls);
    fuzz::RunResult b = a;
    b.end_ps += 1;
    const fuzz::Divergence d = fuzz::compare(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.stream, "end_time");
}

TEST(FuzzRunner, KernelActivationCountsAreEngineSpecific) {
    // The §4 comparison metric: the procedural engine exists to activate the
    // kernel less often. The counts must NOT be part of the equivalence
    // digest — assert the runner records them separately.
    const fuzz::ModelSpec spec = fuzz::generate(5);
    fuzz::RunResult proc, thrd;
    const fuzz::Divergence d = fuzz::diff_engines(spec, &proc, &thrd);
    EXPECT_FALSE(d.diverged) << d.to_string();
    EXPECT_LT(proc.kernel_activations, thrd.kernel_activations);
}

// -------------------------------------------------------------- shrinker

TEST(FuzzShrink, MinimizesAgainstSyntheticPredicate) {
    // Predicate: "some task contains a sem_acquire op". The 1-minimal spec
    // under the shrinker's edit set is a single task with that single op and
    // everything else stripped.
    // Needs a seed whose model has a *top-level* sem_acquire: the edit set
    // drops ops (taking nested bodies with them) but never hoists children,
    // so only a depth-0 acquire can survive as the 1-minimal form. Scan for
    // one instead of pinning a magic seed — the generator's draw sequence
    // may change between versions.
    // The greedy pass could otherwise strand a *nested* acquire as a local
    // minimum (drop the top-level one first, keep its critical's copy), so
    // require every acquire in the seed model to sit at depth 0.
    const auto only_top_acquires = [](const fuzz::ModelSpec& s) {
        bool top = false;
        for (const fuzz::TaskSpec& t : s.tasks) {
            std::vector<std::pair<const fuzz::OpSpec*, bool>> stack;
            for (const fuzz::OpSpec& op : t.body) stack.push_back({&op, false});
            while (!stack.empty()) {
                const auto [op, nested] = stack.back();
                stack.pop_back();
                if (op->kind == fuzz::OpKind::sem_acquire) {
                    if (nested) return false;
                    top = true;
                }
                for (const fuzz::OpSpec& c : op->body)
                    stack.push_back({&c, true});
            }
        }
        return top;
    };
    fuzz::ModelSpec big;
    bool found = false;
    for (std::uint64_t seed = 1; seed <= 2000 && !found; ++seed) {
        big = fuzz::generate(seed);
        found = only_top_acquires(big);
    }
    ASSERT_TRUE(found) << "no seed in 1..2000 with only top-level sem_acquires";
    const fuzz::Predicate has_acquire = [](const fuzz::ModelSpec& s) {
        for (const fuzz::TaskSpec& t : s.tasks) {
            std::vector<const fuzz::OpSpec*> stack;
            for (const fuzz::OpSpec& op : t.body) stack.push_back(&op);
            while (!stack.empty()) {
                const fuzz::OpSpec* op = stack.back();
                stack.pop_back();
                if (op->kind == fuzz::OpKind::sem_acquire) return true;
                for (const fuzz::OpSpec& c : op->body) stack.push_back(&c);
            }
        }
        return false;
    };
    ASSERT_TRUE(has_acquire(big));
    fuzz::ShrinkStats stats;
    const fuzz::ModelSpec small = fuzz::shrink(big, has_acquire, &stats);
    EXPECT_TRUE(has_acquire(small));
    EXPECT_GT(stats.accepted, 0u);
    ASSERT_EQ(small.tasks.size(), 1u);
    ASSERT_EQ(small.tasks[0].body.size(), 1u);
    EXPECT_EQ(small.tasks[0].body[0].kind, fuzz::OpKind::sem_acquire);
    EXPECT_EQ(small.horizon_ps, 0u);
    EXPECT_TRUE(small.irqs.empty());
    EXPECT_TRUE(small.faults.empty());
}

TEST(FuzzShrink, AlwaysTruePredicateShrinksToNothing) {
    // With an unconditionally true predicate every drop is accepted — the
    // fixpoint is the empty model. This pins the edit set as complete: no
    // structural element survives shrinking on its own.
    const fuzz::ModelSpec big = fuzz::generate(75);
    const fuzz::Predicate always = [](const fuzz::ModelSpec&) { return true; };
    const fuzz::ModelSpec small = fuzz::shrink(big, always);
    EXPECT_TRUE(small.tasks.empty());
    EXPECT_TRUE(small.sems.empty());
    EXPECT_TRUE(small.irqs.empty());
    EXPECT_TRUE(small.faults.empty());
    EXPECT_EQ(small.horizon_ps, 0u);
}

TEST(FuzzShrink, EmittedTestEmbedsSpecAndParsesBack) {
    const fuzz::ModelSpec spec = fuzz::generate(11);
    const std::string src = fuzz::emit_cpp_test(spec, "Seed11");
    EXPECT_NE(src.find("TEST(FuzzRegression, Seed11)"), std::string::npos);
    EXPECT_NE(src.find("diff_engines"), std::string::npos);
    // Extract the raw-string payload and check it parses to the same spec.
    const std::string open = "R\"spec(";
    const auto b = src.find(open);
    const auto e = src.find(")spec\"");
    ASSERT_NE(b, std::string::npos);
    ASSERT_NE(e, std::string::npos);
    const std::string payload = src.substr(b + open.size(), e - b - open.size());
    EXPECT_EQ(fuzz::to_text(fuzz::from_text(payload)), fuzz::to_text(spec));
}

} // namespace
