// Workload-layer tests: periodic task sets on the RTOS model, deadline-miss
// detection, UUniFast, and the central cross-validation property — simulated
// worst-case response times must equal exact response-time analysis for
// synchronous periodic sets with zero RTOS overhead, and stay within the
// overhead-extended RTA bound otherwise.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/response_time.hpp"
#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "workload/taskset.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
namespace a = rtsc::analysis;
using k::Time;
using namespace rtsc::kernel::time_literals;

TEST(TaskSetTest, JobsReleasePeriodically) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    w::PeriodicTaskSet ts(cpu, {{.name = "t",
                                 .period = 100_us,
                                 .wcet = 10_us,
                                 .priority = 1}});
    sim.run_until(1_ms);
    const auto* res = ts.result("t");
    ASSERT_NE(res, nullptr);
    EXPECT_EQ(res->jobs.size(), 10u);
    for (const auto& job : res->jobs) {
        EXPECT_EQ(job.release, job.index * 100_us);
        EXPECT_EQ(job.response(), 10_us);
        EXPECT_FALSE(job.missed);
    }
    EXPECT_EQ(res->max_response, 10_us);
    EXPECT_EQ(ts.total_misses(), 0u);
}

TEST(TaskSetTest, OffsetDelaysFirstJob) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    w::PeriodicTaskSet ts(cpu, {{.name = "t",
                                 .period = 100_us,
                                 .wcet = 5_us,
                                 .offset = 30_us,
                                 .priority = 1}});
    sim.run_until(250_us);
    const auto* res = ts.result("t");
    ASSERT_EQ(res->jobs.size(), 3u); // releases at 30, 130, 230
    EXPECT_EQ(res->jobs[0].release, 30_us);
    EXPECT_EQ(res->jobs[1].release, 130_us);
    EXPECT_EQ(res->jobs[2].release, 230_us);
}

TEST(TaskSetTest, OverloadedTaskMissesDeadlines) {
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    w::PeriodicTaskSet ts(cpu, {
        {.name = "hog", .period = 100_us, .wcet = 80_us, .priority = 2},
        {.name = "victim", .period = 200_us, .wcet = 60_us, .priority = 1},
    });
    sim.run_until(2_ms);
    // U = 0.8 + 0.3 = 1.1 > 1: the low-priority task cannot make it.
    EXPECT_GT(ts.result("victim")->misses, 0u);
    EXPECT_EQ(ts.result("hog")->misses, 0u);
}

TEST(TaskSetTest, SimulatedResponsesMatchExactRta) {
    // Classic set C=(1,2,3)ms, T=(4,6,10)ms, RM priorities, zero overhead:
    // simulated worst-case responses over one hyperperiod must equal RTA.
    const std::vector<w::PeriodicSpec> specs{
        {.name = "t1", .period = 4_ms, .wcet = 1_ms, .priority = 3},
        {.name = "t2", .period = 6_ms, .wcet = 2_ms, .priority = 2},
        {.name = "t3", .period = 10_ms, .wcet = 3_ms, .priority = 1},
    };
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(a::hyperperiod(ts.to_analysis())); // 60 ms

    const auto rta = a::response_time_analysis(ts.to_analysis());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto* res = ts.result(specs[i].name);
        ASSERT_NE(res, nullptr);
        ASSERT_TRUE(rta[i].response.has_value());
        EXPECT_EQ(res->max_response, *rta[i].response)
            << specs[i].name << ": simulation vs analysis";
        EXPECT_EQ(res->misses, 0u);
    }
}

TEST(TaskSetTest, RandomSetsMatchRtaProperty) {
    // Property over random schedulable sets: simulated max response == exact
    // RTA (zero overheads, synchronous release, distinct RM priorities).
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        auto specs = w::random_task_set(4, 0.65, 1_ms, 20_ms, seed);
        // Make priorities unique (rate_monotonic_priorities may tie).
        std::vector<std::pair<Time, std::size_t>> order;
        for (std::size_t i = 0; i < specs.size(); ++i)
            order.emplace_back(specs[i].period, i);
        std::sort(order.begin(), order.end());
        for (std::size_t rank = 0; rank < order.size(); ++rank)
            specs[order[rank].second].priority =
                static_cast<int>(order.size() - rank);

        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
        w::PeriodicTaskSet ts(cpu, specs);
        const auto analysis_set = ts.to_analysis();
        const auto rta = a::response_time_analysis(analysis_set);
        bool all_schedulable = true;
        for (const auto& r2 : rta) all_schedulable &= r2.schedulable;
        if (!all_schedulable) continue;

        // The critical instant for a synchronous fixed-priority set is t=0,
        // so the first job of every task already shows the worst response;
        // random coprime periods would make the full hyperperiod untractably
        // long, so cap the horizon well past the first busy period instead.
        const Time horizon =
            std::min(a::hyperperiod(analysis_set), Time::ms(150));
        sim.run_until(horizon);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto* res = ts.result(specs[i].name);
            ASSERT_TRUE(rta[i].response.has_value());
            EXPECT_EQ(res->max_response, *rta[i].response)
                << "seed " << seed << " task " << specs[i].name;
            EXPECT_EQ(res->misses, 0u) << "seed " << seed;
        }
    }
}

TEST(TaskSetTest, OverheadsKeepResponsesWithinExtendedRtaBound) {
    const std::vector<w::PeriodicSpec> specs{
        {.name = "t1", .period = 4_ms, .wcet = 1_ms, .priority = 3},
        {.name = "t2", .period = 6_ms, .wcet = 2_ms, .priority = 2},
        {.name = "t3", .period = 20_ms, .wcet = 3_ms, .priority = 1},
    };
    const Time cs = 50_us; // per-component overhead
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>());
    cpu.set_overheads(r::RtosOverheads::uniform(cs));
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(60_ms);

    const auto base = a::response_time_analysis(ts.to_analysis());
    // Lump save+sched+load into the RTA context-switch term.
    const auto bound = a::response_time_analysis(
        ts.to_analysis(), {.context_switch = 3u * cs, .max_iterations = 1000});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto* res = ts.result(specs[i].name);
        ASSERT_TRUE(bound[i].response.has_value());
        EXPECT_GE(res->max_response, *base[i].response) << specs[i].name;
        EXPECT_LE(res->max_response, *bound[i].response) << specs[i].name;
    }
}

TEST(TaskSetTest, EdfDeadlinesDriveEdfPolicy) {
    // Under EDF a set with U slightly above the RM bound but <= 1 stays
    // schedulable while fixed-priority misses.
    const std::vector<w::PeriodicSpec> specs{
        {.name = "a", .period = 10_ms, .wcet = 5_ms, .priority = 0,
         .edf_deadlines = true},
        {.name = "b", .period = 14_ms, .wcet = 6_ms, .priority = 0,
         .edf_deadlines = true},
    };
    // U = 0.5 + 0.4286 = 0.9286 > RM bound 0.828.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::EdfPolicy>());
    w::PeriodicTaskSet ts(cpu, specs);
    sim.run_until(140_ms); // hyperperiod lcm(10,14)=70ms, two rounds
    EXPECT_EQ(ts.total_misses(), 0u);
}

TEST(UUniFastTest, SumsToTargetAndIsDeterministic) {
    const auto u1 = w::uunifast(5, 0.8, 42);
    const auto u2 = w::uunifast(5, 0.8, 42);
    EXPECT_EQ(u1, u2);
    double sum = 0.0;
    for (double v : u1) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 0.8 + 1e-12);
        sum += v;
    }
    EXPECT_NEAR(sum, 0.8, 1e-12);
    EXPECT_NE(w::uunifast(5, 0.8, 43), u1);
}

TEST(UUniFastTest, EdgeCases) {
    EXPECT_TRUE(w::uunifast(0, 0.5, 1).empty());
    const auto one = w::uunifast(1, 0.7, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_NEAR(one[0], 0.7, 1e-12);
}

TEST(RandomTaskSetTest, RespectsUtilizationAndPriorities) {
    const auto specs = w::random_task_set(6, 0.7, 1_ms, 50_ms, 7);
    ASSERT_EQ(specs.size(), 6u);
    double u = 0.0;
    for (const auto& s : specs) {
        EXPECT_GE(s.period, 1_ms);
        EXPECT_LE(s.period, 50_ms);
        EXPECT_GT(s.wcet, Time::zero());
        u += s.wcet.to_sec() / s.period.to_sec();
    }
    EXPECT_NEAR(u, 0.7, 0.05); // rounding of periods/wcets distorts slightly
    // Shorter period => higher priority.
    for (const auto& s1 : specs)
        for (const auto& s2 : specs)
            if (s1.period < s2.period) {
                EXPECT_GT(s1.priority, s2.priority);
            }
}
