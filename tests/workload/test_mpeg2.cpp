// MPEG-2 SoC case-study tests: structure (18 tasks / 6 processors, 3 with an
// RTOS model), end-to-end frame flow, determinism, and design-space effects
// (overheads and CPU speed move latency the right way).
#include <gtest/gtest.h>

#include "kernel/simulator.hpp"
#include "trace/recorder.hpp"
#include "trace/statistics.hpp"
#include "workload/mpeg2.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace w = rtsc::workload;
using k::Time;
using namespace rtsc::kernel::time_literals;

namespace {
w::Mpeg2Config small_config() {
    w::Mpeg2Config cfg;
    cfg.frames = 20;
    cfg.frame_period = 1000_us;
    cfg.display_deadline = 5_ms;
    return cfg;
}
} // namespace

TEST(Mpeg2Test, StructureMatchesPaper) {
    k::Simulator sim;
    w::Mpeg2System soc(small_config());
    // Three software processors with an RTOS model...
    ASSERT_EQ(soc.sw_processors().size(), 3u);
    std::size_t sw_tasks = 0;
    for (const auto* cpu : soc.sw_processors()) sw_tasks += cpu->tasks().size();
    EXPECT_EQ(sw_tasks, 11u); // 4 + 3 + 4
    // ...plus 7 hardware tasks = 18 total.
    // (HW tasks are kernel processes: VideoIn, PreFilter, MotionEstim, DCT,
    // IDCT, StreamOut, Display.)
    EXPECT_EQ(sw_tasks + 7u, 18u);
    EXPECT_FALSE(soc.relations().empty());
}

TEST(Mpeg2Test, AllFramesFlowThroughThePipeline) {
    k::Simulator sim;
    auto cfg = small_config();
    w::Mpeg2System soc(cfg);
    sim.run_until(100_ms);
    ASSERT_EQ(soc.displayed_frames().size(), cfg.frames);
    EXPECT_EQ(soc.frames_encoded(), cfg.frames);
    // Frames display in order with monotone timestamps.
    for (std::size_t i = 0; i < soc.displayed_frames().size(); ++i) {
        const auto& f = soc.displayed_frames()[i];
        EXPECT_EQ(f.index, i);
        EXPECT_GT(f.displayed, f.captured);
        if (i > 0) {
            EXPECT_GT(f.displayed, soc.displayed_frames()[i - 1].displayed);
        }
    }
}

TEST(Mpeg2Test, FrameTypesFollowGopStructure) {
    EXPECT_EQ(w::Mpeg2System::frame_type(0, 12), 'I');
    EXPECT_EQ(w::Mpeg2System::frame_type(12, 12), 'I');
    EXPECT_EQ(w::Mpeg2System::frame_type(3, 12), 'P');
    EXPECT_EQ(w::Mpeg2System::frame_type(6, 12), 'P');
    EXPECT_EQ(w::Mpeg2System::frame_type(1, 12), 'B');
    EXPECT_EQ(w::Mpeg2System::frame_type(2, 12), 'B');
}

TEST(Mpeg2Test, DeterministicAcrossRuns) {
    std::vector<double> latencies[2];
    for (int run = 0; run < 2; ++run) {
        k::Simulator sim;
        w::Mpeg2System soc(small_config());
        sim.run_until(100_ms);
        for (const auto& f : soc.displayed_frames())
            latencies[run].push_back(f.latency().to_us());
    }
    EXPECT_EQ(latencies[0], latencies[1]);
}

TEST(Mpeg2Test, EnginesAgreeOnLatencies) {
    std::vector<double> latencies[2];
    const r::EngineKind kinds[2] = {r::EngineKind::procedure_calls,
                                    r::EngineKind::rtos_thread};
    for (int i = 0; i < 2; ++i) {
        k::Simulator sim;
        auto cfg = small_config();
        cfg.engine = kinds[i];
        w::Mpeg2System soc(cfg);
        sim.run_until(100_ms);
        for (const auto& f : soc.displayed_frames())
            latencies[i].push_back(f.latency().to_us());
    }
    EXPECT_EQ(latencies[0], latencies[1]);
}

TEST(Mpeg2Test, SlowerCpuIncreasesLatency) {
    double avg[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        k::Simulator sim;
        auto cfg = small_config();
        cfg.sw_speed_factor = (i == 0) ? 1.0 : 2.5;
        w::Mpeg2System soc(cfg);
        sim.run_until(200_ms);
        avg[i] = soc.average_latency_us();
        EXPECT_FALSE(soc.displayed_frames().empty());
    }
    EXPECT_GT(avg[1], avg[0]);
}

TEST(Mpeg2Test, HigherRtosOverheadIncreasesLatency) {
    double avg[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
        k::Simulator sim;
        auto cfg = small_config();
        cfg.sw_overheads = r::RtosOverheads::uniform(i == 0 ? Time::zero() : 50_us);
        w::Mpeg2System soc(cfg);
        sim.run_until(200_ms);
        avg[i] = soc.average_latency_us();
    }
    EXPECT_GT(avg[1], avg[0]);
}

TEST(Mpeg2Test, StatisticsCoverAllSoftwareTasks) {
    k::Simulator sim;
    w::Mpeg2System soc(small_config());
    rtsc::trace::Recorder rec;
    for (auto* cpu : soc.sw_processors()) rec.attach(*cpu);
    for (auto* rel : soc.relations()) rec.attach(*rel);
    sim.run_until(100_ms);
    const auto rep = rtsc::trace::StatisticsReport::collect(rec, sim.now());
    EXPECT_EQ(rep.tasks.size(), 11u);
    EXPECT_EQ(rep.processors.size(), 3u);
    EXPECT_EQ(rep.relations.size(), soc.relations().size());
    for (const auto& p : rep.processors) {
        EXPECT_NEAR(p.busy_ratio + p.overhead_ratio + p.idle_ratio, 1.0, 1e-9)
            << p.name;
        EXPECT_GT(p.dispatches, 0u) << p.name;
    }
    // Every pipeline stage actually ran.
    for (const char* name : {"MotionDecision", "Quant", "VLC", "Mux", "Demux",
                             "VLD", "IQ", "MotionComp"})
        EXPECT_GT(rep.task(name)->activity_ratio, 0.0) << name;
}

TEST(Mpeg2Test, TightDeadlineProducesMisses) {
    k::Simulator sim;
    auto cfg = small_config();
    cfg.display_deadline = 500_us; // impossible end-to-end budget
    w::Mpeg2System soc(cfg);
    sim.run_until(100_ms);
    EXPECT_GT(soc.deadline_misses(), 0u);
    EXPECT_EQ(soc.deadline_misses(), soc.displayed_frames().size());
}
