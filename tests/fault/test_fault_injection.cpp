// FaultInjector: deterministic replay is the acceptance criterion — the same
// FaultPlan and seed must produce bit-identical trace timelines, violation
// lists and fault counters across runs; a different seed must produce a
// different fault pattern; an empty plan must be perfectly transparent.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "../rtos/recording.hpp"
#include "fault/fault_injector.hpp"
#include "kernel/simulator.hpp"
#include "mcse/message_queue.hpp"
#include "rtos/interrupt.hpp"
#include "rtos/processor.hpp"
#include "trace/constraints.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
namespace f = rtsc::fault;
using rtsc::test::RecordingObserver;
using namespace rtsc::kernel::time_literals;

namespace {

struct CampaignResult {
    std::vector<std::string> log;        ///< task-state transition timeline
    std::vector<std::string> violations; ///< constraint violations, in order
    f::FaultInjector::Counters counters;
    std::uint64_t line_raised = 0;
    std::uint64_t line_dropped = 0;
    std::uint64_t line_serviced = 0;
    std::uint64_t queue_lost = 0;

    bool operator==(const CampaignResult& o) const {
        return log == o.log && violations == o.violations &&
               counters.jittered_computes == o.counters.jittered_computes &&
               counters.irqs_dropped == o.counters.irqs_dropped &&
               counters.irqs_bursted == o.counters.irqs_bursted &&
               counters.irqs_spurious == o.counters.irqs_spurious &&
               counters.messages_lost == o.counters.messages_lost &&
               line_raised == o.line_raised && line_dropped == o.line_dropped &&
               line_serviced == o.line_serviced && queue_lost == o.queue_lost;
    }
};

/// An interrupt-driven producer/consumer model under a fault campaign:
/// hardware pulses an interrupt line every 10us; the ISR pushes a message;
/// a consumer task processes each message for 3us under a response bound.
CampaignResult run_campaign(std::uint64_t seed, bool with_faults,
                            bool with_injector = true) {
    CampaignResult out;
    k::Simulator sim;
    sim.reporter().set_sink([](k::Severity, const std::string&) {});
    r::Processor cpu("cpu");
    cpu.set_overheads(r::RtosOverheads::uniform(1_us));
    RecordingObserver rec;
    cpu.add_observer(rec);

    r::InterruptLine irq("irq");
    m::MessageQueue<int> q("q", 8);
    tr::ConstraintMonitor mon;

    r::Task& consumer =
        cpu.create_task({.name = "consumer", .priority = 1}, [&](r::Task& self) {
            int v = 0;
            while (q.read_for(v, 100_us)) self.compute(3_us);
        });
    // A burst that stacks messages makes one consumer activation span
    // several of them, blowing this bound — violations depend on the
    // injected fault pattern and must replay identically.
    mon.require_response(consumer, 9_us, "consumer.response");

    irq.attach_isr(cpu, 5, [&](r::Task&) { (void)q.try_write(1); }, 2_us);

    sim.spawn("pulse", [&] {
        for (int i = 0; i < 40; ++i) {
            k::wait(10_us);
            irq.raise();
        }
    });

    f::FaultPlan plan;
    if (with_faults) {
        plan.exec_jitter.push_back({&consumer, 0.5, 0.5, 2.0});
        plan.irq_drops.push_back({&irq, 0.25});
        plan.irq_bursts.push_back({&irq, 0.2, 1, 2});
        plan.irq_spurious.push_back({&irq, 50_us, 10_us, 350_us});
        plan.message_losses.push_back({&q, 0.2});
    }
    std::unique_ptr<f::FaultInjector> inj;
    if (with_injector) {
        inj = std::make_unique<f::FaultInjector>(sim, plan, seed);
        inj->arm();
    }
    sim.run();

    out.log = rec.strings();
    for (const auto& v : mon.violations()) {
        std::ostringstream os;
        os << v.constraint << "@" << v.at.to_string()
           << " measured=" << v.measured.to_string();
        out.violations.push_back(os.str());
    }
    if (inj) out.counters = inj->counters();
    out.line_raised = irq.raised();
    out.line_dropped = irq.dropped();
    out.line_serviced = irq.serviced();
    out.queue_lost = q.lost();
    return out;
}

} // namespace

TEST(FaultInjection, SameSeedReplaysBitIdentically) {
    const CampaignResult first = run_campaign(42, true);
    const CampaignResult second = run_campaign(42, true);
    EXPECT_EQ(first, second);
    // The campaign actually did something worth replaying.
    EXPECT_GT(first.counters.irqs_dropped + first.counters.irqs_bursted +
                  first.counters.irqs_spurious + first.counters.messages_lost +
                  first.counters.jittered_computes,
              0u);
}

TEST(FaultInjection, DifferentSeedChangesTheFaultPattern) {
    const CampaignResult a = run_campaign(42, true);
    const CampaignResult b = run_campaign(7, true);
    EXPECT_NE(a.log, b.log);
}

TEST(FaultInjection, EmptyPlanIsTransparent) {
    const CampaignResult armed = run_campaign(42, false, true);
    const CampaignResult bare = run_campaign(42, false, false);
    EXPECT_EQ(armed.log, bare.log);
    EXPECT_EQ(armed.violations, bare.violations);
    EXPECT_EQ(armed.counters.jittered_computes, 0u);
    EXPECT_EQ(armed.counters.irqs_dropped, 0u);
    EXPECT_EQ(armed.counters.irqs_bursted, 0u);
    EXPECT_EQ(armed.counters.irqs_spurious, 0u);
    EXPECT_EQ(armed.counters.messages_lost, 0u);
    EXPECT_EQ(armed.line_dropped, 0u);
    EXPECT_EQ(armed.queue_lost, 0u);
}

TEST(FaultInjection, CountersAgreeWithTheModel) {
    const CampaignResult res = run_campaign(42, true);
    // Every drop decided by the injector's filter shows up on the line
    // (max_pending is unbounded here, so the filter is the only drop cause).
    EXPECT_EQ(res.counters.irqs_dropped, res.line_dropped);
    // raise() is counted once per hardware pulse plus one per spurious raise.
    EXPECT_EQ(res.line_raised, 40u + res.counters.irqs_spurious);
    // Spurious generator: period 50us with <=10us jitter until 350us.
    EXPECT_GE(res.counters.irqs_spurious, 5u);
    EXPECT_LE(res.counters.irqs_spurious, 7u);
    // Lost messages are recorded by the channel too.
    EXPECT_EQ(res.counters.messages_lost, res.queue_lost);
    // Some pulses survived to be serviced.
    EXPECT_GT(res.line_serviced, 0u);
}

TEST(FaultInjection, ArmTwiceThrows) {
    k::Simulator sim;
    f::FaultInjector inj(sim, {}, 1);
    inj.arm();
    EXPECT_THROW(inj.arm(), k::SimulationError);
}

TEST(FaultInjection, ScheduledCrashKillsAndRestarts) {
    for (bool restart : {false, true}) {
        k::Simulator sim;
        sim.reporter().set_sink([](k::Severity, const std::string&) {});
        r::Processor cpu("cpu");
        int incarnations = 0;
        r::Task& t = cpu.create_task({.name = "t", .priority = 1},
                                     [&](r::Task& self) {
                                         ++incarnations;
                                         for (;;) {
                                             self.compute(5_us);
                                             self.sleep_for(5_us);
                                         }
                                     });
        f::FaultPlan plan;
        plan.task_crashes.push_back({&t, 100_us, restart, 10_us});
        f::FaultInjector inj(sim, plan, 99);
        inj.arm();
        sim.run_until(300_us);

        EXPECT_EQ(inj.counters().tasks_crashed, 1u) << restart;
        if (restart) {
            EXPECT_EQ(inj.counters().tasks_restarted, 1u);
            EXPECT_EQ(t.restarts(), 1u);
            EXPECT_EQ(incarnations, 2);
            EXPECT_FALSE(t.terminated());
        } else {
            EXPECT_EQ(inj.counters().tasks_restarted, 0u);
            EXPECT_TRUE(t.killed());
            EXPECT_TRUE(t.terminated());
            EXPECT_EQ(incarnations, 1);
        }
    }
}

TEST(FaultInjection, ExecJitterScalesComputeDurations) {
    // probability 1 and scale [2, 2]: every compute takes exactly twice as
    // long — deterministic check without relying on stream internals.
    k::Simulator sim;
    r::Processor cpu("cpu");
    r::Task& t = cpu.create_task({.name = "t", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    f::FaultPlan plan;
    plan.exec_jitter.push_back({&t, 1.0, 2.0, 2.0});
    f::FaultInjector inj(sim, plan, 5);
    inj.arm();
    sim.run();
    EXPECT_EQ(sim.now(), 20_us);
    EXPECT_EQ(inj.counters().jittered_computes, 1u);
    EXPECT_EQ(t.stats().running_time, 20_us);
}

class ExecJitterDvfsTest : public ::testing::TestWithParam<r::EngineKind> {};

TEST_P(ExecJitterDvfsTest, JitterComposesAfterDvfsScaling) {
    // Composition order is scale-first-then-jitter, pinned to the exact
    // picosecond on both engines. 1'000'001 ps at a 1.5x stretch rounds half
    // up to 1'500'002, and the x2 jitter doubles that to 3'000'004 — whereas
    // jitter-first would give 2'000'002 * 1.5 = 3'000'003 exactly.
    k::Simulator sim;
    r::Processor cpu("cpu", std::make_unique<r::StaticEdfPolicy>(), GetParam());
    cpu.set_dvfs(r::DvfsModel({{300'000, 1000}, {200'000, 1000}}));
    auto& pol = dynamic_cast<r::StaticEdfPolicy&>(cpu.policy());
    r::Task& t = cpu.create_task(
        {.name = "t", .priority = 1},
        [](r::Task& self) { self.compute(k::Time::ps(1'000'001)); });
    pol.declare_task(t, 1_us, 2_us); // U = 0.5 -> the 200 MHz point
    f::FaultPlan plan;
    plan.exec_jitter.push_back({&t, 1.0, 2.0, 2.0});
    f::FaultInjector inj(sim, plan, 5);
    inj.arm();
    sim.run();
    EXPECT_EQ(sim.now(), k::Time::ps(3'000'004));
    EXPECT_EQ(t.stats().running_time, k::Time::ps(3'000'004));
    // The stretched-and-jittered wall time all burns at the slow point.
    EXPECT_EQ(t.energy_exec(),
              r::Energy(200'000) * 1000 * 1000 * 3'000'004);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ExecJitterDvfsTest,
                         ::testing::Values(r::EngineKind::procedure_calls,
                                           r::EngineKind::rtos_thread));
