// Fault-tolerant task lifecycle: Task::kill() / Processor::restart_task()
// must behave identically in simulated time under BOTH engine
// implementations (§4.1 dedicated RTOS thread, §4.2 procedure calls):
//   - killing a Running task pays context-save + scheduling like a normal
//     leave, and the next ready task pays its context-load;
//   - killing a Ready / Waiting task unlinks it with no overhead charge;
//   - an exception escaping one task's body terminates only that task;
//   - a killed task can be restarted as a fresh incarnation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "../rtos/recording.hpp"
#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "mcse/semaphore.hpp"
#include "rtos/processor.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
using rtsc::test::RecordingObserver;
using namespace rtsc::kernel::time_literals;

namespace {

struct EngineCase {
    r::EngineKind kind;
    const char* label;
};

const EngineCase kEngines[] = {
    {r::EngineKind::procedure_calls, "procedure_calls"},
    {r::EngineKind::rtos_thread, "rtos_thread"},
};

/// Does any overhead charge start at `at`?
bool overhead_at(const RecordingObserver& rec, k::Time at) {
    for (const auto& o : rec.overheads)
        if (o.start == at) return true;
    return false;
}

} // namespace

TEST(KillRestart, KillWaitingTaskUnlinksWithoutCharges) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        m::Event ev("ev");
        bool resumed = false;
        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [&](r::Task& self) {
                                         self.compute(10_us);
                                         ev.await(); // never signalled
                                         resumed = true;
                                     });
        sim.spawn("killer", [&] {
            k::wait(50_us);
            a.kill();
        });
        sim.run();

        EXPECT_TRUE(a.killed()) << ec.label;
        EXPECT_FALSE(a.crashed()) << ec.label;
        EXPECT_TRUE(a.terminated()) << ec.label;
        EXPECT_TRUE(a.body_finished()) << ec.label;
        EXPECT_FALSE(resumed) << ec.label;
        const auto ts = rec.of("a");
        ASSERT_FALSE(ts.empty()) << ec.label;
        EXPECT_EQ(ts.back().str(), "50 us a->terminated") << ec.label;
        // A Waiting task's kill costs nothing: the last overhead is the
        // save+sched pair of its block at t=20.
        EXPECT_FALSE(overhead_at(rec, 50_us)) << ec.label;
        logs.push_back(rec.strings());
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, KillRunningTaskPaysSaveSchedAndSuccessorLoads) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [](r::Task& self) { self.compute(100_us); });
        cpu.create_task({.name = "b", .priority = 1},
                        [](r::Task& self) { self.compute(20_us); });
        sim.spawn("killer", [&] {
            k::wait(30_us);
            a.kill();
        });
        sim.run();

        // sched 0-5, a load 5-10, a runs 10-30 (killed); the unwind pays
        // save 30-35 + sched 35-40 like a normal leave; b loads 40-45 and
        // runs 45-65.
        EXPECT_TRUE(a.killed()) << ec.label;
        const auto ts = rec.strings();
        EXPECT_NE(std::find(ts.begin(), ts.end(), "30 us a->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "45 us b->running"), ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "65 us b->terminated"),
                  ts.end())
            << ec.label;
        // The kill's leave charges are visible as overheads at 30 (save) and
        // 35 (sched), then b's load at 40.
        EXPECT_TRUE(overhead_at(rec, 30_us)) << ec.label;
        EXPECT_TRUE(overhead_at(rec, 35_us)) << ec.label;
        EXPECT_TRUE(overhead_at(rec, 40_us)) << ec.label;
        logs.push_back(ts);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, KillReadyTaskLeavesRunningTaskUndisturbed) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        cpu.create_task({.name = "a", .priority = 2},
                        [](r::Task& self) { self.compute(100_us); });
        r::Task& b = cpu.create_task({.name = "b", .priority = 1},
                                     [](r::Task& self) { self.compute(20_us); });
        sim.spawn("killer", [&] {
            k::wait(30_us);
            b.kill();
        });
        sim.run();

        // b sits in the ready queue behind a; killing it at 30 charges
        // nothing and a's schedule is untouched: a runs 10-110.
        EXPECT_TRUE(b.killed()) << ec.label;
        const auto ts = rec.strings();
        EXPECT_NE(std::find(ts.begin(), ts.end(), "30 us b->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "110 us a->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_FALSE(overhead_at(rec, 30_us)) << ec.label;
        // b never ran.
        for (const auto& t : rec.of("b"))
            EXPECT_NE(t.to, r::TaskState::running) << ec.label;
        logs.push_back(ts);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, SelfKillThrowsAndPaysLeaveCharges) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        bool after_kill = false;
        r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                     [&](r::Task& self) {
                                         self.compute(20_us);
                                         self.kill(); // throws ProcessKilled
                                         after_kill = true;
                                     });
        sim.run();

        // sched 0-5, load 5-10, run 10-30, kill: save 30-35, sched 35-40.
        EXPECT_TRUE(a.killed()) << ec.label;
        EXPECT_FALSE(after_kill) << ec.label;
        const auto ts = rec.of("a");
        ASSERT_FALSE(ts.empty()) << ec.label;
        EXPECT_EQ(ts.back().str(), "30 us a->terminated") << ec.label;
        EXPECT_TRUE(overhead_at(rec, 30_us)) << ec.label;
        EXPECT_TRUE(overhead_at(rec, 35_us)) << ec.label;
        logs.push_back(rec.strings());
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, KillDuringContextLoadRedispatches) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [](r::Task& self) { self.compute(50_us); });
        cpu.create_task({.name = "b", .priority = 1},
                        [](r::Task& self) { self.compute(50_us); });
        sim.spawn("killer", [&] {
            k::wait(7_us); // a's context-load is charging 5-10
            a.kill();
        });
        sim.run();

        // a was granted the CPU but never reached Running: the kill voids
        // the grant, a fresh scheduling pass runs 7-12, b loads 12-17 and
        // runs 17-67. No context-save is charged (a had no context yet).
        EXPECT_TRUE(a.killed()) << ec.label;
        const auto ts = rec.strings();
        EXPECT_NE(std::find(ts.begin(), ts.end(), "7 us a->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "17 us b->running"), ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "67 us b->terminated"),
                  ts.end())
            << ec.label;
        for (const auto& t : rec.of("a"))
            EXPECT_NE(t.to, r::TaskState::running) << ec.label;
        logs.push_back(ts);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, ExceptionTerminatesOnlyTheThrowingTask) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        sim.reporter().set_sink([](k::Severity, const std::string&) {});
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [](r::Task& self) {
                                         self.compute(20_us);
                                         throw std::runtime_error("boom");
                                     });
        r::Task& b = cpu.create_task({.name = "b", .priority = 1},
                                     [](r::Task& self) { self.compute(30_us); });
        sim.run(); // must not propagate the exception

        EXPECT_TRUE(a.crashed()) << ec.label;
        EXPECT_FALSE(a.killed()) << ec.label;
        EXPECT_TRUE(a.terminated()) << ec.label;
        EXPECT_TRUE(b.terminated()) << ec.label;
        EXPECT_FALSE(b.crashed()) << ec.label;
        // The crash is charged like a normal leave: a dies at 30,
        // save 30-35, sched 35-40, b loads 40-45 and runs 45-75.
        const auto ts = rec.strings();
        EXPECT_NE(std::find(ts.begin(), ts.end(), "30 us a->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_NE(std::find(ts.begin(), ts.end(), "75 us b->terminated"),
                  ts.end())
            << ec.label;
        EXPECT_EQ(sim.reporter().count(k::Severity::warning), 1u) << ec.label;
        logs.push_back(ts);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, KillUnwindReleasesHeldSemaphore) {
    // a holds the semaphore when killed; the RAII guard on its stack must
    // release it during the unwind so b can proceed — on both engines.
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        RecordingObserver rec;
        cpu.add_observer(rec);

        m::Semaphore sem("sem", 1);
        bool b_done = false;
        r::Task& a = cpu.create_task({.name = "a", .priority = 2},
                                     [&](r::Task& self) {
                                         m::Semaphore::Guard g(sem);
                                         self.compute(100_us);
                                     });
        cpu.create_task({.name = "b", .priority = 1}, [&](r::Task& self) {
            self.compute(5_us);
            m::Semaphore::Guard g(sem);
            self.compute(5_us);
            b_done = true;
        });
        sim.spawn("killer", [&] {
            k::wait(20_us);
            a.kill();
        });
        sim.run();

        EXPECT_TRUE(a.killed()) << ec.label;
        EXPECT_TRUE(b_done) << ec.label;
        EXPECT_EQ(sem.value(), 1u) << ec.label;
        logs.push_back(rec.strings());
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, RestartRunsAFreshIncarnation) {
    std::vector<std::vector<std::string>> logs;
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        cpu.set_overheads(r::RtosOverheads::uniform(5_us));
        RecordingObserver rec;
        cpu.add_observer(rec);

        m::Event ev("ev");
        int incarnations = 0;
        r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                     [&](r::Task& self) {
                                         ++incarnations;
                                         self.compute(10_us);
                                         ev.await(); // hangs every time
                                     });
        sim.spawn("recover", [&] {
            k::wait(50_us);
            k::Event& done = a.done_event();
            a.kill();
            if (!a.body_finished()) k::wait(done);
            cpu.restart_task(a, 5_us);
        });
        sim.run();

        EXPECT_EQ(incarnations, 2) << ec.label;
        EXPECT_EQ(a.restarts(), 1u) << ec.label;
        EXPECT_FALSE(a.killed()) << ec.label; // cleared by the restart
        EXPECT_EQ(a.state(), r::TaskState::waiting) << ec.label;
        // Second incarnation: released at 55, sched 55-60, load 60-65,
        // runs 65-75, blocks on ev.
        const auto ts = rec.strings();
        EXPECT_NE(std::find(ts.begin(), ts.end(), "75 us a->waiting"), ts.end())
            << ec.label;
        logs.push_back(ts);
    }
    EXPECT_EQ(logs[0], logs[1]);
}

TEST(KillRestart, RestartOfLiveTaskThrows) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [](r::Task& self) { self.compute(10_us); });
    sim.spawn("meddler", [&] {
        k::wait(5_us);
        EXPECT_THROW(cpu.restart_task(a), k::SimulationError);
    });
    sim.run();
    EXPECT_TRUE(a.terminated());
    EXPECT_EQ(a.restarts(), 0u);
}

TEST(KillRestart, KillIsIdempotent) {
    for (const auto& ec : kEngines) {
        k::Simulator sim;
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         ec.kind);
        m::Event ev("ev");
        r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                     [&](r::Task&) { ev.await(); });
        sim.spawn("killer", [&] {
            k::wait(10_us);
            a.kill();
            a.kill(); // second kill is a no-op
            k::wait(10_us);
            a.kill(); // kill after termination too
        });
        sim.run();
        EXPECT_TRUE(a.killed()) << ec.label;
        EXPECT_TRUE(a.terminated()) << ec.label;
    }
}
