// Supervision machinery: per-task Watchdog heartbeats, the
// DeadlineMissHandler reacting to ConstraintMonitor violations, the kernel
// deadlock/stall diagnostic, and the Simulator::run() re-entrancy guard.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "../rtos/recording.hpp"
#include "fault/deadline_handler.hpp"
#include "fault/watchdog.hpp"
#include "kernel/simulator.hpp"
#include "mcse/event.hpp"
#include "rtos/processor.hpp"
#include "trace/constraints.hpp"

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;
namespace tr = rtsc::trace;
namespace f = rtsc::fault;
using namespace rtsc::kernel::time_literals;

namespace {
void silence(k::Simulator& sim) {
    sim.reporter().set_sink([](k::Severity, const std::string&) {});
}
} // namespace

// ---------------------------------------------------------------- Watchdog

TEST(Watchdog, PettingInTimeNeverFires) {
    k::Simulator sim;
    r::Processor cpu("cpu");
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [](r::Task& self) {
                                     for (int i = 0; i < 5; ++i)
                                         self.compute(10_us);
                                 });
    f::Watchdog wd(a, 25_us, {.action = f::RecoveryAction::log});
    // Heartbeat on every compute() entry: t = 0, 10, 20, 30, 40.
    a.set_compute_hook([&wd](r::Task&, k::Time d) {
        wd.pet();
        return d;
    });
    sim.run();
    EXPECT_TRUE(a.terminated());
    EXPECT_FALSE(a.killed());
    EXPECT_EQ(wd.timeouts(), 0u);
}

TEST(Watchdog, MissedHeartbeatKillsTheTask) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    m::Event ev("ev");
    f::Watchdog* wdp = nullptr;
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [&](r::Task& self) {
                                     for (int i = 0; i < 3; ++i) {
                                         self.compute(10_us);
                                         wdp->pet();
                                     }
                                     ev.await(); // heartbeats stop here
                                 });
    f::Watchdog wd(a, 25_us, {.action = f::RecoveryAction::kill});
    wdp = &wd;
    sim.run();

    // Last pet at t=30; the watchdog fires 25us later and kills a.
    EXPECT_EQ(wd.timeouts(), 1u);
    EXPECT_EQ(wd.last_beat(), 30_us);
    EXPECT_TRUE(a.killed());
    EXPECT_TRUE(a.terminated());
    EXPECT_EQ(sim.now(), 55_us);
}

TEST(Watchdog, RestartPolicyRevivesAHungTask) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    m::Event ev("ev");
    f::Watchdog* wdp = nullptr;
    int incarnations = 0;
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [&](r::Task& self) {
                                     ++incarnations;
                                     self.compute(10_us);
                                     wdp->pet();
                                     ev.await(); // hangs every incarnation
                                 });
    f::Watchdog wd(a, 30_us, {.action = f::RecoveryAction::restart});
    wdp = &wd;
    sim.run_until(200_us);

    EXPECT_GE(wd.timeouts(), 2u);
    EXPECT_GE(a.restarts(), 2u);
    EXPECT_EQ(static_cast<std::uint64_t>(incarnations), a.restarts() + 1);
}

TEST(Watchdog, DemotePolicyLetsLowerPriorityWorkThrough) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    r::Task& hog = cpu.create_task({.name = "hog", .priority = 5},
                                   [](r::Task& self) {
                                       for (;;) self.compute(10_us);
                                   });
    hog.set_daemon(true);
    bool low_done = false;
    cpu.create_task({.name = "low", .priority = 1}, [&](r::Task& self) {
        self.compute(20_us);
        low_done = true;
    });
    f::Watchdog wd(hog, 15_us,
                   {.action = f::RecoveryAction::demote_priority, .demote_to = 0});
    sim.run_until(100_us);

    EXPECT_GE(wd.timeouts(), 1u);
    EXPECT_EQ(hog.base_priority(), 0);
    EXPECT_TRUE(low_done);
}

// ----------------------------------------------------- DeadlineMissHandler

TEST(DeadlineMissHandler, KillPolicyTerminatesTheViolator) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    tr::ConstraintMonitor mon;
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [](r::Task& self) {
                                     for (;;) {
                                         self.compute(20_us);
                                         self.sleep_for(10_us);
                                     }
                                 });
    mon.require_response(a, 5_us, "a.response");
    f::DeadlineMissHandler handler(mon);
    handler.set_policy(a, {.action = f::RecoveryAction::kill});
    sim.run();

    // First activation completes at t=20, measured 20us > 5us: the handler's
    // agent kills a at the same instant.
    ASSERT_EQ(mon.violations().size(), 1u);
    EXPECT_EQ(mon.violations()[0].task, &a);
    EXPECT_EQ(handler.handled(), 1u);
    EXPECT_EQ(handler.kills(), 1u);
    EXPECT_TRUE(a.killed());
}

TEST(DeadlineMissHandler, RestartPolicyKeepsRevivingTheViolator) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    tr::ConstraintMonitor mon;
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [](r::Task& self) {
                                     for (;;) {
                                         self.compute(20_us);
                                         self.sleep_for(10_us);
                                     }
                                 });
    mon.require_response(a, 5_us, "a.response");
    f::DeadlineMissHandler handler(mon);
    handler.set_policy(
        a, {.action = f::RecoveryAction::restart, .restart_delay = 5_us});
    sim.run_until(150_us);

    EXPECT_GE(handler.restarts(), 2u);
    EXPECT_EQ(a.restarts(), handler.restarts());
    EXPECT_GE(mon.violations().size(), handler.restarts());
}

TEST(DeadlineMissHandler, ViolationsWithoutAPolicyAreCountedNotActedOn) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    tr::ConstraintMonitor mon;
    r::Task& a = cpu.create_task({.name = "a", .priority = 1},
                                 [](r::Task& self) { self.compute(20_us); });
    mon.require_response(a, 5_us, "a.response");
    f::DeadlineMissHandler handler(mon); // no policy for a
    sim.run();

    EXPECT_EQ(mon.violations().size(), 1u);
    EXPECT_EQ(handler.handled(), 0u);
    EXPECT_EQ(handler.unhandled(), 1u);
    EXPECT_FALSE(a.killed());
    EXPECT_TRUE(a.terminated());
}

TEST(DeadlineMissHandler, DemotePolicyLowersThePriority) {
    k::Simulator sim;
    silence(sim);
    r::Processor cpu("cpu");
    tr::ConstraintMonitor mon;
    r::Task& a = cpu.create_task({.name = "a", .priority = 5},
                                 [](r::Task& self) {
                                     self.compute(20_us);
                                     self.sleep_for(10_us);
                                 });
    mon.require_response(a, 5_us, "a.response");
    f::DeadlineMissHandler handler(mon);
    handler.set_policy(
        a, {.action = f::RecoveryAction::demote_priority, .demote_to = 1});
    sim.run();

    EXPECT_EQ(handler.demotions(), 1u);
    EXPECT_EQ(a.base_priority(), 1);
}

// ------------------------------------------------------ deadlock detection

TEST(DeadlockDetection, StallReportNamesStuckTasks) {
    for (const auto kind :
         {r::EngineKind::procedure_calls, r::EngineKind::rtos_thread}) {
        k::Simulator sim;
        silence(sim);
        sim.set_deadlock_detection(true);
        r::Processor cpu("cpu", std::make_unique<r::PriorityPreemptivePolicy>(),
                         kind);
        m::Event e1("e1");
        m::Event e2("e2");
        // Classic lost-signal deadlock: both tasks wait forever.
        cpu.create_task({.name = "a", .priority = 2}, [&](r::Task& self) {
            self.compute(5_us);
            e1.await();
        });
        cpu.create_task({.name = "b", .priority = 1}, [&](r::Task& self) {
            self.compute(5_us);
            e2.await();
        });
        sim.run();

        const auto& rep = sim.deadlock_report();
        ASSERT_TRUE(rep.detected());
        // Exactly the two stuck tasks — infrastructure daemons (the RTOS
        // thread on the threaded engine) are exempt.
        ASSERT_EQ(rep.blocked.size(), 2u);
        std::vector<std::string> names;
        for (const auto& bp : rep.blocked) names.push_back(bp.process);
        EXPECT_NE(std::find(names.begin(), names.end(), "a"), names.end());
        EXPECT_NE(std::find(names.begin(), names.end(), "b"), names.end());
        const std::string text = rep.to_string();
        EXPECT_NE(text.find('a'), std::string::npos);
        EXPECT_NE(text.find('b'), std::string::npos);
        EXPECT_EQ(sim.reporter().count(k::Severity::warning), 1u);
    }
}

TEST(DeadlockDetection, CleanCompletionReportsNothing) {
    k::Simulator sim;
    sim.set_deadlock_detection(true);
    r::Processor cpu("cpu");
    cpu.create_task({.name = "a", .priority = 1},
                    [](r::Task& self) { self.compute(10_us); });
    sim.run();
    EXPECT_FALSE(sim.deadlock_report().detected());
    EXPECT_EQ(sim.reporter().count(k::Severity::warning), 0u);
}

TEST(DeadlockDetection, DaemonsAreExempt) {
    k::Simulator sim;
    sim.set_deadlock_detection(true);
    k::Event ev("ev");
    k::Process& server = sim.spawn("server", [&] { k::wait(ev); });
    server.set_daemon(true);
    sim.spawn("worker", [] { k::wait(10_us); });
    sim.run();
    EXPECT_FALSE(sim.deadlock_report().detected());
}

// ------------------------------------------------------- re-entrancy guard

TEST(ReentrancyGuard, RunInsideAProcessThrows) {
    k::Simulator sim;
    silence(sim);
    sim.spawn("nested", [&] { sim.run_until(10_us); });
    EXPECT_THROW(sim.run(), k::SimulationError);
}
