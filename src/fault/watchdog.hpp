#pragma once
// Watchdog: per-task heartbeat supervision, modelled on hardware/OS watchdog
// timers. The supervised task calls pet() from its body; if the gap between
// consecutive heartbeats exceeds the deadline, the watchdog fires and applies
// its RecoveryPolicy (log / kill / restart / demote_priority).
//
// The watchdog runs in its own daemon kernel process, so firing — even
// killing the supervised task mid-compute — happens from a safe scheduler
// context, never from inside an RTOS engine transition.

#include <cstdint>
#include <string>

#include "fault/recovery.hpp"
#include "kernel/event.hpp"
#include "kernel/time.hpp"

namespace rtsc::kernel {
class Process;
}
namespace rtsc::rtos {
class Task;
}
namespace rtsc::trace {
class MarkerSink;
}

namespace rtsc::fault {

class Watchdog {
public:
    /// Supervise `task`: it must pet() at least every `deadline` of simulated
    /// time, starting when the simulation starts.
    Watchdog(rtos::Task& task, kernel::Time deadline,
             RecoveryPolicy policy = {});

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Heartbeat. Callable from any simulation context (usually the
    /// supervised task's own body).
    void pet();

    [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
    [[nodiscard]] kernel::Time last_beat() const noexcept { return last_beat_; }
    [[nodiscard]] const RecoveryPolicy& policy() const noexcept { return policy_; }

    /// Record every timeout as an instant marker ("watchdog" category) in
    /// `rec`. Pass nullptr to detach. The recorder must outlive the watchdog.
    void set_trace(trace::MarkerSink* rec) noexcept { trace_ = rec; }

private:
    void body();
    void fire();

    rtos::Task& task_;
    kernel::Time deadline_;
    RecoveryPolicy policy_;
    kernel::Event beat_;
    kernel::Time last_beat_{};
    std::uint64_t timeouts_ = 0;
    kernel::Process* proc_ = nullptr;
    trace::MarkerSink* trace_ = nullptr;
};

} // namespace rtsc::fault
