#pragma once
// Recovery actions shared by the fault-tolerance supervisors (Watchdog,
// DeadlineMissHandler). All actions are executed from a dedicated daemon
// process — never from inside an engine transition or observer callback —
// so killing/restarting cannot corrupt an in-flight scheduling pass.

#include <cstdint>

#include "kernel/time.hpp"

namespace rtsc::fault {

enum class RecoveryAction : std::uint8_t {
    log,             ///< report the incident, change nothing
    kill,            ///< terminate the offending task
    restart,         ///< kill (if alive) then restart after a delay
    demote_priority, ///< lower the task's base priority
};

[[nodiscard]] constexpr const char* to_string(RecoveryAction a) noexcept {
    switch (a) {
        case RecoveryAction::log: return "log";
        case RecoveryAction::kill: return "kill";
        case RecoveryAction::restart: return "restart";
        case RecoveryAction::demote_priority: return "demote_priority";
    }
    return "?";
}

/// How to react to an incident on one task.
struct RecoveryPolicy {
    RecoveryAction action = RecoveryAction::log;
    kernel::Time restart_delay{}; ///< restart action: release delay
    int demote_to = 0;            ///< demote_priority action: new base priority
};

} // namespace rtsc::fault
