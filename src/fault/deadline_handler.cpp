#include "fault/deadline_handler.hpp"

#include <algorithm>

#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"
#include "trace/marker.hpp"

namespace rtsc::fault {

namespace k = rtsc::kernel;

DeadlineMissHandler::DeadlineMissHandler(trace::ConstraintMonitor& monitor)
    : sim_(k::Simulator::current()), wake_("deadline_handler.wake") {
    monitor.set_violation_callback(
        [this](const trace::ConstraintMonitor::Violation& v) {
            on_violation(v);
        });
    agent_ = &sim_.spawn("deadline_handler.agent", [this] { agent_body(); });
    agent_->set_daemon(true);
}

void DeadlineMissHandler::set_policy(rtos::Task& task, RecoveryPolicy policy) {
    for (auto& [t, p] : policies_) {
        if (t == &task) {
            p = policy;
            return;
        }
    }
    policies_.emplace_back(&task, policy);
}

void DeadlineMissHandler::on_violation(
    const trace::ConstraintMonitor::Violation& v) {
    // Called inside a state-transition notification: only enqueue here.
    if (v.task != nullptr) {
        for (auto& [t, p] : policies_) {
            if (t == v.task) {
                pending_.push_back({t, p});
                wake_.notify();
                return;
            }
        }
    }
    ++unhandled_;
}

void DeadlineMissHandler::agent_body() {
    for (;;) {
        while (pending_.empty()) k::wait(wake_);
        // Drain one batch, deduplicating per task: several violations of the
        // same task at one instant warrant one recovery, not a kill storm.
        std::vector<Entry> batch;
        while (!pending_.empty()) {
            Entry e = pending_.front();
            pending_.pop_front();
            const bool seen =
                std::any_of(batch.begin(), batch.end(),
                            [&e](const Entry& b) { return b.task == e.task; });
            if (!seen) batch.push_back(e);
        }
        for (const Entry& e : batch) apply(e);
    }
}

void DeadlineMissHandler::apply(const Entry& e) {
    ++handled_;
    rtos::Task& t = *e.task;
    if (trace_ != nullptr)
        trace_->mark("deadline", "miss:" + t.name() + " (" +
                                     to_string(e.policy.action) + ")");
    sim_.reporter().report(
        k::Severity::warning,
        "deadline miss on task '" + t.name() + "' at " + sim_.now().to_string() +
            " (action: " + to_string(e.policy.action) + ")");
    switch (e.policy.action) {
        case RecoveryAction::log:
            break;
        case RecoveryAction::kill:
            if (!t.body_finished()) {
                t.kill();
                ++kills_;
            }
            break;
        case RecoveryAction::restart: {
            if (!t.body_finished()) {
                t.kill();
                ++kills_;
            }
            // Restart only once the terminal leave settled (engine-
            // independent instant; see Task::retired_event).
            if (!t.retired()) k::wait(t.retired_event());
            t.processor().restart_task(t, e.policy.restart_delay);
            ++restarts_;
            break;
        }
        case RecoveryAction::demote_priority:
            t.set_base_priority(e.policy.demote_to);
            ++demotions_;
            break;
    }
}

} // namespace rtsc::fault
