#pragma once
// FaultPlan: a declarative description of the faults to inject into a model.
//
// The plan is plain data — which tasks jitter, which interrupt lines drop or
// burst, which channels lose messages, which tasks crash when — so a
// campaign can be built programmatically (or parsed from configuration) and
// replayed exactly: FaultInjector derives one deterministic RNG stream per
// entry from the campaign seed, making every run with the same plan and seed
// produce the identical fault pattern, trace timeline and violation list.

#include <cstdint>
#include <vector>

#include "kernel/time.hpp"

namespace rtsc::mcse {
class Relation;
}
namespace rtsc::rtos {
class InterruptLine;
class Task;
}

namespace rtsc::fault {

/// Scale a task's compute() durations: with probability `probability` a
/// duration is multiplied by a factor drawn uniformly from
/// [scale_min, scale_max]. Use scale > 1 for WCET overruns, < 1 for
/// data-dependent early completion, and probability 1.0 with a narrow range
/// for systematic drift.
struct ExecJitter {
    rtos::Task* task = nullptr;
    double probability = 1.0;
    double scale_min = 1.0;
    double scale_max = 1.0;
};

/// Kill `task` at simulated time `at` (one-shot). When `restart` is set the
/// injector waits for the unwind to complete and brings the task back after
/// `restart_delay`.
struct TaskCrash {
    rtos::Task* task = nullptr;
    kernel::Time at{};
    bool restart = false;
    kernel::Time restart_delay{};
};

/// Drop each raise() of `line` with probability `probability`.
struct IrqDrop {
    rtos::InterruptLine* line = nullptr;
    double probability = 0.0;
};

/// Duplicate raises: with probability `probability` a raise() delivers
/// 1 + U[extra_min, extra_max] occurrences instead of one (bouncy line).
struct IrqBurst {
    rtos::InterruptLine* line = nullptr;
    double probability = 0.0;
    unsigned extra_min = 1;
    unsigned extra_max = 1;
};

/// Raise `line` spuriously (no hardware cause) every `period` with a uniform
/// jitter in [0, jitter], until simulated time `until` (zero = forever).
struct IrqSpurious {
    rtos::InterruptLine* line = nullptr;
    kernel::Time period{};
    kernel::Time jitter{};
    kernel::Time until{};
};

/// Lose each message written to `channel` with probability `probability`
/// (the sender still believes the write succeeded).
struct MessageLoss {
    mcse::Relation* channel = nullptr;
    double probability = 0.0;
};

struct FaultPlan {
    std::vector<ExecJitter> exec_jitter;
    std::vector<TaskCrash> task_crashes;
    std::vector<IrqDrop> irq_drops;
    std::vector<IrqBurst> irq_bursts;
    std::vector<IrqSpurious> irq_spurious;
    std::vector<MessageLoss> message_losses;

    [[nodiscard]] bool empty() const noexcept {
        return exec_jitter.empty() && task_crashes.empty() &&
               irq_drops.empty() && irq_bursts.empty() &&
               irq_spurious.empty() && message_losses.empty();
    }
};

} // namespace rtsc::fault
