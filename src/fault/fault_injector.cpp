#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "kernel/simulator.hpp"
#include "mcse/relation.hpp"
#include "rtos/interrupt.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"
#include "trace/marker.hpp"

namespace rtsc::fault {

namespace k = rtsc::kernel;

namespace {
/// splitmix64 — decorrelates the per-entry seeds derived from one campaign
/// seed so neighbouring entries do not produce neighbouring streams.
std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double draw01(std::mt19937_64& rng) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}
} // namespace

FaultInjector::FaultInjector(k::Simulator& sim, FaultPlan plan,
                             std::uint64_t seed)
    : sim_(sim), plan_(std::move(plan)), seed_(seed) {}

std::mt19937_64 FaultInjector::make_stream(std::uint64_t salt) const {
    return std::mt19937_64(mix(seed_ ^ mix(salt)));
}

void FaultInjector::arm() {
    if (armed_)
        throw k::SimulationError("FaultInjector::arm() called twice");
    armed_ = true;
    std::uint64_t salt = 1;
    for (const ExecJitter& e : plan_.exec_jitter) arm_exec_jitter(e, salt++);
    salt = 1000;
    for (const TaskCrash& e : plan_.task_crashes) {
        (void)salt++;
        arm_task_crash(e);
    }
    arm_irq_filters();
    salt = 3000;
    for (const IrqSpurious& e : plan_.irq_spurious) arm_irq_spurious(e, salt++);
    salt = 4000;
    for (const MessageLoss& e : plan_.message_losses)
        arm_message_loss(e, salt++);
}

void FaultInjector::arm_exec_jitter(const ExecJitter& e, std::uint64_t salt) {
    if (e.task == nullptr) return;
    streams_.push_back(std::make_unique<std::mt19937_64>(make_stream(salt)));
    std::mt19937_64* rng = streams_.back().get();
    const double p = e.probability;
    const double lo = e.scale_min;
    const double hi = e.scale_max;
    e.task->set_compute_hook(
        [this, rng, p, lo, hi](rtos::Task&, k::Time d) -> k::Time {
            if (draw01(*rng) >= p) return d;
            const double scale =
                lo == hi ? lo
                         : std::uniform_real_distribution<double>(lo, hi)(*rng);
            ++counters_.jittered_computes;
            const double scaled =
                std::max(0.0, static_cast<double>(d.raw_ps()) * scale);
            return k::Time::ps(static_cast<k::Time::rep>(std::llround(scaled)));
        });
}

void FaultInjector::arm_task_crash(const TaskCrash& e) {
    if (e.task == nullptr) return;
    rtos::Task* t = e.task;
    const k::Time at = e.at;
    const bool restart = e.restart;
    const k::Time restart_delay = e.restart_delay;
    k::Process& p = sim_.spawn(
        "fault.crash." + t->name(), [this, t, at, restart, restart_delay] {
            const k::Time delay = k::Time::sat_sub(at, sim_.now());
            if (!delay.is_zero()) k::wait(delay);
            if (!t->body_finished()) {
                t->kill();
                ++counters_.tasks_crashed;
                if (trace_ != nullptr) trace_->mark("fault", "crash:" + t->name());
                // A killed Running task still pays save + sched during the
                // unwind; restart only once the incarnation fully retired.
                // TaskRetired fires at the same instant on both engines —
                // the kernel done_event does not (the engines pay the leave
                // charges in different threads).
                if (!t->retired()) k::wait(t->retired_event());
            }
            if (restart) {
                t->processor().restart_task(*t, restart_delay);
                ++counters_.tasks_restarted;
                if (trace_ != nullptr)
                    trace_->mark("fault", "restart:" + t->name());
            }
        });
    p.set_daemon(true);
}

void FaultInjector::arm_irq_filters() {
    // A line may appear in several drop/burst entries: install ONE filter
    // per line that consults every matching entry in plan order, each with
    // its own stream (adding an entry never perturbs the others' draws).
    struct Drop {
        double p;
        std::mt19937_64* rng;
    };
    struct Burst {
        double p;
        unsigned lo, hi;
        std::mt19937_64* rng;
    };
    std::vector<rtos::InterruptLine*> lines;
    auto note_line = [&lines](rtos::InterruptLine* l) {
        if (l != nullptr &&
            std::find(lines.begin(), lines.end(), l) == lines.end())
            lines.push_back(l);
    };
    for (const IrqDrop& e : plan_.irq_drops) note_line(e.line);
    for (const IrqBurst& e : plan_.irq_bursts) note_line(e.line);

    for (rtos::InterruptLine* line : lines) {
        std::vector<Drop> drops;
        std::vector<Burst> bursts;
        std::uint64_t salt = 2000;
        for (const IrqDrop& e : plan_.irq_drops) {
            ++salt;
            if (e.line != line) continue;
            streams_.push_back(
                std::make_unique<std::mt19937_64>(make_stream(salt)));
            drops.push_back({e.probability, streams_.back().get()});
        }
        salt = 2500;
        for (const IrqBurst& e : plan_.irq_bursts) {
            ++salt;
            if (e.line != line) continue;
            streams_.push_back(
                std::make_unique<std::mt19937_64>(make_stream(salt)));
            bursts.push_back(
                {e.probability, e.extra_min, e.extra_max, streams_.back().get()});
        }
        line->set_raise_filter([this, drops, bursts]() -> unsigned {
            for (const Drop& d : drops) {
                if (draw01(*d.rng) < d.p) {
                    ++counters_.irqs_dropped;
                    return 0;
                }
            }
            unsigned copies = 1;
            for (const Burst& b : bursts) {
                if (draw01(*b.rng) < b.p) {
                    copies += std::uniform_int_distribution<unsigned>(
                        b.lo, b.hi)(*b.rng);
                    ++counters_.irqs_bursted;
                }
            }
            return copies;
        });
    }
}

void FaultInjector::arm_irq_spurious(const IrqSpurious& e, std::uint64_t salt) {
    if (e.line == nullptr || e.period.is_zero()) return;
    streams_.push_back(std::make_unique<std::mt19937_64>(make_stream(salt)));
    std::mt19937_64* rng = streams_.back().get();
    rtos::InterruptLine* line = e.line;
    const k::Time period = e.period;
    const k::Time jitter = e.jitter;
    const k::Time until = e.until;
    k::Process& p = sim_.spawn(
        "fault.spurious." + line->name(), [this, rng, line, period, jitter, until] {
            for (;;) {
                k::Time delay = period;
                if (!jitter.is_zero()) {
                    delay += k::Time::ps(std::uniform_int_distribution<
                                         k::Time::rep>(0, jitter.raw_ps())(*rng));
                }
                k::wait(delay);
                if (!until.is_zero() && sim_.now() > until) return;
                line->raise_spurious();
                ++counters_.irqs_spurious;
                if (trace_ != nullptr)
                    trace_->mark("fault", "irq_spurious:" + line->name());
            }
        });
    p.set_daemon(true);
}

void FaultInjector::arm_message_loss(const MessageLoss& e, std::uint64_t salt) {
    if (e.channel == nullptr) return;
    streams_.push_back(std::make_unique<std::mt19937_64>(make_stream(salt)));
    std::mt19937_64* rng = streams_.back().get();
    const double p = e.probability;
    auto* channel = e.channel;
    e.channel->set_loss_hook([this, rng, p, channel]() -> bool {
        if (draw01(*rng) >= p) return false;
        ++counters_.messages_lost;
        if (trace_ != nullptr)
            trace_->mark("fault", "msg_loss:" + channel->name());
        return true;
    });
}

} // namespace rtsc::fault
