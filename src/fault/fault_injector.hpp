#pragma once
// FaultInjector: drives a FaultPlan against a running model.
//
// Determinism: the injector owns one std::mt19937_64 stream per plan entry,
// seeded from the campaign seed and the entry's position (seed ^ f(index)).
// Because the simulation itself is single-threaded and deterministic, the
// i-th draw of each stream always meets the same model state, so a campaign
// replays bit-identically: same plan + same seed => same fault pattern, same
// trace timeline, same constraint-violation list.
//
// Hook-based faults (jitter, interrupt filters, message loss) piggyback on
// the model's own calls and cost nothing when absent; time-driven faults
// (crashes, spurious interrupts) run in daemon processes spawned by arm().

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "fault/fault_plan.hpp"

namespace rtsc::kernel {
class Simulator;
}
namespace rtsc::trace {
class MarkerSink;
}

namespace rtsc::fault {

class FaultInjector {
public:
    /// Bind a plan to `sim`. Call arm() before Simulator::run().
    FaultInjector(kernel::Simulator& sim, FaultPlan plan, std::uint64_t seed);

    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /// Install the hooks and spawn the time-driven fault processes. Call
    /// once, after the model is built.
    void arm();

    struct Counters {
        std::uint64_t jittered_computes = 0;  ///< compute() durations scaled
        std::uint64_t tasks_crashed = 0;      ///< one-shot kills performed
        std::uint64_t tasks_restarted = 0;
        std::uint64_t irqs_dropped = 0;       ///< raises suppressed
        std::uint64_t irqs_bursted = 0;       ///< raises duplicated
        std::uint64_t irqs_spurious = 0;      ///< spurious raises injected
        std::uint64_t messages_lost = 0;
    };
    [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

    /// Record injected faults (crashes, restarts, spurious interrupts,
    /// message losses) as instant markers ("fault" category) in `rec`. Call
    /// before arm(); pass nullptr to detach. The recorder must outlive the
    /// injector.
    void set_trace(trace::MarkerSink* rec) noexcept { trace_ = rec; }

private:
    /// One deterministic stream per plan entry, derived from the campaign
    /// seed and the entry's position so adding an entry never perturbs the
    /// draws of the others.
    [[nodiscard]] std::mt19937_64 make_stream(std::uint64_t salt) const;

    void arm_exec_jitter(const ExecJitter& e, std::uint64_t salt);
    void arm_task_crash(const TaskCrash& e);
    void arm_irq_filters();
    void arm_irq_spurious(const IrqSpurious& e, std::uint64_t salt);
    void arm_message_loss(const MessageLoss& e, std::uint64_t salt);

    kernel::Simulator& sim_;
    FaultPlan plan_;
    std::uint64_t seed_;
    bool armed_ = false;
    Counters counters_;
    trace::MarkerSink* trace_ = nullptr;
    /// RNG streams referenced by the installed hooks; stable addresses.
    std::vector<std::unique_ptr<std::mt19937_64>> streams_;
};

} // namespace rtsc::fault
