#include "fault/watchdog.hpp"

#include "kernel/simulator.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"
#include "trace/marker.hpp"

namespace rtsc::fault {

namespace k = rtsc::kernel;

Watchdog::Watchdog(rtos::Task& task, k::Time deadline, RecoveryPolicy policy)
    : task_(task),
      deadline_(deadline),
      policy_(policy),
      beat_("watchdog." + task.name() + ".beat") {
    proc_ = &task.processor().simulator().spawn(
        "watchdog." + task.name(), [this] { body(); });
    proc_->set_daemon(true);
}

void Watchdog::pet() {
    last_beat_ = task_.processor().simulator().now();
    beat_.notify();
}

void Watchdog::body() {
    k::Simulator& sim = task_.processor().simulator();
    for (;;) {
        const auto reason = sim.wait(deadline_, beat_);
        if (reason == k::Process::WakeReason::event) continue;
        // A task that ended on its own stops being supervised (only the
        // restart policy has business with a dead task).
        if (task_.body_finished() && policy_.action != RecoveryAction::restart)
            return;
        fire();
        if (policy_.action == RecoveryAction::kill) {
            // The corpse stays dead: wait out the unwind and stop, so the
            // watchdog does not fire forever against it.
            if (!task_.retired()) k::wait(task_.retired_event());
            return;
        }
    }
}

void Watchdog::fire() {
    ++timeouts_;
    k::Simulator& sim = task_.processor().simulator();
    if (trace_ != nullptr)
        trace_->mark("watchdog", "timeout:" + task_.name() + " (" +
                                     to_string(policy_.action) + ")");
    sim.reporter().report(
        k::Severity::warning,
        "watchdog timeout on task '" + task_.name() + "' at " +
            sim.now().to_string() + " (action: " + to_string(policy_.action) +
            ")");
    switch (policy_.action) {
        case RecoveryAction::log:
            break;
        case RecoveryAction::kill:
            if (!task_.body_finished()) task_.kill();
            break;
        case RecoveryAction::restart: {
            if (!task_.body_finished()) task_.kill();
            // Restart only once the terminal leave settled (engine-
            // independent instant; see Task::retired_event).
            if (!task_.retired()) k::wait(task_.retired_event());
            task_.processor().restart_task(task_, policy_.restart_delay);
            break;
        }
        case RecoveryAction::demote_priority:
            task_.set_base_priority(policy_.demote_to);
            break;
    }
}

} // namespace rtsc::fault
