#pragma once
// DeadlineMissHandler: reacts to trace::ConstraintMonitor violations with a
// per-task RecoveryPolicy (log / kill / restart / demote_priority).
//
// ConstraintMonitor's violation callback fires synchronously inside a task
// state transition — possibly on the violating task's own thread, mid-engine
// bookkeeping — where killing or restarting would corrupt the in-flight
// scheduling pass. The handler therefore only *enqueues* the incident there
// and performs the recovery from its own daemon agent process, one delta
// cycle later at the same simulated instant.

#include <cstdint>
#include <deque>
#include <vector>

#include "fault/recovery.hpp"
#include "kernel/event.hpp"
#include "trace/constraints.hpp"

namespace rtsc::kernel {
class Process;
}
namespace rtsc::trace {
class MarkerSink;
}

namespace rtsc::fault {

class DeadlineMissHandler {
public:
    /// Install the handler as `monitor`'s violation callback (replaces any
    /// previous callback).
    explicit DeadlineMissHandler(trace::ConstraintMonitor& monitor);

    DeadlineMissHandler(const DeadlineMissHandler&) = delete;
    DeadlineMissHandler& operator=(const DeadlineMissHandler&) = delete;

    /// React to violations whose rule monitors `task`. Violations for tasks
    /// without a policy (and latency violations, which carry no task) are
    /// counted in unhandled() only.
    void set_policy(rtos::Task& task, RecoveryPolicy policy);

    [[nodiscard]] std::uint64_t handled() const noexcept { return handled_; }
    [[nodiscard]] std::uint64_t unhandled() const noexcept { return unhandled_; }
    [[nodiscard]] std::uint64_t kills() const noexcept { return kills_; }
    [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }
    [[nodiscard]] std::uint64_t demotions() const noexcept { return demotions_; }

    /// Record every handled miss as an instant marker ("deadline" category)
    /// in `rec`. Pass nullptr to detach. The recorder must outlive the
    /// handler.
    void set_trace(trace::MarkerSink* rec) noexcept { trace_ = rec; }

private:
    struct Entry {
        rtos::Task* task;
        RecoveryPolicy policy;
    };

    void on_violation(const trace::ConstraintMonitor::Violation& v);
    void agent_body();
    void apply(const Entry& e);

    kernel::Simulator& sim_;
    std::vector<std::pair<rtos::Task*, RecoveryPolicy>> policies_;
    std::deque<Entry> pending_;
    kernel::Event wake_;
    kernel::Process* agent_ = nullptr;
    trace::MarkerSink* trace_ = nullptr;
    std::uint64_t handled_ = 0;
    std::uint64_t unhandled_ = 0;
    std::uint64_t kills_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t demotions_ = 0;
};

} // namespace rtsc::fault
