#pragma once
// Analytical schedulability baselines for periodic task sets, after
// Buttazzo, "Hard Real-Time Computing Systems" (the paper's reference [10]).
//
// These closed-form/fixed-point analyses serve two purposes in this repo:
//   1. validation — the simulator's observed worst-case response times must
//      match exact response-time analysis (tests/analysis);
//   2. baseline — benches compare simulated behaviour against what a purely
//      analytical flow would predict, including context-switch overheads.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace rtsc::analysis {

/// One periodic task for analysis purposes. Priorities follow the library
/// convention: bigger number = more urgent.
struct PeriodicTask {
    std::string name;
    kernel::Time period{};
    kernel::Time wcet{};              ///< worst-case execution time
    kernel::Time deadline{};          ///< relative; zero => deadline = period
    int priority = 0;
    kernel::Time blocking{};          ///< max blocking from lower-prio tasks (B_i)

    [[nodiscard]] kernel::Time effective_deadline() const noexcept {
        return deadline.is_zero() ? period : deadline;
    }
};

/// Total processor utilisation sum(C_i / T_i).
[[nodiscard]] double utilization(const std::vector<PeriodicTask>& tasks);

/// Liu & Layland rate-monotonic bound n(2^{1/n}-1); a set is schedulable
/// under RM if utilization() <= this (sufficient, not necessary).
[[nodiscard]] double rm_utilization_bound(std::size_t n);

/// EDF bound: schedulable iff utilization <= 1 (implicit deadlines).
[[nodiscard]] bool edf_schedulable(const std::vector<PeriodicTask>& tasks);

/// Exact fixed-priority response-time analysis:
///   R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
/// iterated to the fixed point. `context_switch` adds the classic 2*CS term
/// per preempting job and CS on the task's own dispatch, so simulated runs
/// with RTOS overheads can be cross-checked. Returns nullopt for a task
/// whose iteration exceeds its deadline (unschedulable).
struct RtaOptions {
    kernel::Time context_switch{}; ///< save+sched+load lumped per switch
    std::uint64_t max_iterations = 1000;
};

struct RtaResult {
    std::string name;
    std::optional<kernel::Time> response; ///< worst-case response time
    bool schedulable = false;
};

[[nodiscard]] std::vector<RtaResult> response_time_analysis(
    const std::vector<PeriodicTask>& tasks, const RtaOptions& opts = {});

/// Hyperperiod (LCM of periods) — the natural simulation horizon for
/// validating a periodic set exhaustively.
[[nodiscard]] kernel::Time hyperperiod(const std::vector<PeriodicTask>& tasks);

} // namespace rtsc::analysis
