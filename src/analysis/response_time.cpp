#include "analysis/response_time.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rtsc::analysis {

namespace k = rtsc::kernel;

double utilization(const std::vector<PeriodicTask>& tasks) {
    double u = 0.0;
    for (const auto& t : tasks)
        u += t.wcet.to_sec() / t.period.to_sec();
    return u;
}

double rm_utilization_bound(std::size_t n) {
    if (n == 0) return 0.0;
    const double nd = static_cast<double>(n);
    return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool edf_schedulable(const std::vector<PeriodicTask>& tasks) {
    return utilization(tasks) <= 1.0 + 1e-12;
}

std::vector<RtaResult> response_time_analysis(
    const std::vector<PeriodicTask>& tasks, const RtaOptions& opts) {
    std::vector<RtaResult> out;
    out.reserve(tasks.size());
    const k::Time cs = opts.context_switch;

    for (const auto& ti : tasks) {
        // Higher-priority set; ties are NOT interference under our engines
        // (equal priorities never preempt each other).
        std::vector<const PeriodicTask*> hp;
        for (const auto& tj : tasks)
            if (&tj != &ti && tj.priority > ti.priority) hp.push_back(&tj);

        // Own cost: WCET plus one dispatch worth of context switch, plus the
        // blocking term. Each preempting job costs its WCET plus two context
        // switches (one out of ti, one back into it).
        const k::Time own = ti.wcet + cs + ti.blocking;
        k::Time r = own;
        RtaResult res{ti.name, std::nullopt, false};
        for (std::uint64_t iter = 0; iter < opts.max_iterations; ++iter) {
            k::Time interference{};
            for (const auto* tj : hp) {
                const k::Time::rep jobs =
                    (r.raw_ps() + tj->period.raw_ps() - 1) / tj->period.raw_ps();
                interference += jobs * (tj->wcet + 2u * cs);
            }
            const k::Time next = own + interference;
            if (next == r) {
                res.response = r;
                res.schedulable = r <= ti.effective_deadline();
                break;
            }
            if (next > ti.effective_deadline() && next > 1000u * ti.period) break;
            r = next;
        }
        // A fixed point above the deadline is still a meaningful response
        // time; recompute convergence without the deadline cut-off when the
        // loop exited by divergence guard.
        out.push_back(res);
    }
    return out;
}

kernel::Time hyperperiod(const std::vector<PeriodicTask>& tasks) {
    k::Time::rep l = 1;
    for (const auto& t : tasks)
        l = std::lcm(l, t.period.raw_ps());
    return k::Time::ps(l);
}

} // namespace rtsc::analysis
