#pragma once
// Kernel-level primitive channels for the hardware side of a co-simulated
// model: Signal<T> (sc_signal-like, with evaluate/update semantics), Fifo<T>
// (sc_fifo-like), KMutex and KSemaphore (sc_mutex/sc_semaphore-like).
//
// These block at *kernel* level and know nothing about the RTOS model; the
// RTOS-aware counterparts that serialize software tasks live in rtsc::mcse.

#include <deque>
#include <string>
#include <utility>

#include "kernel/event.hpp"
#include "kernel/report.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"

namespace rtsc::kernel {

/// sc_signal-like channel: writes are committed in the update phase, so all
/// processes in one evaluation phase observe the same (old) value.
template <typename T>
class Signal final : private UpdateHook {
public:
    explicit Signal(std::string name = "signal", T initial = T{})
        : sim_(Simulator::current()),
          name_(std::move(name)),
          current_(initial),
          next_(initial),
          changed_(name_ + ".value_changed") {}

    [[nodiscard]] const T& read() const noexcept { return current_; }

    void write(const T& v) {
        next_ = v;
        sim_.request_update(*this);
    }

    /// Notified (delta) whenever a committed write changes the value.
    [[nodiscard]] Event& value_changed_event() noexcept { return changed_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    void update() override {
        if (next_ != current_) {
            current_ = next_;
            changed_.notify_delta();
        }
    }

    Simulator& sim_;
    std::string name_;
    T current_;
    T next_;
    Event changed_;
};

/// Bounded blocking FIFO with sc_fifo semantics (blocking read/write plus
/// non-blocking nb_ variants).
template <typename T>
class Fifo {
public:
    explicit Fifo(std::string name = "fifo", std::size_t capacity = 16)
        : name_(std::move(name)),
          capacity_(capacity),
          data_written_(name_ + ".data_written"),
          data_read_(name_ + ".data_read") {
        if (capacity_ == 0)
            throw SimulationError("Fifo capacity must be >= 1: " + name_);
    }

    void write(const T& v) {
        while (buf_.size() >= capacity_) Simulator::current().wait(data_read_);
        buf_.push_back(v);
        data_written_.notify_delta();
    }

    [[nodiscard]] T read() {
        while (buf_.empty()) Simulator::current().wait(data_written_);
        T v = std::move(buf_.front());
        buf_.pop_front();
        data_read_.notify_delta();
        return v;
    }

    [[nodiscard]] bool nb_write(const T& v) {
        if (buf_.size() >= capacity_) return false;
        buf_.push_back(v);
        data_written_.notify_delta();
        return true;
    }

    [[nodiscard]] bool nb_read(T& out) {
        if (buf_.empty()) return false;
        out = std::move(buf_.front());
        buf_.pop_front();
        data_read_.notify_delta();
        return true;
    }

    [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] Event& data_written_event() noexcept { return data_written_; }
    [[nodiscard]] Event& data_read_event() noexcept { return data_read_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    std::size_t capacity_;
    std::deque<T> buf_;
    Event data_written_;
    Event data_read_;
};

/// Kernel-level mutex (sc_mutex): FIFO-fair among kernel processes.
class KMutex {
public:
    explicit KMutex(std::string name = "kmutex")
        : name_(std::move(name)), released_(name_ + ".released") {}

    void lock() {
        Process* self = Simulator::current().current_process();
        while (owner_ != nullptr) Simulator::current().wait(released_);
        owner_ = self;
    }

    [[nodiscard]] bool try_lock() {
        if (owner_ != nullptr) return false;
        owner_ = Simulator::current().current_process();
        return true;
    }

    void unlock() {
        if (owner_ != Simulator::current().current_process())
            throw SimulationError("KMutex::unlock by non-owner: " + name_);
        owner_ = nullptr;
        released_.notify_delta();
    }

    [[nodiscard]] bool locked() const noexcept { return owner_ != nullptr; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    Process* owner_ = nullptr;
    Event released_;
};

/// Kernel-level counting semaphore (sc_semaphore).
class KSemaphore {
public:
    KSemaphore(std::string name, int initial)
        : name_(std::move(name)), count_(initial), posted_(name_ + ".posted") {
        if (initial < 0)
            throw SimulationError("KSemaphore initial value must be >= 0: " + name_);
    }

    void wait() {
        while (count_ == 0) Simulator::current().wait(posted_);
        --count_;
    }

    [[nodiscard]] bool trywait() {
        if (count_ == 0) return false;
        --count_;
        return true;
    }

    void post() {
        ++count_;
        posted_.notify_delta();
    }

    [[nodiscard]] int value() const noexcept { return count_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    int count_;
    Event posted_;
};

} // namespace rtsc::kernel
