#pragma once
// A simulation process: a named coroutine scheduled by the Simulator.
//
// Processes correspond to SystemC SC_THREADs. They are created via
// Simulator::spawn() and run for the first time at simulation start (or, if
// spawned mid-simulation, in the next evaluation phase). A process suspends
// itself through the wait() family and terminates by returning from its body.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/context.hpp"
#include "kernel/event.hpp"
#include "kernel/time.hpp"
#include "kernel/timing_wheel.hpp"

namespace rtsc::kernel {

class Simulator;

class Process {
public:
    /// Why the last wait() returned. `killed` never reaches user code: the
    /// kill wake turns into a ProcessKilled throw before wait() returns.
    enum class WakeReason : std::uint8_t { none, event, timeout, killed };

    /// SC_THREAD-like (own stack, suspends via wait) or SC_METHOD-like
    /// (plain callback re-armed by its sensitivity / next_trigger).
    enum class Kind : std::uint8_t { thread, method };

    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Kind kind() const noexcept { return kind_; }
    [[nodiscard]] bool terminated() const noexcept { return terminated_; }
    /// Notified (delta) when the process body returns; usable for joins.
    [[nodiscard]] Event& done_event() noexcept { return *done_event_; }
    /// Number of times the scheduler switched into this process.
    [[nodiscard]] std::uint64_t activations() const noexcept { return activations_; }
    [[nodiscard]] Simulator& simulator() const noexcept { return sim_; }

    /// Opaque back-pointer for higher layers (the RTOS layer stores its Task
    /// here so communication relations can identify the calling task).
    void* user_data = nullptr;

    /// Daemon processes are infrastructure that legitimately waits forever
    /// (a dedicated RTOS scheduler thread, a watchdog); the deadlock/stall
    /// detector skips them.
    void set_daemon(bool on) noexcept { daemon_ = on; }
    [[nodiscard]] bool daemon() const noexcept { return daemon_; }

    /// Background processes never keep an *open-ended* run() alive: their
    /// timed waits are not counted as pending work, so a simulation whose
    /// only future activity is background heartbeats (obs::MetricsSampler)
    /// goes dry instead of ticking forever. run_until() is unaffected —
    /// with an explicit horizon, background processes run to the horizon.
    /// Distinct from daemon: the threaded engine's RTOS kernel process is a
    /// daemon (exempt from stall diagnostics) yet does real scheduling work.
    void set_background(bool on) noexcept { background_ = on; }
    [[nodiscard]] bool background() const noexcept { return background_; }

    /// A kill has been requested but the ProcessKilled unwind has not run
    /// yet (the process terminates at its next resumption).
    [[nodiscard]] bool kill_requested() const noexcept { return kill_requested_; }

private:
    friend class Simulator;

    Process(Simulator& sim, std::string name, std::function<void()> body,
            std::size_t stack_bytes);                    // thread
    Process(Simulator& sim, std::string name, std::function<void()> callback,
            std::vector<Event*> sensitivity);            // method

    Simulator& sim_;
    std::string name_;
    Kind kind_ = Kind::thread;
    std::unique_ptr<Coroutine> coro_;                    // threads only
    std::function<void()> method_callback_;              // methods only
    std::vector<Event*> static_sensitivity_;             // methods only
    bool next_trigger_armed_ = false;                    // dynamic override
    std::unique_ptr<Event> done_event_;
    bool terminated_ = false;
    bool runnable_ = false;              ///< already queued for execution
    bool daemon_ = false;                ///< excluded from stall diagnostics
    bool background_ = false;            ///< timed waits aren't live work
    bool kill_requested_ = false;        ///< throw ProcessKilled on next resume
    std::uint64_t activations_ = 0;

    // --- wait bookkeeping (owned by Simulator) ---
    std::vector<Event*> waiting_on_;     ///< events this process is registered with
    bool timeout_armed_ = false;
    bool timeout_counted_ = false;       ///< armed timeout counted as live work
    std::uint64_t timeout_seq_ = 0;      ///< invalidates stale zero-waiter entries
    TimingWheel::Handle timeout_handle_; ///< wheel entry of the armed timeout
    WakeReason wake_reason_ = WakeReason::none;
    Event* waking_event_ = nullptr;
};

} // namespace rtsc::kernel
