#pragma once
// Stackful cooperative coroutines built on POSIX ucontext.
//
// The discrete-event kernel runs every simulation process on its own stack
// and switches between them cooperatively — exactly one coroutine (or the
// scheduler) executes at any moment, which is the same execution model as the
// OSCI SystemC reference simulator. Stacks are mmap-allocated with a guard
// page below the stack so an overflow faults instead of corrupting a
// neighbouring coroutine.

#include <cstddef>
#include <exception>
#include <functional>
#include <ucontext.h>

namespace rtsc::kernel {

class Coroutine {
public:
    using Body = std::function<void()>;

    static constexpr std::size_t default_stack_bytes = 128 * 1024;

    /// The body starts executing on the first resume().
    explicit Coroutine(Body body, std::size_t stack_bytes = default_stack_bytes);

    Coroutine(const Coroutine&) = delete;
    Coroutine& operator=(const Coroutine&) = delete;

    /// Destroying a suspended (unfinished) coroutine simply releases its
    /// stack; the body's local objects are NOT unwound. The kernel only
    /// destroys coroutines after simulation ends, mirroring SystemC.
    ~Coroutine();

    /// Switch from the caller into the coroutine. Returns when the coroutine
    /// yields or finishes. If the body exited with an exception, resume()
    /// rethrows it in the caller.
    void resume();

    /// Called from inside the coroutine body: suspend and return control to
    /// the most recent resume() caller.
    void yield();

    [[nodiscard]] bool finished() const noexcept { return finished_; }
    [[nodiscard]] bool started() const noexcept { return started_; }

    /// The coroutine currently executing on this thread, or nullptr when the
    /// scheduler (plain stack) is running.
    [[nodiscard]] static Coroutine* current() noexcept;

private:
    static void trampoline(unsigned hi, unsigned lo);
    void run_body();

    Body body_;
    void* stack_base_ = nullptr;   // mmap'ed region including guard page
    std::size_t map_bytes_ = 0;
    ucontext_t ctx_{};
    ucontext_t return_ctx_{};
    bool started_ = false;
    bool finished_ = false;
    std::exception_ptr eptr_;
    // AddressSanitizer fiber-switch bookkeeping (unused in plain builds):
    // the fiber's saved fake-stack while suspended, and the resumer's stack
    // extents captured on each entry so yield() can announce the switch back.
    void* asan_fake_stack_ = nullptr;
    const void* asan_return_stack_ = nullptr;
    std::size_t asan_return_stack_size_ = 0;
    // ThreadSanitizer fiber handles (unused in plain builds): this fiber and
    // the fiber that most recently resumed it.
    void* tsan_fiber_ = nullptr;
    void* tsan_caller_ = nullptr;
};

} // namespace rtsc::kernel
