#pragma once
// Module base class: a named container for processes and channels, in the
// spirit of sc_module (without macros). Hardware blocks and the RTOS layer's
// Processor derive from it.

#include <functional>
#include <string>
#include <utility>

#include "kernel/simulator.hpp"

namespace rtsc::kernel {

class Module {
public:
    explicit Module(std::string name)
        : sim_(Simulator::current()), name_(std::move(name)) {}

    virtual ~Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] Simulator& simulator() const noexcept { return sim_; }

protected:
    /// Spawn a process named "<module>.<suffix>" bound to a member function
    /// or any callable.
    Process& spawn_thread(const std::string& suffix, std::function<void()> body,
                          std::size_t stack_bytes = Coroutine::default_stack_bytes) {
        return sim_.spawn(name_ + "." + suffix, std::move(body), stack_bytes);
    }

private:
    Simulator& sim_;
    std::string name_;
};

} // namespace rtsc::kernel
