#include "kernel/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <type_traits>
#include <utility>

namespace rtsc::kernel {

namespace {
thread_local Simulator* g_current_sim = nullptr;
// Process-wide default for Simulator::skip_ahead(); relaxed atomic so
// concurrent campaign threads constructing simulators race cleanly.
std::atomic<bool> g_skip_ahead_default{true};
} // namespace

void Simulator::set_skip_ahead_default(bool on) noexcept {
    g_skip_ahead_default.store(on, std::memory_order_relaxed);
}

bool Simulator::skip_ahead_default() noexcept {
    return g_skip_ahead_default.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------- Process

Process::Process(Simulator& sim, std::string name, std::function<void()> body,
                 std::size_t stack_bytes)
    : sim_(sim),
      name_(std::move(name)),
      kind_(Kind::thread),
      coro_(std::make_unique<Coroutine>(std::move(body), stack_bytes)),
      done_event_(std::make_unique<Event>(name_ + ".done")) {}

Process::Process(Simulator& sim, std::string name,
                 std::function<void()> callback, std::vector<Event*> sensitivity)
    : sim_(sim),
      name_(std::move(name)),
      kind_(Kind::method),
      method_callback_(std::move(callback)),
      static_sensitivity_(std::move(sensitivity)),
      done_event_(std::make_unique<Event>(name_ + ".done")) {}

// ------------------------------------------------------------------ Event

Event::Event(std::string name) : sim_(Simulator::current()), name_(std::move(name)) {}

Event::~Event() { sim_.purge_event(*this); }

void Event::notify() {
    if (pending_ == Pending::timed) sim_.cancel_timed(*this);
    pending_ = Pending::none;
    sim_.trigger(*this);
}

void Event::notify_delta() {
    if (pending_ == Pending::delta) return;
    if (pending_ == Pending::timed) sim_.cancel_timed(*this);
    pending_ = Pending::delta;
    sim_.add_delta_pending(*this);
}

void Event::notify(Time delay) {
    if (delay.is_zero()) {
        notify_delta();
        return;
    }
    if (pending_ == Pending::delta) return; // delta wins over timed
    const Time at = sim_.now() + delay;
    if (pending_ == Pending::timed && timed_at_ <= at) return; // earlier pending wins
    pending_ = Pending::timed;
    timed_at_ = at;
    sim_.schedule_timed(*this, at);
}

void Event::cancel() {
    if (pending_ == Pending::timed) sim_.cancel_timed(*this);
    pending_ = Pending::none;
}

// -------------------------------------------------------------- Simulator

Simulator::Simulator() {
    prev_current_ = g_current_sim;
    g_current_sim = this;
    skip_ahead_ = skip_ahead_default();
}

Simulator::~Simulator() { g_current_sim = prev_current_; }

Simulator& Simulator::current() {
    if (!g_current_sim) throw SimulationError("no active Simulator on this thread");
    return *g_current_sim;
}

Simulator* Simulator::current_or_null() noexcept { return g_current_sim; }

Process& Simulator::spawn(std::string name, std::function<void()> body,
                          std::size_t stack_bytes) {
    auto proc = std::unique_ptr<Process>(
        new Process(*this, std::move(name), std::move(body), stack_bytes));
    Process& p = *proc;
    processes_.push_back(std::move(proc));
    p.runnable_ = true;
    runnable_.push_back(&p);
    return p;
}

Process& Simulator::require_process(const char* what) const {
    if (!current_process_)
        throw SimulationError(std::string(what) + " called outside of a process");
    if (current_process_->kind_ == Process::Kind::method)
        throw SimulationError(std::string(what) +
                              " called inside a method process (methods must "
                              "use next_trigger, not wait)");
    return *current_process_;
}

Process& Simulator::spawn_method(std::string name,
                                 std::function<void()> callback,
                                 std::vector<Event*> sensitivity) {
    auto proc = std::unique_ptr<Process>(
        new Process(*this, std::move(name), std::move(callback),
                    std::move(sensitivity)));
    Process& p = *proc;
    processes_.push_back(std::move(proc));
    p.runnable_ = true;
    runnable_.push_back(&p);
    return p;
}

void Simulator::next_trigger(Time delay) {
    if (!current_process_ || current_process_->kind_ != Process::Kind::method)
        throw SimulationError("next_trigger outside of a method process");
    Process& p = *current_process_;
    clear_wait_state(p);
    arm_timeout(p, delay);
    p.next_trigger_armed_ = true;
}

void Simulator::next_trigger(Event& e) {
    if (!current_process_ || current_process_->kind_ != Process::Kind::method)
        throw SimulationError("next_trigger outside of a method process");
    Process& p = *current_process_;
    clear_wait_state(p);
    e.waiters_.push_back(&p);
    p.waiting_on_.push_back(&e);
    p.next_trigger_armed_ = true;
}

// ---- event machinery ----

void Simulator::schedule_timed(Event& e, Time at) {
    // Rescheduling earlier: the previous wheel entry is cancelled through
    // its handle, never left to go stale.
    if (e.timed_handle_.valid())
        wheel_.cancel(e.timed_handle_);
    else
        ++live_timed_; // a reschedule is already counted
    e.timed_handle_ = wheel_.insert(at, now_, order_counter_++,
                                    TimingWheel::Kind::event_notify, &e, nullptr);
}

void Simulator::cancel_timed(Event& e) noexcept {
    if (e.timed_handle_.valid()) {
        wheel_.cancel(e.timed_handle_);
        e.timed_handle_.reset();
        --live_timed_;
    }
}

void Simulator::add_delta_pending(Event& e) { delta_pending_.push_back(&e); }

void Simulator::trigger(Event& e) {
    if (e.waiters_.empty()) return;
    // Waking modifies e.waiters_ via clear_wait_state; iterate over a moved-
    // out copy. The scratch buffer makes the common non-nested notification
    // allocation-free (wake() runs no user code, so trigger() only re-enters
    // through exotic observer hooks -- those fall back to a local vector).
    if (trigger_depth_ == 0) {
        ++trigger_depth_;
        trigger_scratch_.clear();
        trigger_scratch_.swap(e.waiters_);
        for (Process* p : trigger_scratch_)
            wake(*p, Process::WakeReason::event, &e);
        --trigger_depth_;
    } else {
        std::vector<Process*> waiters;
        waiters.swap(e.waiters_);
        for (Process* p : waiters) wake(*p, Process::WakeReason::event, &e);
    }
}

void Simulator::purge_event(Event& e) {
    // Unregister from any process still waiting on e (they keep waiting on
    // their other wake sources).
    for (Process* p : e.waiters_) std::erase(p->waiting_on_, &e);
    e.waiters_.clear();
    std::erase(delta_pending_, &e);
    // Cancel a pending timed notification through the handle: the wheel
    // never dereferences the Event, so destroying one mid-schedule is safe
    // (the old priority queue popped and inspected the dangling pointer).
    cancel_timed(e);
}

void Simulator::wake(Process& p, Process::WakeReason reason, Event* ev) {
    if (p.runnable_ || p.terminated_) return;
    clear_wait_state(p);
    p.wake_reason_ = reason;
    p.waking_event_ = ev;
    p.runnable_ = true;
    runnable_.push_back(&p);
}

void Simulator::clear_wait_state(Process& p) {
    for (Event* e : p.waiting_on_) std::erase(e->waiters_, &p);
    p.waiting_on_.clear();
    if (p.timeout_armed_) {
        ++p.timeout_seq_; // invalidates a zero-waiter entry, if any
        p.timeout_armed_ = false;
        if (p.timeout_counted_) {
            p.timeout_counted_ = false;
            --live_timed_;
        }
        if (hot_.proc == &p) {
            hot_.proc = nullptr; // staged: dropped in place, no tombstone
        } else if (p.timeout_handle_.valid()) {
            wheel_.cancel(p.timeout_handle_);
            p.timeout_handle_.reset();
        }
    }
}

void Simulator::arm_timeout(Process& p, Time timeout) {
    ++p.timeout_seq_;
    p.timeout_armed_ = true;
    const Time at = now_ + timeout; // saturating: Time::max() means "never"
    if (at == Time::max()) return;  // no wheel entry: the timeout cannot fire
    if (!p.background_) {
        // Snapshot the background flag at arm time: toggling it while the
        // timeout is in flight must not unbalance the live-work count.
        p.timeout_counted_ = true;
        ++live_timed_;
    }
    if (skip_ahead_) {
        // Stage the newest timeout; in the dominant compute/charge pattern
        // it is also the next to fire and never touches the wheel.
        if (hot_.proc != nullptr) flush_hot();
        hot_ = HotTimeout{&p, at, order_counter_++};
        return;
    }
    p.timeout_handle_ = wheel_.insert(
        at, now_, order_counter_++, TimingWheel::Kind::process_timeout,
        nullptr, &p);
}

void Simulator::flush_hot() {
    Process* p = hot_.proc;
    hot_.proc = nullptr;
    // The original order stamp keeps the FIFO tie-break identical to a
    // direct insert at arm time.
    p->timeout_handle_ = wheel_.insert(
        hot_.at, now_, hot_.order, TimingWheel::Kind::process_timeout,
        nullptr, p);
}

void Simulator::suspend_current() {
    Process& p = *current_process_;
    p.wake_reason_ = Process::WakeReason::none;
    p.waking_event_ = nullptr;
    p.coro_->yield();
    // A kill posted while this process was suspended surfaces here, on the
    // process's own stack, so the wait()er's frames unwind with RAII intact.
    if (p.kill_requested_) {
        p.kill_requested_ = false;
        throw ProcessKilled(p.name_);
    }
}

void Simulator::kill_process(Process& p) {
    if (p.terminated_) return;
    if (&p == current_process_) {
        p.kill_requested_ = false;
        throw ProcessKilled(p.name_);
    }
    if (p.kind_ == Process::Kind::method ||
        (p.kind_ == Process::Kind::thread && !p.coro_->started())) {
        // No live stack to unwind: retire the process in place.
        p.terminated_ = true;
        clear_wait_state(p);
        std::erase(runnable_, &p);
        p.runnable_ = false;
        p.done_event_->notify_delta();
        return;
    }
    p.kill_requested_ = true;
    wake(p, Process::WakeReason::killed, nullptr);
}

// ---- wait services ----

void Simulator::yield() {
    Process& p = require_process("yield()");
    // The evaluate sweep already dequeued this process (runnable_ false);
    // re-appending lets the same index-based FIFO sweep pick it up again
    // after everything queued ahead of it.
    p.runnable_ = true;
    runnable_.push_back(&p);
    suspend_current();
}

void Simulator::wait(Time duration) {
    Process& p = require_process("wait(Time)");
    if (duration.is_zero()) {
        // One delta cycle: a private delta-notified wake through the done
        // machinery would be heavier; reuse the timeout path at +0 is wrong
        // (same-instant timeouts fire in a later *timed* batch). Use a
        // dedicated delta wake instead.
        ++p.timeout_seq_;
        p.timeout_armed_ = true;
        zero_waiters_.push_back({&p, p.timeout_seq_});
        suspend_current();
        return;
    }
    arm_timeout(p, duration);
    suspend_current();
}

void Simulator::wait(Event& e) {
    Process& p = require_process("wait(Event)");
    e.waiters_.push_back(&p);
    p.waiting_on_.push_back(&e);
    suspend_current();
}

Process::WakeReason Simulator::wait(Time timeout, Event& e) {
    Process& p = require_process("wait(Time, Event)");
    e.waiters_.push_back(&p);
    p.waiting_on_.push_back(&e);
    arm_timeout(p, timeout);
    suspend_current();
    return p.wake_reason_;
}

Event& Simulator::wait_any(std::initializer_list<Event*> events) {
    return wait_any(std::vector<Event*>(events));
}

Event& Simulator::wait_any(const std::vector<Event*>& events) {
    Process& p = require_process("wait_any");
    for (Event* e : events) {
        e->waiters_.push_back(&p);
        p.waiting_on_.push_back(e);
    }
    suspend_current();
    return *p.waking_event_;
}

Event* Simulator::wait_any(Time timeout, const std::vector<Event*>& events) {
    Process& p = require_process("wait_any");
    for (Event* e : events) {
        e->waiters_.push_back(&p);
        p.waiting_on_.push_back(e);
    }
    arm_timeout(p, timeout);
    suspend_current();
    return p.wake_reason_ == Process::WakeReason::event ? p.waking_event_ : nullptr;
}

void Simulator::request_update(UpdateHook& hook) {
    if (std::find(update_requests_.begin(), update_requests_.end(), &hook) ==
        update_requests_.end())
        update_requests_.push_back(&hook);
}

// ---- the scheduling loop ----

bool Simulator::advance_time(Time limit) {
    if (hot_.proc != nullptr) {
        if (hot_.at.raw_ps() < wheel_.next_lower_bound()) {
            // Skip-ahead fast path: the staged timeout fires strictly before
            // anything the wheel could produce (the bound is conservative:
            // a tie or a stale bound falls through to the general path,
            // which restores the event-before-timeout and FIFO ordering).
            if (hot_.at > limit) return false;
            Process* p = hot_.proc;
            hot_.proc = nullptr;
            if (hot_.at > now_) {
                now_ = hot_.at;
                deltas_this_instant_ = 0;
            }
            p->timeout_armed_ = false;
            if (p->timeout_counted_) {
                p->timeout_counted_ = false;
                --live_timed_;
            }
            wake(*p, Process::WakeReason::timeout, nullptr);
            return true;
        }
        flush_hot();
    }
    Time t{};
    if (!wheel_.pop_due(limit, t, fired_batch_)) return false;
    if (t > now_) {
        now_ = t;
        deltas_this_instant_ = 0;
    }
    for (const TimingWheel::Fired& f : fired_batch_) {
        // An earlier wake in this batch may have cancelled the entry
        // (e.g. an event waking a process whose timeout shares the
        // instant); take() claims it exactly once.
        if (!wheel_.take(f.h)) continue;
        if (f.kind == TimingWheel::Kind::event_notify) {
            f.ev->timed_handle_.reset();
            f.ev->pending_ = Event::Pending::none;
            --live_timed_;
            trigger(*f.ev);
        } else {
            f.proc->timeout_handle_.reset();
            f.proc->timeout_armed_ = false;
            if (f.proc->timeout_counted_) {
                f.proc->timeout_counted_ = false;
                --live_timed_;
            }
            wake(*f.proc, Process::WakeReason::timeout, nullptr);
        }
    }
    fired_batch_.clear();
    return true;
}

void Simulator::evaluate_phase() {
    // Index-based FIFO over a plain vector: processes woken mid-phase append
    // and are picked up by the same sweep. Visited slots are nulled so a
    // kill_process() erase (which only matches live queue entries) cannot
    // shift unvisited elements across the cursor. If a process body throws,
    // the nulls are dropped so only unprocessed entries remain queued.
    try {
    for (std::size_t i = 0; i < runnable_.size(); ++i) {
        Process* p = runnable_[i];
        if (p == nullptr) continue;
        runnable_[i] = nullptr;
        p->runnable_ = false;
        if (p->terminated_) continue;
        current_process_ = p;
        ++activations_;
        ++p->activations_;
        if (on_process_switch) on_process_switch(*p, true);
        if (p->kind_ == Process::Kind::method) {
            p->next_trigger_armed_ = false;
            try {
                p->method_callback_();
            } catch (...) {
                current_process_ = nullptr;
                throw;
            }
            // Re-arm: dynamic next_trigger wins; otherwise the static
            // sensitivity; with neither, the method stays dormant.
            if (!p->next_trigger_armed_) {
                for (Event* e : p->static_sensitivity_) {
                    e->waiters_.push_back(p);
                    p->waiting_on_.push_back(e);
                }
            }
        } else {
            p->coro_->resume();
        }
        if (on_process_switch) on_process_switch(*p, false);
        current_process_ = nullptr;
        if (p->kind_ == Process::Kind::thread && p->coro_->finished()) {
            p->terminated_ = true;
            clear_wait_state(*p);
            p->done_event_->notify_delta();
        }
    }
    } catch (...) {
        std::erase(runnable_, static_cast<Process*>(nullptr));
        throw;
    }
    runnable_.clear();
}

void Simulator::update_phase() {
    if (update_requests_.empty()) return;
    update_scratch_.clear();
    update_scratch_.swap(update_requests_);
    for (UpdateHook* h : update_scratch_) h->update();
}

void Simulator::delta_notify_phase() {
    if (!delta_pending_.empty()) {
        delta_scratch_.clear();
        delta_scratch_.swap(delta_pending_);
        for (Event* e : delta_scratch_) {
            if (e->pending_ != Event::Pending::delta) continue; // cancelled/overridden
            e->pending_ = Event::Pending::none;
            trigger(*e);
        }
    }
    if (!zero_waiters_.empty()) {
        zero_scratch_.clear();
        zero_scratch_.swap(zero_waiters_);
        for (const ZeroWaiter& z : zero_scratch_) {
            if (z.proc->timeout_armed_ && z.proc->timeout_seq_ == z.seq) {
                z.proc->timeout_armed_ = false;
                wake(*z.proc, Process::WakeReason::timeout, nullptr);
            }
        }
    }
    ++delta_count_;
    if (++deltas_this_instant_ > max_deltas_per_instant_)
        reporter_.report(Severity::error,
                         "delta-cycle limit exceeded at t=" + now_.to_string() +
                             " (zero-delay activity loop?)");
}

void Simulator::run_loop(Time limit) {
    if (running_) {
        // Re-entrant invocation (typically run()/run_until() called from
        // inside a process) would corrupt the scheduler state; refuse with a
        // diagnostic through the Reporter (error severity throws).
        std::string msg = "Simulator::run()/run_until() is not reentrant";
        if (current_process_ != nullptr)
            msg += " (called from inside process '" + current_process_->name_ + "')";
        reporter_.report(Severity::error, msg);
        return; // unreachable: error severity throws
    }
    running_ = true;
    stop_requested_ = false;
    // Host self-profiling wraps each phase in two steady_clock reads; the
    // timed wrapper compiles down to the plain call when disabled. It must
    // not perturb the phase sequencing in any way — only measure it.
    const auto timed = [this](auto&& phase, std::uint64_t& acc) {
        if (!host_profiling_) return phase();
        const auto t0 = std::chrono::steady_clock::now();
        using R = decltype(phase());
        if constexpr (std::is_void_v<R>) {
            phase();
            acc += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        } else {
            R r = phase();
            acc += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            return r;
        }
    };
    try {
        while (!stop_requested_) {
            if (runnable_.empty() && delta_pending_.empty() && zero_waiters_.empty()) {
                // Open-ended run: background heartbeats alone are not work.
                // An explicit run_until() horizon keeps them ticking to it.
                if (limit == Time::max() && live_timed_ == 0) break;
                if (!timed([&] { return advance_time(limit); },
                           host_profile_.advance_ns))
                    break;
            }
            timed([&] { evaluate_phase(); }, host_profile_.evaluate_ns);
            if (skip_ahead_ && update_requests_.empty() &&
                delta_pending_.empty() && zero_waiters_.empty()) {
                // Skip-ahead: the update and delta-notification phases have
                // nothing to do; count the empty delta cycle exactly as
                // delta_notify_phase() would and return to the timed queue.
                // The per-instant delta guard is not needed here: with no
                // pending delta activity, time strictly advances (or the run
                // ends) before the next evaluation.
                ++delta_count_;
                ++deltas_this_instant_;
                continue;
            }
            timed([&] { update_phase(); }, host_profile_.update_ns);
            timed([&] { delta_notify_phase(); }, host_profile_.delta_notify_ns);
        }
    } catch (...) {
        running_ = false;
        throw;
    }
    running_ = false;
}

void Simulator::check_for_stall() {
    stall_report_ = StallReport{};
    stall_report_.at = now_;
    for (const auto& up : processes_) {
        const Process& p = *up;
        if (p.terminated_ || p.runnable_ || p.daemon_ ||
            p.kind_ != Process::Kind::thread || !p.coro_->started())
            continue;
        BlockedProcess b;
        b.process = p.name_;
        for (const Event* e : p.waiting_on_) b.waiting_on.push_back(e->name());
        if (b.waiting_on.empty())
            b.waiting_on.emplace_back("<nothing: suspended forever>");
        stall_report_.blocked.push_back(std::move(b));
    }
    if (stall_report_.detected())
        reporter_.report(Severity::warning, stall_report_.to_string());
}

std::string Simulator::StallReport::to_string() const {
    std::string msg = "deadlock/stall at t=" + at.to_string() + ": " +
                      std::to_string(blocked.size()) +
                      " process(es) blocked with no pending activity";
    for (const auto& b : blocked) {
        msg += "\n  " + b.process + " waits on:";
        for (const std::string& e : b.waiting_on) msg += " " + e;
    }
    return msg;
}

void Simulator::run() {
    run_loop(Time::max());
    // The run went dry (rather than being stopped): with detection enabled,
    // diagnose processes that are still blocked and can never wake.
    if (deadlock_detection_ && !stop_requested_) check_for_stall();
}

void Simulator::run_until(Time t) {
    run_loop(t);
    if (now_ < t && !stop_requested_) now_ = t;
}

} // namespace rtsc::kernel
