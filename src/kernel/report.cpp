#include "kernel/report.hpp"

#include <cstdio>

namespace rtsc::kernel {

const char* to_string(Severity s) noexcept {
    switch (s) {
        case Severity::debug: return "debug";
        case Severity::info: return "info";
        case Severity::warning: return "warning";
        case Severity::error: return "error";
    }
    return "?";
}

void Reporter::report(Severity s, const std::string& msg) const {
    ++counts_[static_cast<std::size_t>(s)];
    if (s >= threshold_) {
        if (sink_)
            sink_(s, msg);
        else
            std::fprintf(stderr, "[rtsc %s] %s\n", to_string(s), msg.c_str());
    }
    if (s == Severity::error) throw SimulationError(msg);
}

} // namespace rtsc::kernel
