#pragma once
// Hierarchical timing wheel backing the kernel's timed-notification queue.
//
// Replaces the former std::priority_queue of TimedEntry with a calendar
// structure giving O(1) amortized insert and pop:
//
//   - 11 levels x 64 slots cover the full 64-bit picosecond time range; an
//     entry lands at the lowest level whose slot granularity still separates
//     it from the cursor (level = highest differing 6-bit digit of at ^ cur).
//   - Each slot is an intrusive singly-linked list through an arena of
//     entries; a per-level 64-bit occupancy bitmap finds the next non-empty
//     slot with one countr_zero.
//   - Popping advances the cursor to the earliest occupied slot, cascading
//     higher-level slots down as their time range is entered. Entries within
//     one instant are sorted to reproduce the priority-queue tie-break
//     exactly: all event notifications fire before any process timeout, FIFO
//     by insertion order within a kind.
//   - Cancellation is generation-checked and lazy: cancel() marks the arena
//     entry dead through its Handle without touching the slot lists (and
//     without dereferencing the Event/Process, so destroying an Event with a
//     pending timed notification is safe). Dead entries are reclaimed when
//     their slot drains or, if tombstones ever exceed half the live count, by
//     an immediate compaction sweep -- long fault-injection campaigns used to
//     accumulate stale heap entries indefinitely.
//
// The wheel stores raw picosecond counts; Time::max() entries are legal and
// simply live in the top level until (and if) the cursor reaches them.

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernel/time.hpp"

namespace rtsc::kernel {

class Event;
class Process;

class TimingWheel {
public:
    static constexpr std::uint32_t kNone = 0xffffffffu;
    static constexpr int kLevelBits = 6;
    static constexpr int kSlots = 1 << kLevelBits;                        // 64
    static constexpr int kLevels = (64 + kLevelBits - 1) / kLevelBits;    // 11
    /// Tombstones tolerated before a sweep, on top of live/2: keeps tiny
    /// wheels from compacting on every other cancellation.
    static constexpr std::size_t kCompactSlack = 16;

    enum class Kind : std::uint8_t { event_notify, process_timeout };

    /// Generation-checked reference to an arena entry. A handle from a
    /// previous occupancy of the slot no-ops on cancel().
    struct Handle {
        std::uint32_t idx = kNone;
        std::uint32_t gen = 0;
        [[nodiscard]] bool valid() const noexcept { return idx != kNone; }
        void reset() noexcept { idx = kNone; }
    };

    /// One expiry produced by pop_due(). Field copies survive mid-batch
    /// cancellation; take() decides whether the entry still fires.
    struct Fired {
        std::uint64_t order;
        Handle h;
        Kind kind;
        Event* ev;
        Process* proc;
    };

    /// Schedule an expiry. `now` re-anchors the cursor when the wheel is
    /// empty (every at, present and future, satisfies at >= now).
    [[nodiscard]] Handle insert(Time at, Time now, std::uint64_t order,
                                Kind kind, Event* ev, Process* proc) {
        std::uint32_t idx;
        if (free_head_ != kNone) {
            idx = free_head_;
            free_head_ = arena_[idx].next;
        } else {
            idx = static_cast<std::uint32_t>(arena_.size());
            arena_.emplace_back();
        }
        if (live_ + tombstones_ == 0) {
            cur_ = now.raw_ps();
            next_lb_ = ~std::uint64_t{0};
        }
        Entry& e = arena_[idx];
        e.at = at.raw_ps();
        e.order = order;
        e.kind = kind;
        e.dead = false;
        e.ev = ev;
        e.proc = proc;
        place(idx);
        ++live_;
        next_lb_ = std::min(next_lb_, e.at);
        return Handle{idx, e.gen};
    }

    /// Lazy cancel: tombstone the entry in place. Never dereferences the
    /// scheduled Event/Process. Stale or reset handles no-op.
    void cancel(Handle h) noexcept {
        if (h.idx == kNone || h.idx >= arena_.size()) return;
        Entry& e = arena_[h.idx];
        if (e.gen != h.gen || e.dead) return;
        e.dead = true;
        --live_;
        ++tombstones_;
        if (tombstones_ > live_ / 2 + kCompactSlack) compact();
    }

    /// True when a live entry expires at or before `limit`: advances the
    /// cursor to the earliest such instant, returns it through `at`, and
    /// fills `out` with every entry scheduled there (event notifications
    /// first, then FIFO by insertion order). Tombstone-only instants along
    /// the way are reclaimed and skipped.
    bool pop_due(Time limit, Time& at, std::vector<Fired>& out) {
        out.clear();
        if (live_ == 0) return false;
        const std::uint64_t lim = limit.raw_ps();
        for (;;) {
            if (occ_[0] != 0) {
                const int slot = std::countr_zero(occ_[0]);
                const std::uint64_t t =
                    (cur_ & ~std::uint64_t(kSlots - 1)) | unsigned(slot);
                if (t > lim) {
                    update_next_lb();
                    return false;
                }
                cur_ = t;
                occ_[0] &= occ_[0] - 1;
                std::uint32_t idx = head(0, slot);
                head(0, slot) = kNone;
                while (idx != kNone) {
                    Entry& e = arena_[idx];
                    const std::uint32_t next = e.next;
                    if (e.dead) {
                        free_entry(idx);
                        --tombstones_;
                    } else {
                        out.push_back(
                            {e.order, Handle{idx, e.gen}, e.kind, e.ev, e.proc});
                    }
                    idx = next;
                }
                if (out.empty()) continue; // tombstone-only instant
                std::sort(out.begin(), out.end(),
                          [](const Fired& a, const Fired& b) noexcept {
                              if (a.kind != b.kind)
                                  return a.kind == Kind::event_notify;
                              return a.order < b.order;
                          });
                at = Time::ps(t);
                update_next_lb();
                return true;
            }
            // Level 0 exhausted: cascade the earliest occupied higher-level
            // slot down. Lower levels always hold earlier regions (they share
            // more high digits with the cursor), so the first occupied level
            // is the one to open.
            int lvl = 1;
            while (lvl < kLevels && occ_[lvl] == 0) ++lvl;
            if (lvl == kLevels) return false; // unreachable while live_ > 0
            const int slot = std::countr_zero(occ_[lvl]);
            const unsigned shift = unsigned(lvl) * kLevelBits;
            const std::uint64_t above =
                shift + kLevelBits >= 64
                    ? 0
                    : (cur_ >> (shift + kLevelBits)) << (shift + kLevelBits);
            const std::uint64_t base = above | (std::uint64_t(slot) << shift);
            if (base > lim) {
                update_next_lb();
                return false; // every remaining entry is past the limit
            }
            cur_ = base;
            occ_[lvl] &= occ_[lvl] - 1;
            std::uint32_t idx = head(lvl, slot);
            head(lvl, slot) = kNone;
            while (idx != kNone) {
                const std::uint32_t next = arena_[idx].next;
                if (arena_[idx].dead) {
                    free_entry(idx);
                    --tombstones_;
                } else {
                    place(idx); // re-lands strictly below `lvl`: progress
                }
                idx = next;
            }
        }
    }

    /// Claim a popped entry: true exactly once, when it is still live (a
    /// wake earlier in the same batch may have cancelled it). Frees the
    /// arena slot either way; every Fired must be taken exactly once.
    bool take(Handle h) noexcept {
        Entry& e = arena_[h.idx];
        const bool was_live = !e.dead;
        if (was_live)
            --live_;
        else
            --tombstones_;
        free_entry(h.idx);
        return was_live;
    }

    /// Lower bound on the earliest expiry still stored (live or dead);
    /// Time::max().raw_ps() when the wheel is empty. Exact right after a
    /// pop_due(); inserts keep it exact, cancellations may leave it low.
    [[nodiscard]] std::uint64_t next_lower_bound() const noexcept {
        return next_lb_;
    }

    [[nodiscard]] std::size_t live() const noexcept { return live_; }
    [[nodiscard]] std::size_t tombstones() const noexcept { return tombstones_; }
    /// Arena slots ever allocated (high-water mark of concurrent entries).
    [[nodiscard]] std::size_t arena_size() const noexcept { return arena_.size(); }
    [[nodiscard]] std::uint64_t compactions() const noexcept { return compactions_; }

private:
    struct Entry {
        std::uint64_t at = 0;
        std::uint64_t order = 0;
        std::uint32_t gen = 0;
        std::uint32_t next = kNone; ///< slot list / free list link
        Kind kind = Kind::event_notify;
        bool dead = false;
        Event* ev = nullptr;
        Process* proc = nullptr;
    };

    [[nodiscard]] std::uint32_t& head(int lvl, int slot) noexcept {
        return heads_[std::size_t(lvl) * kSlots + std::size_t(slot)];
    }

    void place(std::uint32_t idx) noexcept {
        Entry& e = arena_[idx];
        // at >= cur_ by construction; clamp defensively so a violation fires
        // the entry immediately instead of scheduling it in the far future.
        const std::uint64_t a = e.at < cur_ ? cur_ : e.at;
        const std::uint64_t x = a ^ cur_;
        const int lvl = x == 0 ? 0 : (std::bit_width(x) - 1) / kLevelBits;
        const int slot = int((a >> (lvl * kLevelBits)) & (kSlots - 1));
        e.next = head(lvl, slot);
        head(lvl, slot) = idx;
        occ_[lvl] |= std::uint64_t(1) << slot;
    }

    void free_entry(std::uint32_t idx) noexcept {
        Entry& e = arena_[idx];
        ++e.gen; // stale handles from this occupancy now mismatch
        e.next = free_head_;
        free_head_ = idx;
    }

    /// Sweep every slot list, unlinking and reclaiming dead entries.
    void compact() noexcept {
        for (int lvl = 0; lvl < kLevels; ++lvl) {
            std::uint64_t bits = occ_[lvl];
            while (bits != 0) {
                const int slot = std::countr_zero(bits);
                bits &= bits - 1;
                std::uint32_t* link = &head(lvl, slot);
                while (*link != kNone) {
                    Entry& e = arena_[*link];
                    if (e.dead) {
                        const std::uint32_t idx = *link;
                        *link = e.next;
                        free_entry(idx);
                        --tombstones_;
                    } else {
                        link = &e.next;
                    }
                }
                if (head(lvl, slot) == kNone)
                    occ_[lvl] &= ~(std::uint64_t(1) << slot);
            }
        }
        ++compactions_;
    }

    /// Recompute the bound from the occupancy bitmaps: exact for level 0,
    /// the slot base (a true lower bound) for higher levels.
    void update_next_lb() noexcept {
        if (occ_[0] != 0) {
            next_lb_ = (cur_ & ~std::uint64_t(kSlots - 1)) |
                       unsigned(std::countr_zero(occ_[0]));
            return;
        }
        for (int lvl = 1; lvl < kLevels; ++lvl) {
            if (occ_[lvl] == 0) continue;
            const unsigned shift = unsigned(lvl) * kLevelBits;
            const std::uint64_t above =
                shift + kLevelBits >= 64
                    ? 0
                    : (cur_ >> (shift + kLevelBits)) << (shift + kLevelBits);
            next_lb_ = above | (std::uint64_t(std::countr_zero(occ_[lvl]))
                                << shift);
            return;
        }
        next_lb_ = ~std::uint64_t{0};
    }

    std::vector<Entry> arena_;
    std::vector<std::uint32_t> heads_ =
        std::vector<std::uint32_t>(std::size_t(kLevels) * kSlots, kNone);
    std::uint64_t occ_[kLevels] = {};
    std::uint64_t cur_ = 0;
    std::uint64_t next_lb_ = ~std::uint64_t{0};
    std::uint32_t free_head_ = kNone;
    std::size_t live_ = 0;
    std::size_t tombstones_ = 0;
    std::uint64_t compactions_ = 0;
};

} // namespace rtsc::kernel
