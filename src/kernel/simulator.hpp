#pragma once
// The discrete-event simulation kernel.
//
// Implements the SystemC 2.0 scheduling algorithm the paper's RTOS model
// relies on: an evaluate phase running all runnable processes, an update
// phase committing primitive-channel writes, and a delta-notification phase,
// with simulated time advancing to the next timed notification when a delta
// cycle produces no runnable process.
//
// One Simulator is active per thread at a time (Simulator::current()); all
// Events, Processes and channels bind to it on construction, so sequential
// tests can each build an isolated simulation.

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event.hpp"
#include "kernel/process.hpp"
#include "kernel/report.hpp"
#include "kernel/time.hpp"
#include "kernel/timing_wheel.hpp"

namespace rtsc::kernel {

/// Primitive channels register an UpdateHook to participate in the update
/// phase (Signal<T> uses this to commit writes between delta cycles).
class UpdateHook {
public:
    virtual ~UpdateHook() = default;
    virtual void update() = 0;
};

class Simulator {
public:
    Simulator();
    ~Simulator();

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /// The simulator active on this thread. Throws if none exists.
    [[nodiscard]] static Simulator& current();
    /// Like current(), but returns nullptr instead of throwing.
    [[nodiscard]] static Simulator* current_or_null() noexcept;

    /// Create a thread process. It becomes runnable immediately (first
    /// execution at the next evaluation phase — time 0 if spawned before
    /// run()).
    Process& spawn(std::string name, std::function<void()> body,
                   std::size_t stack_bytes = Coroutine::default_stack_bytes);

    /// Create a method process (SC_METHOD-like): `callback` runs to
    /// completion on every trigger — once at start, then whenever an event
    /// in its static sensitivity fires, unless the callback re-armed itself
    /// with next_trigger(). Methods must not call wait().
    Process& spawn_method(std::string name, std::function<void()> callback,
                          std::vector<Event*> sensitivity);

    /// From inside a method callback: override the static sensitivity for
    /// the next activation only.
    void next_trigger(Time delay);
    void next_trigger(Event& e);

    /// Terminate a process asynchronously. A suspended thread process is made
    /// runnable and a ProcessKilled exception is raised at its suspension
    /// point so its stack unwinds (RAII cleanup runs); killing the currently
    /// executing process throws ProcessKilled directly; a method process or a
    /// never-started thread is terminated in place. Idempotent on terminated
    /// processes. The done_event fires as for a normal termination.
    void kill_process(Process& p);

    [[nodiscard]] Time now() const noexcept { return now_; }

    /// Run until no timed activity remains (or stop() is called).
    void run();
    /// Run all activity up to and including time t; now() == t afterwards.
    void run_until(Time t);
    /// Request the run loop to return after the current delta cycle.
    void stop() noexcept { stop_requested_ = true; }

    // ---- wait services (must be called from within a process) ----

    /// Suspend for a duration. wait(Time::zero()) waits one delta cycle.
    void wait(Time duration);
    /// Suspend until the event fires.
    void wait(Event& e);
    /// Suspend until the event fires or the timeout elapses, whichever is
    /// first; returns the wake reason. On an exact tie the event wins.
    Process::WakeReason wait(Time timeout, Event& e);
    /// Suspend until any of the events fires; returns the one that did.
    Event& wait_any(std::initializer_list<Event*> events);
    Event& wait_any(const std::vector<Event*>& events);
    /// As wait_any but with a timeout; returns nullptr on timeout. The tie
    /// rule matches wait(Time, Event&): an event firing exactly at the
    /// timeout instant wins.
    Event* wait_any(Time timeout, const std::vector<Event*>& events);

    /// Re-queue the calling process at the tail of the current evaluate
    /// sweep and suspend; it resumes in the SAME delta cycle after every
    /// process currently runnable (including those woken later in this
    /// sweep) has run. Equivalent to being woken by an immediate notify at
    /// this point — the RTOS engines use it to start a synchronously
    /// granted task body at the position a notify-granted one would get.
    void yield();

    /// The process currently executing, or nullptr in scheduler context.
    [[nodiscard]] Process* current_process() const noexcept { return current_process_; }

    /// Schedule an update-phase callback for the end of this delta cycle.
    void request_update(UpdateHook& hook);

    // ---- introspection / statistics ----
    [[nodiscard]] std::uint64_t delta_count() const noexcept { return delta_count_; }
    /// Total scheduler->process context switches so far. This is the metric
    /// the paper's §4 uses to compare the two RTOS engine implementations.
    [[nodiscard]] std::uint64_t process_activations() const noexcept { return activations_; }
    [[nodiscard]] std::size_t process_count() const noexcept { return processes_.size(); }
    [[nodiscard]] Reporter& reporter() noexcept { return reporter_; }

    /// Abort with an error after this many delta cycles at one time point
    /// (guards against zero-delay activity loops in models). Default 1M.
    void set_max_deltas_per_instant(std::uint64_t n) noexcept { max_deltas_per_instant_ = n; }

    // ---- timed-queue introspection (timing wheel) ----

    /// Timed entries that can still fire (wheel + the staged hot timeout).
    [[nodiscard]] std::size_t timed_live() const noexcept {
        return wheel_.live() + (hot_.proc != nullptr ? 1 : 0);
    }
    /// Cancelled entries awaiting lazy reclamation.
    [[nodiscard]] std::size_t timed_tombstones() const noexcept {
        return wheel_.tombstones();
    }
    /// High-water mark of concurrently stored timed entries.
    [[nodiscard]] std::size_t timed_arena_size() const noexcept {
        return wheel_.arena_size();
    }
    /// Tombstone compaction sweeps performed so far.
    [[nodiscard]] std::uint64_t timed_compactions() const noexcept {
        return wheel_.compactions();
    }

    // ---- host self-profiling ----

    /// Wall-clock cost of the kernel's own phases, accumulated while
    /// set_host_profiling(true). Purely host-side: enabling it never changes
    /// simulated behaviour (the skip-ahead branch, delta counters and every
    /// trace observable stay bit-identical), it only adds two steady_clock
    /// reads around each phase. Off by default — one untaken branch per
    /// phase — because wall-clock readings are inherently nondeterministic.
    struct HostProfile {
        std::uint64_t evaluate_ns = 0;     ///< evaluate phases
        std::uint64_t update_ns = 0;       ///< update phases
        std::uint64_t delta_notify_ns = 0; ///< delta-notification phases
        std::uint64_t advance_ns = 0;      ///< timed-queue advances
    };
    void set_host_profiling(bool on) noexcept { host_profiling_ = on; }
    [[nodiscard]] bool host_profiling() const noexcept { return host_profiling_; }
    [[nodiscard]] const HostProfile& host_profile() const noexcept {
        return host_profile_;
    }

    // ---- skip-ahead fast path ----

    /// Toggle the skip-ahead fast path for this simulator: empty update/
    /// delta-notification phases are elided (their counters still advance
    /// identically) and the newest armed process timeout is staged in a
    /// one-slot hot buffer that can fire without touching the wheel. Purely
    /// an execution-speed toggle -- every observable (trace, digests,
    /// delta_count, attribution) is bit-identical either way; the
    /// differential tests run both settings to prove it.
    void set_skip_ahead(bool on) noexcept {
        if (!on && hot_.proc != nullptr) flush_hot();
        skip_ahead_ = on;
    }
    [[nodiscard]] bool skip_ahead() const noexcept { return skip_ahead_; }
    /// Process-wide default for newly constructed simulators (on by
    /// default); lets test harnesses force a mode without plumbing.
    static void set_skip_ahead_default(bool on) noexcept;
    [[nodiscard]] static bool skip_ahead_default() noexcept;

    // ---- deadlock / stall detection ----

    /// One process found blocked when the simulation ran out of activity.
    struct BlockedProcess {
        std::string process;                ///< process name
        std::vector<std::string> waiting_on;///< event names it waits for
    };
    /// Structured diagnostic produced when run() exhausts all timed activity
    /// while live (non-daemon) thread processes are still blocked.
    struct StallReport {
        Time at{};                          ///< time the stall was detected
        std::vector<BlockedProcess> blocked;
        [[nodiscard]] bool detected() const noexcept { return !blocked.empty(); }
        [[nodiscard]] std::string to_string() const;
    };

    /// When enabled, run() ending with live blocked thread processes emits a
    /// warning through the Reporter naming each stuck process and the events
    /// it waits on, and fills deadlock_report(). Off by default: servers that
    /// legitimately idle at end of simulation would otherwise be flagged
    /// (mark such processes with Process::set_daemon to exempt them).
    void set_deadlock_detection(bool on) noexcept { deadlock_detection_ = on; }
    [[nodiscard]] const StallReport& deadlock_report() const noexcept {
        return stall_report_;
    }

    /// Hook invoked on every process state change the kernel can observe;
    /// the trace layer uses this sparingly. May be empty.
    std::function<void(Process&, bool started)> on_process_switch;

private:
    friend class Event;

    // Event internals.
    void schedule_timed(Event& e, Time at);
    void cancel_timed(Event& e) noexcept;   ///< drop e's pending wheel entry
    void add_delta_pending(Event& e);
    void trigger(Event& e);                 ///< wake all waiters (immediate)
    void purge_event(Event& e);             ///< event destruction cleanup

    void wake(Process& p, Process::WakeReason reason, Event* ev);
    void clear_wait_state(Process& p);
    void arm_timeout(Process& p, Time timeout);
    void flush_hot();                       ///< move the staged timeout into the wheel
    void suspend_current();                 ///< yield back to scheduler
    Process& require_process(const char* what) const;

    bool advance_time(Time limit);          ///< pop next time's entries; false if none <= limit
    void check_for_stall();                 ///< fills stall_report_ after a dry run()
    void evaluate_phase();
    void update_phase();
    void delta_notify_phase();
    void run_loop(Time limit);

    Time now_{};
    std::uint64_t order_counter_ = 0;
    /// Timed entries that count as live work: every pending timed event
    /// notification plus armed timeouts of non-background processes. When
    /// an open-ended run() finds nothing runnable and this is zero, the
    /// simulation is dry — background heartbeats (obs::MetricsSampler)
    /// alone never keep it alive. run_until() ignores it: an explicit
    /// horizon means background processes run to the horizon.
    std::size_t live_timed_ = 0;
    std::uint64_t delta_count_ = 0;
    std::uint64_t deltas_this_instant_ = 0;
    std::uint64_t max_deltas_per_instant_ = 1'000'000;
    std::uint64_t activations_ = 0;
    bool stop_requested_ = false;
    bool running_ = false;
    bool deadlock_detection_ = false;
    bool host_profiling_ = false;
    bool skip_ahead_ = true;            ///< initialised from the static default
    int trigger_depth_ = 0;             ///< guards the trigger scratch buffer
    StallReport stall_report_;
    HostProfile host_profile_;

    std::vector<std::unique_ptr<Process>> processes_;
    std::vector<Process*> runnable_;
    TimingWheel wheel_;                 ///< timed notifications and timeouts
    /// One-slot staging buffer for the newest armed process timeout: in the
    /// common single-runnable pattern (compute / overhead charge) it fires
    /// on the fast path without ever entering the wheel. `order` preserves
    /// the FIFO tie-break if the entry has to be flushed into the wheel.
    struct HotTimeout {
        Process* proc = nullptr;
        Time at{};
        std::uint64_t order = 0;
    };
    HotTimeout hot_;
    std::vector<TimingWheel::Fired> fired_batch_; ///< reused by advance_time
    std::vector<Event*> delta_pending_;
    struct ZeroWaiter {
        Process* proc;
        std::uint64_t seq;
    };
    std::vector<ZeroWaiter> zero_waiters_; ///< processes in wait(Time::zero())
    std::vector<UpdateHook*> update_requests_;
    // Reused double buffers: the phases and trigger() iterate a moved-out
    // snapshot; recycling the vectors keeps the hot loop allocation-free.
    std::vector<Event*> delta_scratch_;
    std::vector<ZeroWaiter> zero_scratch_;
    std::vector<UpdateHook*> update_scratch_;
    std::vector<Process*> trigger_scratch_;
    Process* current_process_ = nullptr;
    Reporter reporter_;
    Simulator* prev_current_ = nullptr; ///< restored on destruction
};

// ---- free-function wait API (SystemC style), acting on Simulator::current() ----

inline void wait(Time d) { Simulator::current().wait(d); }
inline void wait(Event& e) { Simulator::current().wait(e); }
inline void yield() { Simulator::current().yield(); }
inline Process::WakeReason wait(Time timeout, Event& e) { return Simulator::current().wait(timeout, e); }
inline Event& wait_any(std::initializer_list<Event*> evs) { return Simulator::current().wait_any(evs); }

} // namespace rtsc::kernel
