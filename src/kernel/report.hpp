#pragma once
// Severity-filtered diagnostics for the simulation kernel and the layers on
// top of it, in the spirit of SystemC's sc_report. Errors throw; everything
// else writes to a configurable sink so tests can capture or silence output.

#include <functional>
#include <stdexcept>
#include <string>

#include "kernel/time.hpp"

namespace rtsc::kernel {

enum class Severity { debug, info, warning, error };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Thrown by report(Severity::error, ...) and by kernel precondition failures.
class SimulationError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown inside a process when Simulator::kill_process() targets it: the
/// exception unwinds the coroutine stack so RAII cleanup (channel waiter
/// registrations, guards) runs, then the process terminates. Deliberately
/// NOT derived from std::exception so user-code `catch (std::exception&)`
/// handlers do not swallow a kill; intermediate code may catch it to add
/// cleanup but must rethrow.
class ProcessKilled {
public:
    explicit ProcessKilled(std::string process_name)
        : process_name_(std::move(process_name)) {}
    [[nodiscard]] const std::string& process_name() const noexcept {
        return process_name_;
    }

private:
    std::string process_name_;
};

class Reporter {
public:
    using Sink = std::function<void(Severity, const std::string&)>;

    /// Messages below this severity are dropped. Default: info.
    void set_threshold(Severity s) noexcept { threshold_ = s; }
    [[nodiscard]] Severity threshold() const noexcept { return threshold_; }

    /// Replace the output sink (default writes "severity: message" to stderr).
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    /// Emit a message. Severity::error additionally throws SimulationError
    /// after the sink has seen the message.
    void report(Severity s, const std::string& msg) const;

    [[nodiscard]] std::size_t count(Severity s) const noexcept {
        return counts_[static_cast<std::size_t>(s)];
    }

private:
    Severity threshold_ = Severity::info;
    Sink sink_;
    mutable std::size_t counts_[4] = {0, 0, 0, 0};
};

} // namespace rtsc::kernel
