#include "kernel/clock.hpp"

namespace rtsc::kernel {

Clock::Clock(std::string name, Time period, Time start_offset)
    : Module(std::move(name)), period_(period), offset_(start_offset),
      tick_(this->name() + ".tick") {
    if (period_.is_zero())
        throw SimulationError("Clock period must be > 0: " + this->name());
    spawn_thread("gen", [this] {
        if (!offset_.is_zero()) kernel::wait(offset_);
        for (;;) {
            tick_.notify();
            ++ticks_;
            if (max_ticks_ != 0 && ticks_ >= max_ticks_) return;
            kernel::wait(period_);
        }
    });
}

} // namespace rtsc::kernel
