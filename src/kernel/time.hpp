#pragma once
// Simulated-time representation for the rtsc discrete-event kernel.
//
// Mirrors SystemC's sc_time: a 64-bit integral count of a fixed resolution.
// The resolution is 1 picosecond, which spans ~213 simulated days — far more
// than any RTOS-level simulation needs — while representing the paper's
// microsecond-scale RTOS overheads exactly.

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

namespace rtsc::kernel {

/// A point in, or duration of, simulated time. Value-semantic, totally
/// ordered, and exact: no floating-point rounding is involved in arithmetic.
class Time {
public:
    using rep = std::uint64_t;

    constexpr Time() noexcept = default;

    /// Named constructors; these are the only way to build a non-zero Time.
    [[nodiscard]] static constexpr Time ps(rep v) noexcept { return Time{v}; }
    [[nodiscard]] static constexpr Time ns(rep v) noexcept { return Time{v * 1'000u}; }
    [[nodiscard]] static constexpr Time us(rep v) noexcept { return Time{v * 1'000'000u}; }
    [[nodiscard]] static constexpr Time ms(rep v) noexcept { return Time{v * 1'000'000'000u}; }
    [[nodiscard]] static constexpr Time sec(rep v) noexcept { return Time{v * 1'000'000'000'000u}; }
    [[nodiscard]] static constexpr Time zero() noexcept { return Time{}; }
    [[nodiscard]] static constexpr Time max() noexcept { return Time{~rep{0}}; }

    /// Fractional factory, e.g. Time::us_f(2.5). Rounds to nearest ps.
    [[nodiscard]] static Time us_f(double v) noexcept {
        return Time{static_cast<rep>(v * 1e6 + 0.5)};
    }
    [[nodiscard]] static Time ns_f(double v) noexcept {
        return Time{static_cast<rep>(v * 1e3 + 0.5)};
    }

    [[nodiscard]] constexpr rep raw_ps() const noexcept { return ps_; }
    [[nodiscard]] constexpr double to_us() const noexcept { return static_cast<double>(ps_) / 1e6; }
    [[nodiscard]] constexpr double to_ns() const noexcept { return static_cast<double>(ps_) / 1e3; }
    [[nodiscard]] constexpr double to_ms() const noexcept { return static_cast<double>(ps_) / 1e9; }
    [[nodiscard]] constexpr double to_sec() const noexcept { return static_cast<double>(ps_) / 1e12; }

    [[nodiscard]] constexpr bool is_zero() const noexcept { return ps_ == 0; }

    constexpr auto operator<=>(const Time&) const noexcept = default;

    // Additions saturate at Time::max(): the value doubles as the "never"
    // sentinel for timeouts, and a wrapping `now + Time::max()` would travel
    // back in time and fire a supposedly-infinite timeout immediately.
    constexpr Time& operator+=(Time rhs) noexcept { ps_ = add_sat(ps_, rhs.ps_); return *this; }
    constexpr Time& operator-=(Time rhs) noexcept { ps_ -= rhs.ps_; return *this; }

    [[nodiscard]] friend constexpr Time operator+(Time a, Time b) noexcept { return Time{add_sat(a.ps_, b.ps_)}; }
    [[nodiscard]] friend constexpr Time operator-(Time a, Time b) noexcept { return Time{a.ps_ - b.ps_}; }
    // Multiplication saturates for the same reason additions do: overhead
    // formulas scale durations by live counts (`Time::ns(200) * ready_tasks`)
    // and DVFS scaling stretches them by a frequency ratio, so a wrapping
    // product would silently travel back in time.
    [[nodiscard]] friend constexpr Time operator*(Time a, rep k) noexcept { return Time{mul_sat(a.ps_, k)}; }
    [[nodiscard]] friend constexpr Time operator*(rep k, Time a) noexcept { return Time{mul_sat(a.ps_, k)}; }
    [[nodiscard]] friend constexpr Time operator/(Time a, rep k) noexcept { return Time{a.ps_ / k}; }
    /// How many whole `b` fit in `a` (e.g. periods elapsed).
    [[nodiscard]] friend constexpr rep operator/(Time a, Time b) noexcept { return a.ps_ / b.ps_; }
    [[nodiscard]] friend constexpr Time operator%(Time a, Time b) noexcept { return Time{a.ps_ % b.ps_}; }

    /// Saturating subtraction: max(a - b, 0). The RTOS layer uses this when
    /// computing the remaining execution time of a preempted operation.
    [[nodiscard]] static constexpr Time sat_sub(Time a, Time b) noexcept {
        return a.ps_ >= b.ps_ ? Time{a.ps_ - b.ps_} : Time{};
    }

    /// Human-readable rendering with an auto-selected unit ("15 us", "2.5 ms").
    [[nodiscard]] std::string to_string() const;

private:
    constexpr explicit Time(rep ps) noexcept : ps_{ps} {}
    [[nodiscard]] static constexpr rep add_sat(rep a, rep b) noexcept {
        return a > ~rep{0} - b ? ~rep{0} : a + b;
    }
    [[nodiscard]] static constexpr rep mul_sat(rep a, rep b) noexcept {
        if (a == 0 || b == 0) return 0;
        return a > ~rep{0} / b ? ~rep{0} : a * b;
    }
    rep ps_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

namespace time_literals {
constexpr Time operator""_ps(unsigned long long v) { return Time::ps(v); }
constexpr Time operator""_ns(unsigned long long v) { return Time::ns(v); }
constexpr Time operator""_us(unsigned long long v) { return Time::us(v); }
constexpr Time operator""_ms(unsigned long long v) { return Time::ms(v); }
constexpr Time operator""_sec(unsigned long long v) { return Time::sec(v); }
} // namespace time_literals

} // namespace rtsc::kernel
