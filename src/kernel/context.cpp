#include "kernel/context.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <utility>

#include "kernel/report.hpp"

// ASan cannot follow swapcontext on its own (it sees one linear stack and
// reports false use-after-scope when we land on another fiber); the fiber
// annotations below tell it about every switch so sanitized builds are
// clean. See https://github.com/google/sanitizers/issues/189.
#if defined(__SANITIZE_ADDRESS__)
#define RTSC_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RTSC_ASAN_FIBERS 1
#endif
#endif
#ifdef RTSC_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer likewise needs to be told about fiber switches, or it
// attributes one fiber's accesses to another's stack and reports bogus
// races (and misses real ones) when several simulators run on separate
// threads (src/campaign/).
#if defined(__SANITIZE_THREAD__)
#define RTSC_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RTSC_TSAN_FIBERS 1
#endif
#endif
#ifdef RTSC_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace rtsc::kernel {

namespace {
thread_local Coroutine* g_current = nullptr;

/// Announce an upcoming switch to the stack [bottom, bottom+size); the
/// current context's fake stack is parked in *fake_save (nullptr destroys
/// it — only valid when this context never runs again).
void start_switch_fiber([[maybe_unused]] void** fake_save,
                        [[maybe_unused]] const void* bottom,
                        [[maybe_unused]] std::size_t size) {
#ifdef RTSC_ASAN_FIBERS
    __sanitizer_start_switch_fiber(fake_save, bottom, size);
#endif
}

/// First call on the destination stack after a switch: restore this
/// context's fake stack and report where the switch came from.
void finish_switch_fiber([[maybe_unused]] void* fake_save,
                         [[maybe_unused]] const void** from_bottom,
                         [[maybe_unused]] std::size_t* from_size) {
#ifdef RTSC_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(fake_save, from_bottom, from_size);
#endif
}

[[nodiscard]] void* tsan_this_fiber() {
#ifdef RTSC_TSAN_FIBERS
    return __tsan_get_current_fiber();
#else
    return nullptr;
#endif
}

void tsan_switch_fiber([[maybe_unused]] void* fiber) {
#ifdef RTSC_TSAN_FIBERS
    __tsan_switch_to_fiber(fiber, 0);
#endif
}

std::size_t page_size() {
    static const std::size_t sz = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return sz;
}

std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
}
} // namespace

Coroutine* Coroutine::current() noexcept { return g_current; }

Coroutine::Coroutine(Body body, std::size_t stack_bytes) : body_(std::move(body)) {
    const std::size_t pg = page_size();
    const std::size_t usable = round_up(stack_bytes < 4 * pg ? 4 * pg : stack_bytes, pg);
    map_bytes_ = usable + pg; // one guard page below the stack
    void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (mem == MAP_FAILED) throw std::bad_alloc{};
    stack_base_ = mem;
    ::mprotect(mem, pg, PROT_NONE);

    ::getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = static_cast<char*>(mem) + pg;
    ctx_.uc_stack.ss_size = usable;
    ctx_.uc_link = nullptr; // bodies always return through run_body -> yield

    // makecontext only passes ints; split the object pointer across two.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Coroutine::trampoline), 2,
                  static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xffffffffu));

#ifdef RTSC_TSAN_FIBERS
    tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Coroutine::~Coroutine() {
#ifdef RTSC_TSAN_FIBERS
    if (tsan_fiber_) __tsan_destroy_fiber(tsan_fiber_);
#endif
    if (stack_base_) ::munmap(stack_base_, map_bytes_);
}

void Coroutine::trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<Coroutine*>((static_cast<std::uintptr_t>(hi) << 32) |
                                              static_cast<std::uintptr_t>(lo));
    self->run_body();
}

void Coroutine::run_body() {
    // First instruction on this fiber's stack: complete the switch that
    // resume() started and learn the resumer's stack for the way back.
    finish_switch_fiber(nullptr, &asan_return_stack_, &asan_return_stack_size_);
    try {
        body_();
    } catch (const ProcessKilled&) {
        // Simulator::kill_process unwound the body: a normal termination.
    } catch (...) {
        eptr_ = std::current_exception();
    }
    finished_ = true;
    // Final switch back to the scheduler; this coroutine never runs again,
    // so its fake stack is destroyed (nullptr) rather than parked.
    start_switch_fiber(nullptr, asan_return_stack_, asan_return_stack_size_);
    tsan_switch_fiber(tsan_caller_);
    ::swapcontext(&ctx_, &return_ctx_);
}

void Coroutine::resume() {
    if (finished_)
        throw SimulationError("Coroutine::resume() on a finished coroutine");
    Coroutine* prev = g_current;
    g_current = this;
    started_ = true;
    void* caller_fake = nullptr;
    start_switch_fiber(&caller_fake, ctx_.uc_stack.ss_sp, ctx_.uc_stack.ss_size);
    tsan_caller_ = tsan_this_fiber();
    tsan_switch_fiber(tsan_fiber_);
    ::swapcontext(&return_ctx_, &ctx_);
    finish_switch_fiber(caller_fake, nullptr, nullptr);
    g_current = prev;
    if (eptr_) {
        auto e = std::exchange(eptr_, nullptr);
        std::rethrow_exception(e);
    }
}

void Coroutine::yield() {
    start_switch_fiber(&asan_fake_stack_, asan_return_stack_,
                       asan_return_stack_size_);
    tsan_switch_fiber(tsan_caller_);
    ::swapcontext(&ctx_, &return_ctx_);
    // Re-entered: refresh the resumer's stack extents — a different context
    // (e.g. a task performing a kill) may have resumed us this time.
    finish_switch_fiber(asan_fake_stack_, &asan_return_stack_,
                        &asan_return_stack_size_);
}

} // namespace rtsc::kernel
