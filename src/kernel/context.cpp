#include "kernel/context.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <new>
#include <utility>

#include "kernel/report.hpp"

namespace rtsc::kernel {

namespace {
thread_local Coroutine* g_current = nullptr;

std::size_t page_size() {
    static const std::size_t sz = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    return sz;
}

std::size_t round_up(std::size_t v, std::size_t align) {
    return (v + align - 1) / align * align;
}
} // namespace

Coroutine* Coroutine::current() noexcept { return g_current; }

Coroutine::Coroutine(Body body, std::size_t stack_bytes) : body_(std::move(body)) {
    const std::size_t pg = page_size();
    const std::size_t usable = round_up(stack_bytes < 4 * pg ? 4 * pg : stack_bytes, pg);
    map_bytes_ = usable + pg; // one guard page below the stack
    void* mem = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    if (mem == MAP_FAILED) throw std::bad_alloc{};
    stack_base_ = mem;
    ::mprotect(mem, pg, PROT_NONE);

    ::getcontext(&ctx_);
    ctx_.uc_stack.ss_sp = static_cast<char*>(mem) + pg;
    ctx_.uc_stack.ss_size = usable;
    ctx_.uc_link = nullptr; // bodies always return through run_body -> yield

    // makecontext only passes ints; split the object pointer across two.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Coroutine::trampoline), 2,
                  static_cast<unsigned>(self >> 32),
                  static_cast<unsigned>(self & 0xffffffffu));
}

Coroutine::~Coroutine() {
    if (stack_base_) ::munmap(stack_base_, map_bytes_);
}

void Coroutine::trampoline(unsigned hi, unsigned lo) {
    auto* self = reinterpret_cast<Coroutine*>((static_cast<std::uintptr_t>(hi) << 32) |
                                              static_cast<std::uintptr_t>(lo));
    self->run_body();
}

void Coroutine::run_body() {
    try {
        body_();
    } catch (...) {
        eptr_ = std::current_exception();
    }
    finished_ = true;
    // Final switch back to the scheduler; this coroutine never runs again.
    ::swapcontext(&ctx_, &return_ctx_);
}

void Coroutine::resume() {
    if (finished_)
        throw SimulationError("Coroutine::resume() on a finished coroutine");
    Coroutine* prev = g_current;
    g_current = this;
    started_ = true;
    ::swapcontext(&return_ctx_, &ctx_);
    g_current = prev;
    if (eptr_) {
        auto e = std::exchange(eptr_, nullptr);
        std::rethrow_exception(e);
    }
}

void Coroutine::yield() {
    ::swapcontext(&ctx_, &return_ctx_);
}

} // namespace rtsc::kernel
