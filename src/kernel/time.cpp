#include "kernel/time.hpp"

#include <array>
#include <cstdio>
#include <ostream>

namespace rtsc::kernel {

std::string Time::to_string() const {
    struct Unit { rep scale; const char* suffix; };
    static constexpr std::array<Unit, 5> units{{
        {1'000'000'000'000u, "s"},
        {1'000'000'000u, "ms"},
        {1'000'000u, "us"},
        {1'000u, "ns"},
        {1u, "ps"},
    }};
    if (ps_ == 0) return "0 s";
    for (const auto& u : units) {
        if (ps_ >= u.scale) {
            const double v = static_cast<double>(ps_) / static_cast<double>(u.scale);
            char buf[64];
            // Print exactly when integral, otherwise with up to 3 decimals.
            if (ps_ % u.scale == 0)
                std::snprintf(buf, sizeof buf, "%llu %s",
                              static_cast<unsigned long long>(ps_ / u.scale), u.suffix);
            else
                std::snprintf(buf, sizeof buf, "%.3f %s", v, u.suffix);
            return buf;
        }
    }
    return "0 s";
}

std::ostream& operator<<(std::ostream& os, Time t) { return os << t.to_string(); }

} // namespace rtsc::kernel
