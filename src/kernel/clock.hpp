#pragma once
// Periodic clock generator. In the paper's running example (Figure 6) a
// hardware task named "Clock" periodically notifies the Clk event that wakes
// Function_1; this module plays that role.

#include <cstdint>
#include <string>

#include "kernel/event.hpp"
#include "kernel/module.hpp"
#include "kernel/time.hpp"

namespace rtsc::kernel {

class Clock final : public Module {
public:
    /// Ticks at start_offset, start_offset+period, ... notifying tick_event().
    Clock(std::string name, Time period, Time start_offset = Time::zero());

    [[nodiscard]] Event& tick_event() noexcept { return tick_; }
    [[nodiscard]] Time period() const noexcept { return period_; }
    [[nodiscard]] std::uint64_t tick_count() const noexcept { return ticks_; }

    /// Stop ticking after this many ticks (0 = forever). A free-running clock
    /// keeps the event queue non-empty, so Simulator::run() would never
    /// starve; bounded runs should either limit ticks or use run_until().
    void set_max_ticks(std::uint64_t n) noexcept { max_ticks_ = n; }

private:
    Time period_;
    Time offset_;
    Event tick_;
    std::uint64_t ticks_ = 0;
    std::uint64_t max_ticks_ = 0;
};

} // namespace rtsc::kernel
