#pragma once
// Simulation events with SystemC sc_event semantics.
//
// An event carries no value; it wakes the processes that are waiting on it.
// At most one *pending* (delayed) notification exists per event at any time,
// with SystemC's override rules:
//   - notify()            immediate: triggers right now, cancels any pending
//   - notify_delta()      next delta cycle; overrides a pending timed notify
//   - notify(Time)        at now+delay; kept only if earlier than the pending
//   - cancel()            discards the pending notification, if any

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "kernel/timing_wheel.hpp"

namespace rtsc::kernel {

class Simulator;
class Process;

class Event {
public:
    /// Binds to the simulator currently active on this thread
    /// (Simulator must be constructed first).
    explicit Event(std::string name = "event");

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    /// Safe to destroy while processes wait on it: the waiters are
    /// unregistered (they will simply never be woken by this event).
    ~Event();

    /// Immediate notification: every process waiting on this event becomes
    /// runnable in the *current* evaluation phase.
    void notify();

    /// Notification in the next delta cycle (same simulated time).
    void notify_delta();

    /// Timed notification at now()+delay. notify(Time::zero()) is equivalent
    /// to notify_delta(), as in SystemC.
    void notify(Time delay);

    /// Discard the pending (delta or timed) notification, if any.
    void cancel();

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] bool has_pending() const noexcept { return pending_ != Pending::none; }
    /// Absolute time of the pending timed notification (valid only when a
    /// timed notification is pending).
    [[nodiscard]] Time pending_time() const noexcept { return timed_at_; }

    [[nodiscard]] Simulator& simulator() const noexcept { return sim_; }

private:
    friend class Simulator;

    enum class Pending : std::uint8_t { none, delta, timed };

    Simulator& sim_;
    std::string name_;
    std::vector<Process*> waiters_;
    Pending pending_ = Pending::none;
    Time timed_at_{};
    /// Wheel entry of the pending timed notification; cancelled (never left
    /// to go stale) on every reschedule/cancel and on event destruction.
    TimingWheel::Handle timed_handle_;
};

} // namespace rtsc::kernel
