#include "workload/mpeg2.hpp"

#include <algorithm>

#include "kernel/simulator.hpp"

namespace rtsc::workload {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;
namespace m = rtsc::mcse;

namespace {

/// Deterministic per-frame complexity in [0.75, 1.25).
double complexity(std::uint64_t frame) {
    std::uint64_t x = frame * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return 0.75 + static_cast<double>(x % 1000u) / 2000.0;
}

} // namespace

char Mpeg2System::frame_type(std::uint64_t index, std::size_t gop) {
    const std::uint64_t pos = index % gop;
    if (pos == 0) return 'I';
    return pos % 3 == 0 ? 'P' : 'B';
}

/// One token flowing through the pipeline.
struct Frame {
    std::uint64_t index = 0;
    char type = 'I';
    kernel::Time captured{};
    bool is_header = false; ///< HeaderGen tokens carry no pixel payload
};

struct Mpeg2System::Impl {
    explicit Impl(Mpeg2System& sys, const Mpeg2Config& cfg)
        : cfg_(cfg),
          cpu_enc("cpu_enc", make_policy(cfg), cfg.engine),
          cpu_entropy("cpu_entropy", make_policy(cfg), cfg.engine),
          cpu_dec("cpu_dec", make_policy(cfg), cfg.engine),
          q_capture("q_capture", cfg.queue_capacity),
          q_filtered("q_filtered", cfg.queue_capacity),
          q_motion("q_motion", cfg.queue_capacity),
          q_decided("q_decided", cfg.queue_capacity),
          q_dct("q_dct", cfg.queue_capacity),
          q_quant("q_quant", cfg.queue_capacity),
          q_vlc("q_vlc", cfg.queue_capacity),
          q_mux_in("q_mux_in", cfg.queue_capacity),
          q_stream("q_stream", cfg.queue_capacity),
          q_decode("q_decode", cfg.queue_capacity),
          q_vld("q_vld", cfg.queue_capacity),
          q_iq("q_iq", cfg.queue_capacity),
          q_idct("q_idct", cfg.queue_capacity),
          q_mc("q_mc", cfg.queue_capacity),
          quant_scale("QuantScale", 8, m::Protection::preemption_lock),
          frame_displayed("frame_displayed", m::EventPolicy::counter),
          gop_start("gop_start", m::EventPolicy::counter) {
        cpu_enc.set_overheads(cfg.sw_overheads);
        cpu_entropy.set_overheads(cfg.sw_overheads);
        cpu_dec.set_overheads(cfg.sw_overheads);
        build(sys);
    }

    static std::unique_ptr<r::SchedulingPolicy> make_policy(const Mpeg2Config& c) {
        if (c.round_robin)
            return std::make_unique<r::RoundRobinPolicy>(c.rr_quantum);
        return std::make_unique<r::PriorityPreemptivePolicy>();
    }

    /// Software computation cost for a frame, scaled by type and complexity.
    [[nodiscard]] k::Time cost(const Frame& f, double base_us,
                               double i_scale = 1.0) const {
        double scale = 1.0;
        switch (f.type) {
            case 'I': scale = 1.6 * i_scale; break;
            case 'P': scale = 1.0; break;
            case 'B': scale = 0.7; break;
            default: break;
        }
        return k::Time::us_f(base_us * scale * complexity(f.index) *
                             cfg_.sw_speed_factor);
    }

    void build(Mpeg2System& sys) {
        k::Simulator& sim = k::Simulator::current();

        // ------------------------------------------------ HW "video_fe"
        sim.spawn("VideoIn", [this] {
            for (std::uint64_t i = 0; i < cfg_.frames; ++i) {
                k::wait(cfg_.frame_period);
                Frame f{i, frame_type(i, cfg_.gop),
                        k::Simulator::current().now(), false};
                q_capture.write(f);
            }
        });
        sim.spawn("PreFilter", [this] {
            for (;;) {
                Frame f = q_capture.read();
                k::wait(k::Time::us_f(60.0 * complexity(f.index)));
                q_filtered.write(f);
            }
        });

        // ------------------------------------------------ HW "xform"
        sim.spawn("MotionEstim", [this] {
            for (;;) {
                Frame f = q_filtered.read();
                // Motion estimation is skipped for I frames.
                if (f.type != 'I') k::wait(k::Time::us_f(150.0 * complexity(f.index)));
                q_motion.write(f);
            }
        });
        sim.spawn("DCT", [this] {
            for (;;) {
                Frame f = q_decided.read();
                k::wait(k::Time::us_f(80.0 * complexity(f.index)));
                q_dct.write(f);
            }
        });
        sim.spawn("IDCT", [this] {
            for (;;) {
                Frame f = q_iq.read();
                k::wait(k::Time::us_f(80.0 * complexity(f.index)));
                q_idct.write(f);
            }
        });

        // ------------------------------------------------ HW "out"
        sim.spawn("StreamOut", [this] {
            for (;;) {
                Frame f = q_stream.read();
                k::wait(k::Time::us(10));
                (void)f;
            }
        });
        sim.spawn("Display", [this, &sys] {
            for (;;) {
                Frame f = q_mc.read();
                k::wait(k::Time::us(5));
                FrameStamp stamp;
                stamp.index = f.index;
                stamp.type = f.type;
                stamp.captured = f.captured;
                stamp.displayed = k::Simulator::current().now();
                stamp.missed_deadline =
                    stamp.displayed > f.captured + cfg_.display_deadline;
                sys.displayed_.push_back(stamp);
                frame_displayed.signal();
            }
        });

        // ------------------------------------------------ SW cpu_enc (RTOS)
        cpu_enc.create_task({.name = "EncCtrl", .priority = 6}, [this](r::Task& self) {
            // Paces groups of pictures and nudges the rate controller.
            for (std::uint64_t g = 0;; ++g) {
                self.sleep_until(static_cast<k::Time::rep>(g) *
                                 (cfg_.frame_period * cfg_.gop));
                self.compute(k::Time::us(15));
                gop_start.signal();
            }
        });
        cpu_enc.create_task({.name = "MotionDecision", .priority = 5},
                            [this](r::Task& self) {
                                for (;;) {
                                    Frame f = q_motion.read();
                                    self.compute(cost(f, 40.0));
                                    q_decided.write(f);
                                }
                            });
        cpu_enc.create_task({.name = "Quant", .priority = 4}, [this](r::Task& self) {
            for (;;) {
                Frame f = q_dct.read();
                const int scale = quant_scale.read(k::Time::us(2));
                self.compute(cost(f, 50.0 + static_cast<double>(scale)));
                q_quant.write(f);
            }
        });
        cpu_enc.create_task({.name = "RateControl", .priority = 3},
                            [this](r::Task& self) {
                                for (std::uint64_t j = 0;; ++j) {
                                    self.sleep_until(static_cast<k::Time::rep>(j + 1) *
                                                     (2u * cfg_.frame_period));
                                    self.compute(k::Time::us(25));
                                    const int scale = 4 + static_cast<int>(j % 9);
                                    quant_scale.write(scale, k::Time::us(2));
                                }
                            });

        // -------------------------------------------- SW cpu_entropy (RTOS)
        cpu_entropy.create_task({.name = "VLC", .priority = 5}, [this, &sys](r::Task& self) {
            for (;;) {
                Frame f = q_quant.read();
                self.compute(cost(f, 70.0));
                q_vlc.write(f);
                ++sys.encoded_;
            }
        });
        cpu_entropy.create_task({.name = "HeaderGen", .priority = 4},
                                [this](r::Task& self) {
                                    for (;;) {
                                        gop_start.await();
                                        self.compute(k::Time::us(20));
                                        Frame header;
                                        header.is_header = true;
                                        q_mux_in.write(header);
                                    }
                                });
        cpu_entropy.create_task({.name = "Mux", .priority = 3}, [this](r::Task& self) {
            for (;;) {
                // Drain header tokens opportunistically, then mux one frame.
                Frame h;
                while (q_mux_in.try_read(h)) self.compute(k::Time::us(5));
                Frame f = q_vlc.read();
                self.compute(cost(f, 20.0));
                q_stream.write(f);
                q_decode.write(f);
            }
        });

        // ------------------------------------------------ SW cpu_dec (RTOS)
        cpu_dec.create_task({.name = "Demux", .priority = 6}, [this](r::Task& self) {
            for (;;) {
                Frame f = q_decode.read();
                self.compute(cost(f, 15.0));
                q_vld.write(f);
            }
        });
        cpu_dec.create_task({.name = "VLD", .priority = 5}, [this](r::Task& self) {
            for (;;) {
                Frame f = q_vld.read();
                self.compute(cost(f, 60.0));
                q_iq.write(f);
            }
        });
        cpu_dec.create_task({.name = "IQ", .priority = 4}, [this](r::Task& self) {
            for (;;) {
                Frame f = q_idct.read(); // wait for IDCT'd data
                self.compute(cost(f, 30.0));
                q_mc_in.push_back(f);
                mc_ready.signal();
            }
        });
        cpu_dec.create_task({.name = "MotionComp", .priority = 3},
                            [this](r::Task& self) {
                                for (;;) {
                                    mc_ready.await();
                                    Frame f = q_mc_in.front();
                                    q_mc_in.erase(q_mc_in.begin());
                                    if (f.type != 'I') self.compute(cost(f, 45.0));
                                    q_mc.write(f);
                                }
                            });
        // IQ consumes from q_iq conceptually; wire VLD -> IQ through q_iq and
        // IQ -> IDCT through... see queue usage above: VLD writes q_iq, IDCT
        // reads q_iq and writes q_idct, IQ reads q_idct (inverse-quantised
        // coefficients transformed back), then hands to MotionComp.
    }

    Mpeg2Config cfg_;
    r::Processor cpu_enc;
    r::Processor cpu_entropy;
    r::Processor cpu_dec;

    m::MessageQueue<Frame> q_capture, q_filtered, q_motion, q_decided, q_dct,
        q_quant, q_vlc, q_mux_in, q_stream, q_decode, q_vld, q_iq, q_idct, q_mc;
    m::SharedVariable<int> quant_scale;
    m::Event frame_displayed;
    m::Event gop_start;
    m::Event mc_ready{"mc_ready", m::EventPolicy::counter};
    std::vector<Frame> q_mc_in;
};

Mpeg2System::Mpeg2System(const Mpeg2Config& config) : config_(config) {
    impl_ = std::make_unique<Impl>(*this, config_);
    sw_cpus_ = {&impl_->cpu_enc, &impl_->cpu_entropy, &impl_->cpu_dec};
}

Mpeg2System::~Mpeg2System() = default;

std::uint64_t Mpeg2System::deadline_misses() const noexcept {
    std::uint64_t n = 0;
    for (const auto& f : displayed_)
        if (f.missed_deadline) ++n;
    return n;
}

kernel::Time Mpeg2System::max_latency() const noexcept {
    k::Time worst{};
    for (const auto& f : displayed_) worst = std::max(worst, f.latency());
    return worst;
}

double Mpeg2System::average_latency_us() const noexcept {
    if (displayed_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& f : displayed_) sum += f.latency().to_us();
    return sum / static_cast<double>(displayed_.size());
}

std::vector<mcse::Relation*> Mpeg2System::relations() const {
    return {&impl_->q_capture, &impl_->q_filtered, &impl_->q_motion,
            &impl_->q_decided, &impl_->q_dct,      &impl_->q_quant,
            &impl_->q_vlc,     &impl_->q_mux_in,   &impl_->q_stream,
            &impl_->q_decode,  &impl_->q_vld,      &impl_->q_iq,
            &impl_->q_idct,    &impl_->q_mc,       &impl_->quant_scale,
            &impl_->gop_start, &impl_->mc_ready,   &impl_->frame_displayed};
}

mcse::Event& Mpeg2System::frame_displayed_event() noexcept {
    return impl_->frame_displayed;
}

} // namespace rtsc::workload
