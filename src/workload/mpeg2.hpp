#pragma once
// MPEG-2 compressing/decompressing SoC model — the paper's closing case
// study: "a video MPEG-2 compressing and decompressing SoC. The system is
// composed of 18 tasks implemented on six processors, three of them are
// software processors with a RTOS model."
//
// The task graph is a frame pipeline. Computation times are synthetic but
// shaped like a real codec: I frames cost more to encode than P, P more than
// B, and per-frame complexity varies deterministically with the frame index
// (so runs are reproducible). What matters for the RTOS model — and what the
// paper uses the case study for — is the serialization of multiple tasks on
// each software processor under configurable policies and overheads.
//
// Processors:
//   HW "video_fe"  : VideoIn, PreFilter                  (hardware, 2 tasks)
//   HW "xform"     : MotionEstim, DCT, IDCT              (hardware, 3 tasks)
//   HW "out"       : StreamOut, Display                  (hardware, 2 tasks)
//   SW cpu_enc     : EncCtrl, MotionDecision, Quant, RateControl  (RTOS, 4)
//   SW cpu_entropy : VLC, HeaderGen, Mux                 (RTOS, 3 tasks)
//   SW cpu_dec     : Demux, VLD, IQ, MotionComp          (RTOS, 4 tasks)
// Total: 18 tasks.
//
// Dataflow (one token per frame):
//   VideoIn -> PreFilter -> MotionEstim -> MotionDecision -> DCT -> Quant
//     -> VLC -> Mux -> { StreamOut, Demux }
//   Demux -> VLD -> IQ -> IDCT -> MotionComp -> Display
// RateControl runs periodically and updates a shared quantisation scale that
// Quant reads under mutual exclusion; EncCtrl paces frame admission;
// HeaderGen injects one header per GOP into Mux's input queue.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "mcse/event.hpp"
#include "mcse/message_queue.hpp"
#include "mcse/shared_variable.hpp"
#include "rtos/processor.hpp"

namespace rtsc::workload {

struct Mpeg2Config {
    std::uint64_t frames = 30;
    kernel::Time frame_period = kernel::Time::us(1000); ///< capture cadence
    /// End-to-end constraint: a frame must reach Display within this budget
    /// after capture.
    kernel::Time display_deadline = kernel::Time::us(4000);
    std::size_t gop = 12;              ///< frames per group-of-pictures
    std::size_t queue_capacity = 4;    ///< inter-stage queue depth
    rtos::RtosOverheads sw_overheads = rtos::RtosOverheads::uniform(kernel::Time::us(5));
    rtos::EngineKind engine = rtos::EngineKind::procedure_calls;
    bool round_robin = false;          ///< RR instead of priority scheduling
    kernel::Time rr_quantum = kernel::Time::us(100);
    /// Global scale on all software computation times (design-space knob:
    /// 1.0 = nominal CPU, 2.0 = twice as slow).
    double sw_speed_factor = 1.0;
};

struct FrameStamp {
    std::uint64_t index = 0;
    char type = 'I'; ///< I / P / B
    kernel::Time captured{};
    kernel::Time displayed{};
    bool missed_deadline = false;

    [[nodiscard]] kernel::Time latency() const noexcept {
        return displayed - captured;
    }
};

/// The instantiated SoC. Construct with an active Simulator, run the
/// simulator, then read the metrics.
class Mpeg2System {
public:
    explicit Mpeg2System(const Mpeg2Config& config);
    ~Mpeg2System();

    Mpeg2System(const Mpeg2System&) = delete;
    Mpeg2System& operator=(const Mpeg2System&) = delete;

    [[nodiscard]] const Mpeg2Config& config() const noexcept { return config_; }

    // ---- results (valid after the simulation ran) ----
    [[nodiscard]] const std::vector<FrameStamp>& displayed_frames() const noexcept {
        return displayed_;
    }
    [[nodiscard]] std::uint64_t frames_encoded() const noexcept { return encoded_; }
    [[nodiscard]] std::uint64_t deadline_misses() const noexcept;
    [[nodiscard]] kernel::Time max_latency() const noexcept;
    [[nodiscard]] double average_latency_us() const noexcept;

    /// The three RTOS-modelled processors (enc, entropy, dec).
    [[nodiscard]] const std::vector<rtos::Processor*>& sw_processors() const noexcept {
        return sw_cpus_;
    }
    /// All communication relations, for recorder attachment.
    [[nodiscard]] std::vector<mcse::Relation*> relations() const;

    /// Signalled (counter policy) every time a frame reaches Display.
    [[nodiscard]] mcse::Event& frame_displayed_event() noexcept;

    /// Expected frame type for index i under the IBBPBB... GOP structure.
    [[nodiscard]] static char frame_type(std::uint64_t index, std::size_t gop);

private:
    struct Impl;
    Mpeg2Config config_;
    std::unique_ptr<Impl> impl_;
    std::vector<rtos::Processor*> sw_cpus_;
    std::vector<FrameStamp> displayed_;
    std::uint64_t encoded_ = 0;
};

} // namespace rtsc::workload
