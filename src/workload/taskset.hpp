#pragma once
// Periodic / sporadic workload generation on top of the RTOS model:
//   - PeriodicTaskSet instantiates classic periodic tasks (offset, period,
//     WCET, deadline) as rtos::Tasks, records per-job response times and
//     detects deadline misses — the paper's "future work" hook of automatic
//     timing-constraint verification by simulation;
//   - uunifast() generates random utilisation vectors for synthetic
//     experiments (Bini & Buttazzo's UUniFast algorithm).

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "analysis/response_time.hpp"
#include "kernel/time.hpp"
#include "rtos/processor.hpp"

namespace rtsc::workload {

struct PeriodicSpec {
    std::string name;
    kernel::Time period{};
    kernel::Time wcet{};
    kernel::Time deadline{};   ///< relative; zero => implicit (== period)
    kernel::Time offset{};     ///< release of the first job
    int priority = 0;
    bool edf_deadlines = false; ///< refresh Task::absolute_deadline per job

    [[nodiscard]] kernel::Time effective_deadline() const noexcept {
        return deadline.is_zero() ? period : deadline;
    }
};

/// Outcome of one released job.
struct JobRecord {
    std::uint64_t index = 0;
    kernel::Time release{};
    kernel::Time completion{};
    bool missed = false;

    [[nodiscard]] kernel::Time response() const noexcept {
        return completion - release;
    }
};

class PeriodicTaskSet {
public:
    /// Creates one task per spec on the processor. Jobs release at
    /// offset + k*period; each job consumes wcet of CPU and its completion
    /// is checked against the absolute deadline.
    PeriodicTaskSet(rtos::Processor& cpu, std::vector<PeriodicSpec> specs);

    struct TaskResult {
        std::string name;
        std::vector<JobRecord> jobs;
        kernel::Time max_response{};
        std::uint64_t misses = 0;

        [[nodiscard]] double miss_ratio() const noexcept {
            return jobs.empty() ? 0.0
                                : static_cast<double>(misses) /
                                      static_cast<double>(jobs.size());
        }
    };

    [[nodiscard]] const std::vector<TaskResult>& results() const noexcept {
        return results_;
    }
    [[nodiscard]] const TaskResult* result(const std::string& name) const;
    [[nodiscard]] const std::vector<PeriodicSpec>& specs() const noexcept {
        return specs_;
    }
    [[nodiscard]] std::uint64_t total_misses() const noexcept;

    /// The analysis-layer view of this set (for RTA cross-checks).
    [[nodiscard]] std::vector<analysis::PeriodicTask> to_analysis() const;

private:
    std::vector<PeriodicSpec> specs_;
    std::vector<TaskResult> results_;
};

/// UUniFast: n utilisations that sum to total_u, uniformly distributed over
/// the valid simplex. Deterministic for a given seed.
[[nodiscard]] std::vector<double> uunifast(std::size_t n, double total_u,
                                           std::uint64_t seed);

/// Build a random periodic task set with the given total utilisation.
/// Periods are sampled log-uniformly from [min_period, max_period] and
/// priorities assigned rate-monotonically.
[[nodiscard]] std::vector<PeriodicSpec> random_task_set(
    std::size_t n, double total_u, kernel::Time min_period,
    kernel::Time max_period, std::uint64_t seed);

} // namespace rtsc::workload
