#include "workload/taskset.hpp"

#include <algorithm>
#include <cmath>

namespace rtsc::workload {

namespace k = rtsc::kernel;

PeriodicTaskSet::PeriodicTaskSet(rtos::Processor& cpu,
                                 std::vector<PeriodicSpec> specs)
    : specs_(std::move(specs)) {
    results_.resize(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const PeriodicSpec& spec = specs_[i];
        results_[i].name = spec.name;
        TaskResult& result = results_[i];
        rtos::Task& task = cpu.create_task(
            {.name = spec.name,
             .priority = spec.priority,
             .start_time = spec.offset},
            [&result, spec](rtos::Task& self) {
                k::Simulator& sim = self.processor().simulator();
                for (std::uint64_t j = 0;; ++j) {
                    const k::Time release = spec.offset + j * spec.period;
                    const k::Time abs_deadline =
                        release + spec.effective_deadline();
                    // The deadline must be in place BEFORE the task re-enters
                    // the ready queue at its release, or EDF would order the
                    // wake-up by the previous job's (earlier) deadline.
                    if (spec.edf_deadlines) self.set_absolute_deadline(abs_deadline);
                    if (sim.now() < release) self.sleep_until(release);
                    self.compute(spec.wcet);
                    JobRecord job;
                    job.index = j;
                    job.release = release;
                    job.completion = sim.now();
                    job.missed = job.completion > abs_deadline;
                    result.jobs.push_back(job);
                    result.max_response =
                        std::max(result.max_response, job.response());
                    if (job.missed) ++result.misses;
                }
            });
        // The first job's deadline must already be visible when the task
        // first becomes ready (at spec.offset); the body only runs once
        // dispatched, which under EDF would leave the initial release
        // deadline-less and mis-ordered.
        if (spec.edf_deadlines)
            task.set_absolute_deadline(spec.offset + spec.effective_deadline());
    }
}

const PeriodicTaskSet::TaskResult* PeriodicTaskSet::result(
    const std::string& name) const {
    for (const auto& r : results_)
        if (r.name == name) return &r;
    return nullptr;
}

std::uint64_t PeriodicTaskSet::total_misses() const noexcept {
    std::uint64_t n = 0;
    for (const auto& r : results_) n += r.misses;
    return n;
}

std::vector<analysis::PeriodicTask> PeriodicTaskSet::to_analysis() const {
    std::vector<analysis::PeriodicTask> out;
    out.reserve(specs_.size());
    for (const auto& s : specs_)
        out.push_back({s.name, s.period, s.wcet, s.deadline, s.priority,
                       k::Time::zero()});
    return out;
}

std::vector<double> uunifast(std::size_t n, double total_u, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::vector<double> u(n);
    double sum = total_u;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double next =
            sum * std::pow(uni(rng), 1.0 / static_cast<double>(n - 1 - i));
        u[i] = sum - next;
        sum = next;
    }
    if (n > 0) u[n - 1] = sum;
    return u;
}

std::vector<PeriodicSpec> random_task_set(std::size_t n, double total_u,
                                          kernel::Time min_period,
                                          kernel::Time max_period,
                                          std::uint64_t seed) {
    const auto utils = uunifast(n, total_u, seed);
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    const double lo = std::log(static_cast<double>(min_period.raw_ps()));
    const double hi = std::log(static_cast<double>(max_period.raw_ps()));

    std::vector<PeriodicSpec> specs(n);
    std::vector<kernel::Time> periods(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto ps = static_cast<k::Time::rep>(
            std::exp(lo + (hi - lo) * uni(rng)));
        // Round to whole microseconds to keep hyperperiods small-ish.
        periods[i] = k::Time::us(std::max<k::Time::rep>(1, ps / 1'000'000u));
        auto wcet_ps = static_cast<k::Time::rep>(
            static_cast<double>(periods[i].raw_ps()) * utils[i]);
        specs[i].name = "task" + std::to_string(i);
        specs[i].period = periods[i];
        specs[i].wcet = k::Time::ps(std::max<k::Time::rep>(1'000, wcet_ps));
    }
    const auto prios = rtos::rate_monotonic_priorities(periods);
    for (std::size_t i = 0; i < n; ++i) specs[i].priority = prios[i];
    return specs;
}

} // namespace rtsc::workload
