#pragma once
// Wire protocol between the shard coordinator and its worker processes.
//
// Frames are length-prefixed over a SOCK_STREAM socketpair:
//
//     u32le payload_len | u8 type | payload_len bytes
//
// Payloads are fixed-width little-endian fields (no text parsing, no
// locale): strings are u64 length + raw bytes, doubles travel as their
// IEEE-754 bit pattern. The same codec serializes checkpoint-journal
// records, so a resumed campaign rebuilds byte-identical ScenarioResults —
// that is what makes the resumed report digest equal the uninterrupted one.
//
// Message flow:
//   worker -> coordinator   hello    {version, pid}        once, on start
//   coordinator -> worker   assign   {scenario index}
//   worker -> coordinator   result   {ScenarioResult}      one per assign
//   worker -> coordinator   status   {MetricsRegistry}     heartbeat after
//                                    each result: the *delta* since the
//                                    worker's previous status frame, so the
//                                    coordinator merges every frame exactly
//                                    once into its live registry
//   coordinator -> worker   shutdown {}                    end of campaign
//   worker -> coordinator   metrics  {MetricsRegistry}     cumulative total,
//                                    reply to shutdown, then exit
//
// Robustness rules: writes use MSG_NOSIGNAL (a dead peer yields EPIPE, not
// SIGPIPE), reads tolerate partial delivery, and every decode is
// bounds-checked — a torn or corrupt frame fails cleanly instead of
// over-reading. Frames above kMaxFrameBytes are rejected outright.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"

namespace rtsc::campaign::shard {

inline constexpr std::uint32_t kProtocolVersion = 2;
/// Upper bound on one frame's payload — far above any real result, small
/// enough that a corrupt length prefix cannot trigger a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : std::uint8_t {
    hello = 1,
    assign = 2,
    result = 3,
    metrics = 4,
    shutdown = 5,
    status = 6,
};

// ---------------------------------------------------------------------------
// Payload codec

class Encoder {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f64(double v);
    void str(const std::string& s) {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader: every getter returns false (and poisons the
/// decoder) instead of reading past the payload.
class Decoder {
public:
    Decoder(const std::uint8_t* data, std::size_t size)
        : p_(data), end_(data + size) {}
    explicit Decoder(const std::vector<std::uint8_t>& buf)
        : Decoder(buf.data(), buf.size()) {}

    [[nodiscard]] bool u8(std::uint8_t& v);
    [[nodiscard]] bool u32(std::uint32_t& v);
    [[nodiscard]] bool u64(std::uint64_t& v);
    [[nodiscard]] bool f64(double& v);
    [[nodiscard]] bool str(std::string& v);
    /// True when the whole payload was consumed and nothing under-ran.
    [[nodiscard]] bool finished() const noexcept { return ok_ && p_ == end_; }
    [[nodiscard]] bool ok() const noexcept { return ok_; }

private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
    bool ok_ = true;
};

[[nodiscard]] std::vector<std::uint8_t> encode_result(const ScenarioResult& r);
[[nodiscard]] bool decode_result(const std::vector<std::uint8_t>& payload,
                                 ScenarioResult& out);

[[nodiscard]] std::vector<std::uint8_t> encode_registry(const obs::MetricsRegistry& reg);
[[nodiscard]] bool decode_registry(const std::vector<std::uint8_t>& payload,
                                   obs::MetricsRegistry& out);

// ---------------------------------------------------------------------------
// Frame I/O

struct Frame {
    MsgType type{};
    std::vector<std::uint8_t> payload;
};

/// Blocking send of one whole frame (loops over partial writes, EINTR-safe,
/// MSG_NOSIGNAL). False on any error — the peer is gone.
[[nodiscard]] bool send_frame(int fd, MsgType type,
                              const std::vector<std::uint8_t>& payload);

/// Blocking receive of one whole frame. False on EOF, error, or an invalid
/// header (oversized length, unknown type).
[[nodiscard]] bool recv_frame(int fd, Frame& out);

/// Incremental frame parser for the coordinator's poll loop: feed it
/// whatever recv() returned, pop complete frames. Never blocks.
class FrameReader {
public:
    /// Append raw bytes from the socket.
    void feed(const std::uint8_t* data, std::size_t n) {
        buf_.insert(buf_.end(), data, data + n);
    }
    /// Extract the next complete frame. Returns false when more bytes are
    /// needed. Sets `corrupt()` (and stops yielding) on an invalid header.
    [[nodiscard]] bool next(Frame& out);
    [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0; ///< consumed prefix, compacted lazily
    bool corrupt_ = false;
};

} // namespace rtsc::campaign::shard
