#pragma once
// ShardCoordinator: crash-tolerant multi-process campaign execution.
//
// Where CampaignRunner fans scenarios over threads *inside* one process —
// fast, but one segfault away from losing the whole sweep — the coordinator
// fork()s N worker processes and talks to them over the length-prefixed
// socketpair protocol (protocol.hpp). Process isolation turns every failure
// mode into a recoverable event:
//
//   - a worker that crashes (signal) or exits unexpectedly loses only its
//     one in-flight scenario, which is retried on a fresh worker with
//     capped exponential backoff up to a retry budget, then recorded as a
//     deterministic `failed` entry — the sweep always completes;
//   - a scenario that exceeds the per-scenario wall-clock timeout is
//     SIGKILLed coordinator-side (no SIGALRM in the worker, ever — see
//     worker.hpp) and handled the same way;
//   - the coordinator journals every terminal result to an append-only
//     checkpoint (checkpoint.hpp), so a campaign killed mid-flight —
//     kill -9 included — resumes incrementally and reproduces the
//     bit-identical final report digest;
//   - a dead coordinator reaps its fleet passively: workers exit on EOF.
//
// Scenario bodies run through the same run_scenario() as the in-process
// runners, so for any campaign whose scenarios do not kill their host
// process the sharded report digest equals CampaignRunner's — worker count,
// crashes, retries and resume cannot change the science.

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"

namespace rtsc::campaign::shard {

struct ShardOptions {
    /// Worker processes; clamped to the scenario count, minimum 1.
    unsigned workers = 1;
    /// Campaign master seed (same derivation as CampaignRunner).
    std::uint64_t seed = 0;
    /// Per-scenario wall-clock budget; exceeding it SIGKILLs the worker and
    /// counts one failed attempt. zero = no timeout (hung scenarios hang
    /// the campaign — set one for hostile workloads).
    std::chrono::milliseconds timeout{0};
    /// Total attempts per scenario before it is recorded as failed. The
    /// budget is only consumed by worker deaths (crash/timeout): a scenario
    /// that merely throws is a deterministic application failure and is
    /// recorded immediately without retry, matching CampaignRunner.
    unsigned max_attempts = 3;
    /// Exponential backoff between attempts of one scenario:
    /// min(backoff_cap, backoff_base * 2^(attempt-1)).
    std::chrono::milliseconds backoff_base{50};
    std::chrono::milliseconds backoff_cap{2000};
    /// Append-only journal path; empty disables checkpointing.
    std::string checkpoint_path;
    /// Load the journal and skip scenarios already recorded. The journal
    /// must key the same campaign (seed, count, names) or run() throws.
    /// Without resume an existing journal is truncated.
    bool resume = false;
    /// Fired once per terminal scenario (completion order), coordinator
    /// thread. Resumed scenarios are counted in `completed` but not
    /// re-fired.
    std::function<void(const Progress&)> on_progress;
    /// In-flight status file (status.hpp): written atomically on every
    /// status_period of wall clock, plus once at campaign start and a final
    /// "done": true snapshot after the drain. Empty disables status output.
    /// Snapshots are advisory; the report digest never depends on them.
    std::string status_path;
    std::chrono::milliseconds status_period{500};
};

struct ShardOutcome {
    CampaignReport report;
    /// Coordinator-side shard.* counters/histograms plus the per-worker
    /// registries of cleanly shut-down workers, merged exactly
    /// (MetricsRegistry::merge). Host-side measurement only — never part
    /// of the report digest.
    obs::MetricsRegistry metrics;
    std::size_t resumed = 0;  ///< scenarios restored from the checkpoint
    std::size_t crashes = 0;  ///< worker deaths not caused by our SIGKILL
    std::size_t timeouts = 0; ///< deadline SIGKILLs
    std::size_t retries = 0;  ///< re-assignments after a failed attempt
    std::uint64_t heartbeats = 0; ///< worker status frames folded live
};

class ShardCoordinator {
public:
    explicit ShardCoordinator(ShardOptions opt) : opt_(std::move(opt)) {}

    /// Run the campaign to completion. Throws std::runtime_error only for
    /// coordinator-level impossibilities (incompatible checkpoint, cannot
    /// spawn any worker); scenario failures of every kind are contained in
    /// the report. Call from a thread-light process: fork() happens here.
    [[nodiscard]] ShardOutcome run(const std::vector<ScenarioSpec>& scenarios) const;

private:
    ShardOptions opt_;
};

} // namespace rtsc::campaign::shard
