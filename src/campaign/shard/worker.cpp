#include "campaign/shard/worker.hpp"

#include <unistd.h>

#include "campaign/shard/protocol.hpp"
#include "obs/metrics.hpp"

namespace rtsc::campaign::shard {

int shard_worker_main(int fd, const std::vector<ScenarioSpec>& scenarios,
                      std::uint64_t campaign_seed) {
    // Per-worker observability, merged coordinator-side on clean shutdown
    // (MetricsRegistry::merge — histograms merge exactly). Everything here
    // is host-side measurement, never part of the report digest.
    obs::MetricsRegistry reg;
    obs::Counter& n_run = reg.counter("shard.worker.scenarios_run");
    obs::Counter& n_failed = reg.counter("shard.worker.scenarios_failed");
    obs::Histogram& wall_us = reg.histogram("shard.worker.scenario_wall_us");
    obs::Histogram& result_bytes = reg.histogram("shard.worker.result_bytes");

    {
        Encoder hello;
        hello.u32(kProtocolVersion);
        hello.u64(static_cast<std::uint64_t>(::getpid()));
        if (!send_frame(fd, MsgType::hello, hello.take())) return 2;
    }

    for (;;) {
        Frame frame;
        if (!recv_frame(fd, frame)) return 2; // coordinator died: exit quietly

        switch (frame.type) {
        case MsgType::assign: {
            Decoder d(frame.payload);
            std::uint64_t index = 0;
            if (!d.u64(index) || !d.finished() || index >= scenarios.size())
                return 3; // protocol violation: let the coordinator respawn us
            const auto i = static_cast<std::size_t>(index);

            const ScenarioResult result =
                run_scenario(scenarios[i], i, campaign_seed);

            n_run.inc();
            if (!result.ok) n_failed.inc();
            wall_us.record(static_cast<std::uint64_t>(result.wall_ms * 1000.0));
            const std::vector<std::uint8_t> payload = encode_result(result);
            result_bytes.record(payload.size());
            if (!send_frame(fd, MsgType::result, payload)) return 2;
            break;
        }
        case MsgType::shutdown:
            // Final act: ship the per-worker metrics, then exit cleanly.
            (void)send_frame(fd, MsgType::metrics, encode_registry(reg));
            return 0;
        default:
            return 3; // coordinator never sends anything else
        }
    }
}

} // namespace rtsc::campaign::shard
