#include "campaign/shard/worker.hpp"

#include <unistd.h>

#include "campaign/shard/protocol.hpp"
#include "obs/metrics.hpp"

namespace rtsc::campaign::shard {

int shard_worker_main(int fd, const std::vector<ScenarioSpec>& scenarios,
                      std::uint64_t campaign_seed) {
    // Per-worker observability, merged coordinator-side on clean shutdown
    // (MetricsRegistry::merge — histograms merge exactly). Everything here
    // is host-side measurement, never part of the report digest.
    //
    // Two registries: everything is recorded into `delta`, which is shipped
    // as a status heartbeat after each result and then folded into `total`
    // and reset. The coordinator thus merges every sample exactly once into
    // its live view, while the cumulative `total` shipped on shutdown keeps
    // the final ShardOutcome metrics identical to the pre-heartbeat path.
    obs::MetricsRegistry total, delta;
    // The cumulative registry always carries the full worker catalogue, so
    // a clean run still reports scenarios_failed = 0 instead of omitting it.
    (void)total.counter("shard.worker.scenarios_run");
    (void)total.counter("shard.worker.scenarios_failed");

    {
        Encoder hello;
        hello.u32(kProtocolVersion);
        hello.u64(static_cast<std::uint64_t>(::getpid()));
        if (!send_frame(fd, MsgType::hello, hello.take())) return 2;
    }

    for (;;) {
        Frame frame;
        if (!recv_frame(fd, frame)) return 2; // coordinator died: exit quietly

        switch (frame.type) {
        case MsgType::assign: {
            Decoder d(frame.payload);
            std::uint64_t index = 0;
            if (!d.u64(index) || !d.finished() || index >= scenarios.size())
                return 3; // protocol violation: let the coordinator respawn us
            const auto i = static_cast<std::size_t>(index);

            const ScenarioResult result =
                run_scenario(scenarios[i], i, campaign_seed);

            delta.counter("shard.worker.scenarios_run").inc();
            if (!result.ok)
                delta.counter("shard.worker.scenarios_failed").inc();
            delta.histogram("shard.worker.scenario_wall_us")
                .record(static_cast<std::uint64_t>(result.wall_ms * 1000.0));
            const std::vector<std::uint8_t> payload = encode_result(result);
            delta.histogram("shard.worker.result_bytes").record(payload.size());
            if (!send_frame(fd, MsgType::result, payload)) return 2;
            // Heartbeat: ship the delta registry, then fold it into the
            // cumulative total and start a fresh delta.
            if (!send_frame(fd, MsgType::status, encode_registry(delta)))
                return 2;
            total.merge(delta);
            delta.clear();
            break;
        }
        case MsgType::shutdown:
            // Final act: ship the cumulative per-worker metrics (any
            // unshipped delta included), then exit cleanly.
            total.merge(delta);
            (void)send_frame(fd, MsgType::metrics, encode_registry(total));
            return 0;
        default:
            return 3; // coordinator never sends anything else
        }
    }
}

} // namespace rtsc::campaign::shard
