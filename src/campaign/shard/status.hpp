#pragma once
// In-flight campaign status: a machine-readable snapshot of a running
// sharded campaign, written atomically to a JSON file the coordinator
// refreshes on a wall-clock period (ShardOptions::status_path /
// status_period) and tools/campaign_top renders live.
//
// Contract: snapshots are *advisory* — they reflect wall-clock progress
// (throughput, ETA, live latency percentiles folded from worker heartbeat
// deltas) and may differ between two runs of the same campaign. The final
// report digest never depends on them; it stays bit-identical to
// CampaignRunner's regardless of status files, heartbeats, worker count,
// crashes or resume (tests/campaign/test_shard_status.cpp pins this).
//
// File format: one strict-JSON object (parses with obs/json.hpp):
//
//   {
//     "done": false,            // true exactly once, in the final snapshot
//     "seed": 2026,
//     "scenarios": 40,          // campaign size
//     "completed": 12,          // terminal scenarios (ok + failed)
//     "failed": 1,
//     "in_flight": 4,           // assigned, no terminal result yet
//     "resumed": 0,             // restored from the checkpoint journal
//     "retries": 1,
//     "crashes": 1,
//     "timeouts": 0,
//     "workers_live": 4,
//     "heartbeats": 11,         // worker status frames folded so far
//     "elapsed_ms": 1234.5,
//     "throughput_per_s": 9.7,  // terminal results this run / elapsed
//     "eta_ms": 2887.1,         // remaining / throughput; -1 when unknown
//     "scenario_wall_us": {"count": C, "p50": …, "p90": …, "p99": …,
//                          "max": …},
//     "metrics": {"name": value, …}   // flattened live-registry snapshot
//   }
//
// Writes go to `path + ".tmp"` followed by an atomic std::rename, so a
// reader never observes a torn file — either the previous snapshot or the
// new one.

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace rtsc::campaign::shard {

struct StatusSnapshot {
    bool done = false;
    std::uint64_t seed = 0;
    std::size_t scenarios = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t in_flight = 0;
    std::size_t resumed = 0;
    std::size_t retries = 0;
    std::size_t crashes = 0;
    std::size_t timeouts = 0;
    std::size_t workers_live = 0;
    std::uint64_t heartbeats = 0;
    double elapsed_ms = 0;
    /// Live registry: coordinator shard.* metrics plus every worker
    /// heartbeat delta folded in with MetricsRegistry::merge.
    const obs::MetricsRegistry* live = nullptr;
};

/// Render the snapshot as one strict-JSON object (trailing newline).
/// Throughput and ETA are derived here: terminal results this run (completed
/// minus resumed) over elapsed wall time; eta_ms is -1 until the first
/// terminal result. Non-finite doubles render as -1 (strict JSON has no
/// Infinity/NaN).
[[nodiscard]] std::string status_to_json(const StatusSnapshot& s);

/// Write `content` to `path` atomically: `path + ".tmp"` then std::rename.
/// Returns false on any I/O failure (the previous snapshot survives).
[[nodiscard]] bool write_status_file(const std::string& path,
                                     const std::string& content);

} // namespace rtsc::campaign::shard
