#include "campaign/shard/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace rtsc::campaign::shard {

// ---------------------------------------------------------------------------
// Codec

void Encoder::f64(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

bool Decoder::u8(std::uint8_t& v) {
    if (!ok_ || end_ - p_ < 1) return ok_ = false;
    v = *p_++;
    return true;
}

bool Decoder::u32(std::uint32_t& v) {
    if (!ok_ || end_ - p_ < 4) return ok_ = false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return true;
}

bool Decoder::u64(std::uint64_t& v) {
    if (!ok_ || end_ - p_ < 8) return ok_ = false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return true;
}

bool Decoder::f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
}

bool Decoder::str(std::string& v) {
    std::uint64_t n;
    if (!u64(n)) return false;
    if (n > static_cast<std::uint64_t>(end_ - p_)) return ok_ = false;
    v.assign(reinterpret_cast<const char*>(p_), static_cast<std::size_t>(n));
    p_ += n;
    return true;
}

std::vector<std::uint8_t> encode_result(const ScenarioResult& r) {
    Encoder e;
    e.str(r.name);
    e.u64(r.index);
    e.u64(r.seed);
    e.u8(r.ok ? 1 : 0);
    e.str(r.error);
    e.f64(r.wall_ms);
    e.u64(r.metrics.size());
    for (const auto& [k, v] : r.metrics) {
        e.str(k);
        e.f64(v);
    }
    e.u64(r.notes.size());
    for (const auto& [k, v] : r.notes) {
        e.str(k);
        e.str(v);
    }
    return e.take();
}

bool decode_result(const std::vector<std::uint8_t>& payload, ScenarioResult& out) {
    Decoder d(payload);
    out = ScenarioResult{};
    std::uint8_t ok = 0;
    std::uint64_t index = 0, seed = 0, n = 0;
    if (!d.str(out.name) || !d.u64(index) || !d.u64(seed) || !d.u8(ok) ||
        !d.str(out.error) || !d.f64(out.wall_ms) || !d.u64(n))
        return false;
    out.index = static_cast<std::size_t>(index);
    out.seed = seed;
    out.ok = ok != 0;
    out.metrics.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string k;
        double v = 0;
        if (!d.str(k) || !d.f64(v)) return false;
        out.metrics.emplace_back(std::move(k), v);
    }
    std::uint64_t m = 0;
    if (!d.u64(m)) return false;
    out.notes.reserve(static_cast<std::size_t>(m));
    for (std::uint64_t i = 0; i < m; ++i) {
        std::string k, v;
        if (!d.str(k) || !d.str(v)) return false;
        out.notes.emplace_back(std::move(k), std::move(v));
    }
    return d.finished();
}

std::vector<std::uint8_t> encode_registry(const obs::MetricsRegistry& reg) {
    Encoder e;
    e.u64(reg.counters().size());
    for (const auto& [name, c] : reg.counters()) {
        e.str(name);
        e.u64(c.value());
    }
    e.u64(reg.gauges().size());
    for (const auto& [name, g] : reg.gauges()) {
        e.str(name);
        e.f64(g.last());
        e.f64(g.min());
        e.f64(g.max());
        e.f64(g.sum());
        e.u64(g.samples());
    }
    e.u64(reg.histograms().size());
    for (const auto& [name, h] : reg.histograms()) {
        e.str(name);
        e.u64(h.count());
        e.u64(h.min());
        e.u64(h.max());
        e.f64(h.sum());
        // Sparse bucket list: (index, count) pairs for nonzero buckets only.
        const auto& buckets = h.bucket_counts();
        std::uint64_t nonzero = 0;
        for (const std::uint32_t c : buckets)
            if (c != 0) ++nonzero;
        e.u64(nonzero);
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            if (buckets[i] == 0) continue;
            e.u32(static_cast<std::uint32_t>(i));
            e.u32(buckets[i]);
        }
    }
    return e.take();
}

bool decode_registry(const std::vector<std::uint8_t>& payload,
                     obs::MetricsRegistry& out) {
    Decoder d(payload);
    out.clear();
    std::uint64_t n = 0;
    if (!d.u64(n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t v = 0;
        if (!d.str(name) || !d.u64(v)) return false;
        out.counter(name).inc(v);
    }
    if (!d.u64(n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        double last = 0, min = 0, max = 0, sum = 0;
        std::uint64_t samples = 0;
        if (!d.str(name) || !d.f64(last) || !d.f64(min) || !d.f64(max) ||
            !d.f64(sum) || !d.u64(samples))
            return false;
        out.gauge(name) = obs::Gauge::from_parts(last, min, max, sum, samples);
    }
    if (!d.u64(n)) return false;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t count = 0, min = 0, max = 0, nonzero = 0;
        double sum = 0;
        if (!d.str(name) || !d.u64(count) || !d.u64(min) || !d.u64(max) ||
            !d.f64(sum) || !d.u64(nonzero))
            return false;
        std::vector<std::uint32_t> buckets;
        if (nonzero != 0) buckets.resize(obs::Histogram::kBuckets, 0);
        for (std::uint64_t b = 0; b < nonzero; ++b) {
            std::uint32_t idx = 0, c = 0;
            if (!d.u32(idx) || !d.u32(c) || idx >= obs::Histogram::kBuckets)
                return false;
            buckets[idx] = c;
        }
        out.histogram(name) =
            obs::Histogram::from_parts(std::move(buckets), count, min, max, sum);
    }
    return d.finished();
}

// ---------------------------------------------------------------------------
// Frame I/O

namespace {

[[nodiscard]] bool valid_type(std::uint8_t t) noexcept {
    return t >= static_cast<std::uint8_t>(MsgType::hello) &&
           t <= static_cast<std::uint8_t>(MsgType::status);
}

[[nodiscard]] bool send_all(int fd, const std::uint8_t* p, std::size_t n) {
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

[[nodiscard]] bool recv_all(int fd, std::uint8_t* p, std::size_t n) {
    while (n > 0) {
        const ssize_t r = ::recv(fd, p, n, 0);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (r == 0) return false; // EOF mid-frame
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace

bool send_frame(int fd, MsgType type, const std::vector<std::uint8_t>& payload) {
    if (payload.size() > kMaxFrameBytes) return false;
    std::uint8_t header[5];
    const auto len = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
    header[4] = static_cast<std::uint8_t>(type);
    if (!send_all(fd, header, sizeof header)) return false;
    return payload.empty() || send_all(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, Frame& out) {
    std::uint8_t header[5];
    if (!recv_all(fd, header, sizeof header)) return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    if (len > kMaxFrameBytes || !valid_type(header[4])) return false;
    out.type = static_cast<MsgType>(header[4]);
    out.payload.resize(len);
    return len == 0 || recv_all(fd, out.payload.data(), len);
}

bool FrameReader::next(Frame& out) {
    if (corrupt_) return false;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 5) return false;
    const std::uint8_t* p = buf_.data() + pos_;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    if (len > kMaxFrameBytes || !valid_type(p[4])) {
        corrupt_ = true;
        return false;
    }
    if (avail < 5u + len) return false;
    out.type = static_cast<MsgType>(p[4]);
    out.payload.assign(p + 5, p + 5 + len);
    pos_ += 5u + len;
    // Compact once the consumed prefix dominates, keeping feed() amortized.
    if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    return true;
}

} // namespace rtsc::campaign::shard
