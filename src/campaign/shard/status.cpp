#include "campaign/shard/status.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace rtsc::campaign::shard {

namespace {

/// Strict-JSON double: %.17g round-trips exactly; non-finite values (which
/// strict JSON cannot carry) degrade to -1.
[[nodiscard]] std::string num(double v) {
    if (!std::isfinite(v)) return "-1";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

[[nodiscard]] std::string num(std::uint64_t v) { return std::to_string(v); }

/// Metric names are ASCII identifiers by construction, but escape anyway so
/// the file stays strict JSON no matter what a scenario called its metric.
[[nodiscard]] std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string status_to_json(const StatusSnapshot& s) {
    const std::size_t done_this_run =
        s.completed >= s.resumed ? s.completed - s.resumed : 0;
    const double throughput =
        s.elapsed_ms > 0.0
            ? static_cast<double>(done_this_run) / (s.elapsed_ms / 1000.0)
            : 0.0;
    const std::size_t remaining =
        s.scenarios >= s.completed ? s.scenarios - s.completed : 0;
    const double eta_ms = throughput > 0.0
                              ? static_cast<double>(remaining) / throughput *
                                    1000.0
                              : -1.0;

    std::string out = "{\n";
    const auto field = [&out](const char* key, const std::string& value,
                              bool last = false) {
        out += "  \"";
        out += key;
        out += "\": ";
        out += value;
        out += last ? "\n" : ",\n";
    };
    field("done", s.done ? "true" : "false");
    field("seed", num(s.seed));
    field("scenarios", num(s.scenarios));
    field("completed", num(s.completed));
    field("failed", num(s.failed));
    field("in_flight", num(s.in_flight));
    field("resumed", num(s.resumed));
    field("retries", num(s.retries));
    field("crashes", num(s.crashes));
    field("timeouts", num(s.timeouts));
    field("workers_live", num(s.workers_live));
    field("heartbeats", num(s.heartbeats));
    field("elapsed_ms", num(s.elapsed_ms));
    field("throughput_per_s", num(throughput));
    field("eta_ms", num(eta_ms));

    const obs::Histogram* wall =
        s.live != nullptr ? s.live->find_histogram("shard.scenario_wall_us")
                          : nullptr;
    std::string h = "{";
    if (wall != nullptr && wall->count() > 0) {
        h += "\"count\": " + num(wall->count());
        h += ", \"p50\": " + num(wall->p50());
        h += ", \"p90\": " + num(wall->p90());
        h += ", \"p99\": " + num(wall->p99());
        h += ", \"max\": " + num(static_cast<double>(wall->max()));
    } else {
        h += "\"count\": 0";
    }
    h += "}";
    field("scenario_wall_us", h);

    std::string m = "{";
    if (s.live != nullptr) {
        bool first = true;
        for (const auto& sample : s.live->snapshot()) {
            if (!first) m += ", ";
            first = false;
            m += quote(sample.name) + ": " + num(sample.value);
        }
    }
    m += "}";
    field("metrics", m, /*last=*/true);
    out += "}\n";
    return out;
}

bool write_status_file(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) return false;
        os << content;
        os.flush();
        if (!os) return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace rtsc::campaign::shard
