#include "campaign/shard/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "campaign/fnv.hpp"
#include "campaign/shard/protocol.hpp"

namespace rtsc::campaign::shard {

namespace {

constexpr char kMagic[] = "rtsc-shard-checkpoint v1";

[[nodiscard]] std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

[[nodiscard]] int hex_nibble(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

[[nodiscard]] bool parse_hex64(const std::string& s, std::uint64_t& out) {
    if (s.size() != 16) return false;
    out = 0;
    for (const char c : s) {
        const int n = hex_nibble(c);
        if (n < 0) return false;
        out = out << 4 | static_cast<std::uint64_t>(n);
    }
    return true;
}

[[nodiscard]] std::string to_hex(const std::vector<std::uint8_t>& bytes) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const std::uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

[[nodiscard]] bool from_hex(const std::string& s, std::vector<std::uint8_t>& out) {
    if (s.size() % 2 != 0) return false;
    out.clear();
    out.reserve(s.size() / 2);
    for (std::size_t i = 0; i < s.size(); i += 2) {
        const int hi = hex_nibble(s[i]);
        const int lo = hex_nibble(s[i + 1]);
        if (hi < 0 || lo < 0) return false;
        out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
    }
    return true;
}

[[nodiscard]] std::uint64_t payload_checksum(const std::vector<std::uint8_t>& p) {
    Fnv1a h;
    h.bytes(p.data(), p.size());
    return h.value();
}

[[nodiscard]] std::string header_line(const CheckpointKey& key) {
    std::ostringstream os;
    os << kMagic << " seed=" << hex64(key.seed)
       << " scenarios=" << key.scenario_count
       << " names=" << hex64(key.names_digest) << "\n";
    return os.str();
}

} // namespace

std::uint64_t scenario_names_digest(const std::vector<ScenarioSpec>& scenarios) {
    Fnv1a h;
    h.u64(scenarios.size());
    for (const ScenarioSpec& s : scenarios) h.str(s.name);
    return h.value();
}

CheckpointLoad load_checkpoint(const std::string& path, const CheckpointKey& key) {
    CheckpointLoad out;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return out; // no journal: fresh start

    std::string line;
    if (!std::getline(in, line)) return out; // empty file: fresh start

    // Header: refuse anything that does not exactly key this campaign.
    {
        std::istringstream hs(line);
        std::string m1, m2, f_seed, f_count, f_names;
        hs >> m1 >> m2 >> f_seed >> f_count >> f_names;
        const std::string magic = m1 + " " + m2;
        std::uint64_t seed = 0, names = 0, count = 0;
        bool parsed = magic == kMagic && f_seed.rfind("seed=", 0) == 0 &&
                      f_count.rfind("scenarios=", 0) == 0 &&
                      f_names.rfind("names=", 0) == 0 &&
                      parse_hex64(f_seed.substr(5), seed) &&
                      parse_hex64(f_names.substr(6), names);
        if (parsed) {
            errno = 0;
            char* end = nullptr;
            const std::string c = f_count.substr(10);
            count = std::strtoull(c.c_str(), &end, 10);
            parsed = errno == 0 && end != nullptr && *end == '\0' && !c.empty();
        }
        if (!parsed) {
            out.found = true;
            out.error = "unrecognized checkpoint header: " + line;
            return out;
        }
        out.found = true;
        if (seed != key.seed || count != key.scenario_count ||
            names != key.names_digest) {
            out.error = "checkpoint belongs to a different campaign "
                        "(seed/scenario-count/names mismatch)";
            return out;
        }
        out.compatible = true;
    }

    // Records: keep every intact line, drop torn/corrupt ones. A record is
    // intact only if the line is newline-terminated (a SIGKILL mid-append
    // leaves an unterminated tail), its checksum matches and the payload
    // decodes to a result that belongs to this campaign.
    std::vector<bool> seen(key.scenario_count, false);
    while (std::getline(in, line)) {
        const bool terminated = !in.eof();
        std::istringstream rs(line);
        std::string tag, f_sum, f_payload;
        rs >> tag >> f_sum >> f_payload;
        std::uint64_t sum = 0;
        std::vector<std::uint8_t> payload;
        ScenarioResult r;
        const bool intact =
            terminated && tag == "R" && parse_hex64(f_sum, sum) &&
            from_hex(f_payload, payload) && payload_checksum(payload) == sum &&
            decode_result(payload, r) && r.index < key.scenario_count &&
            r.seed == derive_seed(key.seed, r.index) && !seen[r.index];
        if (!intact) {
            ++out.dropped;
            continue;
        }
        seen[r.index] = true;
        out.results.push_back(std::move(r));
    }
    return out;
}

CheckpointWriter::~CheckpointWriter() { close(); }

bool CheckpointWriter::open(const std::string& path, const CheckpointKey& key,
                            bool truncate) {
    close();
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) return false;
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        const std::string hdr = header_line(key);
        if (::write(fd_, hdr.data(), hdr.size()) !=
            static_cast<ssize_t>(hdr.size())) {
            close();
            return false;
        }
    }
    return true;
}

bool CheckpointWriter::append(const ScenarioResult& r) {
    if (fd_ < 0) return false;
    const std::vector<std::uint8_t> payload = encode_result(r);
    std::string line = "R " + hex64(payload_checksum(payload)) + " " +
                       to_hex(payload) + "\n";
    // One write() for the whole line: O_APPEND makes it a single atomic
    // append, so a concurrent reader (or a post-kill loader) sees either
    // nothing or the full line — plus the checksum as a second fence.
    const ssize_t w = ::write(fd_, line.data(), line.size());
    return w == static_cast<ssize_t>(line.size());
}

void CheckpointWriter::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace rtsc::campaign::shard
