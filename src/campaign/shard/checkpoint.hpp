#pragma once
// Append-only checkpoint journal for sharded campaigns.
//
// The coordinator appends one record per *terminal* scenario result
// (success or exhausted-retries failure) the moment it is known. A campaign
// killed at any point — including SIGKILL mid-write — resumes by loading
// the journal, keeping every intact record and dropping a torn tail, then
// re-running only what is missing. Because records carry the full encoded
// ScenarioResult (the same codec as the wire protocol), the resumed report
// is byte-identical to an uninterrupted run — equal digests, provably.
//
// On-disk format (one record per line, human-greppable):
//
//   rtsc-shard-checkpoint v1 seed=<16hex> scenarios=<dec> names=<16hex>
//   R <fnv64 of payload, 16hex> <payload hex>
//   ...
//
// The header keys the journal to one exact campaign: master seed, scenario
// count and an FNV digest of the ordered scenario names. resume against a
// different campaign is refused rather than silently mixed. Each record
// line carries its own checksum, so a record torn by a crash (partial
// write, no newline, corrupt hex) is detected and dropped — never half
// loaded.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace rtsc::campaign::shard {

/// Identity of a campaign for checkpoint compatibility.
struct CheckpointKey {
    std::uint64_t seed = 0;
    std::uint64_t scenario_count = 0;
    std::uint64_t names_digest = 0;
};

/// FNV digest over the ordered scenario names — the campaign's shape.
[[nodiscard]] std::uint64_t scenario_names_digest(const std::vector<ScenarioSpec>& scenarios);

struct CheckpointLoad {
    bool found = false;      ///< file existed and began with a valid header
    bool compatible = false; ///< header matches the campaign key
    std::string error;       ///< why it is incompatible / unreadable
    std::vector<ScenarioResult> results; ///< intact records, first-wins by index
    std::size_t dropped = 0; ///< torn or corrupt lines skipped
};

/// Read a journal and validate it against `key`. A missing file is not an
/// error (found == false): the campaign simply starts fresh. Records whose
/// index is out of range or whose seed disagrees with the campaign seed are
/// counted as dropped, never trusted.
[[nodiscard]] CheckpointLoad load_checkpoint(const std::string& path,
                                             const CheckpointKey& key);

/// Appender. Writes go straight to the fd (no userspace buffering), so a
/// record is kill-9-durable the moment append() returns.
class CheckpointWriter {
public:
    CheckpointWriter() = default;
    ~CheckpointWriter();
    CheckpointWriter(const CheckpointWriter&) = delete;
    CheckpointWriter& operator=(const CheckpointWriter&) = delete;

    /// Open `path` for appending. With `truncate` (fresh run) any previous
    /// journal is discarded; otherwise records append after the existing
    /// ones. Writes the header when the file is (now) empty. False on I/O
    /// failure.
    [[nodiscard]] bool open(const std::string& path, const CheckpointKey& key,
                            bool truncate);
    /// Append one terminal result. False on I/O failure (the campaign
    /// continues; only resumability is degraded).
    [[nodiscard]] bool append(const ScenarioResult& r);
    void close();
    [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

private:
    int fd_ = -1;
};

} // namespace rtsc::campaign::shard
