#pragma once
// Shard worker: the child-process half of the sharded campaign service.
//
// The coordinator fork()s one child per worker slot; the child calls
// shard_worker_main() on its end of the socketpair and never returns to the
// caller's code. The worker is deliberately dumb: it receives scenario
// indices, runs them with the exact same run_scenario() the in-process
// runners use (same seeds, same structured failure entries — that is the
// digest-equality contract), ships each result back, and exits on shutdown
// or when the coordinator disappears (EOF on the socket — a dead
// coordinator reaps its whole fleet this way, no process leaks).
//
// Deadlines are enforced entirely coordinator-side: the worker installs no
// signal handlers and no SIGALRM — a hung scenario is SIGKILLed from
// outside, which is the only hang-proof mechanism (a wedged simulation
// loop never returns to any in-process check, and signal-interrupting a
// coroutine kernel mid-switch is undefined behaviour we refuse to play
// with).

#include <cstdint>
#include <vector>

#include "campaign/campaign.hpp"

namespace rtsc::campaign::shard {

/// Serve assignments over `fd` until shutdown/EOF. Returns the process exit
/// code (0 = clean shutdown). Call only in a forked child, and _exit() with
/// the returned value — never run atexit handlers of the parent's state.
[[nodiscard]] int shard_worker_main(int fd,
                                    const std::vector<ScenarioSpec>& scenarios,
                                    std::uint64_t campaign_seed);

} // namespace rtsc::campaign::shard
