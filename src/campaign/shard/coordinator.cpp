#include "campaign/shard/coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/shard/checkpoint.hpp"
#include "campaign/shard/protocol.hpp"
#include "campaign/shard/status.hpp"
#include "campaign/shard/worker.hpp"

namespace rtsc::campaign::shard {

namespace {

using clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

[[nodiscard]] double elapsed_ms(clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

struct Slot {
    pid_t pid = -1;
    int fd = -1;
    FrameReader reader;
    bool busy = false;
    std::size_t scenario = 0;
    clock::time_point deadline{};
    bool deadline_armed = false;
    bool metrics_merged = false;

    [[nodiscard]] bool alive() const noexcept { return pid > 0; }
};

struct Retry {
    std::size_t index = 0;
    clock::time_point ready_at{};
};

/// Stable, locale-free description of how a worker died — part of the
/// deterministic failed-entry error string.
[[nodiscard]] std::string describe_status(int status) {
    if (WIFSIGNALED(status))
        return "worker killed by signal " + std::to_string(WTERMSIG(status));
    if (WIFEXITED(status))
        return "worker exited with status " + std::to_string(WEXITSTATUS(status));
    return "worker vanished";
}

// The whole mutable state of one coordinator run. Everything is
// single-threaded: one poll loop, no locks — concurrency lives in the
// worker *processes*.
struct Run {
    const ShardOptions& opt;
    const std::vector<ScenarioSpec>& scenarios;
    ShardOutcome out;
    CheckpointWriter writer;

    std::vector<Slot> slots;
    std::vector<bool> done;
    std::vector<unsigned> attempts;
    std::vector<std::size_t> fresh; ///< not-yet-attempted indices, in order
    std::size_t fresh_head = 0;
    std::vector<Retry> retries;
    std::size_t remaining = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;

    // Live status: worker heartbeat deltas folded here (exactly once each),
    // plus the coordinator's own counters. Snapshots of this registry feed
    // the advisory status file; it never touches the report digest.
    obs::MetricsRegistry live;
    clock::time_point started{};
    clock::time_point next_status{};

    Run(const ShardOptions& o, const std::vector<ScenarioSpec>& s)
        : opt(o), scenarios(s) {}

    [[nodiscard]] obs::Counter& counter(const char* name) {
        return out.metrics.counter(name);
    }

    // -- lifecycle ---------------------------------------------------------

    void load_resume_state() {
        if (opt.checkpoint_path.empty()) return;
        const CheckpointKey key{opt.seed, scenarios.size(),
                                scenario_names_digest(scenarios)};
        if (opt.resume) {
            CheckpointLoad load = load_checkpoint(opt.checkpoint_path, key);
            if (load.found && !load.compatible)
                throw std::runtime_error("shard: cannot resume: " + load.error);
            for (ScenarioResult& r : load.results) {
                const std::size_t i = r.index;
                done[i] = true;
                if (!r.ok) ++failed;
                out.report.results[i] = std::move(r);
                ++out.resumed;
                ++completed;
                --remaining;
            }
            counter("shard.resumed").inc(out.resumed);
            counter("shard.checkpoint_dropped").inc(load.dropped);
        }
        if (!writer.open(opt.checkpoint_path, key, /*truncate=*/!opt.resume))
            throw std::runtime_error("shard: cannot open checkpoint journal: " +
                                     opt.checkpoint_path);
    }

    [[nodiscard]] bool spawn(Slot& slot) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            return false;
        }
        if (pid == 0) {
            // Child. Drop every coordinator-side fd: the journal (so only
            // the coordinator ever writes it) and the other workers'
            // sockets (so a dead coordinator yields EOF on *every* worker,
            // not a socket kept open by a sibling). Then serve, then _exit
            // — never the parent's atexit handlers.
            ::close(sv[0]);
            for (const Slot& other : slots)
                if (other.fd >= 0) ::close(other.fd);
            writer.close();
            ::_exit(shard_worker_main(sv[1], scenarios, opt.seed));
        }
        ::close(sv[1]);
        ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
        slot = Slot{};
        slot.pid = pid;
        slot.fd = sv[0];
        return true;
    }

    void ensure_workers() {
        const std::size_t live = static_cast<std::size_t>(std::count_if(
            slots.begin(), slots.end(), [](const Slot& s) { return s.alive(); }));
        const std::size_t needed = std::min<std::size_t>(slots.size(), remaining);
        if (live >= needed) return;
        std::size_t now_live = live;
        for (Slot& slot : slots) {
            if (now_live >= needed) break;
            if (slot.alive()) continue;
            if (spawn(slot)) {
                ++now_live;
                counter("shard.spawns").inc();
            } else {
                counter("shard.spawn_failures").inc();
                break; // transient resource pressure: retry next iteration
            }
        }
        if (now_live == 0)
            throw std::runtime_error("shard: cannot spawn any worker process");
    }

    // -- scheduling --------------------------------------------------------

    [[nodiscard]] milliseconds backoff_after(unsigned attempt) const {
        auto ms = opt.backoff_base;
        for (unsigned k = 1; k < attempt && ms < opt.backoff_cap; ++k) ms *= 2;
        return std::min(ms, opt.backoff_cap);
    }

    /// Next assignable scenario: a backoff-expired retry (lowest index)
    /// first, else the next fresh one. SIZE_MAX when nothing is ready.
    [[nodiscard]] std::size_t pick(clock::time_point now) {
        std::size_t best = retries.size();
        for (std::size_t k = 0; k < retries.size(); ++k) {
            if (retries[k].ready_at > now) continue;
            if (best == retries.size() || retries[k].index < retries[best].index)
                best = k;
        }
        if (best != retries.size()) {
            const std::size_t index = retries[best].index;
            retries.erase(retries.begin() + static_cast<std::ptrdiff_t>(best));
            return index;
        }
        if (fresh_head < fresh.size()) return fresh[fresh_head++];
        return static_cast<std::size_t>(-1);
    }

    void assign_ready(clock::time_point now) {
        for (std::size_t w = 0; w < slots.size(); ++w) {
            Slot& slot = slots[w];
            if (!slot.alive() || slot.busy) continue;
            const std::size_t i = pick(now);
            if (i == static_cast<std::size_t>(-1)) return;
            ++attempts[i];
            slot.busy = true;
            slot.scenario = i;
            if (opt.timeout.count() > 0) {
                slot.deadline = now + opt.timeout;
                slot.deadline_armed = true;
            }
            Encoder e;
            e.u64(i);
            counter("shard.assignments").inc();
            if (!send_frame(slot.fd, MsgType::assign, e.take()))
                handle_death(slot, /*killed_for_timeout=*/false);
        }
    }

    [[nodiscard]] int poll_timeout(clock::time_point now) const {
        clock::time_point next = now + milliseconds(500);
        for (const Slot& s : slots)
            if (s.alive() && s.busy && s.deadline_armed && s.deadline < next)
                next = s.deadline;
        for (const Retry& r : retries)
            if (r.ready_at < next) next = r.ready_at;
        if (!opt.status_path.empty() && next_status < next) next = next_status;
        const auto ms = std::chrono::duration_cast<milliseconds>(next - now).count();
        return static_cast<int>(std::clamp<long long>(ms, 0, 500));
    }

    // -- failure handling --------------------------------------------------

    void finish_scenario(ScenarioResult r) {
        const std::size_t i = r.index;
        done[i] = true;
        --remaining;
        ++completed;
        if (!r.ok) {
            ++failed;
            counter("shard.failures").inc();
        }
        const auto wall_us = static_cast<std::uint64_t>(r.wall_ms * 1000.0);
        out.metrics.histogram("shard.scenario_wall_us").record(wall_us);
        live.histogram("shard.scenario_wall_us").record(wall_us);
        out.report.results[i] = std::move(r);
        if (writer.is_open()) {
            if (writer.append(out.report.results[i]))
                counter("shard.checkpoint_records").inc();
            else
                counter("shard.checkpoint_write_failures").inc();
        }
        if (opt.on_progress)
            opt.on_progress(
                Progress{completed, scenarios.size(), out.report.results[i]});
    }

    /// One attempt of scenario `i` died with `desc`. Either schedule a
    /// backoff retry or, budget exhausted, record the deterministic failed
    /// entry.
    void fail_attempt(std::size_t i, const std::string& desc) {
        if (attempts[i] < opt.max_attempts) {
            retries.push_back({i, clock::now() + backoff_after(attempts[i])});
            ++out.retries;
            counter("shard.retries").inc();
            return;
        }
        ScenarioResult r;
        r.name = scenarios[i].name;
        r.index = i;
        r.seed = derive_seed(opt.seed, i);
        r.ok = false;
        r.error = "shard: " + desc + " (attempt " + std::to_string(attempts[i]) +
                  "/" + std::to_string(opt.max_attempts) + ")";
        finish_scenario(std::move(r));
    }

    /// A worker is gone (EOF, protocol corruption, failed send) or overdue
    /// (timeout SIGKILL). Reap it, charge its in-flight scenario, free the
    /// slot. Respawning happens in ensure_workers().
    void handle_death(Slot& slot, bool killed_for_timeout) {
        if (killed_for_timeout) ::kill(slot.pid, SIGKILL);
        int status = 0;
        while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {}
        ::close(slot.fd);

        const bool was_busy = slot.busy;
        const std::size_t i = slot.scenario;
        std::string desc;
        if (killed_for_timeout) {
            desc = "scenario timed out after " +
                   std::to_string(opt.timeout.count()) + "ms";
            ++out.timeouts;
            counter("shard.timeouts").inc();
        } else {
            desc = describe_status(status);
            ++out.crashes;
            counter("shard.worker_crashes").inc();
        }
        slot = Slot{}; // dead, idle, respawnable
        if (was_busy && !done[i]) fail_attempt(i, desc);
    }

    // -- socket plumbing ---------------------------------------------------

    /// Drain one readable socket; returns frames via handle_frame. Death
    /// (EOF / corruption) is handled after buffered frames — a worker that
    /// sent its result and then crashed still gets the result counted.
    void service_socket(Slot& slot, bool drain_phase) {
        bool eof = false, error = false;
        for (;;) {
            std::uint8_t buf[65536];
            const ssize_t n = ::recv(slot.fd, buf, sizeof buf, 0);
            if (n > 0) {
                slot.reader.feed(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                eof = true;
                break;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            error = true;
            break;
        }
        Frame frame;
        while (slot.alive() && slot.reader.next(frame))
            handle_frame(slot, frame, drain_phase);
        if (!slot.alive()) return; // a protocol breach already buried it
        if (slot.reader.corrupt()) {
            ::kill(slot.pid, SIGKILL);
            handle_death(slot, /*killed_for_timeout=*/false);
        } else if (eof || error) {
            if (drain_phase) {
                // Clean exit after shutdown: reap quietly.
                int status = 0;
                while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {}
                ::close(slot.fd);
                slot = Slot{};
            } else {
                handle_death(slot, /*killed_for_timeout=*/false);
            }
        }
    }

    void handle_frame(Slot& slot, const Frame& frame, bool drain_phase) {
        switch (frame.type) {
        case MsgType::hello: {
            Decoder d(frame.payload);
            std::uint32_t version = 0;
            std::uint64_t pid = 0;
            if (!d.u32(version) || !d.u64(pid) || !d.finished() ||
                version != kProtocolVersion) {
                ::kill(slot.pid, SIGKILL);
                handle_death(slot, /*killed_for_timeout=*/false);
            }
            return;
        }
        case MsgType::result: {
            ScenarioResult r;
            if (!decode_result(frame.payload, r) || !slot.busy ||
                r.index != slot.scenario ||
                r.seed != derive_seed(opt.seed, r.index)) {
                ::kill(slot.pid, SIGKILL);
                handle_death(slot, /*killed_for_timeout=*/false);
                return;
            }
            slot.busy = false;
            slot.deadline_armed = false;
            if (!done[r.index]) finish_scenario(std::move(r));
            return;
        }
        case MsgType::status: {
            // Heartbeat: the delta since the worker's previous status frame.
            // Merge exactly once into the live registry; a frame that fails
            // to decode is dropped (status is advisory, not worth a kill).
            obs::MetricsRegistry reg;
            if (decode_registry(frame.payload, reg)) {
                live.merge(reg);
                ++out.heartbeats;
            }
            return;
        }
        case MsgType::metrics: {
            obs::MetricsRegistry reg;
            if (drain_phase && !slot.metrics_merged &&
                decode_registry(frame.payload, reg)) {
                out.metrics.merge(reg);
                slot.metrics_merged = true;
            }
            return;
        }
        default:
            ::kill(slot.pid, SIGKILL);
            handle_death(slot, /*killed_for_timeout=*/false);
            return;
        }
    }

    void poll_and_service(int timeout_ms, bool drain_phase) {
        std::vector<pollfd> fds;
        std::vector<std::size_t> who;
        for (std::size_t w = 0; w < slots.size(); ++w) {
            if (!slots[w].alive()) continue;
            fds.push_back({slots[w].fd, POLLIN, 0});
            who.push_back(w);
        }
        if (fds.empty()) return;
        const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
        if (n <= 0) return; // timeout or EINTR: deadlines handled by caller
        for (std::size_t k = 0; k < fds.size(); ++k)
            if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
                service_socket(slots[who[k]], drain_phase);
    }

    void check_deadlines(clock::time_point now) {
        for (Slot& slot : slots)
            if (slot.alive() && slot.busy && slot.deadline_armed &&
                now >= slot.deadline)
                handle_death(slot, /*killed_for_timeout=*/true);
    }

    // -- status ------------------------------------------------------------

    void write_status(bool final_snapshot) {
        if (opt.status_path.empty()) return;
        StatusSnapshot s;
        s.done = final_snapshot;
        s.seed = opt.seed;
        s.scenarios = scenarios.size();
        s.completed = completed;
        s.failed = failed;
        s.in_flight = static_cast<std::size_t>(std::count_if(
            slots.begin(), slots.end(),
            [](const Slot& sl) { return sl.alive() && sl.busy; }));
        s.resumed = out.resumed;
        s.retries = out.retries;
        s.crashes = out.crashes;
        s.timeouts = out.timeouts;
        s.workers_live = static_cast<std::size_t>(std::count_if(
            slots.begin(), slots.end(),
            [](const Slot& sl) { return sl.alive(); }));
        s.heartbeats = out.heartbeats;
        s.elapsed_ms = elapsed_ms(started);
        s.live = &live;
        if (!write_status_file(opt.status_path, status_to_json(s)))
            counter("shard.status_write_failures").inc();
    }

    void maybe_write_status(clock::time_point now) {
        if (opt.status_path.empty() || now < next_status) return;
        next_status = now + opt.status_period;
        write_status(/*final_snapshot=*/false);
    }

    // -- phases ------------------------------------------------------------

    void execute() {
        while (remaining > 0) {
            ensure_workers();
            clock::time_point now = clock::now();
            maybe_write_status(now);
            assign_ready(now);
            if (remaining == 0) break; // assign's send failure may finish it
            poll_and_service(poll_timeout(now), /*drain_phase=*/false);
            check_deadlines(clock::now());
        }
    }

    void drain() {
        for (Slot& slot : slots)
            if (slot.alive()) (void)send_frame(slot.fd, MsgType::shutdown, {});
        const clock::time_point grace_end = clock::now() + milliseconds(3000);
        while (clock::now() < grace_end &&
               std::any_of(slots.begin(), slots.end(),
                           [](const Slot& s) { return s.alive(); })) {
            poll_and_service(100, /*drain_phase=*/true);
        }
        for (Slot& slot : slots) {
            if (!slot.alive()) continue;
            ::kill(slot.pid, SIGKILL);
            int status = 0;
            while (::waitpid(slot.pid, &status, 0) < 0 && errno == EINTR) {}
            ::close(slot.fd);
            slot = Slot{};
        }
    }
};

} // namespace

ShardOutcome ShardCoordinator::run(const std::vector<ScenarioSpec>& scenarios) const {
    const clock::time_point t0 = clock::now();

    ShardOptions opt = opt_;
    if (opt.max_attempts == 0) opt.max_attempts = 1;
    if (opt.backoff_base.count() < 0) opt.backoff_base = milliseconds(0);
    if (opt.backoff_cap < opt.backoff_base) opt.backoff_cap = opt.backoff_base;

    Run run(opt, scenarios);
    run.out.report.seed = opt.seed;
    run.done.assign(scenarios.size(), false);
    run.attempts.assign(scenarios.size(), 0);
    run.out.report.results.resize(scenarios.size());
    run.remaining = scenarios.size();

    unsigned workers = std::max(1u, opt.workers);
    if (workers > scenarios.size() && !scenarios.empty())
        workers = static_cast<unsigned>(scenarios.size());
    run.out.report.workers = workers;
    run.slots.resize(workers);

    run.load_resume_state();
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (!run.done[i]) run.fresh.push_back(i);

    // First status snapshot before any worker is spawned, so a watcher sees
    // the campaign the moment it starts; then one per status_period from
    // the poll loop; then the final "done" snapshot below.
    run.started = t0;
    run.next_status = t0 + run.opt.status_period;
    run.write_status(/*final_snapshot=*/false);

    if (run.remaining > 0) {
        run.execute();
        run.drain();
    }
    run.writer.close();

    run.out.report.wall_ms = elapsed_ms(t0);
    run.write_status(/*final_snapshot=*/true);
    return std::move(run.out);
}

} // namespace rtsc::campaign::shard
