#pragma once
// Campaign runner: fan N independent, parameterized simulation scenarios over
// a pool of worker threads.
//
// The paper's procedural RTOS engine (§4.2) exists to make *many* simulation
// runs affordable — design-space exploration sweeps overheads x policies x
// speeds, schedulability studies run hundreds of random task sets, fault
// campaigns replay seeded fault plans. Every scenario builds its own
// kernel::Simulator, and the kernel binds the active simulator per thread
// (Simulator::current() is thread_local), so independent scenarios can run
// truly concurrently — one simulator per worker thread, zero shared state.
//
// Contract (see docs/CAMPAIGN.md):
//   - determinism: each scenario receives a seed derived only from the
//     campaign seed and its submission index. The aggregate CampaignReport
//     is ordered by submission index and its digest() covers only
//     deterministic fields, so the report is bit-identical for any worker
//     count — parallelism can never change the science, only the wall time;
//   - failure isolation: a scenario that throws is recorded as failed
//     (ok == false, error == what()) and the rest of the campaign proceeds;
//   - thread safety: scenario bodies must not touch shared mutable state.
//     Build the Simulator and the whole model inside the body, on the
//     worker's stack; return data via ScenarioContext metrics/notes.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace rtsc::campaign {

/// SplitMix64 step — the per-scenario seed stream. Deterministic, cheap, and
/// well-distributed even for consecutive indices.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// The seed scenario `index` receives under campaign seed `campaign_seed`.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                                  std::uint64_t index) noexcept {
    return splitmix64(campaign_seed ^ splitmix64(index));
}

/// Handed to the scenario body: its identity, its deterministic seed, and
/// the sink for result data. One context per scenario, used by one worker
/// thread only — no locking needed inside the body.
class ScenarioContext {
public:
    ScenarioContext(std::size_t index, std::uint64_t seed)
        : index_(index), seed_(seed) {}

    ScenarioContext(const ScenarioContext&) = delete;
    ScenarioContext& operator=(const ScenarioContext&) = delete;

    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    /// Deterministic per-scenario seed — use it for every random choice in
    /// the scenario (task-set generation, fault plans) so the campaign
    /// replays exactly.
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Record a named numeric result (latency, miss count, ...). Order is
    /// preserved and part of the deterministic digest.
    void metric(std::string name, double value) {
        metrics_.emplace_back(std::move(name), value);
    }
    /// Record a named string result (a verdict, a constraint report, ...).
    void note(std::string name, std::string value) {
        notes_.emplace_back(std::move(name), std::move(value));
    }

private:
    friend class CampaignRunner;
    std::size_t index_;
    std::uint64_t seed_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> notes_;
};

/// One parameterized scenario: a name for the report and a body that builds
/// and runs its own Simulator.
struct ScenarioSpec {
    std::string name;
    std::function<void(ScenarioContext&)> body;
};

/// Outcome of one scenario.
struct ScenarioResult {
    std::string name;
    std::size_t index = 0;
    std::uint64_t seed = 0;
    bool ok = false;
    std::string error;  ///< exception message when !ok
    double wall_ms = 0; ///< host wall time (measurement only, not digested)
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::string>> notes;
};

/// Cross-scenario aggregate of one named metric (see
/// CampaignReport::aggregate_metrics). Percentiles are exact nearest-rank
/// values over the sorted per-scenario samples.
struct MetricSummary {
    std::string name;
    std::size_t count = 0; ///< how many scenario results reported the metric
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
};

/// Aggregate of a whole campaign, ordered by submission index.
struct CampaignReport {
    std::uint64_t seed = 0;
    unsigned workers = 0;
    double wall_ms = 0; ///< whole campaign host wall time
    std::vector<ScenarioResult> results;

    [[nodiscard]] std::size_t failures() const noexcept;
    [[nodiscard]] const ScenarioResult* find(const std::string& name) const;

    /// FNV-1a 64-bit digest over the deterministic content: names, indices,
    /// seeds, ok/error, metrics and notes — NOT wall times or worker count.
    /// Equal digests across worker counts certify the aggregate is
    /// bit-identical to the serial order.
    [[nodiscard]] std::uint64_t digest() const;

    /// Summarise every named metric across all scenario results (failed
    /// scenarios contribute whatever they managed to record). Returned
    /// sorted by name; deterministic — a pure function of the digested
    /// metric values, so it is identical for any worker count.
    [[nodiscard]] std::vector<MetricSummary> aggregate_metrics() const;

    /// Human-readable summary (one line per scenario + failure tally).
    [[nodiscard]] std::string to_string() const;
    /// "scenario,index,seed,ok,metric,value" rows for spreadsheet analysis.
    [[nodiscard]] std::string to_csv() const;
};

/// Progress callback payload: fired once per completed scenario, under the
/// runner's lock (callbacks never race each other).
struct Progress {
    std::size_t completed = 0; ///< scenarios finished so far
    std::size_t total = 0;
    const ScenarioResult& last; ///< the scenario that just finished
};

class CampaignRunner {
public:
    struct Options {
        /// Worker threads; 0 = std::thread::hardware_concurrency(). Clamped
        /// to the scenario count. 1 reproduces strictly serial execution.
        unsigned workers = 0;
        /// Campaign master seed: the only source of scenario randomness.
        std::uint64_t seed = 0;
        /// Optional per-completion callback (see Progress).
        std::function<void(const Progress&)> on_progress;
    };

    CampaignRunner() = default;
    explicit CampaignRunner(Options opt) : opt_(std::move(opt)) {}

    /// Run all scenarios and aggregate their results. Blocks until the last
    /// scenario finished; scenario failures are contained in the report, a
    /// worker is never torn down by a throwing scenario.
    [[nodiscard]] CampaignReport run(const std::vector<ScenarioSpec>& scenarios) const;

private:
    Options opt_;
};

} // namespace rtsc::campaign
