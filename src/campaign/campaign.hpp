#pragma once
// Campaign runner: fan N independent, parameterized simulation scenarios over
// a pool of worker threads.
//
// The paper's procedural RTOS engine (§4.2) exists to make *many* simulation
// runs affordable — design-space exploration sweeps overheads x policies x
// speeds, schedulability studies run hundreds of random task sets, fault
// campaigns replay seeded fault plans. Every scenario builds its own
// kernel::Simulator, and the kernel binds the active simulator per thread
// (Simulator::current() is thread_local), so independent scenarios can run
// truly concurrently — one simulator per worker thread, zero shared state.
//
// Contract (see docs/CAMPAIGN.md):
//   - determinism: each scenario receives a seed derived only from the
//     campaign seed and its submission index. The aggregate CampaignReport
//     is ordered by submission index and its digest() covers only
//     deterministic fields, so the report is bit-identical for any worker
//     count — parallelism can never change the science, only the wall time;
//   - failure isolation: a scenario that throws is recorded as failed
//     (ok == false, error == failure_description(e)) and the rest of the
//     campaign proceeds;
//   - thread safety: scenario bodies must not touch shared mutable state.
//     Build the Simulator and the whole model inside the body, on the
//     worker's stack; return data via ScenarioContext metrics/notes.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rtsc::campaign {

/// SplitMix64 step — the per-scenario seed stream. Deterministic, cheap, and
/// well-distributed even for consecutive indices.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// The seed scenario `index` receives under campaign seed `campaign_seed`.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t campaign_seed,
                                                  std::uint64_t index) noexcept {
    return splitmix64(campaign_seed ^ splitmix64(index));
}

struct ScenarioSpec;
struct ScenarioResult;

/// Handed to the scenario body: its identity, its deterministic seed, and
/// the sink for result data. One context per scenario, used by one worker
/// thread only — no locking needed inside the body.
class ScenarioContext {
public:
    ScenarioContext(std::size_t index, std::uint64_t seed)
        : index_(index), seed_(seed) {}

    ScenarioContext(const ScenarioContext&) = delete;
    ScenarioContext& operator=(const ScenarioContext&) = delete;

    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    /// Deterministic per-scenario seed — use it for every random choice in
    /// the scenario (task-set generation, fault plans) so the campaign
    /// replays exactly.
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Record a named numeric result (latency, miss count, ...). Order is
    /// preserved and part of the deterministic digest.
    void metric(std::string name, double value) {
        metrics_.emplace_back(std::move(name), value);
    }
    /// Record a named string result (a verdict, a constraint report, ...).
    void note(std::string name, std::string value) {
        notes_.emplace_back(std::move(name), std::move(value));
    }

private:
    friend class CampaignRunner;
    friend ScenarioResult run_scenario(const ScenarioSpec&, std::size_t,
                                       std::uint64_t);
    std::size_t index_;
    std::uint64_t seed_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, std::string>> notes_;
};

/// One parameterized scenario: a name for the report and a body that builds
/// and runs its own Simulator.
struct ScenarioSpec {
    std::string name;
    std::function<void(ScenarioContext&)> body;
};

/// Structured description of the in-flight exception: demangled dynamic type
/// plus what() ("std::runtime_error: boom"), or "unknown exception type" for
/// non-std::exception throws. Every runner — serial, threaded, sharded —
/// records scenario failures through this one function so their reports (and
/// digests) agree on failure entries.
[[nodiscard]] std::string failure_description(const std::exception& e);

/// Outcome of one scenario.
struct ScenarioResult {
    std::string name;
    std::size_t index = 0;
    std::uint64_t seed = 0;
    bool ok = false;
    std::string error;  ///< exception message when !ok
    double wall_ms = 0; ///< host wall time (measurement only, not digested)
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, std::string>> notes;
};

/// Cross-scenario aggregate of one named metric (see
/// CampaignReport::aggregate_metrics). Percentiles are exact nearest-rank
/// values over the sorted per-scenario samples.
struct MetricSummary {
    std::string name;
    std::size_t count = 0; ///< how many scenario results reported the metric
    double min = 0;
    double max = 0;
    double mean = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
};

/// Aggregate of a whole campaign, ordered by submission index.
struct CampaignReport {
    std::uint64_t seed = 0;
    unsigned workers = 0;
    double wall_ms = 0; ///< whole campaign host wall time
    std::vector<ScenarioResult> results;

    [[nodiscard]] std::size_t failures() const noexcept;
    [[nodiscard]] const ScenarioResult* find(const std::string& name) const;

    /// FNV-1a 64-bit digest over the deterministic content: names, indices,
    /// seeds, ok/error, metrics and notes — NOT wall times or worker count.
    /// Equal digests across worker counts certify the aggregate is
    /// bit-identical to the serial order.
    [[nodiscard]] std::uint64_t digest() const;

    /// Summarise every named metric across all scenario results (failed
    /// scenarios contribute whatever they managed to record). Returned
    /// sorted by name; deterministic — a pure function of the digested
    /// metric values, so it is identical for any worker count.
    [[nodiscard]] std::vector<MetricSummary> aggregate_metrics() const;

    /// Human-readable summary (one line per scenario + failure tally).
    [[nodiscard]] std::string to_string() const;
    /// "scenario,index,seed,ok,metric,value" rows for spreadsheet analysis.
    [[nodiscard]] std::string to_csv() const;
};

/// Run one scenario to completion on the calling thread, exactly as every
/// runner does it: derive the seed, time the body, isolate exceptions into a
/// structured failed entry (failure_description). The single definition of
/// "execute a scenario" — the thread-pool runner and the sharded worker both
/// call this, which is what makes their reports digest-identical.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec,
                                          std::size_t index,
                                          std::uint64_t campaign_seed);

/// Progress callback payload: fired once per completed scenario, under the
/// runner's lock (callbacks never race each other).
struct Progress {
    std::size_t completed = 0; ///< scenarios finished so far
    std::size_t total = 0;
    const ScenarioResult& last; ///< the scenario that just finished
};

/// Handle to a campaign started asynchronously (CampaignRunner::start).
/// Every wait has a timeout overload — nothing in the campaign layer blocks
/// without a deadline escape hatch, and no signal (SIGALRM or otherwise) is
/// ever involved: waits are condition-variable based, hang detection is the
/// sharded coordinator's job (host-side wall-clock timeouts + SIGKILL).
class CampaignHandle {
public:
    CampaignHandle() = default;
    CampaignHandle(CampaignHandle&&) noexcept = default;
    CampaignHandle& operator=(CampaignHandle&&) noexcept = default;
    CampaignHandle(const CampaignHandle&) = delete;
    CampaignHandle& operator=(const CampaignHandle&) = delete;
    ~CampaignHandle(); ///< joins (waits for completion) if still running

    /// True once every scenario has finished (report ready to take()).
    [[nodiscard]] bool done() const;
    /// Scenarios finished so far (monotonic, completion order).
    [[nodiscard]] std::size_t completed() const;
    /// Block until the campaign finished.
    void wait() const;
    /// Block until the campaign finished or `timeout` elapsed; true = done.
    /// The campaign keeps running when this times out — call again or take().
    [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;
    /// Wait for completion, join the workers and return the report.
    /// Call at most once; the handle is empty afterwards.
    [[nodiscard]] CampaignReport take();

private:
    friend class CampaignRunner;
    struct State;
    explicit CampaignHandle(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
};

class CampaignRunner {
public:
    struct Options {
        /// Worker threads; 0 = std::thread::hardware_concurrency(). Clamped
        /// to the scenario count. 1 reproduces strictly serial execution.
        unsigned workers = 0;
        /// Campaign master seed: the only source of scenario randomness.
        std::uint64_t seed = 0;
        /// Optional per-completion callback (see Progress).
        std::function<void(const Progress&)> on_progress;
    };

    CampaignRunner() = default;
    explicit CampaignRunner(Options opt) : opt_(std::move(opt)) {}

    /// Run all scenarios and aggregate their results. Blocks until the last
    /// scenario finished; scenario failures are contained in the report, a
    /// worker is never torn down by a throwing scenario.
    [[nodiscard]] CampaignReport run(const std::vector<ScenarioSpec>& scenarios) const;

    /// Start the campaign asynchronously and return immediately. The handle
    /// owns a copy of the scenario list; poll or wait on it (with or without
    /// a timeout) and take() the report. run() is start() + take().
    [[nodiscard]] CampaignHandle start(std::vector<ScenarioSpec> scenarios) const;

private:
    Options opt_;
};

} // namespace rtsc::campaign
