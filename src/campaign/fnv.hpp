#pragma once
// FNV-1a 64-bit, fed field-by-field with length prefixes so a digest is a
// function of the field *sequence*, not of an ambiguous concatenation.
// Shared by the campaign report digest, the shard checkpoint journal and the
// wire protocol's frame checksums — all three must agree bit-for-bit for
// checkpoint/resume to reproduce the in-process digest.

#include <cstdint>
#include <cstring>
#include <string>

namespace rtsc::campaign {

class Fnv1a {
public:
    void bytes(const void* data, std::size_t n) noexcept {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }
    void u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
    void f64(double v) noexcept {
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(const std::string& s) noexcept {
        u64(s.size());
        bytes(s.data(), s.size());
    }
    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace rtsc::campaign
