#include "campaign/bench_json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace rtsc::campaign {

namespace {

[[nodiscard]] std::string format_entry(const BenchEntry& e) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"scenarios\": %zu, "
                  "\"hardware_cores\": %u, \"workers\": %u, "
                  "\"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                  "\"speedup\": %.2f, \"digest\": \"%016llx\", "
                  "\"digests_match\": %s}",
                  e.name.c_str(), e.scenarios, e.hardware_cores, e.workers,
                  e.serial_ms, e.parallel_ms, e.speedup,
                  static_cast<unsigned long long>(e.digest),
                  e.digests_match ? "true" : "false");
    return buf;
}

/// The merge key of an entry line, or "" for non-entry lines.
[[nodiscard]] std::string entry_name(const std::string& line) {
    const std::string tag = "{\"name\": \"";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return {};
    const std::size_t start = at + tag.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) return {};
    return line.substr(start, end - start);
}

} // namespace

void write_bench_entry(const std::string& path, const BenchEntry& entry) {
    std::vector<std::string> entries;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            if (!entry_name(line).empty()) entries.push_back(line);
    }

    bool replaced = false;
    for (std::string& line : entries) {
        if (entry_name(line) == entry.name) {
            line = format_entry(entry);
            replaced = true;
        }
    }
    if (!replaced) entries.push_back(format_entry(entry));

    std::ofstream out(path, std::ios::trunc);
    out << "{\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        // normalize trailing commas: every entry but the last gets one
        std::string line = entries[i];
        while (!line.empty() && (line.back() == ',' || line.back() == ' '))
            line.pop_back();
        out << line << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace rtsc::campaign
