#include "campaign/bench_json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace rtsc::campaign {

namespace {

/// Minimal JSON string escape — bench/metric names are code-chosen, but a
/// stray quote must not corrupt the line-based merge format.
[[nodiscard]] std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' '; // control chars would break the one-line format
            continue;
        }
        out.push_back(c);
    }
    return out;
}

[[nodiscard]] std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

[[nodiscard]] std::string format_entry(const BenchEntry& e) {
    std::ostringstream os;
    char buf[512];
    // "name" must stay the first field: entry_name() below keys the merge on
    // the first {"name": " occurrence of the line.
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"scenarios\": %zu, "
                  "\"hardware_cores\": %u, \"workers\": %u, "
                  "\"serial_ms\": %.2f, \"parallel_ms\": %.2f, "
                  "\"speedup\": %.2f, \"digest\": \"%016llx\", "
                  "\"digests_match\": %s",
                  escape(e.name).c_str(), e.scenarios, e.hardware_cores,
                  e.workers, e.serial_ms, e.parallel_ms, e.speedup,
                  static_cast<unsigned long long>(e.digest),
                  e.digests_match ? "true" : "false");
    os << buf;
    if (!e.metrics.empty()) {
        os << ", \"metrics\": [";
        for (std::size_t i = 0; i < e.metrics.size(); ++i) {
            const MetricSummary& m = e.metrics[i];
            os << (i != 0 ? ", " : "") << "{\"name\": \"" << escape(m.name)
               << "\", \"count\": " << m.count << ", \"min\": " << num(m.min)
               << ", \"max\": " << num(m.max) << ", \"mean\": " << num(m.mean)
               << ", \"p50\": " << num(m.p50) << ", \"p90\": " << num(m.p90)
               << ", \"p99\": " << num(m.p99) << "}";
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

/// The merge key of an entry line, or "" for non-entry lines.
[[nodiscard]] std::string entry_name(const std::string& line) {
    const std::string tag = "{\"name\": \"";
    const std::size_t at = line.find(tag);
    if (at == std::string::npos) return {};
    const std::size_t start = at + tag.size();
    const std::size_t end = line.find('"', start);
    if (end == std::string::npos) return {};
    return line.substr(start, end - start);
}

} // namespace

void write_bench_entry(const std::string& path, const BenchEntry& entry) {
    std::vector<std::string> entries;
    {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line))
            if (!entry_name(line).empty()) entries.push_back(line);
    }

    bool replaced = false;
    for (std::string& line : entries) {
        if (entry_name(line) == entry.name) {
            line = format_entry(entry);
            replaced = true;
        }
    }
    if (!replaced) entries.push_back(format_entry(entry));

    std::ofstream out(path, std::ios::trunc);
    out << "{\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        // normalize trailing commas: every entry but the last gets one
        std::string line = entries[i];
        while (!line.empty() && (line.back() == ',' || line.back() == ' '))
            line.pop_back();
        out << line << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace rtsc::campaign
