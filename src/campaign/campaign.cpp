#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace rtsc::campaign {

namespace {

using clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_ms(clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

// FNV-1a 64-bit, fed field-by-field with length prefixes so the digest is a
// function of the field *sequence*, not of an ambiguous concatenation.
class Fnv1a {
public:
    void bytes(const void* data, std::size_t n) noexcept {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001b3ull;
        }
    }
    void u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
    void f64(double v) noexcept {
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::uint64_t bits;
        __builtin_memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(const std::string& s) noexcept {
        u64(s.size());
        bytes(s.data(), s.size());
    }
    [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

} // namespace

std::size_t CampaignReport::failures() const noexcept {
    std::size_t n = 0;
    for (const ScenarioResult& r : results)
        if (!r.ok) ++n;
    return n;
}

const ScenarioResult* CampaignReport::find(const std::string& name) const {
    for (const ScenarioResult& r : results)
        if (r.name == name) return &r;
    return nullptr;
}

std::uint64_t CampaignReport::digest() const {
    Fnv1a h;
    h.u64(seed);
    h.u64(results.size());
    for (const ScenarioResult& r : results) {
        h.str(r.name);
        h.u64(r.index);
        h.u64(r.seed);
        h.u64(r.ok ? 1 : 0);
        h.str(r.error);
        h.u64(r.metrics.size());
        for (const auto& [k, v] : r.metrics) {
            h.str(k);
            h.f64(v);
        }
        h.u64(r.notes.size());
        for (const auto& [k, v] : r.notes) {
            h.str(k);
            h.str(v);
        }
    }
    return h.value();
}

std::vector<MetricSummary> CampaignReport::aggregate_metrics() const {
    // std::map gives the sorted-by-name output order for free.
    std::map<std::string, std::vector<double>> samples;
    for (const ScenarioResult& r : results)
        for (const auto& [k, v] : r.metrics) samples[k].push_back(v);

    std::vector<MetricSummary> out;
    out.reserve(samples.size());
    for (auto& [name, vals] : samples) {
        std::sort(vals.begin(), vals.end());
        MetricSummary s;
        s.name = name;
        s.count = vals.size();
        s.min = vals.front();
        s.max = vals.back();
        double sum = 0;
        for (const double v : vals) sum += v;
        s.mean = sum / static_cast<double>(vals.size());
        // Exact nearest-rank percentile: the smallest sample with at least
        // q*count samples <= it. Integer rank arithmetic, no float ceil.
        auto pct = [&vals](unsigned q) {
            const std::size_t n = vals.size();
            std::size_t rank = (n * q + 99) / 100; // ceil(n*q/100)
            if (rank == 0) rank = 1;
            return vals[rank - 1];
        };
        s.p50 = pct(50);
        s.p90 = pct(90);
        s.p99 = pct(99);
        out.push_back(std::move(s));
    }
    return out;
}

std::string CampaignReport::to_string() const {
    std::ostringstream os;
    os << "campaign seed=" << seed << " scenarios=" << results.size()
       << " workers=" << workers << " wall=" << wall_ms << "ms\n";
    for (const ScenarioResult& r : results) {
        os << "  [" << r.index << "] " << r.name << ": "
           << (r.ok ? "ok" : "FAILED") << " (" << r.wall_ms << "ms)";
        if (!r.ok) os << " — " << r.error;
        for (const auto& [k, v] : r.metrics) os << " " << k << "=" << v;
        os << "\n";
    }
    if (const std::size_t f = failures(); f != 0)
        os << "  " << f << " scenario(s) FAILED\n";
    return os.str();
}

std::string CampaignReport::to_csv() const {
    std::ostringstream os;
    os << "scenario,index,seed,ok,metric,value\n";
    for (const ScenarioResult& r : results) {
        if (r.metrics.empty()) {
            os << r.name << "," << r.index << "," << r.seed << ","
               << (r.ok ? 1 : 0) << ",,\n";
            continue;
        }
        for (const auto& [k, v] : r.metrics)
            os << r.name << "," << r.index << "," << r.seed << ","
               << (r.ok ? 1 : 0) << "," << k << "," << v << "\n";
    }
    return os.str();
}

CampaignReport CampaignRunner::run(const std::vector<ScenarioSpec>& scenarios) const {
    const clock::time_point campaign_t0 = clock::now();

    CampaignReport report;
    report.seed = opt_.seed;
    report.results.resize(scenarios.size());

    unsigned workers = opt_.workers;
    if (workers == 0) workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    if (workers > scenarios.size() && !scenarios.empty())
        workers = static_cast<unsigned>(scenarios.size());
    report.workers = workers;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex progress_mu;

    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= scenarios.size()) return;

            const ScenarioSpec& spec = scenarios[i];
            ScenarioResult& out = report.results[i];
            out.name = spec.name;
            out.index = i;
            out.seed = derive_seed(opt_.seed, i);

            ScenarioContext ctx(i, out.seed);
            const clock::time_point t0 = clock::now();
            try {
                spec.body(ctx);
                out.ok = true;
            } catch (const std::exception& e) {
                out.ok = false;
                out.error = e.what();
            } catch (...) {
                out.ok = false;
                out.error = "unknown exception type";
            }
            out.wall_ms = elapsed_ms(t0);
            out.metrics = std::move(ctx.metrics_);
            out.notes = std::move(ctx.notes_);

            const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
            if (opt_.on_progress) {
                std::lock_guard<std::mutex> lk(progress_mu);
                opt_.on_progress(Progress{done, scenarios.size(), out});
            }
        }
    };

    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
        for (std::thread& t : pool) t.join();
    }

    report.wall_ms = elapsed_ms(campaign_t0);
    return report;
}

} // namespace rtsc::campaign
