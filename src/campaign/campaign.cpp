#include "campaign/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <typeinfo>

#include <cxxabi.h>

#include "campaign/fnv.hpp"

namespace rtsc::campaign {

namespace {

using clock = std::chrono::steady_clock;

[[nodiscard]] double elapsed_ms(clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(clock::now() - t0).count();
}

} // namespace

std::string failure_description(const std::exception& e) {
    // Demangle the *dynamic* type so "throw std::runtime_error" reports as
    // std::runtime_error even when caught as std::exception&. Both GCC and
    // Clang use the Itanium ABI, so the spelling is platform-stable — safe
    // to include in the deterministic report digest.
    const char* raw = typeid(e).name();
    int status = 0;
    char* demangled = abi::__cxa_demangle(raw, nullptr, nullptr, &status);
    std::string type = status == 0 && demangled != nullptr ? demangled : raw;
    std::free(demangled);
    return type + ": " + e.what();
}

ScenarioResult run_scenario(const ScenarioSpec& spec, std::size_t index,
                            std::uint64_t campaign_seed) {
    ScenarioResult out;
    out.name = spec.name;
    out.index = index;
    out.seed = derive_seed(campaign_seed, index);

    ScenarioContext ctx(index, out.seed);
    const clock::time_point t0 = clock::now();
    try {
        spec.body(ctx);
        out.ok = true;
    } catch (const std::exception& e) {
        out.ok = false;
        out.error = failure_description(e);
    } catch (...) {
        out.ok = false;
        out.error = "unknown exception type";
    }
    out.wall_ms = elapsed_ms(t0);
    out.metrics = std::move(ctx.metrics_);
    out.notes = std::move(ctx.notes_);
    return out;
}

std::size_t CampaignReport::failures() const noexcept {
    std::size_t n = 0;
    for (const ScenarioResult& r : results)
        if (!r.ok) ++n;
    return n;
}

const ScenarioResult* CampaignReport::find(const std::string& name) const {
    for (const ScenarioResult& r : results)
        if (r.name == name) return &r;
    return nullptr;
}

std::uint64_t CampaignReport::digest() const {
    Fnv1a h;
    h.u64(seed);
    h.u64(results.size());
    for (const ScenarioResult& r : results) {
        h.str(r.name);
        h.u64(r.index);
        h.u64(r.seed);
        h.u64(r.ok ? 1 : 0);
        h.str(r.error);
        h.u64(r.metrics.size());
        for (const auto& [k, v] : r.metrics) {
            h.str(k);
            h.f64(v);
        }
        h.u64(r.notes.size());
        for (const auto& [k, v] : r.notes) {
            h.str(k);
            h.str(v);
        }
    }
    return h.value();
}

std::vector<MetricSummary> CampaignReport::aggregate_metrics() const {
    // std::map gives the sorted-by-name output order for free.
    std::map<std::string, std::vector<double>> samples;
    for (const ScenarioResult& r : results)
        for (const auto& [k, v] : r.metrics) samples[k].push_back(v);

    std::vector<MetricSummary> out;
    out.reserve(samples.size());
    for (auto& [name, vals] : samples) {
        std::sort(vals.begin(), vals.end());
        MetricSummary s;
        s.name = name;
        s.count = vals.size();
        s.min = vals.front();
        s.max = vals.back();
        double sum = 0;
        for (const double v : vals) sum += v;
        s.mean = sum / static_cast<double>(vals.size());
        // Exact nearest-rank percentile: the smallest sample with at least
        // q*count samples <= it. Integer rank arithmetic, no float ceil.
        auto pct = [&vals](unsigned q) {
            const std::size_t n = vals.size();
            std::size_t rank = (n * q + 99) / 100; // ceil(n*q/100)
            if (rank == 0) rank = 1;
            return vals[rank - 1];
        };
        s.p50 = pct(50);
        s.p90 = pct(90);
        s.p99 = pct(99);
        out.push_back(std::move(s));
    }
    return out;
}

std::string CampaignReport::to_string() const {
    std::ostringstream os;
    os << "campaign seed=" << seed << " scenarios=" << results.size()
       << " workers=" << workers << " wall=" << wall_ms << "ms\n";
    for (const ScenarioResult& r : results) {
        os << "  [" << r.index << "] " << r.name << ": "
           << (r.ok ? "ok" : "FAILED") << " (" << r.wall_ms << "ms)";
        if (!r.ok) os << " — " << r.error;
        for (const auto& [k, v] : r.metrics) os << " " << k << "=" << v;
        os << "\n";
    }
    if (const std::size_t f = failures(); f != 0)
        os << "  " << f << " scenario(s) FAILED\n";
    return os.str();
}

std::string CampaignReport::to_csv() const {
    std::ostringstream os;
    os << "scenario,index,seed,ok,metric,value\n";
    for (const ScenarioResult& r : results) {
        if (r.metrics.empty()) {
            os << r.name << "," << r.index << "," << r.seed << ","
               << (r.ok ? 1 : 0) << ",,\n";
            continue;
        }
        for (const auto& [k, v] : r.metrics)
            os << r.name << "," << r.index << "," << r.seed << ","
               << (r.ok ? 1 : 0) << "," << k << "," << v << "\n";
    }
    return os.str();
}

// Shared between the handle and the worker threads. The handle owns the
// scenario copies so start() callers need not keep their list alive.
struct CampaignHandle::State {
    std::vector<ScenarioSpec> scenarios;
    CampaignRunner::Options opt;
    clock::time_point t0;
    CampaignReport report;
    std::vector<std::thread> pool;

    std::atomic<std::size_t> next{0};
    mutable std::mutex mu; ///< guards completed/finished + progress callback
    mutable std::condition_variable cv;
    std::size_t completed = 0;
    bool finished = false;

    void worker_loop() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= scenarios.size()) return;

            report.results[i] = run_scenario(scenarios[i], i, opt.seed);

            std::lock_guard<std::mutex> lk(mu);
            ++completed;
            if (opt.on_progress)
                opt.on_progress(
                    Progress{completed, scenarios.size(), report.results[i]});
            if (completed == scenarios.size()) {
                report.wall_ms = elapsed_ms(t0);
                finished = true;
                cv.notify_all();
            }
        }
    }
};

CampaignHandle::CampaignHandle(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

CampaignHandle::~CampaignHandle() {
    if (state_ == nullptr) return;
    for (std::thread& t : state_->pool)
        if (t.joinable()) t.join();
}

bool CampaignHandle::done() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->finished;
}

std::size_t CampaignHandle::completed() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->completed;
}

void CampaignHandle::wait() const {
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->finished; });
}

bool CampaignHandle::wait_for(std::chrono::milliseconds timeout) const {
    std::unique_lock<std::mutex> lk(state_->mu);
    return state_->cv.wait_for(lk, timeout, [&] { return state_->finished; });
}

CampaignReport CampaignHandle::take() {
    wait();
    for (std::thread& t : state_->pool)
        if (t.joinable()) t.join();
    CampaignReport report = std::move(state_->report);
    state_.reset();
    return report;
}

CampaignHandle CampaignRunner::start(std::vector<ScenarioSpec> scenarios) const {
    auto state = std::make_shared<CampaignHandle::State>();
    state->scenarios = std::move(scenarios);
    state->opt = opt_;
    state->t0 = clock::now();
    state->report.seed = opt_.seed;
    state->report.results.resize(state->scenarios.size());

    unsigned workers = opt_.workers;
    if (workers == 0) workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    if (workers > state->scenarios.size() && !state->scenarios.empty())
        workers = static_cast<unsigned>(state->scenarios.size());
    state->report.workers = workers;

    if (state->scenarios.empty()) {
        std::lock_guard<std::mutex> lk(state->mu);
        state->report.wall_ms = elapsed_ms(state->t0);
        state->finished = true;
    } else {
        state->pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            state->pool.emplace_back([s = state.get()] { s->worker_loop(); });
    }
    return CampaignHandle(std::move(state));
}

CampaignReport CampaignRunner::run(const std::vector<ScenarioSpec>& scenarios) const {
    return start(scenarios).take();
}

} // namespace rtsc::campaign
