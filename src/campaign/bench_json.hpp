#pragma once
// Writer for BENCH_campaign.json: each campaign-ported benchmark records its
// serial-vs-parallel wall time and the determinism verdict as one entry.
// Entries merge by name, so the three benches can update the same file in any
// order without clobbering each other.

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp" // MetricSummary

namespace rtsc::campaign {

struct BenchEntry {
    std::string name;             ///< benchmark id, the merge key
    std::size_t scenarios = 0;    ///< campaign size
    unsigned hardware_cores = 0;  ///< std::thread::hardware_concurrency()
    unsigned workers = 0;         ///< worker threads of the parallel run
    double serial_ms = 0;         ///< campaign wall time, workers=1
    double parallel_ms = 0;       ///< campaign wall time, workers=N
    double speedup = 0;           ///< serial_ms / parallel_ms
    std::uint64_t digest = 0;     ///< aggregate-report digest (serial run)
    bool digests_match = false;   ///< parallel digest == serial digest
    /// Cross-scenario metric aggregates (CampaignReport::aggregate_metrics),
    /// emitted as a "metrics" array so benches report percentiles. Optional:
    /// an empty vector keeps the entry in the legacy shape.
    std::vector<MetricSummary> metrics;
};

/// Merge `entry` into the JSON file at `path`: an existing entry with the
/// same name is replaced, otherwise the entry is appended; other entries are
/// preserved. The file is created if absent. The format is strict — one
/// entry object per line under "entries" — and only this writer should
/// author the file.
void write_bench_entry(const std::string& path, const BenchEntry& entry);

} // namespace rtsc::campaign
