#pragma once
// Decision traces: the record/replay currency of the schedule-space
// explorer.
//
// A *decision* is one same-instant ready-queue tie-break the engine exposed
// through the ScheduleOracle hook (rtos/oracle.hpp): task T entered CPU C's
// ready queue at instant A adjacent to a window of W equal-rank, same-
// instant peers, and was inserted at slot `chosen` of the W+1 possible
// slots. A *trace* prescribes the slots of a per-CPU prefix of those
// decisions; decisions past the prefix take the engine's pinned default and
// are recorded as free. Replaying the empty trace therefore reproduces the
// pinned behaviour exactly, and every reachable interleaving of the model's
// tie-breaks corresponds to exactly one trace.
//
// Streams are per-CPU (keyed by processor name) because cross-CPU decision
// interleaving within one instant is a kernel activation-order detail that
// legitimately differs between the two engines; per-CPU order is simulated
// behaviour and must match — decision_rows() canonicalizes a log into
// comparable per-CPU projections and the model checker diffs them across
// all four runs as an extra equivalence invariant.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rtos/oracle.hpp"

namespace rtsc::explore {

/// One recorded tie-break.
struct Decision {
    std::string cpu;      ///< processor name (engine-independent identity)
    std::string task;     ///< task being inserted
    std::uint64_t at_ps = 0;
    bool front = false;   ///< preempted-style insert
    std::uint32_t n = 1;  ///< alternative slots (window_len + 1)
    std::uint32_t chosen = 0;
    std::uint32_t preset = 0; ///< the pinned default slot
    bool forced = false;  ///< prescribed by the replayed trace
    bool mattered = false; ///< a dispatch consumed this group's order
    std::vector<std::string> group; ///< window members + the inserted task
};

/// Global observation-order log of one run.
using DecisionLog = std::vector<Decision>;

/// Per-CPU prescribed slot prefixes (cpu name -> slots in observation order).
using DecisionTrace = std::map<std::string, std::vector<std::uint32_t>>;

/// "cpu0:1,0,2;cpu1:0" — stable text form for frontier files and reports.
[[nodiscard]] std::string to_text(const DecisionTrace& trace);
/// Inverse of to_text. Throws std::runtime_error on malformed input.
[[nodiscard]] DecisionTrace trace_from_text(const std::string& text);

/// Canonical per-CPU projection rows ("cpu0 at=5000 task=t1 n=3 chosen=2"),
/// grouped by CPU in name order, decisions in observation order. Two runs
/// with equal rows consumed the identical per-CPU decision streams.
[[nodiscard]] std::vector<std::string> decision_rows(const DecisionLog& log);

/// Human-readable dump of a full log (diagnostics).
[[nodiscard]] std::string log_to_text(const DecisionLog& log);

/// The ScheduleOracle that records every tie-break and replays a prescribed
/// per-CPU prefix. Decisions beyond the prefix take the preset (pinned
/// default). One oracle instance serves every processor of one run; it is
/// not reusable across runs.
class TraceOracle final : public rtos::ScheduleOracle {
public:
    explicit TraceOracle(const DecisionTrace* prefix = nullptr)
        : prefix_(prefix) {}

    std::size_t choose_ready_insert(const rtos::ReadyInsertDecision& d,
                                    std::size_t preset) override;
    void on_dispatch(rtos::Processor& cpu, rtos::Task& winner,
                     const rtos::ReadyQueue& remaining) override;
    void on_order_consumed(rtos::Processor& cpu) override;

    [[nodiscard]] const DecisionLog& log() const noexcept { return log_; }
    [[nodiscard]] DecisionLog take_log() noexcept { return std::move(log_); }

    /// False when a prescribed slot did not fit its decision's window (the
    /// run diverged structurally from the recording — itself a finding).
    [[nodiscard]] bool replay_ok() const noexcept { return replay_error_.empty(); }
    [[nodiscard]] const std::string& replay_error() const noexcept {
        return replay_error_;
    }

private:
    const DecisionTrace* prefix_;
    DecisionLog log_;
    /// Per-CPU count of decisions consumed so far (prefix cursor).
    std::map<std::string, std::size_t> cursor_;
    /// Open tie-break groups per CPU, for mattered-tracking: log index plus
    /// the member names. A dispatch of member M while another member is
    /// still queued marks the group's decision as mattered.
    struct Group {
        std::size_t log_index;
        std::vector<std::string> members;
    };
    std::map<std::string, std::vector<Group>> groups_;
    std::string replay_error_;
};

/// FNV-1a 64-bit over the canonical decision rows (log identity digest).
[[nodiscard]] std::uint64_t log_digest(const DecisionLog& log);

} // namespace rtsc::explore
