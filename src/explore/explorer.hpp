#pragma once
// Bounded exhaustive schedule-space exploration (ROADMAP item 5): enumerate
// every reachable resolution of the model's same-instant ready-queue
// tie-breaks, running an arbitrary checker on each one.
//
// The explorer is generic over a RunCheck functor so the same DFS drives
// both ModelSpec checking (explore/model_check.hpp: the 4-way differential
// runner plus conservation/decision invariants) and hand-built scenarios
// (the rotation-equivalence suite runs its nine pinned schedules through
// it). A RunCheck executes the model once under the given DecisionTrace and
// returns what it observed: the full decision log, a violation verdict and
// a digest of the schedule.
//
// Enumeration (stateless DFS by replay): pop a trace, run it; every *free*
// decision (past the prescribed per-CPU prefix) with more than one slot
// spawns children — one per non-default slot, each child prescribing the
// per-CPU decisions observed up to that point with the flipped slot last.
// A child's trace always ends in a non-default choice, so each choice
// string has exactly one generating parent (cut at its last non-default
// position): every schedule is visited exactly once, and draining the
// frontier proves the enumeration complete.
//
// DPOR-style pruning (`Bounds::prune`, on by default): a free decision is
// only branched on when the run marked it `mattered` — some dispatch picked
// a group member while another member was still co-resident in the ready
// queue (or a rare front-reading path consumed the order outside a pass).
// Dispatch is the only point where queue order becomes behaviour: overhead
// formulas see the ready *count*, requeue/kill preserve the relative order
// of the others, and preemption checks compare candidate against running
// only. Reorderings of never-co-dispatched groups are therefore
// commutative and explored once. docs/EXPLORE.md carries the full
// soundness argument.
//
// The frontier (pending traces + progress counters) serializes to a text
// stream, so a bounded run can stop at its budget and resume later.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "explore/decision.hpp"

namespace rtsc::explore {

/// What one checked run reports back to the explorer.
struct RunOutcome {
    DecisionLog log;         ///< every tie-break the run consumed
    bool violation = false;  ///< an invariant broke under this schedule
    std::string diagnosis;   ///< first failure description when violation
    std::uint64_t digest = 0; ///< schedule identity (uniqueness checks)
    std::string error;       ///< run failure text (empty = ran to completion)
};

/// Execute the model once under `trace`; must be deterministic.
using RunCheck = std::function<RunOutcome(const DecisionTrace&)>;

struct Bounds {
    std::uint64_t max_schedules = 1u << 20; ///< run budget for this call
    std::size_t max_decisions = 4096; ///< branch only on the first N decisions
    std::size_t max_group = 16;       ///< widest window branched on (slots-1)
    bool prune = true;                ///< DPOR-style mattered pruning
    bool stop_at_violation = true;    ///< abort the DFS on the first finding
    bool collect_digests = false;     ///< keep every schedule digest
};

struct ExploreResult {
    std::uint64_t schedules = 0;       ///< runs executed (distinct schedules)
    std::uint64_t pruned_branches = 0; ///< alternatives skipped as commutative
    std::uint64_t clipped_branches = 0;///< alternatives dropped by max_* bounds
    bool complete = false;   ///< frontier drained and nothing clipped
    bool violation = false;
    DecisionTrace counterexample; ///< trace of the violating schedule
    std::string diagnosis;
    std::vector<std::uint64_t> digests; ///< when Bounds::collect_digests
};

class Explorer {
public:
    Explorer(RunCheck check, Bounds bounds)
        : check_(std::move(check)), bounds_(bounds) {
        frontier_.push_back({});
    }

    /// Run the DFS until the frontier drains, the schedule budget is spent
    /// or (by default) a violation is found. Callable again after a bounded
    /// stop: continues from the saved frontier with a fresh budget.
    ExploreResult run();

    [[nodiscard]] bool frontier_empty() const noexcept {
        return frontier_.empty();
    }

    /// Persist the pending frontier + progress counters ("explore-frontier
    /// v1" header, one trace per line). Round-trips through load_frontier.
    void save_frontier(std::ostream& os) const;
    /// Replace the frontier with a previously saved one. Throws
    /// std::runtime_error on malformed input.
    void load_frontier(std::istream& is);

private:
    void expand(const DecisionTrace& parent, const RunOutcome& outcome,
                ExploreResult& result);

    RunCheck check_;
    Bounds bounds_;
    std::deque<DecisionTrace> frontier_;
    std::uint64_t schedules_total_ = 0; ///< across resumed runs
    std::uint64_t pruned_total_ = 0;
    std::uint64_t clipped_total_ = 0;
};

} // namespace rtsc::explore
