#include "explore/explorer.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace rtsc::explore {

void Explorer::expand(const DecisionTrace& parent, const RunOutcome& outcome,
                      ExploreResult& result) {
    // Per-CPU cursor into the parent's prescribed prefix: a decision is free
    // once its per-CPU index passed the prefix length.
    std::map<std::string, std::size_t> seen;
    for (std::size_t g = 0; g < outcome.log.size(); ++g) {
        const Decision& d = outcome.log[g];
        const std::size_t index = seen[d.cpu]++;
        if (d.n <= 1) continue;
        const auto pit = parent.find(d.cpu);
        const std::size_t prefix_len =
            pit == parent.end() ? 0 : pit->second.size();
        if (index < prefix_len) continue; // enumerated by an ancestor
        if (bounds_.prune && !d.mattered) {
            result.pruned_branches += d.n - 1;
            pruned_total_ += d.n - 1;
            continue;
        }
        if (g >= bounds_.max_decisions ||
            static_cast<std::size_t>(d.n) > bounds_.max_group + 1) {
            result.clipped_branches += d.n - 1;
            clipped_total_ += d.n - 1;
            continue;
        }
        for (std::uint32_t slot = 0; slot < d.n; ++slot) {
            if (slot == d.chosen) continue;
            DecisionTrace child;
            for (std::size_t i = 0; i < g; ++i)
                child[outcome.log[i].cpu].push_back(outcome.log[i].chosen);
            child[d.cpu].push_back(slot);
            frontier_.push_back(std::move(child));
        }
    }
}

ExploreResult Explorer::run() {
    ExploreResult result;
    std::uint64_t executed = 0;
    while (!frontier_.empty() && executed < bounds_.max_schedules) {
        DecisionTrace trace = std::move(frontier_.back());
        frontier_.pop_back();
        const RunOutcome outcome = check_(trace);
        ++executed;
        ++schedules_total_;
        if (bounds_.collect_digests) result.digests.push_back(outcome.digest);
        if (outcome.violation && !result.violation) {
            result.violation = true;
            result.counterexample = trace;
            result.diagnosis = outcome.diagnosis;
            if (bounds_.stop_at_violation) break;
        }
        expand(trace, outcome, result);
    }
    result.schedules = schedules_total_;
    result.pruned_branches = pruned_total_;
    result.clipped_branches = clipped_total_;
    result.complete = frontier_.empty() && clipped_total_ == 0;
    return result;
}

void Explorer::save_frontier(std::ostream& os) const {
    os << "explore-frontier v1 schedules=" << schedules_total_
       << " pruned=" << pruned_total_ << " clipped=" << clipped_total_
       << "\n";
    for (const DecisionTrace& t : frontier_) os << to_text(t) << "\n";
}

void Explorer::load_frontier(std::istream& is) {
    std::string line;
    if (!std::getline(is, line) ||
        line.rfind("explore-frontier v1 ", 0) != 0)
        throw std::runtime_error("not an explore-frontier v1 file");
    schedules_total_ = 0;
    pruned_total_ = 0;
    clipped_total_ = 0;
    std::size_t pos = line.find("schedules=");
    if (pos != std::string::npos)
        schedules_total_ = std::stoull(line.substr(pos + 10));
    pos = line.find("pruned=");
    if (pos != std::string::npos)
        pruned_total_ = std::stoull(line.substr(pos + 7));
    pos = line.find("clipped=");
    if (pos != std::string::npos)
        clipped_total_ = std::stoull(line.substr(pos + 8));
    frontier_.clear();
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        frontier_.push_back(trace_from_text(line));
    }
}

} // namespace rtsc::explore
