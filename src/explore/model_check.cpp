#include "explore/model_check.hpp"

#include <memory>
#include <utility>

#include "fuzz/runner.hpp"

namespace rtsc::explore {

namespace {

/// One engine/skip-ahead leg of the 4-way check.
struct Leg {
    const char* name;
    rtos::EngineKind kind;
    bool skip_ahead;
};

constexpr Leg kLegs[] = {
    {"procedural/skip", rtos::EngineKind::procedure_calls, true},
    {"threaded/skip", rtos::EngineKind::rtos_thread, true},
    {"procedural/exact", rtos::EngineKind::procedure_calls, false},
    {"threaded/exact", rtos::EngineKind::rtos_thread, false},
};

bool has_broken_row(const fuzz::RunResult& r, std::string* which) {
    for (const auto* stream : {&r.metrics, &r.attribution})
        for (const std::string& row : *stream)
            if (row.find("BROKEN") != std::string::npos) {
                *which = row;
                return true;
            }
    return false;
}

} // namespace

RunOutcome check_model_once(const fuzz::ModelSpec& spec,
                            const DecisionTrace& trace,
                            const std::string& baseline_error) {
    RunOutcome out;
    fuzz::RunResult results[4];
    DecisionLog logs[4];
    for (std::size_t i = 0; i < 4; ++i) {
        TraceOracle oracle(&trace);
        results[i] = fuzz::run_model(spec, kLegs[i].kind, kLegs[i].skip_ahead,
                                     &oracle);
        logs[i] = oracle.take_log();
        if (!oracle.replay_ok() && !out.violation) {
            out.violation = true;
            out.diagnosis = std::string("replay desync on ") + kLegs[i].name +
                            ": " + oracle.replay_error();
        }
    }
    out.log = std::move(logs[0]);
    out.digest = fuzz::fnv1a(results[0].digest, to_text(trace));
    out.error = results[0].error;

    if (out.violation) return out;

    // Engine equivalence + skip-ahead neutrality, every stream bit-for-bit.
    const std::pair<std::size_t, std::size_t> pairs[] = {{0, 1}, {0, 2}, {1, 3}};
    for (const auto& [l, r] : pairs) {
        const fuzz::Divergence d = fuzz::compare(results[l], results[r]);
        if (d.diverged) {
            out.violation = true;
            out.diagnosis = std::string(kLegs[l].name) + " vs " +
                            kLegs[r].name + ": " + d.to_string();
            return out;
        }
    }
    // Decision-stream invariant: all four runs must have consumed identical
    // per-CPU tie-break sequences — otherwise the equivalence above held by
    // luck and replayed alternatives would flip different decisions.
    const std::vector<std::string> rows0 = decision_rows(out.log);
    for (std::size_t i = 1; i < 4; ++i) {
        const std::vector<std::string> rows = decision_rows(logs[i]);
        if (rows != rows0) {
            std::size_t k = 0;
            while (k < rows.size() && k < rows0.size() && rows[k] == rows0[k])
                ++k;
            out.violation = true;
            out.diagnosis =
                std::string("decision streams diverged: procedural/skip vs ") +
                kLegs[i].name + " at decision " + std::to_string(k) + ": '" +
                (k < rows0.size() ? rows0[k] : "<missing>") + "' vs '" +
                (k < rows.size() ? rows[k] : "<missing>") + "'";
            return out;
        }
    }
    // Conservation invariants that broke identically on both engines.
    std::string broken;
    if (has_broken_row(results[0], &broken)) {
        out.violation = true;
        out.diagnosis = "conservation invariant broke: " + broken;
        return out;
    }
    // A schedule that fails where the default schedule did not (or vice
    // versa): a tie-break order flipped a deadlock / stall / lost-wakeup
    // diagnostic.
    if (results[0].error != baseline_error) {
        out.violation = true;
        out.diagnosis = "schedule-dependent failure: default run error '" +
                        baseline_error + "' vs '" + results[0].error + "'";
        return out;
    }
    return out;
}

RunCheck make_model_check(const fuzz::ModelSpec& spec) {
    // The baseline error is captured from the first default-trace run (the
    // fresh DFS always starts there); a resumed frontier derives it with
    // one extra default run.
    struct State {
        bool have_baseline = false;
        std::string baseline_error;
    };
    auto state = std::make_shared<State>();
    return [spec, state](const DecisionTrace& trace) {
        if (!state->have_baseline) {
            bool default_trace = true;
            for (const auto& [cpu, slots] : trace)
                if (!slots.empty()) default_trace = false;
            if (default_trace) {
                // The default run *defines* the baseline: a model that
                // fails identically on both engines under its pinned
                // schedule is model behaviour, not a finding.
                RunOutcome out = check_model_once(spec, trace, "");
                state->baseline_error = out.error;
                state->have_baseline = true;
                if (out.violation &&
                    out.diagnosis.rfind("schedule-dependent failure", 0) == 0) {
                    out.violation = false;
                    out.diagnosis.clear();
                }
                return out;
            }
            // Resumed frontier: derive the baseline with one default run.
            state->baseline_error =
                fuzz::run_model(spec, rtos::EngineKind::procedure_calls).error;
            state->have_baseline = true;
        }
        return check_model_once(spec, trace, state->baseline_error);
    };
}

namespace {

/// One spec-level dial: applies position k (0 = base) to a variant spec.
struct Dial {
    std::string label;
    std::uint32_t positions;
    std::function<void(fuzz::ModelSpec&, std::uint32_t)> apply;
    std::function<std::string(std::uint32_t)> describe;
};

std::vector<Dial> make_dials(const fuzz::ModelSpec& spec,
                             const ModelCheckConfig& cfg) {
    std::vector<Dial> dials;
    if (cfg.offsets > 1 && cfg.offset_window_ps > 0) {
        for (std::size_t t = 0; t < spec.tasks.size(); ++t) {
            const fuzz::TaskSpec& ts = spec.tasks[t];
            // Sporadic shape: one time-triggered release whose exact
            // arrival instant is an environment choice, not a model one.
            if (ts.period_ps != 0 || ts.trigger_event != 0 ||
                ts.activations > 1)
                continue;
            const std::uint64_t step = cfg.offset_window_ps / cfg.offsets;
            if (step == 0) continue;
            dials.push_back(
                {spec.tasks[t].name, cfg.offsets,
                 [t, step](fuzz::ModelSpec& s, std::uint32_t k) {
                     s.tasks[t].start_ps += step * k;
                 },
                 [name = ts.name, step](std::uint32_t k) {
                     return name + "+" + std::to_string(step * k) + "ps";
                 }});
        }
    }
    if (cfg.crash_offsets > 1 && cfg.crash_window_ps > 0) {
        for (std::size_t c = 0; c < spec.faults.crashes.size(); ++c) {
            const std::uint64_t step = cfg.crash_window_ps / cfg.crash_offsets;
            if (step == 0) continue;
            dials.push_back(
                {"crash" + std::to_string(c), cfg.crash_offsets,
                 [c, step](fuzz::ModelSpec& s, std::uint32_t k) {
                     s.faults.crashes[c].at_ps += step * k;
                 },
                 [c, step](std::uint32_t k) {
                     return "crash" + std::to_string(c) + "+" +
                            std::to_string(step * k) + "ps";
                 }});
        }
    }
    return dials;
}

} // namespace

ModelReport explore_model(const fuzz::ModelSpec& spec,
                          const ModelCheckConfig& cfg) {
    ModelReport report;
    report.complete = true;

    const std::vector<Dial> dials = make_dials(spec, cfg);
    std::vector<std::uint32_t> counter(dials.size(), 0);
    std::size_t variants_run = 0;
    bool more = true;
    while (more) {
        if (variants_run >= cfg.max_variants) {
            report.complete = false; // variant space clipped
            break;
        }
        fuzz::ModelSpec variant = spec;
        std::string name;
        for (std::size_t i = 0; i < dials.size(); ++i) {
            dials[i].apply(variant, counter[i]);
            if (counter[i] != 0)
                name += (name.empty() ? "" : ",") +
                        dials[i].describe(counter[i]);
        }
        if (name.empty()) name = "base";
        ++variants_run;

        Explorer explorer(make_model_check(variant), cfg.bounds);
        ExploreResult result = explorer.run();
        report.schedules += result.schedules;
        report.pruned_branches += result.pruned_branches;
        report.clipped_branches += result.clipped_branches;
        if (!result.complete) report.complete = false;
        if (result.violation && !report.violation) {
            report.violation = true;
            report.diagnosis = result.diagnosis;
            report.violating_variant = name;
            report.violating_spec = variant;
            report.counterexample = result.counterexample;
        }
        report.variants.push_back({std::move(name), std::move(result)});
        if (report.violation && cfg.bounds.stop_at_violation) break;

        // Mixed-radix increment over the dial positions.
        more = false;
        for (std::size_t i = 0; i < counter.size(); ++i) {
            if (++counter[i] < dials[i].positions) {
                more = true;
                break;
            }
            counter[i] = 0;
        }
    }
    return report;
}

bool explore_finds_violation(const fuzz::ModelSpec& spec) {
    ModelCheckConfig cfg;
    cfg.bounds.max_schedules = 48; // small budget: predicate runs thousands
    cfg.bounds.max_decisions = 256;
    cfg.bounds.stop_at_violation = true;
    return explore_model(spec, cfg).violation;
}

} // namespace rtsc::explore
