#pragma once
// ModelSpec adapter for the schedule-space explorer: every explored
// schedule is checked with the full differential arsenal the fuzzer
// already maintains, plus the decision-stream invariant the explorer adds.
//
// One checked schedule = four runs (both engines x skip-ahead on/off), all
// replaying the same DecisionTrace. A schedule *violates* when
//   - any engine/skip-ahead pair diverges (fuzz::compare on every stream:
//     states, overheads, comms, markers, metrics incl. energy conservation
//     rows, attribution incl. the per-job conservation invariant),
//   - a BROKEN-ENERGY / BROKEN-INVARIANT row appears (conservation broke
//     identically on both engines — equality would hide it),
//   - the four per-CPU decision streams disagree (the engines consumed
//     different tie-breaks: the same-instant structure itself diverged),
//   - a prescribed slot did not fit its decision window (replay desync),
//   - the run fails where the default schedule did not (a tie-break order
//     triggered a deadlock / lost-wakeup / stall diagnostic).
//
// On top of the tie-break DFS, explore_model() enumerates the *spec-level*
// decision points of ISSUE/ROADMAP item 5: sporadic arrival offsets (tasks
// with a single time-triggered release get their start quantized over a
// window) and fault-plan crash placements. Each variant spec runs its own
// full DFS; reports carry per-variant schedule counts.

#include <cstdint>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "fuzz/spec.hpp"

namespace rtsc::explore {

struct ModelCheckConfig {
    Bounds bounds;
    /// Sporadic-arrival quantization: each single-release, time-triggered
    /// task tries `offsets` start times spread over `offset_window_ps`
    /// (offset k = k * window / offsets; k = 0 keeps the spec's start).
    /// 1 / 0 disables the dial.
    std::uint32_t offsets = 1;
    std::uint64_t offset_window_ps = 0;
    /// Fault-plan placement quantization: each crash entry tries
    /// `crash_offsets` trigger times over `crash_window_ps`.
    std::uint32_t crash_offsets = 1;
    std::uint64_t crash_window_ps = 0;
    /// Cap on the variant cross-product; exceeding it clips (incomplete).
    std::size_t max_variants = 64;
};

struct VariantReport {
    std::string name; ///< "base" or the applied offsets, e.g. "t1+500000ps"
    ExploreResult result;
};

struct ModelReport {
    std::vector<VariantReport> variants;
    std::uint64_t schedules = 0; ///< total runs across variants
    std::uint64_t pruned_branches = 0;
    std::uint64_t clipped_branches = 0;
    bool complete = false; ///< every variant drained, variant space not clipped
    bool violation = false;
    std::string diagnosis;
    std::string violating_variant;
    fuzz::ModelSpec violating_spec;   ///< variant spec that violated
    DecisionTrace counterexample;     ///< trace within that spec
};

/// Check one spec under one decision trace (the explorer's RunCheck for
/// models). `baseline_error` is the error string of the default-trace run:
/// a run failing differently is flagged. Exposed for tests and the CLI's
/// replay mode.
[[nodiscard]] RunOutcome check_model_once(const fuzz::ModelSpec& spec,
                                          const DecisionTrace& trace,
                                          const std::string& baseline_error);

/// Build the explorer RunCheck for `spec` (captures the baseline error from
/// the first default-trace run, or derives it on demand for resumed runs).
[[nodiscard]] RunCheck make_model_check(const fuzz::ModelSpec& spec);

/// Enumerate the spec-level variants (arrival / crash quantization) and run
/// the bounded-exhaustive tie-break DFS on each.
[[nodiscard]] ModelReport explore_model(const fuzz::ModelSpec& spec,
                                        const ModelCheckConfig& cfg);

/// Shrinker predicate: does a small bounded exploration of `spec` still
/// find a violating schedule? (The counterexample trace is spec-coupled, so
/// the spec is shrunk against "exploration still finds it" rather than
/// against one fixed trace.)
[[nodiscard]] bool explore_finds_violation(const fuzz::ModelSpec& spec);

} // namespace rtsc::explore
