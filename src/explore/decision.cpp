#include "explore/decision.hpp"

#include <algorithm>
#include <stdexcept>

#include "fuzz/runner.hpp" // fnv1a
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::explore {

std::string to_text(const DecisionTrace& trace) {
    std::string out;
    for (const auto& [cpu, slots] : trace) {
        if (slots.empty()) continue;
        if (!out.empty()) out += ';';
        out += cpu + ":";
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (i != 0) out += ',';
            out += std::to_string(slots[i]);
        }
    }
    return out.empty() ? "-" : out;
}

DecisionTrace trace_from_text(const std::string& text) {
    DecisionTrace trace;
    if (text.empty() || text == "-") return trace;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t end = std::min(text.find(';', pos), text.size());
        const std::string part = text.substr(pos, end - pos);
        const std::size_t colon = part.find(':');
        if (colon == std::string::npos || colon == 0)
            throw std::runtime_error("bad decision trace segment: " + part);
        const std::string cpu = part.substr(0, colon);
        std::vector<std::uint32_t>& slots = trace[cpu];
        std::size_t p = colon + 1;
        while (p <= part.size()) {
            const std::size_t comma = std::min(part.find(',', p), part.size());
            const std::string num = part.substr(p, comma - p);
            if (num.empty() || num.find_first_not_of("0123456789") !=
                                   std::string::npos)
                throw std::runtime_error("bad decision trace slot: '" + num +
                                         "' in " + part);
            slots.push_back(
                static_cast<std::uint32_t>(std::stoul(num)));
            p = comma + 1;
        }
        pos = end + 1;
    }
    return trace;
}

std::vector<std::string> decision_rows(const DecisionLog& log) {
    // Group by CPU (name order), keep observation order within each CPU.
    std::vector<std::string> cpus;
    for (const Decision& d : log)
        if (std::find(cpus.begin(), cpus.end(), d.cpu) == cpus.end())
            cpus.push_back(d.cpu);
    std::sort(cpus.begin(), cpus.end());
    std::vector<std::string> rows;
    rows.reserve(log.size());
    for (const std::string& cpu : cpus)
        for (const Decision& d : log)
            if (d.cpu == cpu)
                rows.push_back(cpu + " at=" + std::to_string(d.at_ps) +
                               " task=" + d.task + (d.front ? " front" : "") +
                               " n=" + std::to_string(d.n) +
                               " chosen=" + std::to_string(d.chosen));
    return rows;
}

std::string log_to_text(const DecisionLog& log) {
    std::string out;
    for (const Decision& d : log) {
        out += d.cpu + " at=" + std::to_string(d.at_ps) + " task=" + d.task +
               (d.front ? " front" : "") + " n=" + std::to_string(d.n) +
               " chosen=" + std::to_string(d.chosen) +
               (d.forced ? " forced" : "") + (d.mattered ? " mattered" : "") +
               " group=[";
        for (std::size_t i = 0; i < d.group.size(); ++i)
            out += (i != 0 ? " " : "") + d.group[i];
        out += "]\n";
    }
    return out;
}

std::uint64_t log_digest(const DecisionLog& log) {
    std::uint64_t h = fuzz::kFnvOffset;
    for (const std::string& row : decision_rows(log)) h = fuzz::fnv1a(h, row);
    return h;
}

std::size_t TraceOracle::choose_ready_insert(const rtos::ReadyInsertDecision& d,
                                             std::size_t preset) {
    const std::string& cpu = d.cpu.name();
    const std::size_t index = cursor_[cpu]++;
    std::size_t slot = preset;
    bool forced = false;
    if (prefix_ != nullptr) {
        const auto it = prefix_->find(cpu);
        if (it != prefix_->end() && index < it->second.size()) {
            forced = true;
            slot = it->second[index];
            if (slot > d.window_len) {
                if (replay_error_.empty())
                    replay_error_ =
                        "prescribed slot " + std::to_string(slot) +
                        " exceeds window " + std::to_string(d.window_len) +
                        " (cpu=" + cpu + " decision #" +
                        std::to_string(index) + " task=" + d.task.name() + ")";
                slot = preset;
            }
        }
    }
    Decision rec;
    rec.cpu = cpu;
    rec.task = d.task.name();
    rec.at_ps = d.at.raw_ps();
    rec.front = d.front;
    rec.n = static_cast<std::uint32_t>(d.window_len + 1);
    rec.chosen = static_cast<std::uint32_t>(slot);
    rec.preset = static_cast<std::uint32_t>(preset);
    rec.forced = forced;
    rec.group.reserve(d.window_len + 1);
    for (std::size_t i = 0; i < d.window_len; ++i)
        rec.group.push_back(d.window[i]->name());
    rec.group.push_back(d.task.name());
    groups_[cpu].push_back({log_.size(), rec.group});
    log_.push_back(std::move(rec));
    return slot;
}

void TraceOracle::on_dispatch(rtos::Processor& cpu, rtos::Task& winner,
                              const rtos::ReadyQueue& remaining) {
    const auto git = groups_.find(cpu.name());
    if (git == groups_.end()) return;
    const std::string& won = winner.name();
    for (const Group& g : git->second) {
        if (log_[g.log_index].mattered) continue;
        if (std::find(g.members.begin(), g.members.end(), won) ==
            g.members.end())
            continue;
        // The winner belonged to this tie-break group; if another member is
        // still waiting in the queue, their relative order decided who won.
        for (const rtos::Task* r : remaining) {
            if (r->name() != won && std::find(g.members.begin(),
                                              g.members.end(),
                                              r->name()) != g.members.end()) {
                log_[g.log_index].mattered = true;
                break;
            }
        }
    }
}

void TraceOracle::on_order_consumed(rtos::Processor& cpu) {
    const auto git = groups_.find(cpu.name());
    if (git == groups_.end()) return;
    for (const Group& g : git->second) log_[g.log_index].mattered = true;
}

} // namespace rtsc::explore
