#pragma once
// Streaming Perfetto / Chrome trace-event exporter with bounded memory.
//
// Where obs::write_perfetto_file serialises a whole trace::Recorder after
// the run, PerfettoStreamWriter observes the model directly (TaskObserver +
// CommObserver + MarkerSink) and spools events to disk *as the simulation
// runs*: resident state is one append window of at most ~window_bytes plus
// O(#tasks) per-task cursors, independent of trace length. A long-horizon
// scenario that would hold millions of records in a Recorder streams in a
// few tens of kilobytes (tests/obs/test_perfetto_stream.cpp pins the peak
// window occupancy).
//
// Equivalence contract: for one run observed by both a Recorder and a
// PerfettoStreamWriter (same processors/relations attached, markers fanned
// out through trace::MarkerTee), the streamed file contains exactly the
// same events as write_perfetto_file's, byte-for-byte per event — only the
// event *order* differs (the stream interleaves tracks as time advances).
// Canonically sorting both files' event lines yields identical bytes; CI
// checks this for both engines with skip-ahead on and off. Event strings
// come from obs::pfmt, shared with the batch writer, so the two cannot
// drift. Counter tracks (see counter() and obs::MetricsSampler) are the
// deliberate exception: they exist only in streamed exports, so a sampled
// export is written as a separate artifact, not sort-compared.
//
// Spool format: events are appended to `path + ".spool-<pid>-<n>"`
// (spool_path(); unique per writer, so concurrent runs targeting the same
// output never share a spool) — a valid, growing prefix of the final JSON
// ({"traceEvents": [ <events so far>) that crash diagnostics can inspect;
// finish() closes open task segments, emits the metadata and optional
// attribution events, writes the footer and atomically renames the spool
// onto `path`. A writer destroyed without finish() removes its spool.
//
// Requirements: attach every processor/relation *before* the simulation
// starts (pid numbering follows attach order, and events emitted mid-run
// bake their pids in), and call finish() while the model is still alive.

#include <cstddef>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/time.hpp"
#include "mcse/relation.hpp"
#include "obs/attribution.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"
#include "trace/marker.hpp"

namespace rtsc::obs {

class PerfettoStreamWriter final : public rtos::TaskObserver,
                                   public mcse::CommObserver,
                                   public trace::MarkerSink {
public:
    struct Options {
        /// Flush the in-memory window to the spool once it reaches this many
        /// bytes. Peak residency stays below window_bytes + one event.
        std::size_t window_bytes = 64 * 1024;
        bool include_comms = true;
        bool include_markers = true;
    };

    struct Stats {
        std::size_t events = 0;            ///< events emitted so far
        std::size_t window_bytes = 0;      ///< current window occupancy
        std::size_t peak_window_bytes = 0; ///< high-water mark of the window
        std::size_t flushes = 0;           ///< window spills to disk
        std::size_t spooled_bytes = 0;     ///< bytes written to the spool
    };

    /// Opens a writer-unique spool file (see spool_path()) and emits the
    /// JSON header. Throws kernel::SimulationError when the spool cannot be
    /// created.
    explicit PerfettoStreamWriter(std::string path)
        : PerfettoStreamWriter(std::move(path), Options()) {}
    PerfettoStreamWriter(std::string path, Options opts);
    ~PerfettoStreamWriter() override;

    PerfettoStreamWriter(const PerfettoStreamWriter&) = delete;
    PerfettoStreamWriter& operator=(const PerfettoStreamWriter&) = delete;

    /// Observe a processor (all of its tasks, present and future). Its pid
    /// is the attach index + 1, matching the batch exporter's layout.
    void attach(rtos::Processor& cpu);
    /// Observe a communication relation (thread attach index + 1 under the
    /// "comm" process).
    void attach(mcse::Relation& rel);

    // TaskObserver
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override;
    void on_overhead(const rtos::Processor& cpu, rtos::OverheadKind kind,
                     kernel::Time start, kernel::Time duration,
                     const rtos::Task* about) override;

    // CommObserver
    void on_access(const mcse::Relation& rel, const rtos::Task* task,
                   mcse::AccessKind kind, bool blocked) override;

    // MarkerSink (fault layer: set_trace(&writer), or through a MarkerTee)
    void mark(std::string category, std::string name) override;

    /// Emit one counter sample on `cpu`'s process track. The value renders
    /// with %.17g; `at` must be non-decreasing per counter name (the
    /// validator checks). Throws when `cpu` was never attached.
    void counter(const rtos::Processor& cpu, kernel::Time at,
                 std::string_view name, double value);

    /// Emit one counter sample on the auxiliary process `process` (e.g.
    /// "kernel"), allocated a pid past the marker process on first use.
    void counter(std::string_view process, kernel::Time at,
                 std::string_view name, double value);

    /// Close open task segments at the end of the trace, emit process/thread
    /// metadata (plus attribution events when given), write the footer and
    /// atomically rename the spool onto the final path. Must be called
    /// exactly once, while the model is still alive. Throws
    /// kernel::SimulationError on I/O failure, std::logic_error on reuse.
    void finish(const Attribution* attribution = nullptr,
                const std::vector<Attribution::DeadlineMissReport>* misses =
                    nullptr);

    [[nodiscard]] bool finished() const noexcept { return finished_; }
    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    /// Where events spool until finish() renames them onto path().
    [[nodiscard]] const std::string& spool_path() const noexcept {
        return spool_path_;
    }

private:
    struct TaskCursor {
        kernel::Time prev_at{};
        rtos::TaskState prev_state = rtos::TaskState::created;
        bool seen = false;
        int pid = 0;
        int tid = 0;
    };

    void emit(const std::string& event);
    void flush_window();
    [[nodiscard]] int pid_of(const rtos::Processor& cpu) const;
    [[nodiscard]] int comm_pid() const noexcept {
        return static_cast<int>(processors_.size()) + 1;
    }
    [[nodiscard]] int marker_pid() const noexcept { return comm_pid() + 1; }
    void note_time(kernel::Time t) noexcept {
        if (t > trace_end_) trace_end_ = t;
    }

    std::string path_;
    std::string spool_path_;
    Options opts_;
    std::ofstream os_;
    std::string window_;
    bool first_ = true;
    bool finished_ = false;
    bool any_marker_ = false;
    Stats stats_;
    kernel::Time trace_end_{};

    std::vector<rtos::Processor*> processors_;
    std::vector<mcse::Relation*> relations_;
    std::map<const rtos::Task*, TaskCursor> cursors_;
    std::vector<std::string> counter_procs_; ///< aux counter process names
};

} // namespace rtsc::obs
