#pragma once
// Shared Perfetto/Chrome trace-event formatting layer.
//
// Both exporters — the post-hoc batch writer (obs/perfetto.hpp) and the
// streaming bounded-memory writer (obs/perfetto_stream.hpp) — must emit
// byte-identical event strings for the same underlying record, or the
// "streamed export equals batch export after canonical sort" contract
// (tests/obs/test_perfetto_stream.cpp) breaks. Every event string is built
// here, in one place, by allocation-light append formatting; the writers
// only decide *when* an event is emitted and where its bytes go.
//
// Also hosts the causal-attribution event emitter: the per-job blame
// slices, blocking-chain instants, culprit->victim flows and deadline-miss
// instants are a pure function of (track index, Attribution) and are always
// emitted post-run, so batch and streaming share the exact code path.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/time.hpp"
#include "obs/attribution.hpp"

namespace rtsc::obs::pfmt {

/// Append-formatted event strings; each returns one complete JSON object
/// (no trailing comma/newline — the writers own the separator plumbing).
[[nodiscard]] std::string meta_process(int pid, std::string_view name);
[[nodiscard]] std::string meta_thread(int pid, int tid, std::string_view name);

/// Complete slice ("X"). `args_json` is a full {"k": v} object or empty.
[[nodiscard]] std::string slice(int pid, int tid, kernel::Time at,
                                kernel::Time dur, std::string_view cat,
                                std::string_view name,
                                const std::string& args_json = {});

/// Instant ("i") with scope `scope` ("t" thread, "g" global).
[[nodiscard]] std::string instant(int pid, int tid, kernel::Time at,
                                  char scope, std::string_view cat,
                                  std::string_view name,
                                  const std::string& args_json = {});

/// Counter sample ("C"): one point of the counter track `name` under `pid`.
/// The value is rendered with %.17g — round-trippable, and deterministic
/// for the simulated-time quantities the MetricsSampler emits.
[[nodiscard]] std::string counter(int pid, kernel::Time at,
                                  std::string_view name, double value);

/// Flow endpoints used for culprit->victim blocking arrows.
[[nodiscard]] std::string flow_start(std::uint64_t id, kernel::Time at,
                                     int pid, int tid);
[[nodiscard]] std::string flow_finish(std::uint64_t id, kernel::Time at,
                                      int pid, int tid);

/// Where a task's slices live: its processor's pid, its state track and
/// (with attribution) its jobs track. Keyed by task name — Attribution
/// records names so its results outlive the model.
struct Track {
    int pid = 0;
    int state_tid = 0;
    int jobs_tid = 0;
};
using TrackIndex = std::map<std::string, Track>;

/// Emit every attribution-derived event — per-job blame slices, blocking
/// chains + flow arrows, and (when `misses` is non-null) deadline-miss
/// instants — through `sink`, in the deterministic order both writers
/// share. Tasks absent from `tracks` are skipped, matching the batch
/// exporter's historical behaviour.
void emit_attribution(const std::function<void(std::string)>& sink,
                      const TrackIndex& tracks, const Attribution& attribution,
                      const std::vector<Attribution::DeadlineMissReport>* misses);

} // namespace rtsc::obs::pfmt
