#include "obs/sampler.hpp"

#include "rtos/dvfs.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;

MetricsSampler::MetricsSampler(PerfettoStreamWriter& out, Options opts)
    : out_(out), opts_(opts) {
    if (opts_.period.is_zero())
        throw k::SimulationError("MetricsSampler period must be non-zero");
}

void MetricsSampler::attach(rtos::Processor& cpu) {
    cpus_.push_back(CpuState{&cpu, {}, 0});
}

void MetricsSampler::start(kernel::Simulator& sim) {
    if (opts_.include_host) sim.set_host_profiling(true);
    k::Process& p = sim.spawn("metrics_sampler", [this, &sim] {
        for (;;) {
            sample(sim);
            k::wait(opts_.period);
        }
    });
    p.set_daemon(true);     // exempt from deadlock/stall diagnostics
    p.set_background(true); // never keeps an open-ended run() alive
}

void MetricsSampler::record(const rtos::Processor* cpu, kernel::Time at,
                            const std::string& name, double value) {
    if (cpu != nullptr)
        out_.counter(*cpu, at, name, value);
    else
        out_.counter(std::string_view{"kernel"}, at, name, value);
    if (registry_ != nullptr)
        registry_->gauge((cpu != nullptr ? cpu->name() : "kernel") + "." + name)
            .set(value);
}

void MetricsSampler::sample(kernel::Simulator& sim) {
    const k::Time at = sim.now();
    const double period_ps = static_cast<double>(opts_.period.raw_ps());

    for (CpuState& cs : cpus_) {
        const auto stats = cs.cpu->engine().phase_stats();
        const auto busy_d = k::Time::sat_sub(stats.busy_time, cs.last.busy_time);
        const auto over_d =
            k::Time::sat_sub(stats.overhead_time, cs.last.overhead_time);
        record(cs.cpu, at, "utilization_pct",
               100.0 * static_cast<double>(busy_d.raw_ps()) / period_ps);
        record(cs.cpu, at, "overhead_pct",
               100.0 * static_cast<double>(over_d.raw_ps()) / period_ps);
        record(cs.cpu, at, "ready_depth",
               static_cast<double>(cs.cpu->ready_queue().size()));
        record(cs.cpu, at, "dispatches",
               static_cast<double>(stats.dispatches));
        if (cs.cpu->dvfs_enabled()) {
            // total() = busy + overhead; the overhead ledger already
            // contains the unattributed share.
            const rtos::Energy total = cs.cpu->energy().total();
            const rtos::Energy delta = total - cs.last_energy;
            // Joules over the period, divided by the period in seconds.
            record(cs.cpu, at, "power_w",
                   rtos::energy_to_joules(delta) / (period_ps * 1e-12));
            cs.last_energy = total;
        }
        cs.last = stats;
    }

    record(nullptr, at, "delta_cycles",
           static_cast<double>(sim.delta_count()));
    record(nullptr, at, "activations",
           static_cast<double>(sim.process_activations()));
    record(nullptr, at, "timed_live", static_cast<double>(sim.timed_live()));
    record(nullptr, at, "timed_tombstones",
           static_cast<double>(sim.timed_tombstones()));
    record(nullptr, at, "timed_compactions",
           static_cast<double>(sim.timed_compactions()));

    if (opts_.include_host) {
        const auto& hp = sim.host_profile();
        record(nullptr, at, "host.evaluate_ms",
               static_cast<double>(hp.evaluate_ns) * 1e-6);
        record(nullptr, at, "host.update_ms",
               static_cast<double>(hp.update_ns) * 1e-6);
        record(nullptr, at, "host.delta_notify_ms",
               static_cast<double>(hp.delta_notify_ns) * 1e-6);
        record(nullptr, at, "host.advance_ms",
               static_cast<double>(hp.advance_ns) * 1e-6);
    }
    ++samples_;
}

} // namespace rtsc::obs
