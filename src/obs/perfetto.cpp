#include "obs/perfetto.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "kernel/report.hpp"
#include "rtos/dvfs.hpp"
#include "trace/csv.hpp"
#include "trace/timeline.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;

std::string json_escape(std::string_view s) {
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    return out;
}

namespace {

/// Serialises one event per raw() call, handling the comma/newline plumbing.
class EventStream {
public:
    EventStream(std::ostream& os, bool one_per_line)
        : os_(os), nl_(one_per_line ? "\n" : "") {}

    void begin() { os_ << "{\"traceEvents\": [" << nl_; }
    void end() { os_ << nl_ << "]}\n"; }

    void raw(const std::string& event) {
        if (!first_) os_ << ',' << nl_;
        first_ = false;
        os_ << event;
    }

    void meta_process(int pid, std::string_view name) {
        std::ostringstream e;
        e << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": 0, \"args\": {\"name\": \"" << json_escape(name)
          << "\"}}";
        raw(e.str());
    }

    void meta_thread(int pid, int tid, std::string_view name) {
        std::ostringstream e;
        e << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": " << tid << ", \"args\": {\"name\": \""
          << json_escape(name) << "\"}}";
        raw(e.str());
    }

    /// Complete slice ("X"). `args_json` is a full {"k": v} object or empty.
    void slice(int pid, int tid, k::Time at, k::Time dur, std::string_view cat,
               std::string_view name, const std::string& args_json = {}) {
        std::ostringstream e;
        e << "{\"name\": \"" << json_escape(name) << "\", \"cat\": \""
          << json_escape(cat) << "\", \"ph\": \"X\", \"ts\": "
          << trace::format_us(at) << ", \"dur\": " << trace::format_us(dur)
          << ", \"pid\": " << pid << ", \"tid\": " << tid;
        if (!args_json.empty()) e << ", \"args\": " << args_json;
        e << '}';
        raw(e.str());
    }

    /// Instant ("i") with scope `s` ("t" thread, "g" global).
    void instant(int pid, int tid, k::Time at, char scope, std::string_view cat,
                 std::string_view name, const std::string& args_json = {}) {
        std::ostringstream e;
        e << "{\"name\": \"" << json_escape(name) << "\", \"cat\": \""
          << json_escape(cat) << "\", \"ph\": \"i\", \"s\": \"" << scope
          << "\", \"ts\": " << trace::format_us(at) << ", \"pid\": " << pid
          << ", \"tid\": " << tid;
        if (!args_json.empty()) e << ", \"args\": " << args_json;
        e << '}';
        raw(e.str());
    }

private:
    std::ostream& os_;
    const char* nl_;
    bool first_ = true;
};

bool visible_state(rtos::TaskState s) {
    return s != rtos::TaskState::created && s != rtos::TaskState::terminated;
}

/// Energy in joules as a round-trippable JSON number.
std::string format_joules(rtos::Energy e) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", rtos::energy_to_joules(e));
    return buf;
}

} // namespace

void write_perfetto_json(std::ostream& os, const trace::Recorder& rec,
                         const PerfettoOptions& opts) {
    EventStream ev(os, opts.one_event_per_line);
    ev.begin();

    const auto& cpus = rec.processors();
    const int comm_pid = static_cast<int>(cpus.size()) + 1;
    const int marker_pid = comm_pid + 1;

    // --- metadata: stable pid/tid assignment ------------------------------
    // pid i+1 = processor i; within it tid 0 = RTOS overhead track and
    // tid j+1 = task j in creation order. The numbering depends only on the
    // attach/creation order, so repeated exports of one model agree.
    for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
        const int pid = static_cast<int>(pi) + 1;
        ev.meta_process(pid, cpus[pi]->name());
        ev.meta_thread(pid, 0, cpus[pi]->name() + ".rtos");
        const auto& tasks = cpus[pi]->tasks();
        for (std::size_t ti = 0; ti < tasks.size(); ++ti)
            ev.meta_thread(pid, static_cast<int>(ti) + 1, tasks[ti]->name());
        if (opts.attribution != nullptr)
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                ev.meta_thread(pid,
                               static_cast<int>(tasks.size() + 1 + ti),
                               tasks[ti]->name() + ".jobs");
    }
    if (opts.include_comms && !rec.relations().empty()) {
        ev.meta_process(comm_pid, "comm");
        const auto& rels = rec.relations();
        for (std::size_t ri = 0; ri < rels.size(); ++ri)
            ev.meta_thread(comm_pid, static_cast<int>(ri) + 1,
                           rels[ri]->name() + " (" +
                               std::string(rels[ri]->type_name()) + ")");
    }
    if (opts.include_markers && !rec.markers().empty())
        ev.meta_process(marker_pid, "events");

    // --- task state slices ------------------------------------------------
    // Segments from one task never overlap (they partition the trace), so
    // every (pid, tid) track holds strictly sequential slices.
    const trace::Timeline tl(rec);
    for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
        const int pid = static_cast<int>(pi) + 1;
        const auto& tasks = cpus[pi]->tasks();
        for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
            for (const auto& seg : tl.segments(*tasks[ti])) {
                if (!visible_state(seg.state) || seg.end <= seg.begin)
                    continue;
                ev.slice(pid, static_cast<int>(ti) + 1, seg.begin,
                         seg.end - seg.begin, "task_state",
                         rtos::to_string(seg.state));
            }
        }
    }

    // --- RTOS overhead slices (tid 0 of each processor) -------------------
    for (const auto& o : rec.overheads()) {
        if (o.duration.is_zero()) continue;
        int pid = 0;
        for (std::size_t pi = 0; pi < cpus.size(); ++pi)
            if (cpus[pi] == o.cpu) pid = static_cast<int>(pi) + 1;
        if (pid == 0) continue; // overhead of an unattached processor
        std::string args;
        if (o.about != nullptr)
            args = "{\"task\": \"" + json_escape(o.about->name()) + "\"}";
        ev.slice(pid, 0, o.at, o.duration, "rtos", rtos::to_string(o.kind),
                 args);
    }

    // --- causal latency attribution (jobs, chains, misses) ----------------
    if (opts.attribution != nullptr) {
        // Locate each task's tracks by name (Attribution records names so
        // its results outlive the model; the recorder still has the model).
        struct Track {
            int pid = 0;
            int state_tid = 0;
            int jobs_tid = 0;
        };
        std::map<std::string, Track> tracks;
        for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
            const auto& tasks = cpus[pi]->tasks();
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                tracks.emplace(
                    tasks[ti]->name(),
                    Track{static_cast<int>(pi) + 1, static_cast<int>(ti) + 1,
                          static_cast<int>(tasks.size() + 1 + ti)});
        }
        const auto ps = [](k::Time t) { return std::to_string(t.raw_ps()); };
        const auto time_map =
            [&](const std::vector<std::pair<std::string, k::Time>>& m) {
                std::string out = "{";
                bool first = true;
                for (const auto& [name, t] : m) {
                    if (!first) out += ", ";
                    first = false;
                    out += "\"" + json_escape(name) + "\": " + ps(t);
                }
                return out + "}";
            };
        const auto str_list = [&](const std::vector<std::string>& v) {
            std::string out = "[";
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (i != 0) out += ", ";
                out += "\"" + json_escape(v[i]) + "\"";
            }
            return out + "]";
        };

        // One complete slice per job on the task's jobs track, blame
        // decomposition as args in exact picoseconds. Jobs of one task are
        // recorded in completion order == release order, so each track stays
        // monotonic; zero-response jobs are dropped (the validator rejects
        // zero-width slices) — their decomposition is all-zero anyway.
        for (const auto& [name, tr] : tracks) {
            for (const auto* j : opts.attribution->jobs_for(name)) {
                if (j->response().is_zero()) continue;
                std::string args = "{\"task\": \"" + json_escape(j->task) +
                                   "\", \"index\": " + std::to_string(j->index) +
                                   ", \"release_ps\": " + ps(j->release) +
                                   ", \"end_ps\": " + ps(j->end) +
                                   ", \"response_ps\": " + ps(j->response()) +
                                   ", \"aborted\": " +
                                   (j->aborted ? "true" : "false") +
                                   ", \"exec_ps\": " + ps(j->exec) +
                                   ", \"preempt_ps\": " + ps(j->preemption) +
                                   ", \"block_ps\": " + ps(j->blocking) +
                                   ", \"overhead_ps\": " + ps(j->overhead) +
                                   ", \"interrupt_ps\": " + ps(j->interrupt) +
                                   ", \"ov_sched_ps\": " + ps(j->ov_scheduling) +
                                   ", \"ov_load_ps\": " + ps(j->ov_load) +
                                   ", \"ov_save_ps\": " + ps(j->ov_save) +
                                   ", \"ov_switch_ps\": " + ps(j->ov_switch) +
                                   ", \"residual_ps\": " + ps(j->residual) +
                                   // Raw model units as strings (128-bit,
                                   // exact); joules as doubles for humans.
                                   ", \"energy_exec_fj\": \"" +
                                   rtos::energy_to_string(j->energy_exec) +
                                   "\", \"energy_overhead_fj\": \"" +
                                   rtos::energy_to_string(j->energy_overhead) +
                                   "\", \"energy_exec_j\": " +
                                   format_joules(j->energy_exec) +
                                   ", \"energy_overhead_j\": " +
                                   format_joules(j->energy_overhead) +
                                   ", \"preempted_by\": " +
                                   time_map(j->preempted_by) +
                                   ", \"blocked_on\": " +
                                   time_map(j->blocked_on) + "}";
                ev.slice(tr.pid, tr.jobs_tid, j->release, j->response(), "job",
                         "job #" + std::to_string(j->index) +
                             (j->aborted ? " (aborted)" : ""),
                         args);
            }
        }

        // Blocking episodes: a chain instant on the victim's jobs track plus
        // a culprit -> victim flow ("s" on the owner's state track, "f" on
        // the victim's).
        std::uint64_t flow_id = 1;
        for (const auto& e : opts.attribution->episodes()) {
            const auto vit = tracks.find(e.victim);
            if (vit == tracks.end()) continue;
            std::string args =
                "{\"victim\": \"" + json_escape(e.victim) +
                "\", \"job\": " + std::to_string(e.job_index) +
                ", \"resource\": \"" + json_escape(e.resource) +
                "\", \"owner\": \"" + json_escape(e.owner) +
                "\", \"victim_priority\": " + std::to_string(e.victim_priority) +
                ", \"owner_priority\": " + std::to_string(e.owner_priority) +
                ", \"duration_ps\": " + ps(e.duration()) +
                ", \"inversion\": " + (e.inversion ? "true" : "false") +
                ", \"chain\": " + str_list(e.chain) +
                ", \"aggravators\": " + str_list(e.aggravators) + "}";
            ev.instant(vit->second.pid, vit->second.jobs_tid, e.start, 't',
                       "blocking_chain",
                       "blocked on " + e.resource +
                           (e.inversion ? " [inversion]" : ""),
                       args);
            const auto oit = tracks.find(e.owner);
            if (oit == tracks.end()) continue;
            std::ostringstream fs;
            fs << "{\"name\": \"blocking\", \"cat\": \"blocking\", \"ph\": "
                  "\"s\", \"id\": "
               << flow_id << ", \"ts\": " << trace::format_us(e.start)
               << ", \"pid\": " << oit->second.pid
               << ", \"tid\": " << oit->second.state_tid << "}";
            ev.raw(fs.str());
            std::ostringstream ff;
            ff << "{\"name\": \"blocking\", \"cat\": \"blocking\", \"ph\": "
                  "\"f\", \"bp\": \"e\", \"id\": "
               << flow_id << ", \"ts\": " << trace::format_us(e.end)
               << ", \"pid\": " << vit->second.pid
               << ", \"tid\": " << vit->second.state_tid << "}";
            ev.raw(ff.str());
            ++flow_id;
        }

        // Deadline misses with their critical path.
        if (opts.misses != nullptr) {
            for (const auto& m : *opts.misses) {
                const auto vit = tracks.find(m.task);
                if (vit == tracks.end()) continue;
                std::string args =
                    "{\"task\": \"" + json_escape(m.task) +
                    "\", \"constraint\": \"" + json_escape(m.constraint) +
                    "\", \"measured_ps\": " + ps(m.measured) +
                    ", \"bound_ps\": " + ps(m.bound) + ", \"critical_path\": [";
                for (std::size_t i = 0; i < m.critical_path.size(); ++i) {
                    const auto& item = m.critical_path[i];
                    if (i != 0) args += ", ";
                    args += "{\"start_ps\": " + ps(item.start) +
                            ", \"dur_ps\": " + ps(item.duration) +
                            ", \"culprit\": \"" + json_escape(item.culprit) +
                            "\", \"reason\": \"" + json_escape(item.reason) +
                            "\"}";
                }
                args += "]}";
                ev.instant(vit->second.pid, vit->second.jobs_tid, m.at, 't',
                           "deadline_miss", "deadline miss: " + m.constraint,
                           args);
            }
        }
    }

    // --- communication accesses as thread instants ------------------------
    if (opts.include_comms) {
        const auto& rels = rec.relations();
        for (const auto& c : rec.comms()) {
            int tid = 0;
            for (std::size_t ri = 0; ri < rels.size(); ++ri)
                if (rels[ri] == c.relation) tid = static_cast<int>(ri) + 1;
            if (tid == 0) continue;
            std::string args = "{\"task\": \"";
            args += c.task != nullptr ? json_escape(c.task->name()) : "<hw>";
            args += c.blocked ? "\", \"blocked\": true}" : "\", \"blocked\": false}";
            ev.instant(comm_pid, tid, c.at, 't', "comm",
                       std::string(mcse::to_string(c.kind)) +
                           (c.blocked ? " [blocked]" : ""),
                       args);
        }
    }

    // --- fault / watchdog / deadline markers as global instants -----------
    if (opts.include_markers) {
        for (const auto& m : rec.markers())
            ev.instant(marker_pid, 1, m.at, 'g', m.category, m.name);
    }

    ev.end();
}

void write_perfetto_file(const std::string& path, const trace::Recorder& rec,
                         const PerfettoOptions& opts) {
    std::ofstream os(path);
    if (!os)
        throw k::SimulationError("cannot open perfetto output file: " + path);
    write_perfetto_json(os, rec, opts);
    os.flush();
    if (!os)
        throw k::SimulationError("failed writing perfetto output file: " + path);
}

} // namespace rtsc::obs
