#include "obs/perfetto.hpp"

#include <cstdint>
#include <fstream>
#include <ostream>

#include "kernel/report.hpp"
#include "obs/perfetto_format.hpp"
#include "trace/timeline.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;

std::string json_escape(std::string_view s) {
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (const unsigned char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += static_cast<char>(c);
                }
        }
    }
    return out;
}

namespace {

/// Serialises one event per raw() call, handling the comma/newline plumbing.
/// Event strings themselves come from obs::pfmt so the streaming writer
/// emits identical bytes.
class EventStream {
public:
    EventStream(std::ostream& os, bool one_per_line)
        : os_(os), nl_(one_per_line ? "\n" : "") {}

    void begin() { os_ << "{\"traceEvents\": [" << nl_; }
    void end() { os_ << nl_ << "]}\n"; }

    void raw(const std::string& event) {
        if (!first_) os_ << ',' << nl_;
        first_ = false;
        os_ << event;
    }

private:
    std::ostream& os_;
    const char* nl_;
    bool first_ = true;
};

bool visible_state(rtos::TaskState s) {
    return s != rtos::TaskState::created && s != rtos::TaskState::terminated;
}

} // namespace

void write_perfetto_json(std::ostream& os, const trace::Recorder& rec,
                         const PerfettoOptions& opts) {
    EventStream ev(os, opts.one_event_per_line);
    ev.begin();

    const auto& cpus = rec.processors();
    const int comm_pid = static_cast<int>(cpus.size()) + 1;
    const int marker_pid = comm_pid + 1;

    // --- metadata: stable pid/tid assignment ------------------------------
    // pid i+1 = processor i; within it tid 0 = RTOS overhead track and
    // tid j+1 = task j in creation order. The numbering depends only on the
    // attach/creation order, so repeated exports of one model agree.
    for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
        const int pid = static_cast<int>(pi) + 1;
        ev.raw(pfmt::meta_process(pid, cpus[pi]->name()));
        ev.raw(pfmt::meta_thread(pid, 0, cpus[pi]->name() + ".rtos"));
        const auto& tasks = cpus[pi]->tasks();
        for (std::size_t ti = 0; ti < tasks.size(); ++ti)
            ev.raw(pfmt::meta_thread(pid, static_cast<int>(ti) + 1,
                                     tasks[ti]->name()));
        if (opts.attribution != nullptr)
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                ev.raw(pfmt::meta_thread(
                    pid, static_cast<int>(tasks.size() + 1 + ti),
                    tasks[ti]->name() + ".jobs"));
    }
    if (opts.include_comms && !rec.relations().empty()) {
        ev.raw(pfmt::meta_process(comm_pid, "comm"));
        const auto& rels = rec.relations();
        for (std::size_t ri = 0; ri < rels.size(); ++ri)
            ev.raw(pfmt::meta_thread(comm_pid, static_cast<int>(ri) + 1,
                                     rels[ri]->name() + " (" +
                                         std::string(rels[ri]->type_name()) +
                                         ")"));
    }
    if (opts.include_markers && !rec.markers().empty())
        ev.raw(pfmt::meta_process(marker_pid, "events"));

    // --- task state slices ------------------------------------------------
    // Segments from one task never overlap (they partition the trace), so
    // every (pid, tid) track holds strictly sequential slices.
    const trace::Timeline tl(rec);
    for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
        const int pid = static_cast<int>(pi) + 1;
        const auto& tasks = cpus[pi]->tasks();
        for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
            for (const auto& seg : tl.segments(*tasks[ti])) {
                if (!visible_state(seg.state) || seg.end <= seg.begin)
                    continue;
                ev.raw(pfmt::slice(pid, static_cast<int>(ti) + 1, seg.begin,
                                   seg.end - seg.begin, "task_state",
                                   rtos::to_string(seg.state)));
            }
        }
    }

    // --- RTOS overhead slices (tid 0 of each processor) -------------------
    for (const auto& o : rec.overheads()) {
        if (o.duration.is_zero()) continue;
        int pid = 0;
        for (std::size_t pi = 0; pi < cpus.size(); ++pi)
            if (cpus[pi] == o.cpu) pid = static_cast<int>(pi) + 1;
        if (pid == 0) continue; // overhead of an unattached processor
        std::string args;
        if (o.about != nullptr)
            args = "{\"task\": \"" + json_escape(o.about->name()) + "\"}";
        ev.raw(pfmt::slice(pid, 0, o.at, o.duration, "rtos",
                           rtos::to_string(o.kind), args));
    }

    // --- causal latency attribution (jobs, chains, misses) ----------------
    if (opts.attribution != nullptr) {
        // Locate each task's tracks by name (Attribution records names so
        // its results outlive the model; the recorder still has the model).
        pfmt::TrackIndex tracks;
        for (std::size_t pi = 0; pi < cpus.size(); ++pi) {
            const auto& tasks = cpus[pi]->tasks();
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                tracks.emplace(tasks[ti]->name(),
                               pfmt::Track{static_cast<int>(pi) + 1,
                                           static_cast<int>(ti) + 1,
                                           static_cast<int>(tasks.size() + 1 +
                                                            ti)});
        }
        pfmt::emit_attribution([&](std::string e) { ev.raw(e); }, tracks,
                               *opts.attribution, opts.misses);
    }

    // --- communication accesses as thread instants ------------------------
    if (opts.include_comms) {
        const auto& rels = rec.relations();
        for (const auto& c : rec.comms()) {
            int tid = 0;
            for (std::size_t ri = 0; ri < rels.size(); ++ri)
                if (rels[ri] == c.relation) tid = static_cast<int>(ri) + 1;
            if (tid == 0) continue;
            std::string args = "{\"task\": \"";
            args += c.task != nullptr ? json_escape(c.task->name()) : "<hw>";
            args += c.blocked ? "\", \"blocked\": true}" : "\", \"blocked\": false}";
            ev.raw(pfmt::instant(comm_pid, tid, c.at, 't', "comm",
                                 std::string(mcse::to_string(c.kind)) +
                                     (c.blocked ? " [blocked]" : ""),
                                 args));
        }
    }

    // --- fault / watchdog / deadline markers as global instants -----------
    if (opts.include_markers) {
        for (const auto& m : rec.markers())
            ev.raw(pfmt::instant(marker_pid, 1, m.at, 'g', m.category, m.name));
    }

    ev.end();
}

void write_perfetto_file(const std::string& path, const trace::Recorder& rec,
                         const PerfettoOptions& opts) {
    std::ofstream os(path);
    if (!os)
        throw k::SimulationError("cannot open perfetto output file: " + path);
    write_perfetto_json(os, rec, opts);
    os.flush();
    if (!os)
        throw k::SimulationError("failed writing perfetto output file: " + path);
}

} // namespace rtsc::obs
