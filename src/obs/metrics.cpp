#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace rtsc::obs {

void Histogram::merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (buckets_.empty()) buckets_.resize(kBuckets, 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
        // Saturating add: a u32 bucket overflowing (4 billion samples in one
        // ±6% band) pins at max instead of wrapping to a tiny count, which
        // would silently shift every quantile estimate downward.
        const std::uint32_t s = buckets_[i] + other.buckets_[i];
        buckets_[i] = s < buckets_[i] ? UINT32_MAX : s;
    }
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    sum_ += other.sum_;
    count_ += other.count_;
}

Histogram Histogram::from_parts(std::vector<std::uint32_t> buckets,
                                std::uint64_t count, std::uint64_t min,
                                std::uint64_t max, double sum) {
    Histogram h;
    if (!buckets.empty()) buckets.resize(kBuckets, 0);
    h.buckets_ = std::move(buckets);
    h.count_ = count;
    h.min_ = min;
    h.max_ = max;
    h.sum_ = sum;
    return h;
}

double Histogram::quantile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile sample, 1-based (nearest-rank with ceil).
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(count_) + 0.9999999999));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t c = buckets_[i];
        if (c == 0) continue;
        cum += c;
        if (cum < rank) continue;
        // Interpolate inside this bucket: the rank-th sample sits at
        // position (rank - entered) of c samples spanning [lo, hi].
        const double lo = static_cast<double>(bucket_lo(i));
        const double hi = static_cast<double>(bucket_hi(i));
        const double within =
            static_cast<double>(rank - (cum - c)) / static_cast<double>(c);
        const double est = lo + (hi - lo) * within;
        return std::clamp(est, static_cast<double>(min_),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it != counters_.end() ? &it->second : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it != histograms_.end() ? &it->second : nullptr;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
    if (&other == this)
        throw std::logic_error(
            "MetricsRegistry::merge: merging a registry into itself would "
            "double every metric");
    for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
    for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
    for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + 4 * gauges_.size() + 5 * histograms_.size());
    for (const auto& [name, c] : counters_)
        out.push_back({name, static_cast<double>(c.value())});
    for (const auto& [name, g] : gauges_) {
        out.push_back({name + ".last", g.last()});
        out.push_back({name + ".min", g.min()});
        out.push_back({name + ".max", g.max()});
        out.push_back({name + ".mean", g.mean()});
    }
    for (const auto& [name, h] : histograms_) {
        out.push_back({name + ".count", static_cast<double>(h.count())});
        out.push_back({name + ".p50", h.p50()});
        out.push_back({name + ".p90", h.p90()});
        out.push_back({name + ".p99", h.p99()});
        out.push_back({name + ".max", static_cast<double>(h.max())});
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace rtsc::obs
