#include "obs/perfetto_stream.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <utility>

#include "kernel/report.hpp"
#include "kernel/simulator.hpp"
#include "obs/perfetto.hpp"
#include "obs/perfetto_format.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;

namespace {

bool visible_state(rtos::TaskState s) {
    return s != rtos::TaskState::created && s != rtos::TaskState::terminated;
}

// Unique per writer so concurrent runs targeting the same output path never
// share a spool (they would interleave events and race the final rename);
// like the batch exporter, the last finish() wins and every renamed file is
// internally consistent.
std::string unique_spool_path(const std::string& path) {
    static std::atomic<unsigned> seq{0};
    return path + ".spool-" + std::to_string(::getpid()) + "-" +
           std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

PerfettoStreamWriter::PerfettoStreamWriter(std::string path, Options opts)
    : path_(std::move(path)), spool_path_(unique_spool_path(path_)),
      opts_(opts) {
    os_.open(spool_path_, std::ios::trunc);
    if (!os_)
        throw k::SimulationError("cannot open perfetto spool file: " +
                                 spool_path_);
    os_ << "{\"traceEvents\": [\n";
    if (!os_)
        throw k::SimulationError("failed writing perfetto spool file: " +
                                 spool_path_);
}

PerfettoStreamWriter::~PerfettoStreamWriter() {
    if (!finished_) {
        // Abandoned mid-run (exception unwound past us, test bailed):
        // leave no half-written artifact behind.
        os_.close();
        std::remove(spool_path_.c_str());
    }
}

void PerfettoStreamWriter::attach(rtos::Processor& cpu) {
    cpu.add_observer(*this);
    processors_.push_back(&cpu);
}

void PerfettoStreamWriter::attach(mcse::Relation& rel) {
    rel.add_observer(*this);
    relations_.push_back(&rel);
}

void PerfettoStreamWriter::emit(const std::string& event) {
    if (!first_) window_ += ",\n";
    first_ = false;
    window_ += event;
    ++stats_.events;
    stats_.window_bytes = window_.size();
    if (window_.size() > stats_.peak_window_bytes)
        stats_.peak_window_bytes = window_.size();
    if (window_.size() >= opts_.window_bytes) flush_window();
}

void PerfettoStreamWriter::flush_window() {
    if (window_.empty()) return;
    os_ << window_;
    stats_.spooled_bytes += window_.size();
    ++stats_.flushes;
    window_.clear();
    stats_.window_bytes = 0;
}

int PerfettoStreamWriter::pid_of(const rtos::Processor& cpu) const {
    for (std::size_t pi = 0; pi < processors_.size(); ++pi)
        if (processors_[pi] == &cpu) return static_cast<int>(pi) + 1;
    return 0;
}

void PerfettoStreamWriter::on_task_state(const rtos::Task& task,
                                         rtos::TaskState from,
                                         rtos::TaskState to) {
    const k::Time at = task.processor().simulator().now();
    note_time(at);
    TaskCursor& cur = cursors_[&task];
    if (!cur.seen) {
        cur.seen = true;
        cur.prev_at = at;
        cur.prev_state = from;
        cur.pid = pid_of(task.processor());
        const auto& tasks = task.processor().tasks();
        for (std::size_t ti = 0; ti < tasks.size(); ++ti)
            if (tasks[ti].get() == &task) cur.tid = static_cast<int>(ti) + 1;
    }
    if (from == to) return; // creation announcement
    if (visible_state(cur.prev_state) && at > cur.prev_at)
        emit(pfmt::slice(cur.pid, cur.tid, cur.prev_at, at - cur.prev_at,
                         "task_state", rtos::to_string(cur.prev_state)));
    cur.prev_at = at;
    cur.prev_state = to;
}

void PerfettoStreamWriter::on_overhead(const rtos::Processor& cpu,
                                       rtos::OverheadKind kind,
                                       kernel::Time start,
                                       kernel::Time duration,
                                       const rtos::Task* about) {
    note_time(start + duration);
    if (duration.is_zero()) return;
    const int pid = pid_of(cpu);
    if (pid == 0) return; // overhead of an unattached processor
    std::string args;
    if (about != nullptr)
        args = "{\"task\": \"" + json_escape(about->name()) + "\"}";
    emit(pfmt::slice(pid, 0, start, duration, "rtos", rtos::to_string(kind),
                     args));
}

void PerfettoStreamWriter::on_access(const mcse::Relation& rel,
                                     const rtos::Task* task,
                                     mcse::AccessKind kind, bool blocked) {
    const k::Time at = task != nullptr
                           ? task->processor().simulator().now()
                           : k::Simulator::current().now();
    note_time(at);
    if (!opts_.include_comms) return;
    int tid = 0;
    for (std::size_t ri = 0; ri < relations_.size(); ++ri)
        if (relations_[ri] == &rel) tid = static_cast<int>(ri) + 1;
    if (tid == 0) return;
    std::string args = "{\"task\": \"";
    args += task != nullptr ? json_escape(task->name()) : "<hw>";
    args += blocked ? "\", \"blocked\": true}" : "\", \"blocked\": false}";
    emit(pfmt::instant(comm_pid(), tid, at, 't', "comm",
                       std::string(mcse::to_string(kind)) +
                           (blocked ? " [blocked]" : ""),
                       args));
}

void PerfettoStreamWriter::mark(std::string category, std::string name) {
    const k::Time at = k::Simulator::current().now();
    note_time(at);
    if (!opts_.include_markers) return;
    any_marker_ = true;
    emit(pfmt::instant(marker_pid(), 1, at, 'g', category, name));
}

void PerfettoStreamWriter::counter(const rtos::Processor& cpu, kernel::Time at,
                                   std::string_view name, double value) {
    const int pid = pid_of(cpu);
    if (pid == 0)
        throw k::SimulationError("counter() on a processor never attached "
                                 "to this PerfettoStreamWriter");
    emit(pfmt::counter(pid, at, name, value));
}

void PerfettoStreamWriter::counter(std::string_view process, kernel::Time at,
                                   std::string_view name, double value) {
    int idx = -1;
    for (std::size_t i = 0; i < counter_procs_.size(); ++i)
        if (counter_procs_[i] == process) idx = static_cast<int>(i);
    if (idx < 0) {
        idx = static_cast<int>(counter_procs_.size());
        counter_procs_.emplace_back(process);
    }
    emit(pfmt::counter(marker_pid() + 1 + idx, at, name, value));
}

void PerfettoStreamWriter::finish(
    const Attribution* attribution,
    const std::vector<Attribution::DeadlineMissReport>* misses) {
    if (finished_)
        throw std::logic_error("PerfettoStreamWriter::finish() called twice");

    // Close every open task segment at the end of the trace, exactly where
    // Timeline::segments closes its final segment for the batch exporter.
    for (const rtos::Processor* cpu : processors_) {
        for (const auto& t : cpu->tasks()) {
            const auto it = cursors_.find(t.get());
            if (it == cursors_.end() || !it->second.seen) continue;
            const TaskCursor& cur = it->second;
            const k::Time end = std::max(cur.prev_at, trace_end_);
            if (visible_state(cur.prev_state) && end > cur.prev_at)
                emit(pfmt::slice(cur.pid, cur.tid, cur.prev_at,
                                 end - cur.prev_at, "task_state",
                                 rtos::to_string(cur.prev_state)));
        }
    }

    // Metadata last: sort-canonical comparison with the batch exporter does
    // not care about position, and emitting here lets tid numbering for the
    // jobs tracks use the final task count, as the batch layout does.
    for (std::size_t pi = 0; pi < processors_.size(); ++pi) {
        const int pid = static_cast<int>(pi) + 1;
        const auto& tasks = processors_[pi]->tasks();
        emit(pfmt::meta_process(pid, processors_[pi]->name()));
        emit(pfmt::meta_thread(pid, 0, processors_[pi]->name() + ".rtos"));
        for (std::size_t ti = 0; ti < tasks.size(); ++ti)
            emit(pfmt::meta_thread(pid, static_cast<int>(ti) + 1,
                                   tasks[ti]->name()));
        if (attribution != nullptr)
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                emit(pfmt::meta_thread(pid,
                                       static_cast<int>(tasks.size() + 1 + ti),
                                       tasks[ti]->name() + ".jobs"));
    }
    if (opts_.include_comms && !relations_.empty()) {
        emit(pfmt::meta_process(comm_pid(), "comm"));
        for (std::size_t ri = 0; ri < relations_.size(); ++ri)
            emit(pfmt::meta_thread(comm_pid(), static_cast<int>(ri) + 1,
                                   relations_[ri]->name() + " (" +
                                       std::string(
                                           relations_[ri]->type_name()) +
                                       ")"));
    }
    if (opts_.include_markers && any_marker_)
        emit(pfmt::meta_process(marker_pid(), "events"));
    for (std::size_t ci = 0; ci < counter_procs_.size(); ++ci)
        emit(pfmt::meta_process(marker_pid() + 1 + static_cast<int>(ci),
                                counter_procs_[ci]));

    if (attribution != nullptr) {
        pfmt::TrackIndex tracks;
        for (std::size_t pi = 0; pi < processors_.size(); ++pi) {
            const auto& tasks = processors_[pi]->tasks();
            for (std::size_t ti = 0; ti < tasks.size(); ++ti)
                tracks.emplace(tasks[ti]->name(),
                               pfmt::Track{static_cast<int>(pi) + 1,
                                           static_cast<int>(ti) + 1,
                                           static_cast<int>(tasks.size() + 1 +
                                                            ti)});
        }
        pfmt::emit_attribution([this](std::string e) { emit(e); }, tracks,
                               *attribution, misses);
    }

    flush_window();
    os_ << "\n]}\n";
    os_.flush();
    if (!os_)
        throw k::SimulationError("failed writing perfetto spool file: " +
                                 spool_path_);
    os_.close();
    if (std::rename(spool_path_.c_str(), path_.c_str()) != 0)
        throw k::SimulationError("cannot rename perfetto spool onto: " +
                                 path_);
    finished_ = true;
}

} // namespace rtsc::obs
