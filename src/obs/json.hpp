#pragma once
// Minimal recursive-descent JSON parser — just enough to validate the
// Perfetto/Chrome trace exports this repo writes (tools/perfetto_validate,
// tests/obs/test_perfetto.cpp) without pulling a third-party dependency.
//
// Strict where it matters for trace files: rejects trailing garbage,
// unterminated strings/escapes, bad numbers and unbalanced containers.
// Numbers are parsed as double (all trace-event fields fit), object keys
// keep insertion order irrelevant — lookup is by exact name.

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace rtsc::obs::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value {
public:
    enum class Kind { null, boolean, number, string, array, object };

    Kind kind = Kind::null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<ValuePtr> arr;
    std::map<std::string, ValuePtr> obj;

    [[nodiscard]] bool is_object() const noexcept { return kind == Kind::object; }
    [[nodiscard]] bool is_array() const noexcept { return kind == Kind::array; }
    [[nodiscard]] bool is_string() const noexcept { return kind == Kind::string; }
    [[nodiscard]] bool is_number() const noexcept { return kind == Kind::number; }

    /// Object member or nullptr.
    [[nodiscard]] const Value* get(const std::string& key) const {
        if (kind != Kind::object) return nullptr;
        const auto it = obj.find(key);
        return it != obj.end() ? it->second.get() : nullptr;
    }
};

class ParseError : public std::runtime_error {
public:
    ParseError(const std::string& what, std::size_t at)
        : std::runtime_error(what + " at offset " + std::to_string(at)) {}
};

class Parser {
public:
    explicit Parser(std::string_view text) : s_(text) {}

    [[nodiscard]] ValuePtr parse() {
        ValuePtr v = value();
        skip_ws();
        if (pos_ != s_.size()) throw ParseError("trailing garbage", pos_);
        return v;
    }

private:
    void skip_ws() {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    [[nodiscard]] char peek() {
        if (pos_ >= s_.size()) throw ParseError("unexpected end of input", pos_);
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c)
            throw ParseError(std::string("expected '") + c + "'", pos_);
        ++pos_;
    }

    [[nodiscard]] ValuePtr value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return string_value();
            case 't':
            case 'f': return boolean();
            case 'n': return null_value();
            default: return number();
        }
    }

    [[nodiscard]] ValuePtr object() {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::object;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skip_ws();
            std::string key = raw_string();
            skip_ws();
            expect(':');
            v->obj[std::move(key)] = value();
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    [[nodiscard]] ValuePtr array() {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::array;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v->arr.push_back(value());
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    [[nodiscard]] std::string raw_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) throw ParseError("unterminated string", pos_);
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20)
                throw ParseError("raw control character in string", pos_ - 1);
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= s_.size()) throw ParseError("unterminated escape", pos_);
            const char e = s_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > s_.size())
                        throw ParseError("truncated \\u escape", pos_);
                    for (int i = 0; i < 4; ++i) {
                        if (std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])) == 0)
                            throw ParseError("bad \\u escape", pos_);
                        ++pos_;
                    }
                    out.push_back('?'); // validation only: code point dropped
                    break;
                }
                default: throw ParseError("bad escape", pos_ - 1);
            }
        }
    }

    [[nodiscard]] ValuePtr string_value() {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::string;
        v->str = raw_string();
        return v;
    }

    [[nodiscard]] ValuePtr boolean() {
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::boolean;
        if (s_.compare(pos_, 4, "true") == 0) {
            v->b = true;
            pos_ += 4;
        } else if (s_.compare(pos_, 5, "false") == 0) {
            v->b = false;
            pos_ += 5;
        } else {
            throw ParseError("bad literal", pos_);
        }
        return v;
    }

    [[nodiscard]] ValuePtr null_value() {
        if (s_.compare(pos_, 4, "null") != 0)
            throw ParseError("bad literal", pos_);
        pos_ += 4;
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::null;
        return v;
    }

    [[nodiscard]] ValuePtr number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) throw ParseError("bad number", start);
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) throw ParseError("bad fraction", start);
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
            if (digits() == 0) throw ParseError("bad exponent", start);
        }
        auto v = std::make_shared<Value>();
        v->kind = Value::Kind::number;
        v->num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                             nullptr);
        return v;
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

/// Parse or throw ParseError.
[[nodiscard]] inline ValuePtr parse(std::string_view text) {
    return Parser(text).parse();
}

} // namespace rtsc::obs::json
