#include "obs/collector.hpp"


#include <algorithm>
#include "obs/attribution.hpp"
#include "rtos/engine.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;

MetricsCollector::~MetricsCollector() {
    // The engine keeps a raw probe pointer; clear it so a collector with a
    // shorter lifetime than the processor cannot dangle. (Task observers are
    // only notified during simulation, which the collector must outlive
    // anyway, matching trace::Recorder's contract.)
    for (r::Processor* cpu : attached_)
        if (cpu->engine().probe() == this) cpu->engine().set_probe(nullptr);
}

void MetricsCollector::attach(r::Processor& cpu) {
    cpu.engine().set_probe(this);
    cpu.add_observer(*this);
    attached_.push_back(&cpu);
    (void)cpu_metrics(cpu); // create the catalogue eagerly: stable snapshots
                            // even for processors that never schedule
}

MetricsCollector::CpuMetrics& MetricsCollector::cpu_metrics(
    const r::Processor& cpu) {
    for (auto& m : cpus_)
        if (m.cpu == &cpu) return m;
    const std::string p = "cpu." + cpu.name() + ".";
    cpus_.push_back({&cpu, &reg_.counter(p + "scheduler_runs"),
                     &reg_.counter(p + "ctx_switches"),
                     &reg_.counter(p + "preemptions"),
                     &reg_.histogram(p + "ready_queue_len"),
                     &reg_.histogram(p + "preempt_depth"),
                     &reg_.histogram(p + "sched_latency_ps"),
                     &reg_.histogram(p + "dispatch_latency_ps")});
    return cpus_.back();
}

MetricsCollector::TaskMetrics& MetricsCollector::task_metrics(
    const r::Task& t) {
    // Transposition scan: a hit swaps one step toward the front, so the
    // busiest tasks (ISRs completing thousands of jobs) quickly settle at
    // the head without paying a full move-to-front rotate per lookup.
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (tasks_[i].task != &t) continue;
        if (i == 0) return tasks_[0];
        std::swap(tasks_[i - 1], tasks_[i]);
        return tasks_[i - 1];
    }
    const std::string p = "task." + t.name() + ".";
    tasks_.push_back({&t, &reg_.counter(p + "activations"),
                      &reg_.histogram(p + "response_ps")});
    return tasks_.back();
}

// on_scheduler_run / on_dispatch / on_preempt are NOT forwarded to the
// attribution: it keeps the EngineProbe no-op defaults for all three (its
// segmentation derives entirely from state transitions, blocks and overhead
// charges), and these are the highest-frequency probe hooks. If Attribution
// ever overrides one of them, forward it here again.

void MetricsCollector::on_scheduler_run(const r::Processor& cpu,
                                        std::size_t ready_len) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.scheduler_runs->inc();
    m.ready_queue_len->record(static_cast<std::uint64_t>(ready_len));
}

void MetricsCollector::on_dispatch(const r::Processor& cpu, const r::Task&,
                                   k::Time sched_latency,
                                   k::Time dispatch_latency) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.ctx_switches->inc();
    m.sched_latency->record(sched_latency);
    m.dispatch_latency->record(dispatch_latency);
}

void MetricsCollector::on_preempt(const r::Processor& cpu, const r::Task&,
                                  std::size_t depth) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.preemptions->inc();
    m.preempt_depth->record(static_cast<std::uint64_t>(depth));
}

void MetricsCollector::on_block(const r::Processor& cpu, const r::Task& t,
                                r::TaskState kind, const mcse::Relation* on) {
    if (attr_) attr_->on_block(cpu, t, kind, on);
}

void MetricsCollector::on_wake(const r::Processor& cpu, const r::Task& t) {
    if (attr_) attr_->on_wake(cpu, t);
}

void MetricsCollector::on_resource_acquire(const r::Processor& cpu,
                                           const r::Task& t,
                                           const mcse::Relation& rel) {
    if (attr_) attr_->on_resource_acquire(cpu, t, rel);
}

void MetricsCollector::on_resource_release(const r::Processor& cpu,
                                           const r::Task& t,
                                           const mcse::Relation& rel) {
    if (attr_) attr_->on_resource_release(cpu, t, rel);
}

void MetricsCollector::on_overhead(const r::Processor& cpu,
                                   r::OverheadKind kind, k::Time start,
                                   k::Time duration, const r::Task* about) {
    if (attr_) attr_->on_overhead(cpu, kind, start, duration, about);
}

MetricsCollector::BlameMetrics& MetricsCollector::blame_metrics(
    const r::Task& t) {
    // Move-to-front scan: job completions cluster per task (ISR tasks in
    // particular complete far more jobs than anyone else), so the hot entry
    // sits at the head.
    for (auto it = blame_order_.begin(); it != blame_order_.end(); ++it) {
        if ((*it)->task == &t) {
            if (it != blame_order_.begin())
                std::rotate(blame_order_.begin(), it, it + 1);
            return *blame_order_.front();
        }
    }
    const std::string p = "task." + t.name() + ".";
    blames_.push_back({&t, p, &reg_.histogram(p + "blame.exec_ps"),
                       &reg_.histogram(p + "blame.preempt_ps"),
                       &reg_.histogram(p + "blame.block_ps"),
                       &reg_.histogram(p + "blame.overhead_ps"),
                       &reg_.histogram(p + "blame.interrupt_ps"),
                       {},
                       {}});
    blame_order_.insert(blame_order_.begin(), &blames_.back());
    return blames_.back();
}

Counter& MetricsCollector::preemptor_counter(BlameMetrics& m,
                                             const r::Task& by) {
    for (auto& [t, c] : m.preempted_by)
        if (t == &by) return *c;
    Counter& c = reg_.counter(m.prefix + "preempted_by." + by.name());
    m.preempted_by.emplace_back(&by, &c);
    return c;
}

Counter& MetricsCollector::culprit_counter(
    std::vector<std::pair<std::string, Counter*>>& cache,
    const std::string& prefix, const char* group, const std::string& name) {
    for (auto& [n, c] : cache)
        if (n == name) return *c;
    Counter& c = reg_.counter(prefix + group + name);
    cache.emplace_back(name, &c);
    return c;
}

void MetricsCollector::set_attribution(Attribution* a) {
    attr_ = a;
    if (a == nullptr) return;
    a->set_completion_hook_lite([this](const Attribution::CompletionView& v) {
        BlameMetrics& m = blame_metrics(*v.task);
        // The preemptor view is per-slot (Task identity); the catalogue
        // counts one inc per job per *name* (duplicate-named tasks merge
        // into one counter), so dedup by resolved Counter identity.
        culprits_seen_.clear();
        for (std::size_t i = 0; i < v.preemptor_count; ++i) {
            const r::Task* by = v.preemptors[i].first;
            if (by->isr_task()) continue; // ISR share is `interrupt`
            Counter& c = preemptor_counter(m, *by);
            if (std::find(culprits_seen_.begin(), culprits_seen_.end(), &c) ==
                culprits_seen_.end()) {
                culprits_seen_.push_back(&c);
                c.inc();
            }
        }
        for (std::size_t i = 0; i < v.blocker_count; ++i)
            culprit_counter(m.blocked_on, m.prefix, "blocked_on.",
                            v.blockers[i].first)
                .inc();
        m.exec->record(v.exec);
        m.preempt->record(v.preemption);
        m.block->record(v.blocking);
        m.overhead->record(v.overhead);
        m.interrupt->record(v.interrupt);
        if (v.task->processor().dvfs_enabled()) {
            if (m.energy_exec == nullptr) {
                m.energy_exec = &reg_.gauge(m.prefix + "energy_exec_j");
                m.energy_ov = &reg_.gauge(m.prefix + "energy_overhead_j");
            }
            m.energy_exec->set(r::energy_to_joules(v.energy_exec));
            m.energy_ov->set(r::energy_to_joules(v.energy_overhead));
        }
    });
}

void MetricsCollector::on_task_state(const r::Task& task, r::TaskState from,
                                     r::TaskState to) {
    if (attr_) attr_->on_task_state(task, from, to);
    if (from == to) return; // creation announcement
    // Release: leaving a synchronization wait (or creation) for Ready starts
    // a response episode — same rule as trace::ConstraintMonitor. Completion:
    // the running task blocks again or terminates. Every other transition
    // (dispatch, preemption, resource waits) records nothing, so the metric
    // lookup and the now() query only run on the two episode edges.
    const bool release =
        to == r::TaskState::ready &&
        (from == r::TaskState::waiting || from == r::TaskState::created);
    const bool completion =
        from == r::TaskState::running &&
        (to == r::TaskState::waiting || to == r::TaskState::terminated);
    if (!release && !completion) return;
    TaskMetrics& m = task_metrics(task);
    const k::Time now = task.processor().simulator().now();
    if (release) {
        m.activations->inc();
        m.active = true;
        m.released = now;
        return;
    }
    // A kill/crash leaves the episode open — an aborted activation has no
    // response time.
    if (m.active) {
        m.active = false;
        if (!(to == r::TaskState::terminated &&
              (task.killed() || task.crashed())))
            m.response->record(now - m.released);
    }
}

} // namespace rtsc::obs
