#include "obs/collector.hpp"

#include "rtos/engine.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;

MetricsCollector::~MetricsCollector() {
    // The engine keeps a raw probe pointer; clear it so a collector with a
    // shorter lifetime than the processor cannot dangle. (Task observers are
    // only notified during simulation, which the collector must outlive
    // anyway, matching trace::Recorder's contract.)
    for (r::Processor* cpu : attached_)
        if (cpu->engine().probe() == this) cpu->engine().set_probe(nullptr);
}

void MetricsCollector::attach(r::Processor& cpu) {
    cpu.engine().set_probe(this);
    cpu.add_observer(*this);
    attached_.push_back(&cpu);
    (void)cpu_metrics(cpu); // create the catalogue eagerly: stable snapshots
                            // even for processors that never schedule
}

MetricsCollector::CpuMetrics& MetricsCollector::cpu_metrics(
    const r::Processor& cpu) {
    for (auto& m : cpus_)
        if (m.cpu == &cpu) return m;
    const std::string p = "cpu." + cpu.name() + ".";
    cpus_.push_back({&cpu, &reg_.counter(p + "scheduler_runs"),
                     &reg_.counter(p + "ctx_switches"),
                     &reg_.counter(p + "preemptions"),
                     &reg_.histogram(p + "ready_queue_len"),
                     &reg_.histogram(p + "preempt_depth"),
                     &reg_.histogram(p + "sched_latency_ps"),
                     &reg_.histogram(p + "dispatch_latency_ps")});
    return cpus_.back();
}

MetricsCollector::TaskMetrics& MetricsCollector::task_metrics(
    const r::Task& t) {
    for (auto& m : tasks_)
        if (m.task == &t) return m;
    const std::string p = "task." + t.name() + ".";
    tasks_.push_back({&t, &reg_.counter(p + "activations"),
                      &reg_.histogram(p + "response_ps")});
    return tasks_.back();
}

void MetricsCollector::on_scheduler_run(const r::Processor& cpu,
                                        std::size_t ready_len) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.scheduler_runs->inc();
    m.ready_queue_len->record(static_cast<std::uint64_t>(ready_len));
}

void MetricsCollector::on_dispatch(const r::Processor& cpu, const r::Task&,
                                   k::Time sched_latency,
                                   k::Time dispatch_latency) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.ctx_switches->inc();
    m.sched_latency->record(sched_latency);
    m.dispatch_latency->record(dispatch_latency);
}

void MetricsCollector::on_preempt(const r::Processor& cpu, const r::Task&,
                                  std::size_t depth) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.preemptions->inc();
    m.preempt_depth->record(static_cast<std::uint64_t>(depth));
}

void MetricsCollector::on_task_state(const r::Task& task, r::TaskState from,
                                     r::TaskState to) {
    if (from == to) return; // creation announcement
    TaskMetrics& m = task_metrics(task);
    const k::Time now = task.processor().simulator().now();
    // Release: leaving a synchronization wait (or creation) for Ready starts
    // a response episode — same rule as trace::ConstraintMonitor.
    if (to == r::TaskState::ready &&
        (from == r::TaskState::waiting || from == r::TaskState::created)) {
        m.activations->inc();
        m.active = true;
        m.released = now;
        return;
    }
    // Completion: the running task blocks again or terminates. A kill/crash
    // leaves the episode open — an aborted activation has no response time.
    if (m.active && from == r::TaskState::running &&
        (to == r::TaskState::waiting || to == r::TaskState::terminated)) {
        if (to == r::TaskState::terminated && (task.killed() || task.crashed())) {
            m.active = false;
            return;
        }
        m.active = false;
        m.response->record(now - m.released);
    }
}

} // namespace rtsc::obs
