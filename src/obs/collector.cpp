#include "obs/collector.hpp"

#include "obs/attribution.hpp"
#include "rtos/engine.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;

MetricsCollector::~MetricsCollector() {
    // The engine keeps a raw probe pointer; clear it so a collector with a
    // shorter lifetime than the processor cannot dangle. (Task observers are
    // only notified during simulation, which the collector must outlive
    // anyway, matching trace::Recorder's contract.)
    for (r::Processor* cpu : attached_)
        if (cpu->engine().probe() == this) cpu->engine().set_probe(nullptr);
}

void MetricsCollector::attach(r::Processor& cpu) {
    cpu.engine().set_probe(this);
    cpu.add_observer(*this);
    attached_.push_back(&cpu);
    (void)cpu_metrics(cpu); // create the catalogue eagerly: stable snapshots
                            // even for processors that never schedule
}

MetricsCollector::CpuMetrics& MetricsCollector::cpu_metrics(
    const r::Processor& cpu) {
    for (auto& m : cpus_)
        if (m.cpu == &cpu) return m;
    const std::string p = "cpu." + cpu.name() + ".";
    cpus_.push_back({&cpu, &reg_.counter(p + "scheduler_runs"),
                     &reg_.counter(p + "ctx_switches"),
                     &reg_.counter(p + "preemptions"),
                     &reg_.histogram(p + "ready_queue_len"),
                     &reg_.histogram(p + "preempt_depth"),
                     &reg_.histogram(p + "sched_latency_ps"),
                     &reg_.histogram(p + "dispatch_latency_ps")});
    return cpus_.back();
}

MetricsCollector::TaskMetrics& MetricsCollector::task_metrics(
    const r::Task& t) {
    for (auto& m : tasks_)
        if (m.task == &t) return m;
    const std::string p = "task." + t.name() + ".";
    tasks_.push_back({&t, &reg_.counter(p + "activations"),
                      &reg_.histogram(p + "response_ps")});
    return tasks_.back();
}

void MetricsCollector::on_scheduler_run(const r::Processor& cpu,
                                        std::size_t ready_len) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.scheduler_runs->inc();
    m.ready_queue_len->record(static_cast<std::uint64_t>(ready_len));
    if (attr_) attr_->on_scheduler_run(cpu, ready_len);
}

void MetricsCollector::on_dispatch(const r::Processor& cpu, const r::Task& t,
                                   k::Time sched_latency,
                                   k::Time dispatch_latency) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.ctx_switches->inc();
    m.sched_latency->record(sched_latency);
    m.dispatch_latency->record(dispatch_latency);
    if (attr_) attr_->on_dispatch(cpu, t, sched_latency, dispatch_latency);
}

void MetricsCollector::on_preempt(const r::Processor& cpu, const r::Task& t,
                                  std::size_t depth) {
    CpuMetrics& m = cpu_metrics(cpu);
    m.preemptions->inc();
    m.preempt_depth->record(static_cast<std::uint64_t>(depth));
    if (attr_) attr_->on_preempt(cpu, t, depth);
}

void MetricsCollector::on_block(const r::Processor& cpu, const r::Task& t,
                                r::TaskState kind, const mcse::Relation* on) {
    if (attr_) attr_->on_block(cpu, t, kind, on);
}

void MetricsCollector::on_wake(const r::Processor& cpu, const r::Task& t) {
    if (attr_) attr_->on_wake(cpu, t);
}

void MetricsCollector::on_resource_acquire(const r::Processor& cpu,
                                           const r::Task& t,
                                           const mcse::Relation& rel) {
    if (attr_) attr_->on_resource_acquire(cpu, t, rel);
}

void MetricsCollector::on_resource_release(const r::Processor& cpu,
                                           const r::Task& t,
                                           const mcse::Relation& rel) {
    if (attr_) attr_->on_resource_release(cpu, t, rel);
}

void MetricsCollector::on_overhead(const r::Processor& cpu,
                                   r::OverheadKind kind, k::Time start,
                                   k::Time duration, const r::Task* about) {
    if (attr_) attr_->on_overhead(cpu, kind, start, duration, about);
}

void MetricsCollector::set_attribution(Attribution* a) {
    attr_ = a;
    if (a == nullptr) return;
    a->set_completion_hook([this](const Attribution::JobRecord& j) {
        const std::string p = "task." + j.task + ".";
        for (const auto& [name, t] : j.preempted_by) {
            (void)t;
            reg_.counter(p + "preempted_by." + name).inc();
        }
        for (const auto& [name, t] : j.blocked_on) {
            (void)t;
            reg_.counter(p + "blocked_on." + name).inc();
        }
        reg_.histogram(p + "blame.exec_ps").record(j.exec);
        reg_.histogram(p + "blame.preempt_ps").record(j.preemption);
        reg_.histogram(p + "blame.block_ps").record(j.blocking);
        reg_.histogram(p + "blame.overhead_ps").record(j.overhead);
        reg_.histogram(p + "blame.interrupt_ps").record(j.interrupt);
    });
}

void MetricsCollector::on_task_state(const r::Task& task, r::TaskState from,
                                     r::TaskState to) {
    if (attr_) attr_->on_task_state(task, from, to);
    if (from == to) return; // creation announcement
    TaskMetrics& m = task_metrics(task);
    const k::Time now = task.processor().simulator().now();
    // Release: leaving a synchronization wait (or creation) for Ready starts
    // a response episode — same rule as trace::ConstraintMonitor.
    if (to == r::TaskState::ready &&
        (from == r::TaskState::waiting || from == r::TaskState::created)) {
        m.activations->inc();
        m.active = true;
        m.released = now;
        return;
    }
    // Completion: the running task blocks again or terminates. A kill/crash
    // leaves the episode open — an aborted activation has no response time.
    if (m.active && from == r::TaskState::running &&
        (to == r::TaskState::waiting || to == r::TaskState::terminated)) {
        if (to == r::TaskState::terminated && (task.killed() || task.crashed())) {
            m.active = false;
            return;
        }
        m.active = false;
        m.response->record(now - m.released);
    }
}

} // namespace rtsc::obs
