#pragma once
// Sim-time metrics sampler: turns instantaneous RTOS/kernel state into
// Perfetto counter tracks ("C" events) through a PerfettoStreamWriter, on a
// configurable simulated-time period.
//
// Per attached processor (counter tracks on the CPU's own process):
//   utilization_pct   busy time over the last period, percent
//   overhead_pct      RTOS overhead time over the last period, percent
//   ready_depth       ready-queue length at the sample instant
//   dispatches        cumulative Ready -> Running transitions
//   power_w           dissipated power over the last period, watts
//                     (only with DVFS enabled: ledger delta / period)
//
// On the auxiliary "kernel" process, the simulator's self-description:
//   delta_cycles, activations, timed_live, timed_tombstones,
//   timed_compactions — all simulated-state quantities, so sampled values
//   are bit-identical across runs and engines.
//
// With Options::include_host (off by default — wall-clock readings are
// nondeterministic, so equivalence tests must not enable it) the kernel's
// host-side phase profile (Simulator::host_profile) is emitted as
//   host.evaluate_ms, host.update_ms, host.delta_notify_ms, host.advance_ms
// letting a trace explain where the simulator itself spent wall time.
// start() enables Simulator::set_host_profiling automatically in that case.
//
// The same readings are optionally mirrored into a MetricsRegistry
// (set_registry) as gauges named "<cpu>.<metric>" / "kernel.<metric>" so
// campaign aggregation sees them too.
//
// The sampler runs as a daemon + background kernel process: it never keeps
// an open-ended run() alive (the run goes dry when only sampler heartbeats
// remain; run_until() samples to its horizon), and sampling itself never
// changes simulated behaviour (it only reads state and waits).

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto_stream.hpp"
#include "rtos/engine.hpp"
#include "rtos/processor.hpp"

namespace rtsc::obs {

class MetricsSampler {
public:
    struct Options {
        /// Simulated-time distance between samples (first sample at t=0).
        kernel::Time period = kernel::Time::ms(1);
        /// Emit host wall-clock phase counters too. Nondeterministic by
        /// nature; keep off for anything that compares traces.
        bool include_host = false;
    };

    explicit MetricsSampler(PerfettoStreamWriter& out)
        : MetricsSampler(out, Options()) {}
    MetricsSampler(PerfettoStreamWriter& out, Options opts);

    /// Sample this processor each period. It must also be attached to the
    /// writer (its counter tracks live on the CPU's pid).
    void attach(rtos::Processor& cpu);

    /// Also mirror every reading into `reg` as gauges. May be nullptr.
    void set_registry(MetricsRegistry* reg) noexcept { registry_ = reg; }

    /// Spawn the sampling daemon on `sim`. Call after every attach and
    /// before the simulation runs; samples fire at t = 0, period, 2*period…
    void start(kernel::Simulator& sim);

    [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }

private:
    struct CpuState {
        rtos::Processor* cpu = nullptr;
        rtos::SchedulerEngine::PhaseStats last;
        rtos::Energy last_energy = 0;
    };

    void sample(kernel::Simulator& sim);
    void record(const rtos::Processor* cpu, kernel::Time at,
                const std::string& name, double value);

    PerfettoStreamWriter& out_;
    Options opts_;
    MetricsRegistry* registry_ = nullptr;
    std::vector<CpuState> cpus_;
    std::uint64_t samples_ = 0;
};

} // namespace rtsc::obs
