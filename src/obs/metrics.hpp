#pragma once
// Metrics registry — counters, gauges and log-bucketed histograms with
// deterministic percentile estimation (p50/p90/p99/max).
//
// Everything recorded here derives from *simulated* time and simulated
// system state, never host wall-clock, so a registry filled by the same
// scenario is bit-identical across runs, worker counts and RTOS engine
// implementations (tests/obs/test_metrics_equivalence.cpp pins the latter).
//
// Histograms use log-linear buckets (exact below 16, then 8 sub-buckets per
// power of two, ~±6% relative resolution) so recording is O(1) with a small
// fixed footprint regardless of sample count; quantiles interpolate inside
// the hit bucket and clamp to the exact observed min/max.
//
// Usage:
//   obs::MetricsRegistry reg;
//   reg.counter("cpu.dispatches").inc();
//   reg.histogram("cpu.sched_latency_ps").record(t.raw_ps());
//   for (const auto& s : reg.snapshot()) ...  // sorted, flattened samples

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace rtsc::obs {

class Counter {
public:
    void inc(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

    /// Combine with a counter recorded elsewhere (another worker process):
    /// the result is exactly the counter a single recorder would hold.
    void merge(const Counter& other) noexcept { value_ += other.value_; }

private:
    std::uint64_t value_ = 0;
};

class Gauge {
public:
    void set(double v) noexcept {
        last_ = v;
        if (samples_ == 0 || v < min_) min_ = v;
        if (samples_ == 0 || v > max_) max_ = v;
        sum_ += v;
        ++samples_;
    }
    [[nodiscard]] double last() const noexcept { return last_; }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double mean() const noexcept {
        return samples_ != 0 ? sum_ / static_cast<double>(samples_) : 0.0;
    }
    [[nodiscard]] std::uint64_t samples() const noexcept { return samples_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Combine with a gauge recorded elsewhere. min/max/sum/samples (and so
    /// mean) merge exactly; `last` has no global order across recorders, so
    /// the other side's last wins when it recorded anything — deterministic
    /// as long as the merge order is (workers are merged by worker index).
    void merge(const Gauge& other) noexcept {
        if (other.samples_ == 0) return;
        if (samples_ == 0 || other.min_ < min_) min_ = other.min_;
        if (samples_ == 0 || other.max_ > max_) max_ = other.max_;
        sum_ += other.sum_;
        samples_ += other.samples_;
        last_ = other.last_;
    }

    /// Rebuild a gauge from transported state (shard wire protocol).
    [[nodiscard]] static Gauge from_parts(double last, double min, double max,
                                          double sum, std::uint64_t samples) noexcept {
        Gauge g;
        g.last_ = last;
        g.min_ = min;
        g.max_ = max;
        g.sum_ = sum;
        g.samples_ = samples;
        return g;
    }

private:
    double last_ = 0, min_ = 0, max_ = 0, sum_ = 0;
    std::uint64_t samples_ = 0;
};

class Histogram {
public:
    /// Values 0..15 get exact buckets; larger ones land in one of 8
    /// sub-buckets per power of two. 496 buckets cover the full uint64 range.
    static constexpr std::size_t kBuckets = 496;

    [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
        if (v < 16) return static_cast<std::size_t>(v);
        const int exp = 63 - countl_zero(v); // MSB position, >= 4
        const auto sub = static_cast<std::size_t>((v >> (exp - 3)) & 0x7u);
        return 16 + static_cast<std::size_t>(exp - 4) * 8 + sub;
    }
    [[nodiscard]] static constexpr std::uint64_t bucket_lo(std::size_t i) noexcept {
        if (i < 16) return i;
        const std::size_t exp = (i - 16) / 8 + 4;
        const std::size_t sub = (i - 16) % 8;
        return (std::uint64_t{1} << exp) | (std::uint64_t{sub} << (exp - 3));
    }
    [[nodiscard]] static constexpr std::uint64_t bucket_hi(std::size_t i) noexcept {
        if (i < 16) return i;
        const std::size_t exp = (i - 16) / 8 + 4;
        return bucket_lo(i) + (std::uint64_t{1} << (exp - 3)) - 1;
    }

    // Inline on purpose: the collector records several histograms per
    // dispatch and per job completion; an out-of-line call here is
    // measurable in the observability-overhead bench.
    void record(std::uint64_t v) {
        if (buckets_.empty()) buckets_.resize(kBuckets, 0);
        ++buckets_[bucket_index(v)];
        if (count_ == 0 || v < min_) min_ = v;
        if (v > max_) max_ = v;
        sum_ += static_cast<double>(v);
        ++count_;
    }
    void record(kernel::Time t) { record(t.raw_ps()); }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t min() const noexcept { return count_ != 0 ? min_ : 0; }
    [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double mean() const noexcept {
        return count_ != 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /// Deterministic quantile estimate, q in [0,1]: linear interpolation
    /// inside the bucket holding the rank, clamped to the observed min/max.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }

    /// Combine with a histogram recorded elsewhere (another worker process).
    /// Log-bucketed histograms merge *exactly*: bucket counts add, min/max/
    /// sum/count combine, so the merged histogram is bit-identical — buckets
    /// and every derived quantile — to one that recorded both sample
    /// streams itself. This is what makes per-worker shard metrics safe to
    /// aggregate without any loss. Bucket adds saturate at UINT32_MAX
    /// rather than wrapping.
    void merge(const Histogram& other);

    /// Raw bucket counts (empty until the first record()).
    [[nodiscard]] const std::vector<std::uint32_t>& bucket_counts() const noexcept {
        return buckets_;
    }

    /// Rebuild a histogram from transported state (shard wire protocol).
    /// `buckets` may be empty (no samples) or kBuckets long.
    [[nodiscard]] static Histogram from_parts(std::vector<std::uint32_t> buckets,
                                              std::uint64_t count,
                                              std::uint64_t min,
                                              std::uint64_t max, double sum);

private:
    // Identical to std::countl_zero; kept as a named helper so bucket_index
    // stays constexpr on toolchains where <bit> is incomplete.
    [[nodiscard]] static constexpr int countl_zero(std::uint64_t v) noexcept {
#if defined(__GNUC__) || defined(__clang__)
        return v == 0 ? 64 : __builtin_clzll(v);
#else
        int n = 0;
        if (v == 0) return 64;
        while ((v & (std::uint64_t{1} << 63)) == 0) {
            v <<= 1;
            ++n;
        }
        return n;
#endif
    }

    std::vector<std::uint32_t> buckets_; ///< lazily sized to kBuckets
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0, max_ = 0;
    double sum_ = 0;
};

/// One flattened snapshot entry ("cpu.sched_latency_ps.p99" -> value).
struct MetricSample {
    std::string name;
    double value = 0;
};

class MetricsRegistry {
public:
    /// Find-or-create. References stay valid for the registry's lifetime.
    [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
    [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
    [[nodiscard]] Histogram& histogram(const std::string& name) { return histograms_[name]; }

    /// Lookup without creation; nullptr when absent.
    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    [[nodiscard]] bool empty() const noexcept {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    /// Flatten everything into name-sorted samples: counters as-is, gauges
    /// as .last/.min/.max/.mean, histograms as .count/.p50/.p90/.p99/.max.
    /// The output is deterministic: same recorded data => same samples.
    [[nodiscard]] std::vector<MetricSample> snapshot() const;

    /// Fold another registry into this one, metric by metric, by name:
    /// counters and histograms combine exactly (see Histogram::merge),
    /// gauges combine min/max/sum/samples. Metrics present only in `other`
    /// are copied. The shard coordinator uses this to aggregate per-worker
    /// registries into one campaign-wide registry; workers ship *deltas*
    /// per heartbeat precisely so each sample is merged exactly once —
    /// merging the same cumulative snapshot twice doubles every counter.
    /// Throws std::logic_error on self-merge (&other == this).
    void merge(const MetricsRegistry& other);

    void clear() {
        counters_.clear();
        gauges_.clear();
        histograms_.clear();
    }

    [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept { return counters_; }
    [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept { return gauges_; }
    [[nodiscard]] const std::map<std::string, Histogram>& histograms() const noexcept { return histograms_; }

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace rtsc::obs
