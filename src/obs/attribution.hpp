#pragma once
// Attribution: causal latency decomposition — "why did this job take 7 ms,
// and who is to blame for the deadline miss?"
//
// An online analyzer fed by the EngineProbe hooks and TaskObserver
// notifications of both scheduler engines. Every job (one response episode,
// same release/completion rule as obs::MetricsCollector and
// trace::ConstraintMonitor) is tiled into contiguous segments at every edge
// that can change who occupies the CPU; each closed segment is charged to
// exactly one causal account:
//
//   exec         the job's own Running time (minus inline RTOS charges)
//   preempted_by[T]  Ready time while task T ran (per-preemptor)
//   interrupt    Ready time while an ISR task ran (Task::isr_task)
//   blocked_on[R]    time in Waiting-for-resource, per relation R
//   overhead     RTOS charges (scheduling / context load / save) inside the
//                response window, plus any residual idle slack (measured
//                zero in practice, kept so the invariant is structural)
//
// Hard invariant: the components sum *bit-exactly* to the observed response
// time — they are an exact tiling of [release, end], not estimates — and the
// decomposition is engine-equivalent (fuzz_engines compares the per-job
// component vectors across both engines bit-for-bit).
//
// On top of the per-job accounting the analyzer tracks mutual-exclusion
// ownership (on_resource_acquire/release) and reconstructs the full blocking
// chain at every Waiting-for-resource entry — victim, owner, what the owner
// itself blocks on, transitively — flagging priority inversions (owner's
// effective priority below the victim's, the paper's Figure 7 scenario) and
// recording middle-priority aggravators that ran during the episode.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/time.hpp"
#include "rtos/probe.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::mcse {
class Relation;
}
namespace rtsc::trace {
class ConstraintMonitor;
}

namespace rtsc::obs {

class Attribution final : public rtos::EngineProbe, public rtos::TaskObserver {
public:
    /// What the job was doing during one tiled segment of its response window.
    enum class SliceKind : std::uint8_t { exec, ready, blocked };

    /// One segment of a job's response window. `culprit` is the runner that
    /// kept the CPU (ready), the resource blocked on (blocked) or empty
    /// (exec / pure-overhead gaps); `overhead` is the RTOS charge time that
    /// fell inside [start, end] and is accounted to the overhead component.
    struct Slice {
        kernel::Time start{};
        kernel::Time end{};
        SliceKind kind = SliceKind::exec;
        std::string culprit;
        kernel::Time overhead{};
    };

    /// Exact decomposition of one completed (or aborted) job.
    struct JobRecord {
        std::string task;
        std::uint64_t index = 0;     ///< activation ordinal, 0-based per task
        kernel::Time release{};
        kernel::Time end{};          ///< completion (or abort) instant
        bool aborted = false;        ///< ended by kill / crash, not completion

        kernel::Time exec{};         ///< own execution
        kernel::Time preemption{};   ///< sum of preempted_by
        kernel::Time blocking{};     ///< sum of blocked_on
        kernel::Time overhead{};     ///< RTOS overhead share (incl. residual)
        kernel::Time interrupt{};    ///< stolen by ISR tasks

        // Per-kind overhead breakdown (sums to overhead together with
        // `residual`).
        kernel::Time ov_scheduling{};
        kernel::Time ov_load{};
        kernel::Time ov_save{};
        kernel::Time ov_switch{};    ///< DVFS frequency-switch charges
        kernel::Time residual{};     ///< ready with idle CPU; expected zero

        // Energy blame (DVFS processors; zero otherwise). Captured from the
        // engine's per-job accumulators at the completion instant — exec
        // covers the job's Running slices, overhead the RTOS charges
        // attributed to it. Exact integers: per-task sums reconcile with the
        // Processor::EnergyLedger bit-for-bit (Σ f·V²·Δt, rtos/dvfs.hpp).
        rtos::Energy energy_exec = 0;
        rtos::Energy energy_overhead = 0;

        /// Per-culprit shares, name-sorted, only non-zero entries.
        std::vector<std::pair<std::string, kernel::Time>> preempted_by;
        std::vector<std::pair<std::string, kernel::Time>> blocked_on;

        [[nodiscard]] kernel::Time response() const noexcept {
            return end - release;
        }
        /// The conservation invariant: bit-equal to response().
        [[nodiscard]] kernel::Time components_sum() const noexcept {
            return exec + preemption + blocking + overhead + interrupt;
        }
    };

    /// One Waiting-for-resource episode with its causal chain.
    struct BlockEpisode {
        std::string victim;
        std::uint64_t job_index = 0; ///< victim's job ordinal
        std::string resource;
        std::string owner;           ///< resource holder at block time ("" = none/hw)
        kernel::Time start{};
        kernel::Time end{};
        int victim_priority = 0;     ///< effective, at block time
        int owner_priority = 0;
        /// victim, owner, owner-of-what-the-owner-blocks-on, ... (depth =
        /// chain.size() - 1).
        std::vector<std::string> chain;
        /// owner_priority < victim_priority at block time: the classic
        /// Figure 7 priority inversion (priority inheritance suppresses it
        /// by boosting the owner first).
        bool inversion = false;
        /// Middle-priority tasks (between owner and victim) that took the
        /// CPU during the episode and so stretched the inversion.
        std::vector<std::string> aggravators;

        [[nodiscard]] kernel::Time duration() const noexcept {
            return end - start;
        }
    };

    /// Why one violated response constraint was late, interval by interval.
    struct DeadlineMissReport {
        std::string constraint;
        std::string task;
        kernel::Time at{};        ///< detection instant (= completion)
        kernel::Time measured{};
        kernel::Time bound{};
        const JobRecord* job = nullptr; ///< matched decomposition (owned by
                                        ///< the Attribution, stable)
        struct PathItem {
            kernel::Time start{};
            kernel::Time duration{};
            std::string culprit;  ///< task / resource / "rtos" / "cpu idle"
            std::string reason;   ///< human-readable classification
        };
        std::vector<PathItem> critical_path;
    };

    /// Zero-allocation view of one completed job, handed to the lite
    /// completion hook straight from the analyzer's compact per-job record —
    /// no strings, no vectors, no JobRecord materialization. `preemptors`
    /// holds every slot that took the CPU during the job's ready windows
    /// (ISR tasks included — split on Task::isr_task); `blockers` are
    /// name-merged resource shares. Pointers are valid only for the duration
    /// of the callback.
    struct CompletionView {
        const rtos::Task* task = nullptr;
        std::uint64_t index = 0;
        kernel::Time release{}, end{};
        bool aborted = false;
        kernel::Time exec{}, preemption{}, blocking{}, overhead{},
            interrupt{};
        rtos::Energy energy_exec = 0;     ///< DVFS: job execution energy
        rtos::Energy energy_overhead = 0; ///< DVFS: attributed overhead energy
        const std::pair<const rtos::Task*, kernel::Time>* preemptors =
            nullptr;
        std::size_t preemptor_count = 0;
        const std::pair<std::string, kernel::Time>* blockers = nullptr;
        std::size_t blocker_count = 0;
    };

    Attribution() = default;
    Attribution(const Attribution&) = delete;
    Attribution& operator=(const Attribution&) = delete;
    ~Attribution() override;

    /// Instrument `cpu` directly: installs this analyzer as the engine probe
    /// and as a task observer. Call before Simulator::run(). To combine with
    /// a MetricsCollector on the same processor (single probe slot), attach
    /// the collector and hand this analyzer to
    /// MetricsCollector::set_attribution instead.
    void attach(rtos::Processor& cpu);

    // ---- results ----
    /// All completed jobs in completion order. JobRecords are materialized
    /// lazily from the analyzer's compact per-job cores on first access (the
    /// hot path never builds the strings/vectors); the returned reference
    /// stays valid and grows as more jobs complete. Call while the scenario's
    /// Task objects are still alive.
    [[nodiscard]] const std::vector<JobRecord>& jobs() const {
        materialize();
        return jobs_;
    }
    [[nodiscard]] const std::vector<BlockEpisode>& episodes() const noexcept {
        return episodes_;
    }
    /// Episodes flagged as priority inversions.
    [[nodiscard]] std::vector<const BlockEpisode*> inversions() const;
    /// Completed jobs of one task, in release order.
    [[nodiscard]] std::vector<const JobRecord*> jobs_for(
        const std::string& task) const;

    /// Materialize the ordered tiling of [release, end] for one recorded job
    /// (the critical path). Built on demand from the job's segment skeleton
    /// and the CPU's runner log — the hot path only appends to those, which
    /// is what keeps the online overhead low; reconstructing here yields the
    /// exact same slices the analyzer used to store eagerly (same
    /// subdivision at every runner edge, same culprit and overhead shares,
    /// zero-width slices dropped). `j` must be an element of jobs().
    [[nodiscard]] std::vector<Slice> slices_for(const JobRecord& j) const;

    /// Match every response violation of `monitor` against the recorded job
    /// decompositions and render its critical path. Pointers into jobs()
    /// stay valid while the Attribution lives.
    [[nodiscard]] std::vector<DeadlineMissReport> miss_reports(
        const trace::ConstraintMonitor& monitor) const;

    /// Invoked on every job completion/abort (after the record is stored).
    /// Forces eager JobRecord materialization on each completion — prefer
    /// set_completion_hook_lite on hot paths.
    void set_completion_hook(std::function<void(const JobRecord&)> hook) {
        on_complete_ = std::move(hook);
    }

    /// Allocation-free variant: receives a CompletionView over the compact
    /// per-job record instead of a materialized JobRecord.
    /// MetricsCollector::set_attribution uses it for the blame
    /// counters/histograms.
    void set_completion_hook_lite(
        std::function<void(const CompletionView&)> hook) {
        on_complete_lite_ = std::move(hook);
    }

    // ---- EngineProbe ----
    void on_block(const rtos::Processor& cpu, const rtos::Task& t,
                  rtos::TaskState kind, const mcse::Relation* on) override;
    void on_wake(const rtos::Processor& cpu, const rtos::Task& t) override;
    void on_resource_acquire(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;
    void on_resource_release(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;

    // ---- TaskObserver ----
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override;
    void on_overhead(const rtos::Processor& cpu, rtos::OverheadKind kind,
                     kernel::Time start, kernel::Time duration,
                     const rtos::Task* about) override;

private:
    static constexpr std::size_t kOvKinds = 4;

    /// Per-processor context: who runs, the exact integral of overhead
    /// charge time per kind (charges never overlap on one CPU and are
    /// announced at their start with the full duration, so the integral up
    /// to any instant inside a charge is exact), and the append-only runner
    /// log the ready-time attribution walks.
    ///
    /// A runner edge appends one log entry — O(1), open jobs sitting in
    /// Ready are never touched. A job's ready window remembers the log
    /// length when it opens and, on close, walks only the edges that were
    /// appended inside the window, charging each span's net time
    /// (duration minus overhead inside the span) to the task that held the
    /// CPU. That walk is the exact per-edge subdivision the eager
    /// implementation performed, with the same uint64 subtractions, so the
    /// per-slot totals are bit-identical; slices_for() reuses the same log
    /// to materialize tilings on demand.
    struct CpuCtx {
        const rtos::Processor* cpu = nullptr;
        const rtos::Task* runner = nullptr;
        kernel::Time ov_done[kOvKinds]{};
        int cur_kind = -1;
        kernel::Time cur_start{};
        kernel::Time cur_end{};

        std::vector<const rtos::Task*> slot_tasks; ///< slot -> task
        kernel::Time ov_done_total{};       ///< sum of ov_done (kept folded)
        int runner_slot = -1;               ///< slot of `runner` (-1 = idle)
        /// Every runner change, in time order; ready-window closes and
        /// slices_for() subdivide at these edges.
        struct RunnerEdge {
            kernel::Time at{};
            const rtos::Task* runner = nullptr;
            int slot = -1;                  ///< slot of `runner` (-1 = idle)
            kernel::Time ov_total{};        ///< total ov integral at `at`
        };
        std::vector<RunnerEdge> log;
        std::size_t open_episodes = 0;      ///< gates the aggravator scan
    };

    struct OvMark {
        kernel::Time upto[kOvKinds]{};
    };

    /// One entry of a job's segment skeleton: where a segment started and
    /// what the job was doing. Segment ends are implicit (the next entry's
    /// start, or the job end); ready segments are subdivided at the CPU's
    /// runner edges only when slices_for() materializes the tiling.
    /// Trivially copyable on purpose — the hot path memcpys these into the
    /// shared arena; the blocked culprit is the Relation pointer (nullptr =
    /// unknown, rendered "?"), its name materialized only in slices_for().
    struct SkelSeg {
        kernel::Time start{};
        kernel::Time ov_at_start{};  ///< CPU total ov integral at `start`
        SliceKind kind = SliceKind::exec;
        const mcse::Relation* rel = nullptr; ///< blocked: the resource
    };

    /// Per-task context: the open job (if any) and its current segment.
    struct TaskCtx {
        const rtos::Task* task = nullptr;
        CpuCtx* cpu = nullptr;
        std::size_t slot = 0;        ///< index into cpu->slot_tasks
        std::uint64_t next_index = 0;

        bool open = false;
        std::uint64_t index = 0;
        kernel::Time release{};

        SliceKind seg = SliceKind::exec;
        kernel::Time seg_start{};
        OvMark seg_mark;
        kernel::Time seg_ov_total{}; ///< sum of seg_mark at segment open
        /// Ready segments: the log length and runner when the window opened;
        /// the close walks the edges appended since.
        std::size_t seg_log_idx = 0;
        int seg_runner_slot = -1;

        const mcse::Relation* blocked_rel = nullptr; ///< set by on_block
        std::size_t episode = SIZE_MAX; ///< open episode index or SIZE_MAX

        // accumulators
        kernel::Time exec, residual;
        kernel::Time ov[kOvKinds];
        std::vector<kernel::Time> pre;  ///< slot -> ready time while it ran
        /// Slots with a non-zero pre entry, in first-charge order; the
        /// finish reads and re-zeroes exactly these instead of sweeping (and
        /// the open does not have to clear the whole vector).
        std::vector<std::uint32_t> pre_touched;
        std::map<std::string, kernel::Time> blocked_on;
        std::vector<SkelSeg> skel;      ///< segment skeleton of the open job
    };

    /// Compact completed-job record — plain data, appended on the hot path;
    /// deliberately small, since writing it is the per-job memory traffic.
    /// The public JobRecord (strings, sorted per-culprit vectors, derived
    /// sums) is materialized from this lazily, in jobs():
    ///   preemption/interrupt = the pre span split on Task::isr_task,
    ///   blocking             = sum of the blk span,
    ///   residual             = response minus every other component (exact
    ///                          by the conservation invariant).
    /// skel_count == 0 means the job had no (non-zero) blocked segment and
    /// its exec/ready tiling is reconstructed from the CPU's runner log
    /// instead of a stored skeleton: a job's segment boundaries inside
    /// (release, end] are exactly the edges that install the task as runner
    /// (exec begins) or remove it (ready begins).
    struct JobCore {
        const rtos::Task* task = nullptr;
        std::uint64_t index = 0;
        kernel::Time release{}, end{};
        kernel::Time exec{};
        kernel::Time ov[kOvKinds]{};
        rtos::Energy energy_exec = 0; ///< job energy at completion (DVFS)
        rtos::Energy energy_ov = 0;
        const CpuCtx* cpu = nullptr;
        kernel::Time ov_at_release{}; ///< CPU total ov integral at release
        kernel::Time ov_at_end{};     ///< CPU total ov integral at job end
        std::uint32_t pre_first = 0, pre_count = 0;  ///< span in pre_pool_
        std::uint32_t blk_first = 0, blk_count = 0;  ///< span in blk_pool_
        std::uint32_t skel_first = 0, skel_count = 0; ///< span in skel_pool_
        bool aborted = false;
    };

    [[nodiscard]] CpuCtx& cpu_ctx(const rtos::Processor& cpu);
    [[nodiscard]] TaskCtx& task_ctx(const rtos::Task& t);
    [[nodiscard]] OvMark ov_upto(const CpuCtx& c, kernel::Time t) const;
    [[nodiscard]] kernel::Time ov_total_upto(const CpuCtx& c,
                                             kernel::Time t) const;

    void begin_segment_with(TaskCtx& c, SliceKind kind, kernel::Time now,
                            const OvMark& m, kernel::Time total);
    void close_segment_with(TaskCtx& c, kernel::Time now, const OvMark& m,
                            kernel::Time total);
    void begin_segment(TaskCtx& c, SliceKind kind, kernel::Time now);
    /// Returns the CPU total ov integral at `now` (the close computes it
    /// anyway; finish_job stores it as the job's ov_at_end).
    kernel::Time close_segment(TaskCtx& c, kernel::Time now);
    /// close + begin sharing one overhead-mark computation — every mid-job
    /// transition is such a pair.
    void switch_segment(TaskCtx& c, SliceKind kind, kernel::Time now);
    void open_job(TaskCtx& c, kernel::Time now);
    void finish_job(TaskCtx& c, kernel::Time now, bool aborted);
    void start_episode(TaskCtx& c, kernel::Time now);
    void end_episode(TaskCtx& c, kernel::Time now);
    /// Build jobs_ (the public JobRecords) from cores_ for every job not yet
    /// materialized. Idempotent; called by every results accessor.
    void materialize() const;

    // deques: contexts cross-reference each other, references must be stable
    std::deque<CpuCtx> cpus_;
    std::deque<TaskCtx> tasks_;
    /// Transposition-ordered task lookup behind the two-entry cache: a hit
    /// swaps one step toward the front, so the handful of live tasks settle
    /// in rough access-frequency order and a miss of the cache pair costs a
    /// few pointer compares instead of a hash probe.
    std::vector<std::pair<const rtos::Task*, TaskCtx*>> task_index_;
    // Two-entry lookup cache: hook bursts alternate between the outgoing
    // and incoming task of a context switch (deque references are stable,
    // so the pointers stay valid).
    const rtos::Task* cached_task_ = nullptr;
    TaskCtx* cached_ctx_ = nullptr;
    const rtos::Task* cached_task2_ = nullptr;
    TaskCtx* cached_ctx2_ = nullptr;
    std::vector<SkelSeg> skel_pool_;  ///< finished jobs' skeletons, packed
    std::vector<JobCore> cores_;      ///< completed jobs, completion order
    /// Per-culprit shares of finished jobs, packed arenas referenced by
    /// JobCore spans. pre_pool_ keeps ISR entries too (the materializer and
    /// the lite hook split on Task::isr_task); blk_pool_ is name-merged and
    /// name-sorted already (map iteration order at finish time).
    std::vector<std::pair<const rtos::Task*, kernel::Time>> pre_pool_;
    std::vector<std::pair<std::string, kernel::Time>> blk_pool_;
    /// materialize() scratch (kept across jobs to avoid per-job allocation)
    mutable std::vector<std::pair<std::string, kernel::Time>> pre_scratch_;
    std::map<const mcse::Relation*, const rtos::Task*> owner_of_;
    mutable std::vector<JobRecord> jobs_;  ///< lazy cache over cores_
    std::vector<BlockEpisode> episodes_;
    std::function<void(const JobRecord&)> on_complete_;
    std::function<void(const CompletionView&)> on_complete_lite_;
    std::vector<rtos::Processor*> attached_;
};

} // namespace rtsc::obs
