#pragma once
// Attribution: causal latency decomposition — "why did this job take 7 ms,
// and who is to blame for the deadline miss?"
//
// An online analyzer fed by the EngineProbe hooks and TaskObserver
// notifications of both scheduler engines. Every job (one response episode,
// same release/completion rule as obs::MetricsCollector and
// trace::ConstraintMonitor) is tiled into contiguous segments at every edge
// that can change who occupies the CPU; each closed segment is charged to
// exactly one causal account:
//
//   exec         the job's own Running time (minus inline RTOS charges)
//   preempted_by[T]  Ready time while task T ran (per-preemptor)
//   interrupt    Ready time while an ISR task ran (Task::isr_task)
//   blocked_on[R]    time in Waiting-for-resource, per relation R
//   overhead     RTOS charges (scheduling / context load / save) inside the
//                response window, plus any residual idle slack (measured
//                zero in practice, kept so the invariant is structural)
//
// Hard invariant: the components sum *bit-exactly* to the observed response
// time — they are an exact tiling of [release, end], not estimates — and the
// decomposition is engine-equivalent (fuzz_engines compares the per-job
// component vectors across both engines bit-for-bit).
//
// On top of the per-job accounting the analyzer tracks mutual-exclusion
// ownership (on_resource_acquire/release) and reconstructs the full blocking
// chain at every Waiting-for-resource entry — victim, owner, what the owner
// itself blocks on, transitively — flagging priority inversions (owner's
// effective priority below the victim's, the paper's Figure 7 scenario) and
// recording middle-priority aggravators that ran during the episode.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "rtos/probe.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::mcse {
class Relation;
}
namespace rtsc::trace {
class ConstraintMonitor;
}

namespace rtsc::obs {

class Attribution final : public rtos::EngineProbe, public rtos::TaskObserver {
public:
    /// What the job was doing during one tiled segment of its response window.
    enum class SliceKind : std::uint8_t { exec, ready, blocked };

    /// One segment of a job's response window. `culprit` is the runner that
    /// kept the CPU (ready), the resource blocked on (blocked) or empty
    /// (exec / pure-overhead gaps); `overhead` is the RTOS charge time that
    /// fell inside [start, end] and is accounted to the overhead component.
    struct Slice {
        kernel::Time start{};
        kernel::Time end{};
        SliceKind kind = SliceKind::exec;
        std::string culprit;
        kernel::Time overhead{};
    };

    /// Exact decomposition of one completed (or aborted) job.
    struct JobRecord {
        std::string task;
        std::uint64_t index = 0;     ///< activation ordinal, 0-based per task
        kernel::Time release{};
        kernel::Time end{};          ///< completion (or abort) instant
        bool aborted = false;        ///< ended by kill / crash, not completion

        kernel::Time exec{};         ///< own execution
        kernel::Time preemption{};   ///< sum of preempted_by
        kernel::Time blocking{};     ///< sum of blocked_on
        kernel::Time overhead{};     ///< RTOS overhead share (incl. residual)
        kernel::Time interrupt{};    ///< stolen by ISR tasks

        // Per-kind overhead breakdown (sums to overhead together with
        // `residual`).
        kernel::Time ov_scheduling{};
        kernel::Time ov_load{};
        kernel::Time ov_save{};
        kernel::Time residual{};     ///< ready with idle CPU; expected zero

        /// Per-culprit shares, name-sorted, only non-zero entries.
        std::vector<std::pair<std::string, kernel::Time>> preempted_by;
        std::vector<std::pair<std::string, kernel::Time>> blocked_on;

        /// Ordered tiling of [release, end] (the critical path).
        std::vector<Slice> slices;

        [[nodiscard]] kernel::Time response() const noexcept {
            return end - release;
        }
        /// The conservation invariant: bit-equal to response().
        [[nodiscard]] kernel::Time components_sum() const noexcept {
            return exec + preemption + blocking + overhead + interrupt;
        }
    };

    /// One Waiting-for-resource episode with its causal chain.
    struct BlockEpisode {
        std::string victim;
        std::uint64_t job_index = 0; ///< victim's job ordinal
        std::string resource;
        std::string owner;           ///< resource holder at block time ("" = none/hw)
        kernel::Time start{};
        kernel::Time end{};
        int victim_priority = 0;     ///< effective, at block time
        int owner_priority = 0;
        /// victim, owner, owner-of-what-the-owner-blocks-on, ... (depth =
        /// chain.size() - 1).
        std::vector<std::string> chain;
        /// owner_priority < victim_priority at block time: the classic
        /// Figure 7 priority inversion (priority inheritance suppresses it
        /// by boosting the owner first).
        bool inversion = false;
        /// Middle-priority tasks (between owner and victim) that took the
        /// CPU during the episode and so stretched the inversion.
        std::vector<std::string> aggravators;

        [[nodiscard]] kernel::Time duration() const noexcept {
            return end - start;
        }
    };

    /// Why one violated response constraint was late, interval by interval.
    struct DeadlineMissReport {
        std::string constraint;
        std::string task;
        kernel::Time at{};        ///< detection instant (= completion)
        kernel::Time measured{};
        kernel::Time bound{};
        const JobRecord* job = nullptr; ///< matched decomposition (owned by
                                        ///< the Attribution, stable)
        struct PathItem {
            kernel::Time start{};
            kernel::Time duration{};
            std::string culprit;  ///< task / resource / "rtos" / "cpu idle"
            std::string reason;   ///< human-readable classification
        };
        std::vector<PathItem> critical_path;
    };

    Attribution() = default;
    Attribution(const Attribution&) = delete;
    Attribution& operator=(const Attribution&) = delete;
    ~Attribution() override;

    /// Instrument `cpu` directly: installs this analyzer as the engine probe
    /// and as a task observer. Call before Simulator::run(). To combine with
    /// a MetricsCollector on the same processor (single probe slot), attach
    /// the collector and hand this analyzer to
    /// MetricsCollector::set_attribution instead.
    void attach(rtos::Processor& cpu);

    // ---- results ----
    [[nodiscard]] const std::vector<JobRecord>& jobs() const noexcept {
        return jobs_;
    }
    [[nodiscard]] const std::vector<BlockEpisode>& episodes() const noexcept {
        return episodes_;
    }
    /// Episodes flagged as priority inversions.
    [[nodiscard]] std::vector<const BlockEpisode*> inversions() const;
    /// Completed jobs of one task, in release order.
    [[nodiscard]] std::vector<const JobRecord*> jobs_for(
        const std::string& task) const;

    /// Match every response violation of `monitor` against the recorded job
    /// decompositions and render its critical path. Pointers into jobs()
    /// stay valid while the Attribution lives.
    [[nodiscard]] std::vector<DeadlineMissReport> miss_reports(
        const trace::ConstraintMonitor& monitor) const;

    /// Invoked on every job completion/abort (after the record is stored).
    /// One hook; MetricsCollector::set_attribution uses it for the blame
    /// counters/histograms.
    void set_completion_hook(std::function<void(const JobRecord&)> hook) {
        on_complete_ = std::move(hook);
    }

    // ---- EngineProbe ----
    void on_block(const rtos::Processor& cpu, const rtos::Task& t,
                  rtos::TaskState kind, const mcse::Relation* on) override;
    void on_wake(const rtos::Processor& cpu, const rtos::Task& t) override;
    void on_resource_acquire(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;
    void on_resource_release(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;

    // ---- TaskObserver ----
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override;
    void on_overhead(const rtos::Processor& cpu, rtos::OverheadKind kind,
                     kernel::Time start, kernel::Time duration,
                     const rtos::Task* about) override;

private:
    static constexpr std::size_t kOvKinds = 3;

    /// Per-processor context: who runs, and the exact integral of overhead
    /// charge time per kind (charges never overlap on one CPU and are
    /// announced at their start with the full duration, so the integral up
    /// to any instant inside a charge is exact).
    struct CpuCtx {
        const rtos::Processor* cpu = nullptr;
        const rtos::Task* runner = nullptr;
        kernel::Time ov_done[kOvKinds]{};
        int cur_kind = -1;
        kernel::Time cur_start{};
        kernel::Time cur_end{};
    };

    struct OvMark {
        kernel::Time upto[kOvKinds]{};
    };

    /// Per-task context: the open job (if any) and its current segment.
    struct TaskCtx {
        const rtos::Task* task = nullptr;
        CpuCtx* cpu = nullptr;
        std::uint64_t next_index = 0;

        bool open = false;
        std::uint64_t index = 0;
        kernel::Time release{};

        SliceKind seg = SliceKind::exec;
        kernel::Time seg_start{};
        const rtos::Task* seg_runner = nullptr;
        OvMark seg_mark;

        const mcse::Relation* blocked_rel = nullptr; ///< set by on_block
        std::size_t episode = SIZE_MAX; ///< open episode index or SIZE_MAX

        // accumulators
        kernel::Time exec, interrupt, residual;
        kernel::Time ov[kOvKinds];
        std::map<std::string, kernel::Time> preempted_by;
        std::map<std::string, kernel::Time> blocked_on;
        std::vector<Slice> slices;
    };

    [[nodiscard]] CpuCtx& cpu_ctx(const rtos::Processor& cpu);
    [[nodiscard]] TaskCtx& task_ctx(const rtos::Task& t);
    [[nodiscard]] OvMark ov_upto(const CpuCtx& c, kernel::Time t) const;

    void begin_segment(TaskCtx& c, SliceKind kind, kernel::Time now);
    void close_segment(TaskCtx& c, kernel::Time now);
    void open_job(TaskCtx& c, kernel::Time now);
    void finish_job(TaskCtx& c, kernel::Time now, bool aborted);
    void start_episode(TaskCtx& c, kernel::Time now);
    void end_episode(TaskCtx& c, kernel::Time now);

    // deques: contexts cross-reference each other, references must be stable
    std::deque<CpuCtx> cpus_;
    std::deque<TaskCtx> tasks_;
    std::map<const mcse::Relation*, const rtos::Task*> owner_of_;
    std::vector<JobRecord> jobs_;
    std::vector<BlockEpisode> episodes_;
    std::function<void(const JobRecord&)> on_complete_;
    std::vector<rtos::Processor*> attached_;
};

} // namespace rtsc::obs
