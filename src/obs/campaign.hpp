#pragma once
// Bridge between the metrics registry and the campaign runner: a scenario
// body fills a MetricsRegistry (usually via MetricsCollector), then exports
// the flattened snapshot into its ScenarioContext so the campaign report —
// and the BENCH_*.json "metrics" aggregates — carry the percentiles.

#include <string>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"

namespace rtsc::obs {

/// Record every snapshot sample of `reg` as a scenario metric, named
/// `<prefix><sample name>`. The snapshot is name-sorted and a pure function
/// of the recorded simulated-time data, so the resulting metric list (and
/// with it the campaign digest) is identical for any worker count.
inline void export_metrics(const MetricsRegistry& reg,
                           campaign::ScenarioContext& ctx,
                           const std::string& prefix = {}) {
    for (const MetricSample& s : reg.snapshot())
        ctx.metric(prefix + s.name, s.value);
}

} // namespace rtsc::obs
