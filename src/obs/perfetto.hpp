#pragma once
// Perfetto / Chrome trace-event exporter: renders a trace::Recorder stream
// as a JSON object ({"traceEvents": [...]}) loadable by ui.perfetto.dev and
// chrome://tracing.
//
// Track layout:
//   pid 1..P        one "process" per attached Processor (process_name)
//     tid 0           RTOS overhead slices ("X", name = overhead kind)
//     tid 1..N        one thread per task (thread_name); complete slices
//                     ("X") for ready / running / waiting / waiting_resource
//                     periods, built from Timeline::segments — created and
//                     terminated stretches are blank, zero-length segments
//                     are dropped
//   pid P+1         "comm" process: one thread per attached Relation,
//                     thread instants ("i", scope "t") per access
//   pid P+2         "events" process: fault / watchdog / deadline markers
//                     (Recorder::mark) as global instants ("i", scope "g")
//
// Timestamps are exact: ts/dur are emitted in microseconds with up to six
// fractional digits (picosecond resolution, the kernel's native unit) via
// trace::format_us — never through a lossy double round-trip. Names pass
// through JSON string escaping, so hostile task/relation names stay valid.
//
// The output is deterministic: identical recorder content yields
// byte-identical JSON.
//
// Lifetime: the Recorder stores pointers into the model (tasks, processors,
// relations). Export while those objects are still alive — i.e. before the
// Processor/Simulator that produced the trace is destroyed.

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/recorder.hpp"

namespace rtsc::obs {

struct PerfettoOptions {
    bool include_comms = true;
    bool include_markers = true;
    /// Pretty-print one event per line (slightly larger, diff-friendly).
    bool one_event_per_line = true;
};

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes). Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Write the whole recorder stream as Chrome trace-event JSON.
void write_perfetto_json(std::ostream& os, const trace::Recorder& rec,
                         const PerfettoOptions& opts = {});

/// Convenience: export to a file. Throws kernel::SimulationError on I/O
/// failure.
void write_perfetto_file(const std::string& path, const trace::Recorder& rec,
                         const PerfettoOptions& opts = {});

} // namespace rtsc::obs
