#pragma once
// Perfetto / Chrome trace-event exporter: renders a trace::Recorder stream
// as a JSON object ({"traceEvents": [...]}) loadable by ui.perfetto.dev and
// chrome://tracing.
//
// Track layout:
//   pid 1..P        one "process" per attached Processor (process_name)
//     tid 0           RTOS overhead slices ("X", name = overhead kind)
//     tid 1..N        one thread per task (thread_name); complete slices
//                     ("X") for ready / running / waiting / waiting_resource
//                     periods, built from Timeline::segments — created and
//                     terminated stretches are blank, zero-length segments
//                     are dropped
//   pid P+1         "comm" process: one thread per attached Relation,
//                     thread instants ("i", scope "t") per access
//   pid P+2         "events" process: fault / watchdog / deadline markers
//                     (Recorder::mark) as global instants ("i", scope "g")
//
// With an Attribution analyzer (PerfettoOptions::attribution) each task
// additionally gets a "<task>.jobs" track (tid N+1+j on its processor): one
// complete slice per job carrying the full blame decomposition as args
// (exec/preempt/block/overhead/interrupt shares in exact picoseconds, plus
// per-culprit maps), "blocking_chain" instants per Waiting-for-resource
// episode (chain, owner, inversion flag, aggravators) and legacy flow events
// ("s"/"f", cat "blocking") from the culprit's state track to the victim's.
// PerfettoOptions::misses adds "deadline_miss" instants with the per-
// interval critical path (see Attribution::miss_reports).
//
// Timestamps are exact: ts/dur are emitted in microseconds with up to six
// fractional digits (picosecond resolution, the kernel's native unit) via
// trace::format_us — never through a lossy double round-trip. Names pass
// through JSON string escaping, so hostile task/relation names stay valid.
//
// The output is deterministic: identical recorder content yields
// byte-identical JSON.
//
// Lifetime: the Recorder stores pointers into the model (tasks, processors,
// relations). Export while those objects are still alive — i.e. before the
// Processor/Simulator that produced the trace is destroyed.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/attribution.hpp"
#include "trace/recorder.hpp"

namespace rtsc::obs {

struct PerfettoOptions {
    bool include_comms = true;
    bool include_markers = true;
    /// Pretty-print one event per line (slightly larger, diff-friendly).
    bool one_event_per_line = true;
    /// When set, per-job blame slices, blocking-chain instants and
    /// culprit->victim flow events are emitted (see header comment). The
    /// analyzer must have observed the same processors as the recorder.
    const Attribution* attribution = nullptr;
    /// When set (together with attribution), deadline-miss instants with
    /// their critical path are emitted on the victims' jobs tracks.
    const std::vector<Attribution::DeadlineMissReport>* misses = nullptr;
};

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes). Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Write the whole recorder stream as Chrome trace-event JSON.
void write_perfetto_json(std::ostream& os, const trace::Recorder& rec,
                         const PerfettoOptions& opts = {});

/// Convenience: export to a file. Throws kernel::SimulationError on I/O
/// failure.
void write_perfetto_file(const std::string& path, const trace::Recorder& rec,
                         const PerfettoOptions& opts = {});

} // namespace rtsc::obs
