#include "obs/perfetto_format.hpp"

#include <cstdio>

#include "obs/perfetto.hpp"
#include "rtos/dvfs.hpp"
#include "trace/csv.hpp"

namespace rtsc::obs::pfmt {

namespace k = rtsc::kernel;

namespace {

/// Energy in joules as a round-trippable JSON number.
std::string format_joules(rtos::Energy e) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", rtos::energy_to_joules(e));
    return buf;
}

std::string ps(k::Time t) { return std::to_string(t.raw_ps()); }

std::string time_map(const std::vector<std::pair<std::string, k::Time>>& m) {
    std::string out = "{";
    bool first = true;
    for (const auto& [name, t] : m) {
        if (!first) out += ", ";
        first = false;
        out += "\"" + json_escape(name) + "\": " + ps(t);
    }
    return out + "}";
}

std::string str_list(const std::vector<std::string>& v) {
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + json_escape(v[i]) + "\"";
    }
    return out + "]";
}

} // namespace

std::string meta_process(int pid, std::string_view name) {
    std::string e = "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": 0, \"args\": {\"name\": \"";
    e += json_escape(name);
    e += "\"}}";
    return e;
}

std::string meta_thread(int pid, int tid, std::string_view name) {
    std::string e = "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": ";
    e += std::to_string(tid);
    e += ", \"args\": {\"name\": \"";
    e += json_escape(name);
    e += "\"}}";
    return e;
}

std::string slice(int pid, int tid, k::Time at, k::Time dur,
                  std::string_view cat, std::string_view name,
                  const std::string& args_json) {
    std::string e = "{\"name\": \"";
    e += json_escape(name);
    e += "\", \"cat\": \"";
    e += json_escape(cat);
    e += "\", \"ph\": \"X\", \"ts\": ";
    e += trace::format_us(at);
    e += ", \"dur\": ";
    e += trace::format_us(dur);
    e += ", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": ";
    e += std::to_string(tid);
    if (!args_json.empty()) {
        e += ", \"args\": ";
        e += args_json;
    }
    e += '}';
    return e;
}

std::string instant(int pid, int tid, k::Time at, char scope,
                    std::string_view cat, std::string_view name,
                    const std::string& args_json) {
    std::string e = "{\"name\": \"";
    e += json_escape(name);
    e += "\", \"cat\": \"";
    e += json_escape(cat);
    e += "\", \"ph\": \"i\", \"s\": \"";
    e += scope;
    e += "\", \"ts\": ";
    e += trace::format_us(at);
    e += ", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": ";
    e += std::to_string(tid);
    if (!args_json.empty()) {
        e += ", \"args\": ";
        e += args_json;
    }
    e += '}';
    return e;
}

std::string counter(int pid, k::Time at, std::string_view name, double value) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    std::string e = "{\"name\": \"";
    e += json_escape(name);
    e += "\", \"ph\": \"C\", \"ts\": ";
    e += trace::format_us(at);
    e += ", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": 0, \"args\": {\"value\": ";
    e += buf;
    e += "}}";
    return e;
}

std::string flow_start(std::uint64_t id, k::Time at, int pid, int tid) {
    std::string e =
        "{\"name\": \"blocking\", \"cat\": \"blocking\", \"ph\": \"s\", "
        "\"id\": ";
    e += std::to_string(id);
    e += ", \"ts\": ";
    e += trace::format_us(at);
    e += ", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": ";
    e += std::to_string(tid);
    e += '}';
    return e;
}

std::string flow_finish(std::uint64_t id, k::Time at, int pid, int tid) {
    std::string e =
        "{\"name\": \"blocking\", \"cat\": \"blocking\", \"ph\": \"f\", "
        "\"bp\": \"e\", \"id\": ";
    e += std::to_string(id);
    e += ", \"ts\": ";
    e += trace::format_us(at);
    e += ", \"pid\": ";
    e += std::to_string(pid);
    e += ", \"tid\": ";
    e += std::to_string(tid);
    e += '}';
    return e;
}

void emit_attribution(const std::function<void(std::string)>& sink,
                      const TrackIndex& tracks, const Attribution& attribution,
                      const std::vector<Attribution::DeadlineMissReport>* misses) {
    // One complete slice per job on the task's jobs track, blame
    // decomposition as args in exact picoseconds. Jobs of one task are
    // recorded in completion order == release order, so each track stays
    // monotonic; zero-response jobs are dropped (the validator rejects
    // zero-width slices) — their decomposition is all-zero anyway.
    for (const auto& [name, tr] : tracks) {
        for (const auto* j : attribution.jobs_for(name)) {
            if (j->response().is_zero()) continue;
            std::string args = "{\"task\": \"" + json_escape(j->task) +
                               "\", \"index\": " + std::to_string(j->index) +
                               ", \"release_ps\": " + ps(j->release) +
                               ", \"end_ps\": " + ps(j->end) +
                               ", \"response_ps\": " + ps(j->response()) +
                               ", \"aborted\": " +
                               (j->aborted ? "true" : "false") +
                               ", \"exec_ps\": " + ps(j->exec) +
                               ", \"preempt_ps\": " + ps(j->preemption) +
                               ", \"block_ps\": " + ps(j->blocking) +
                               ", \"overhead_ps\": " + ps(j->overhead) +
                               ", \"interrupt_ps\": " + ps(j->interrupt) +
                               ", \"ov_sched_ps\": " + ps(j->ov_scheduling) +
                               ", \"ov_load_ps\": " + ps(j->ov_load) +
                               ", \"ov_save_ps\": " + ps(j->ov_save) +
                               ", \"ov_switch_ps\": " + ps(j->ov_switch) +
                               ", \"residual_ps\": " + ps(j->residual) +
                               // Raw model units as strings (128-bit,
                               // exact); joules as doubles for humans.
                               ", \"energy_exec_fj\": \"" +
                               rtos::energy_to_string(j->energy_exec) +
                               "\", \"energy_overhead_fj\": \"" +
                               rtos::energy_to_string(j->energy_overhead) +
                               "\", \"energy_exec_j\": " +
                               format_joules(j->energy_exec) +
                               ", \"energy_overhead_j\": " +
                               format_joules(j->energy_overhead) +
                               ", \"preempted_by\": " +
                               time_map(j->preempted_by) +
                               ", \"blocked_on\": " +
                               time_map(j->blocked_on) + "}";
            sink(slice(tr.pid, tr.jobs_tid, j->release, j->response(), "job",
                       "job #" + std::to_string(j->index) +
                           (j->aborted ? " (aborted)" : ""),
                       args));
        }
    }

    // Blocking episodes: a chain instant on the victim's jobs track plus
    // a culprit -> victim flow ("s" on the owner's state track, "f" on
    // the victim's).
    std::uint64_t flow_id = 1;
    for (const auto& e : attribution.episodes()) {
        const auto vit = tracks.find(e.victim);
        if (vit == tracks.end()) continue;
        std::string args =
            "{\"victim\": \"" + json_escape(e.victim) +
            "\", \"job\": " + std::to_string(e.job_index) +
            ", \"resource\": \"" + json_escape(e.resource) +
            "\", \"owner\": \"" + json_escape(e.owner) +
            "\", \"victim_priority\": " + std::to_string(e.victim_priority) +
            ", \"owner_priority\": " + std::to_string(e.owner_priority) +
            ", \"duration_ps\": " + ps(e.duration()) +
            ", \"inversion\": " + (e.inversion ? "true" : "false") +
            ", \"chain\": " + str_list(e.chain) +
            ", \"aggravators\": " + str_list(e.aggravators) + "}";
        sink(instant(vit->second.pid, vit->second.jobs_tid, e.start, 't',
                     "blocking_chain",
                     "blocked on " + e.resource +
                         (e.inversion ? " [inversion]" : ""),
                     args));
        const auto oit = tracks.find(e.owner);
        if (oit == tracks.end()) continue;
        sink(flow_start(flow_id, e.start, oit->second.pid,
                        oit->second.state_tid));
        sink(flow_finish(flow_id, e.end, vit->second.pid,
                         vit->second.state_tid));
        ++flow_id;
    }

    // Deadline misses with their critical path.
    if (misses != nullptr) {
        for (const auto& m : *misses) {
            const auto vit = tracks.find(m.task);
            if (vit == tracks.end()) continue;
            std::string args =
                "{\"task\": \"" + json_escape(m.task) +
                "\", \"constraint\": \"" + json_escape(m.constraint) +
                "\", \"measured_ps\": " + ps(m.measured) +
                ", \"bound_ps\": " + ps(m.bound) + ", \"critical_path\": [";
            for (std::size_t i = 0; i < m.critical_path.size(); ++i) {
                const auto& item = m.critical_path[i];
                if (i != 0) args += ", ";
                args += "{\"start_ps\": " + ps(item.start) +
                        ", \"dur_ps\": " + ps(item.duration) +
                        ", \"culprit\": \"" + json_escape(item.culprit) +
                        "\", \"reason\": \"" + json_escape(item.reason) +
                        "\"}";
            }
            args += "]}";
            sink(instant(vit->second.pid, vit->second.jobs_tid, m.at, 't',
                         "deadline_miss", "deadline miss: " + m.constraint,
                         args));
        }
    }
}

} // namespace rtsc::obs::pfmt
