#include "obs/attribution.hpp"

#include <algorithm>

#include "kernel/simulator.hpp"
#include "mcse/relation.hpp"
#include "rtos/engine.hpp"
#include "trace/constraints.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;

Attribution::~Attribution() {
    for (r::Processor* cpu : attached_)
        if (cpu->engine().probe() == this) cpu->engine().set_probe(nullptr);
}

void Attribution::attach(r::Processor& cpu) {
    cpu.engine().set_probe(this);
    cpu.add_observer(*this);
    attached_.push_back(&cpu);
    (void)cpu_ctx(cpu);
}

// ------------------------------------------------------------------ contexts

Attribution::CpuCtx& Attribution::cpu_ctx(const r::Processor& cpu) {
    for (auto& c : cpus_)
        if (c.cpu == &cpu) return c;
    cpus_.emplace_back();
    cpus_.back().cpu = &cpu;
    return cpus_.back();
}

Attribution::TaskCtx& Attribution::task_ctx(const r::Task& t) {
    for (auto& c : tasks_)
        if (c.task == &t) return c;
    tasks_.emplace_back();
    TaskCtx& c = tasks_.back();
    c.task = &t;
    c.cpu = &cpu_ctx(t.processor());
    return c;
}

// ----------------------------------------------------- overhead integration

Attribution::OvMark Attribution::ov_upto(const CpuCtx& c, k::Time t) const {
    OvMark m;
    for (std::size_t i = 0; i < kOvKinds; ++i) m.upto[i] = c.ov_done[i];
    if (c.cur_kind >= 0 && t > c.cur_start) {
        const k::Time upper = std::min(t, c.cur_end);
        m.upto[static_cast<std::size_t>(c.cur_kind)] +=
            upper - c.cur_start;
    }
    return m;
}

void Attribution::on_overhead(const r::Processor& cpu, r::OverheadKind kind,
                              k::Time start, k::Time duration, const r::Task*) {
    CpuCtx& c = cpu_ctx(cpu);
    // Fold the previous charge: charges never overlap per CPU, so by the
    // time a new one is announced the old one has fully elapsed.
    if (c.cur_kind >= 0)
        c.ov_done[static_cast<std::size_t>(c.cur_kind)] +=
            c.cur_end - c.cur_start;
    c.cur_kind = static_cast<int>(kind);
    c.cur_start = start;
    c.cur_end = start + duration;
}

// ------------------------------------------------------------- segmentation

void Attribution::begin_segment(TaskCtx& c, SliceKind kind, k::Time now) {
    c.seg = kind;
    c.seg_start = now;
    c.seg_runner = c.cpu->runner;
    c.seg_mark = ov_upto(*c.cpu, now);
}

void Attribution::close_segment(TaskCtx& c, k::Time now) {
    const k::Time dur = now - c.seg_start;
    Slice s;
    s.start = c.seg_start;
    s.end = now;
    s.kind = c.seg;
    if (c.seg == SliceKind::blocked) {
        // The whole wait is the resource's fault, including any RTOS
        // charges that happen to run on the CPU meanwhile: the job is off
        // the CPU for exactly this long because of the resource.
        if (c.blocked_rel != nullptr) {
            s.culprit = c.blocked_rel->name();
            if (!dur.is_zero()) c.blocked_on[s.culprit] += dur;
        } else if (!dur.is_zero()) {
            c.blocked_on["?"] += dur;
            s.culprit = "?";
        }
        if (!dur.is_zero()) c.slices.push_back(std::move(s));
        return;
    }
    // Exact overhead time inside [seg_start, now] on this CPU, per kind.
    const OvMark m = ov_upto(*c.cpu, now);
    k::Time ov_total{};
    for (std::size_t i = 0; i < kOvKinds; ++i) {
        const k::Time d = m.upto[i] - c.seg_mark.upto[i];
        c.ov[i] += d;
        ov_total += d;
    }
    const k::Time rest = dur - ov_total;
    s.overhead = ov_total;
    if (c.seg == SliceKind::exec) {
        c.exec += rest;
    } else if (!rest.is_zero()) {
        if (c.seg_runner != nullptr) {
            if (c.seg_runner->isr_task()) {
                c.interrupt += rest;
                s.culprit = c.seg_runner->name();
            } else {
                s.culprit = c.seg_runner->name();
                c.preempted_by[s.culprit] += rest;
            }
        } else {
            c.residual += rest;
        }
    }
    if (!dur.is_zero()) c.slices.push_back(std::move(s));
}

// ------------------------------------------------------------ job lifecycle

void Attribution::open_job(TaskCtx& c, k::Time now) {
    c.open = true;
    c.index = c.next_index++;
    c.release = now;
    c.exec = c.interrupt = c.residual = k::Time::zero();
    for (auto& o : c.ov) o = k::Time::zero();
    c.preempted_by.clear();
    c.blocked_on.clear();
    c.slices.clear();
    begin_segment(c, SliceKind::ready, now);
}

void Attribution::finish_job(TaskCtx& c, k::Time now, bool aborted) {
    close_segment(c, now);
    if (c.episode != SIZE_MAX) end_episode(c, now);
    c.open = false;

    JobRecord j;
    j.task = c.task->name();
    j.index = c.index;
    j.release = c.release;
    j.end = now;
    j.aborted = aborted;
    j.exec = c.exec;
    j.interrupt = c.interrupt;
    j.residual = c.residual;
    j.ov_scheduling = c.ov[static_cast<std::size_t>(r::OverheadKind::scheduling)];
    j.ov_load = c.ov[static_cast<std::size_t>(r::OverheadKind::context_load)];
    j.ov_save = c.ov[static_cast<std::size_t>(r::OverheadKind::context_save)];
    j.overhead = j.ov_scheduling + j.ov_load + j.ov_save + j.residual;
    for (const auto& [name, t] : c.preempted_by) {
        j.preemption += t;
        j.preempted_by.emplace_back(name, t);
    }
    for (const auto& [name, t] : c.blocked_on) {
        j.blocking += t;
        j.blocked_on.emplace_back(name, t);
    }
    j.slices = std::move(c.slices);
    c.slices.clear();
    jobs_.push_back(std::move(j));
    if (on_complete_) on_complete_(jobs_.back());
}

// ---------------------------------------------------------- blocking chains

void Attribution::start_episode(TaskCtx& c, k::Time now) {
    BlockEpisode e;
    e.victim = c.task->name();
    e.job_index = c.index;
    e.resource = c.blocked_rel != nullptr ? c.blocked_rel->name() : "?";
    e.start = now;
    e.end = now;
    e.victim_priority = c.task->effective_priority();

    const auto it = owner_of_.find(c.blocked_rel);
    const r::Task* owner =
        it != owner_of_.end() ? it->second : nullptr;
    if (owner != nullptr) {
        e.owner = owner->name();
        e.owner_priority = owner->effective_priority();
        e.inversion = e.owner_priority < e.victim_priority;
    }
    // Follow the chain: what does the owner itself block on, and who owns
    // that — transitively (nested critical sections give depth >= 2).
    e.chain.push_back(e.victim);
    const r::Task* link = owner;
    for (std::size_t depth = 0; link != nullptr && depth < 16; ++depth) {
        if (std::find(e.chain.begin(), e.chain.end(), link->name()) !=
            e.chain.end())
            break; // ownership cycle (deadlock): stop at the repeat
        e.chain.push_back(link->name());
        const mcse::Relation* next_rel = nullptr;
        for (const auto& tc : tasks_)
            if (tc.task == link) {
                next_rel = tc.blocked_rel;
                break;
            }
        if (next_rel == nullptr) break;
        const auto oit = owner_of_.find(next_rel);
        link = oit != owner_of_.end() ? oit->second : nullptr;
    }
    c.episode = episodes_.size();
    episodes_.push_back(std::move(e));
}

void Attribution::end_episode(TaskCtx& c, k::Time now) {
    episodes_[c.episode].end = now;
    c.episode = SIZE_MAX;
}

// ------------------------------------------------------------- probe hooks

void Attribution::on_block(const r::Processor&, const r::Task& t,
                           r::TaskState kind, const mcse::Relation* on) {
    TaskCtx& c = task_ctx(t);
    c.blocked_rel = kind == r::TaskState::waiting_resource ? on : nullptr;
}

void Attribution::on_wake(const r::Processor&, const r::Task&) {
    // The Ready transition itself (on_task_state) carries the segmentation;
    // nothing extra to do here.
}

void Attribution::on_resource_acquire(const r::Processor&, const r::Task& t,
                                      const mcse::Relation& r) {
    owner_of_[&r] = &t;
}

void Attribution::on_resource_release(const r::Processor&, const r::Task& t,
                                      const mcse::Relation& r) {
    const auto it = owner_of_.find(&r);
    if (it != owner_of_.end() && it->second == &t) owner_of_.erase(it);
}

// --------------------------------------------------------- state transitions

void Attribution::on_task_state(const r::Task& task, r::TaskState from,
                                r::TaskState to) {
    if (from == to) return; // creation announcement
    TaskCtx& c = task_ctx(task);
    CpuCtx& cpu = *c.cpu;
    const k::Time now = task.processor().simulator().now();

    // 1. Runner edges: when the CPU's occupant changes, every other open job
    // sitting in Ready on this CPU closes its segment against the old runner
    // and reopens against the new one (the runner is constant within a
    // segment by construction).
    const bool runner_edge = from == r::TaskState::running ||
                             to == r::TaskState::running;
    if (runner_edge) {
        for (auto& o : tasks_) {
            if (&o == &c || !o.open || o.cpu != &cpu) continue;
            if (o.seg == SliceKind::ready) close_segment(o, now);
        }
        cpu.runner = to == r::TaskState::running ? &task : nullptr;
        for (auto& o : tasks_) {
            if (&o == &c || !o.open || o.cpu != &cpu) continue;
            if (o.seg == SliceKind::ready)
                begin_segment(o, SliceKind::ready, now);
        }
        // A middle-priority task taking the CPU while someone sits in a
        // priority-inverted wait stretches the inversion: record it.
        if (cpu.runner != nullptr) {
            for (auto& o : tasks_) {
                if (o.episode == SIZE_MAX || o.cpu != &cpu) continue;
                BlockEpisode& e = episodes_[o.episode];
                const int p = cpu.runner->effective_priority();
                if (cpu.runner != o.task && e.owner != cpu.runner->name() &&
                    p > e.owner_priority && p < e.victim_priority &&
                    std::find(e.aggravators.begin(), e.aggravators.end(),
                              cpu.runner->name()) == e.aggravators.end())
                    e.aggravators.push_back(cpu.runner->name());
            }
        }
    }

    // 2. The task's own job transitions.

    // Release: leaving a synchronization wait (or creation) for Ready opens
    // a job — same rule as MetricsCollector / ConstraintMonitor.
    if (to == r::TaskState::ready &&
        (from == r::TaskState::waiting || from == r::TaskState::created)) {
        if (c.open) {
            // Defensive: an episode convention violation would leak a job;
            // close it as aborted rather than corrupt the tiling.
            finish_job(c, now, /*aborted=*/true);
        }
        open_job(c, now);
        return;
    }
    if (!c.open) {
        if (c.blocked_rel != nullptr && to != r::TaskState::waiting_resource)
            c.blocked_rel = nullptr;
        return;
    }

    switch (to) {
        case r::TaskState::running:
            close_segment(c, now);
            begin_segment(c, SliceKind::exec, now);
            return;
        case r::TaskState::ready:
            // Preemption / yield, or waking from a resource wait.
            close_segment(c, now);
            if (from == r::TaskState::waiting_resource) {
                end_episode(c, now);
                c.blocked_rel = nullptr;
            }
            begin_segment(c, SliceKind::ready, now);
            return;
        case r::TaskState::waiting_resource:
            // Mid-job mutual-exclusion block (blocked_rel was set by
            // on_block just before this transition).
            close_segment(c, now);
            begin_segment(c, SliceKind::blocked, now);
            start_episode(c, now);
            return;
        case r::TaskState::waiting:
            // Completion: the episode convention ends a job when the task
            // blocks on synchronization again.
            finish_job(c, now, /*aborted=*/false);
            c.blocked_rel = nullptr;
            return;
        case r::TaskState::terminated:
            finish_job(c, now,
                       /*aborted=*/task.killed() || task.crashed());
            c.blocked_rel = nullptr;
            return;
        case r::TaskState::created:
            return; // restart bookkeeping, not a job edge
    }
}

// ----------------------------------------------------------------- queries

std::vector<const Attribution::BlockEpisode*> Attribution::inversions() const {
    std::vector<const BlockEpisode*> out;
    for (const auto& e : episodes_)
        if (e.inversion) out.push_back(&e);
    return out;
}

std::vector<const Attribution::JobRecord*> Attribution::jobs_for(
    const std::string& task) const {
    std::vector<const JobRecord*> out;
    for (const auto& j : jobs_)
        if (j.task == task) out.push_back(&j);
    return out;
}

std::vector<Attribution::DeadlineMissReport> Attribution::miss_reports(
    const trace::ConstraintMonitor& monitor) const {
    std::vector<DeadlineMissReport> out;
    for (const auto& v : monitor.violations()) {
        if (v.task == nullptr) continue; // latency rules have no job
        DeadlineMissReport r;
        r.constraint = v.constraint;
        r.task = v.task->name();
        r.at = v.at;
        r.measured = v.measured;
        r.bound = v.bound;
        // A response violation fires at the completion instant with the
        // job's response time: match on (task, end).
        for (const auto& j : jobs_) {
            if (j.task == r.task && j.end == v.at &&
                j.response() == v.measured) {
                r.job = &j;
                break;
            }
        }
        if (r.job != nullptr) {
            for (const Slice& s : r.job->slices) {
                DeadlineMissReport::PathItem item;
                item.start = s.start;
                item.duration = s.end - s.start;
                switch (s.kind) {
                    case SliceKind::exec:
                        item.culprit = r.task;
                        item.reason = "executing";
                        break;
                    case SliceKind::ready:
                        if (!s.culprit.empty()) {
                            item.culprit = s.culprit;
                            item.reason = "preempted by " + s.culprit;
                        } else {
                            item.culprit = "rtos";
                            item.reason = "rtos overhead";
                        }
                        break;
                    case SliceKind::blocked:
                        item.culprit = s.culprit;
                        item.reason = "blocked on " + s.culprit;
                        break;
                }
                r.critical_path.push_back(std::move(item));
            }
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace rtsc::obs
