#include "obs/attribution.hpp"

#include <algorithm>

#include "kernel/simulator.hpp"
#include "mcse/relation.hpp"
#include "rtos/engine.hpp"
#include "trace/constraints.hpp"

namespace rtsc::obs {

namespace k = rtsc::kernel;
namespace r = rtsc::rtos;

Attribution::~Attribution() {
    for (r::Processor* cpu : attached_)
        if (cpu->engine().probe() == this) cpu->engine().set_probe(nullptr);
}

void Attribution::attach(r::Processor& cpu) {
    cpu.engine().set_probe(this);
    cpu.add_observer(*this);
    attached_.push_back(&cpu);
    (void)cpu_ctx(cpu);
}

// ------------------------------------------------------------------ contexts

Attribution::CpuCtx& Attribution::cpu_ctx(const r::Processor& cpu) {
    for (auto& c : cpus_)
        if (c.cpu == &cpu) return c;
    cpus_.emplace_back();
    cpus_.back().cpu = &cpu;
    cpus_.back().log.reserve(1024);
    return cpus_.back();
}

Attribution::TaskCtx& Attribution::task_ctx(const r::Task& t) {
    if (cached_task_ == &t) return *cached_ctx_;
    if (cached_task2_ == &t) {
        // Promote: a context switch alternates between two tasks, so the
        // pair covers the common hook bursts.
        std::swap(cached_task_, cached_task2_);
        std::swap(cached_ctx_, cached_ctx2_);
        return *cached_ctx_;
    }
    TaskCtx* c = nullptr;
    for (std::size_t i = 0; i < task_index_.size(); ++i) {
        if (task_index_[i].first != &t) continue;
        c = task_index_[i].second;
        if (i > 0) std::swap(task_index_[i - 1], task_index_[i]);
        break;
    }
    if (c == nullptr) {
        tasks_.emplace_back();
        c = &tasks_.back();
        c->task = &t;
        c->cpu = &cpu_ctx(t.processor());
        c->slot = c->cpu->slot_tasks.size();
        c->cpu->slot_tasks.push_back(&t);
        task_index_.emplace_back(&t, c);
    }
    cached_task2_ = cached_task_;
    cached_ctx2_ = cached_ctx_;
    cached_task_ = &t;
    cached_ctx_ = c;
    return *c;
}

// ----------------------------------------------------- overhead integration

Attribution::OvMark Attribution::ov_upto(const CpuCtx& c, k::Time t) const {
    OvMark m;
    for (std::size_t i = 0; i < kOvKinds; ++i) m.upto[i] = c.ov_done[i];
    if (c.cur_kind >= 0 && t > c.cur_start) {
        const k::Time upper = std::min(t, c.cur_end);
        m.upto[static_cast<std::size_t>(c.cur_kind)] +=
            upper - c.cur_start;
    }
    return m;
}

kernel::Time Attribution::ov_total_upto(const CpuCtx& c, k::Time t) const {
    k::Time total = c.ov_done_total;
    if (c.cur_kind >= 0 && t > c.cur_start)
        total += std::min(t, c.cur_end) - c.cur_start;
    return total;
}

void Attribution::on_overhead(const r::Processor& cpu, r::OverheadKind kind,
                              k::Time start, k::Time duration, const r::Task*) {
    CpuCtx& c = cpu_ctx(cpu);
    // Fold the previous charge: charges never overlap per CPU, so by the
    // time a new one is announced the old one has fully elapsed.
    if (c.cur_kind >= 0) {
        const k::Time d = c.cur_end - c.cur_start;
        c.ov_done[static_cast<std::size_t>(c.cur_kind)] += d;
        c.ov_done_total += d;
    }
    c.cur_kind = static_cast<int>(kind);
    c.cur_start = start;
    c.cur_end = start + duration;
}

// ------------------------------------------------------------- segmentation

void Attribution::begin_segment_with(TaskCtx& c, SliceKind kind, k::Time now,
                                     const OvMark& m, k::Time total) {
    c.seg = kind;
    c.seg_start = now;
    c.seg_mark = m;
    c.seg_ov_total = total;
    SkelSeg s;
    s.start = now;
    s.ov_at_start = total;
    s.kind = kind;
    if (kind == SliceKind::blocked) s.rel = c.blocked_rel;
    c.skel.push_back(s);
    if (kind == SliceKind::ready) {
        // Remember where the runner log stands; the close walks only the
        // edges appended inside the window.
        c.seg_log_idx = c.cpu->log.size();
        c.seg_runner_slot = c.cpu->runner_slot;
    }
}

void Attribution::close_segment_with(TaskCtx& c, k::Time now, const OvMark& m,
                                     k::Time total_now) {
    const k::Time dur = now - c.seg_start;
    if (c.seg == SliceKind::blocked) {
        // The whole wait is the resource's fault, including any RTOS
        // charges that happen to run on the CPU meanwhile: the job is off
        // the CPU for exactly this long because of the resource.
        if (!dur.is_zero())
            c.blocked_on[c.blocked_rel != nullptr ? c.blocked_rel->name()
                                                  : "?"] += dur;
        return;
    }
    // Exact overhead time inside [seg_start, now] on this CPU, per kind.
    k::Time ov_total{};
    for (std::size_t i = 0; i < kOvKinds; ++i) {
        const k::Time d = m.upto[i] - c.seg_mark.upto[i];
        c.ov[i] += d;
        ov_total += d;
    }
    const k::Time rest = dur - ov_total;
    if (c.seg == SliceKind::exec) {
        c.exec += rest;
        return;
    }
    // Ready: walk the runner edges appended inside the window, charging each
    // span's net time (duration minus the overhead integral's advance) to
    // the task that held the CPU — the exact per-edge subdivision, only
    // deferred to the close. Zero-length spans contribute zero (the ov
    // integral cannot advance without elapsed time), so same-instant edge
    // ordering is immaterial.
    const CpuCtx& cpu = *c.cpu;
    if (c.pre.size() < cpu.slot_tasks.size())
        c.pre.resize(cpu.slot_tasks.size());
    k::Time attributed{};
    const auto charge = [&c, &attributed](int slot, k::Time d) {
        if (d.is_zero()) return;
        const auto s = static_cast<std::size_t>(slot);
        if (c.pre[s].is_zero())
            c.pre_touched.push_back(static_cast<std::uint32_t>(slot));
        c.pre[s] += d;
        attributed += d;
    };
    k::Time x = c.seg_start;
    k::Time ov_x = c.seg_ov_total;
    int rs = c.seg_runner_slot;
    for (std::size_t i = c.seg_log_idx; i < cpu.log.size(); ++i) {
        const CpuCtx::RunnerEdge& e = cpu.log[i];
        if (rs >= 0) charge(rs, (e.at - x) - (e.ov_total - ov_x));
        x = e.at;
        ov_x = e.ov_total;
        rs = e.slot;
    }
    if (rs >= 0) charge(rs, (now - x) - (total_now - ov_x));
    c.residual += rest - attributed;
}

void Attribution::begin_segment(TaskCtx& c, SliceKind kind, k::Time now) {
    const OvMark m = ov_upto(*c.cpu, now);
    k::Time total{};
    for (std::size_t i = 0; i < kOvKinds; ++i) total += m.upto[i];
    begin_segment_with(c, kind, now, m, total);
}

kernel::Time Attribution::close_segment(TaskCtx& c, k::Time now) {
    const OvMark m = ov_upto(*c.cpu, now);
    k::Time total{};
    for (std::size_t i = 0; i < kOvKinds; ++i) total += m.upto[i];
    close_segment_with(c, now, m, total);
    return total;
}

void Attribution::switch_segment(TaskCtx& c, SliceKind kind, k::Time now) {
    const OvMark m = ov_upto(*c.cpu, now);
    k::Time total{};
    for (std::size_t i = 0; i < kOvKinds; ++i) total += m.upto[i];
    close_segment_with(c, now, m, total);
    begin_segment_with(c, kind, now, m, total);
}

// ------------------------------------------------------------ job lifecycle

void Attribution::open_job(TaskCtx& c, k::Time now) {
    c.open = true;
    c.index = c.next_index++;
    c.release = now;
    c.exec = c.residual = k::Time::zero();
    for (auto& o : c.ov) o = k::Time::zero();
    // c.pre needs no clearing: finish_job re-zeroed exactly the touched
    // slots, everything else is still zero.
    c.blocked_on.clear();
    c.skel.clear();
    begin_segment(c, SliceKind::ready, now);
}

void Attribution::finish_job(TaskCtx& c, k::Time now, bool aborted) {
    const k::Time ov_at_end = close_segment(c, now);
    if (c.episode != SIZE_MAX) end_episode(c, now);
    c.open = false;

    // Append the compact core only — no strings, no per-job vectors. The
    // public JobRecord is materialized lazily in jobs(); the job rate was
    // the analyzer's highest-frequency allocation site.
    if (cores_.size() == cores_.capacity()) {
        cores_.reserve(cores_.empty() ? 256 : cores_.capacity() * 4);
        skel_pool_.reserve(cores_.capacity() * 4);
        pre_pool_.reserve(cores_.capacity());
    }
    cores_.emplace_back();
    JobCore& j = cores_.back();
    j.task = c.task;
    j.index = c.index;
    j.release = c.release;
    j.end = now;
    j.aborted = aborted;
    j.exec = c.exec;
    for (std::size_t i = 0; i < kOvKinds; ++i) j.ov[i] = c.ov[i];
    // Energy blame: the engine folds the running slice and books its last
    // attributed overhead charge before the state notification that lands
    // here, so the per-job accumulators are final for this job (the terminal
    // context-save of a completed job is charged after this instant and is
    // excluded by design — conservation is checked at task level).
    j.energy_exec = c.task->job_energy_exec();
    j.energy_ov = c.task->job_energy_overhead();
    // Pack the non-zero per-slot ready shares (exactly the touched slots,
    // re-zeroed here for the task's next job); ISR slots feed the interrupt
    // component, the rest the preemption component.
    const CpuCtx& cpu = *c.cpu;
    k::Time preemption{}, interrupt{}, blocking{};
    j.pre_first = static_cast<std::uint32_t>(pre_pool_.size());
    for (const std::uint32_t s : c.pre_touched) {
        const k::Time share = c.pre[s];
        c.pre[s] = k::Time{};
        if (cpu.slot_tasks[s]->isr_task())
            interrupt += share;
        else
            preemption += share;
        pre_pool_.emplace_back(cpu.slot_tasks[s], share);
    }
    c.pre_touched.clear();
    j.pre_count = static_cast<std::uint32_t>(pre_pool_.size()) - j.pre_first;
    j.blk_first = static_cast<std::uint32_t>(blk_pool_.size());
    for (const auto& [name, t] : c.blocked_on) {
        blocking += t;
        blk_pool_.emplace_back(name, t);
    }
    j.blk_count = static_cast<std::uint32_t>(blk_pool_.size()) - j.blk_first;

    j.cpu = c.cpu;
    j.ov_at_release = c.skel.empty() ? k::Time{} : c.skel.front().ov_at_start;
    j.ov_at_end = ov_at_end;
    if (c.blocked_on.empty()) {
        // No (non-zero) blocked segment: the tiling is reconstructible from
        // the runner log, so don't pay the skeleton copy. Zero-width blocked
        // segments are dropped by slices_for() anyway, so they don't force
        // the stored path.
        j.skel_count = 0;
    } else {
        j.skel_first = static_cast<std::uint32_t>(skel_pool_.size());
        j.skel_count = static_cast<std::uint32_t>(c.skel.size());
        skel_pool_.insert(skel_pool_.end(), c.skel.begin(), c.skel.end());
    }
    c.skel.clear(); // capacity survives for the task's next job

    if (on_complete_lite_) {
        CompletionView v;
        v.task = c.task;
        v.index = j.index;
        v.release = j.release;
        v.end = now;
        v.aborted = aborted;
        v.exec = j.exec;
        v.preemption = preemption;
        v.blocking = blocking;
        v.overhead = (j.end - j.release) - j.exec - preemption - blocking -
                     interrupt;
        v.interrupt = interrupt;
        v.energy_exec = j.energy_exec;
        v.energy_overhead = j.energy_ov;
        v.preemptors = pre_pool_.data() + j.pre_first;
        v.preemptor_count = j.pre_count;
        v.blockers = blk_pool_.data() + j.blk_first;
        v.blocker_count = j.blk_count;
        on_complete_lite_(v);
    }
    if (on_complete_) {
        materialize(); // eager: the legacy hook wants the full JobRecord
        on_complete_(jobs_.back());
    }
}

void Attribution::materialize() const {
    if (jobs_.size() == cores_.size()) return;
    jobs_.reserve(cores_.capacity());
    for (std::size_t n = jobs_.size(); n < cores_.size(); ++n) {
        const JobCore& core = cores_[n];
        jobs_.emplace_back();
        JobRecord& j = jobs_.back();
        j.task = core.task->name();
        j.index = core.index;
        j.release = core.release;
        j.end = core.end;
        j.aborted = core.aborted;
        j.exec = core.exec;
        j.ov_scheduling =
            core.ov[static_cast<std::size_t>(r::OverheadKind::scheduling)];
        j.ov_load =
            core.ov[static_cast<std::size_t>(r::OverheadKind::context_load)];
        j.ov_save =
            core.ov[static_cast<std::size_t>(r::OverheadKind::context_save)];
        j.ov_switch = core.ov[static_cast<std::size_t>(
            r::OverheadKind::frequency_switch)];
        j.energy_exec = core.energy_exec;
        j.energy_overhead = core.energy_ov;
        // The derived sums are recomputed here instead of being carried in
        // JobCore: preemption/interrupt split the per-preemptor shares on
        // isr_task(), blocking sums the per-resource shares, and residual
        // falls out of the conservation identity (response = exec +
        // preemption + interrupt + blocking + overheads + residual), which
        // holds exactly by construction of the charging scheme.
        std::vector<std::pair<std::string, k::Time>>& pre_pairs = pre_scratch_;
        pre_pairs.clear();
        const auto* pre = pre_pool_.data() + core.pre_first;
        for (std::uint32_t i = 0; i < core.pre_count; ++i) {
            if (pre[i].first->isr_task()) {
                j.interrupt += pre[i].second;
                continue;
            }
            j.preemption += pre[i].second;
            pre_pairs.emplace_back(pre[i].first->name(), pre[i].second);
        }
        std::sort(
            pre_pairs.begin(), pre_pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
        for (auto& p : pre_pairs) {
            if (!j.preempted_by.empty() &&
                j.preempted_by.back().first == p.first)
                j.preempted_by.back().second += p.second;
            else
                j.preempted_by.push_back(std::move(p));
        }
        const auto* blk = blk_pool_.data() + core.blk_first;
        j.blocked_on.assign(blk, blk + core.blk_count);
        for (std::uint32_t i = 0; i < core.blk_count; ++i)
            j.blocking += blk[i].second;
        j.residual = (core.end - core.release) - core.exec - j.preemption -
                     j.interrupt - j.blocking - j.ov_scheduling - j.ov_load -
                     j.ov_save - j.ov_switch;
        j.overhead =
            j.ov_scheduling + j.ov_load + j.ov_save + j.ov_switch + j.residual;
    }
}

// ---------------------------------------------------------- blocking chains

void Attribution::start_episode(TaskCtx& c, k::Time now) {
    BlockEpisode e;
    e.victim = c.task->name();
    e.job_index = c.index;
    e.resource = c.blocked_rel != nullptr ? c.blocked_rel->name() : "?";
    e.start = now;
    e.end = now;
    e.victim_priority = c.task->effective_priority();

    const auto it = owner_of_.find(c.blocked_rel);
    const r::Task* owner =
        it != owner_of_.end() ? it->second : nullptr;
    if (owner != nullptr) {
        e.owner = owner->name();
        e.owner_priority = owner->effective_priority();
        e.inversion = e.owner_priority < e.victim_priority;
    }
    // Follow the chain: what does the owner itself block on, and who owns
    // that — transitively (nested critical sections give depth >= 2).
    e.chain.push_back(e.victim);
    const r::Task* link = owner;
    for (std::size_t depth = 0; link != nullptr && depth < 16; ++depth) {
        if (std::find(e.chain.begin(), e.chain.end(), link->name()) !=
            e.chain.end())
            break; // ownership cycle (deadlock): stop at the repeat
        e.chain.push_back(link->name());
        const mcse::Relation* next_rel = nullptr;
        for (const auto& [lt, lc] : task_index_)
            if (lt == link) {
                next_rel = lc->blocked_rel;
                break;
            }
        if (next_rel == nullptr) break;
        const auto oit = owner_of_.find(next_rel);
        link = oit != owner_of_.end() ? oit->second : nullptr;
    }
    c.episode = episodes_.size();
    episodes_.push_back(std::move(e));
    ++c.cpu->open_episodes;
}

void Attribution::end_episode(TaskCtx& c, k::Time now) {
    episodes_[c.episode].end = now;
    c.episode = SIZE_MAX;
    if (c.cpu->open_episodes > 0) --c.cpu->open_episodes;
}

// ------------------------------------------------------------- probe hooks

void Attribution::on_block(const r::Processor&, const r::Task& t,
                           r::TaskState kind, const mcse::Relation* on) {
    TaskCtx& c = task_ctx(t);
    c.blocked_rel = kind == r::TaskState::waiting_resource ? on : nullptr;
}

void Attribution::on_wake(const r::Processor&, const r::Task&) {
    // The Ready transition itself (on_task_state) carries the segmentation;
    // nothing extra to do here.
}

void Attribution::on_resource_acquire(const r::Processor&, const r::Task& t,
                                      const mcse::Relation& r) {
    owner_of_[&r] = &t;
}

void Attribution::on_resource_release(const r::Processor&, const r::Task& t,
                                      const mcse::Relation& r) {
    const auto it = owner_of_.find(&r);
    if (it != owner_of_.end() && it->second == &t) owner_of_.erase(it);
}

// --------------------------------------------------------- state transitions

void Attribution::on_task_state(const r::Task& task, r::TaskState from,
                                r::TaskState to) {
    if (from == to) return; // creation announcement
    TaskCtx& c = task_ctx(task);
    CpuCtx& cpu = *c.cpu;
    const k::Time now = task.processor().simulator().now();

    // 1. Runner edges: when the CPU's occupant changes, append one log
    // entry. Open jobs sitting in Ready are NOT touched — their close walks
    // the logged edges, and slices_for() subdivides at them on demand. This
    // turns the former O(open jobs) close/reopen sweep per edge into O(1).
    const bool runner_edge = from == r::TaskState::running ||
                             to == r::TaskState::running;
    if (runner_edge) {
        const k::Time ovt = ov_total_upto(cpu, now);
        if (to == r::TaskState::running) {
            cpu.runner = &task;
            cpu.runner_slot = static_cast<int>(c.slot);
        } else {
            cpu.runner = nullptr;
            cpu.runner_slot = -1;
        }
        cpu.log.push_back({now, cpu.runner, cpu.runner_slot, ovt});
        // A middle-priority task taking the CPU while someone sits in a
        // priority-inverted wait stretches the inversion: record it. Only
        // scanned while an episode is actually open on this CPU.
        if (cpu.runner != nullptr && cpu.open_episodes > 0) {
            for (auto& o : tasks_) {
                if (o.episode == SIZE_MAX || o.cpu != &cpu) continue;
                BlockEpisode& e = episodes_[o.episode];
                const int p = cpu.runner->effective_priority();
                if (cpu.runner != o.task && e.owner != cpu.runner->name() &&
                    p > e.owner_priority && p < e.victim_priority &&
                    std::find(e.aggravators.begin(), e.aggravators.end(),
                              cpu.runner->name()) == e.aggravators.end())
                    e.aggravators.push_back(cpu.runner->name());
            }
        }
    }

    // 2. The task's own job transitions.

    // Release: leaving a synchronization wait (or creation) for Ready opens
    // a job — same rule as MetricsCollector / ConstraintMonitor.
    if (to == r::TaskState::ready &&
        (from == r::TaskState::waiting || from == r::TaskState::created)) {
        if (c.open) {
            // Defensive: an episode convention violation would leak a job;
            // close it as aborted rather than corrupt the tiling.
            finish_job(c, now, /*aborted=*/true);
        }
        open_job(c, now);
        return;
    }
    if (!c.open) {
        if (c.blocked_rel != nullptr && to != r::TaskState::waiting_resource)
            c.blocked_rel = nullptr;
        return;
    }

    switch (to) {
        case r::TaskState::running:
            switch_segment(c, SliceKind::exec, now);
            return;
        case r::TaskState::ready:
            // Preemption / yield, or waking from a resource wait. The close
            // reads blocked_rel (the closing segment may be a blocked one),
            // so episode cleanup follows the switch.
            switch_segment(c, SliceKind::ready, now);
            if (from == r::TaskState::waiting_resource) {
                end_episode(c, now);
                c.blocked_rel = nullptr;
            }
            return;
        case r::TaskState::waiting_resource:
            // Mid-job mutual-exclusion block (blocked_rel was set by
            // on_block just before this transition).
            switch_segment(c, SliceKind::blocked, now);
            start_episode(c, now);
            return;
        case r::TaskState::waiting:
            // Completion: the episode convention ends a job when the task
            // blocks on synchronization again.
            finish_job(c, now, /*aborted=*/false);
            c.blocked_rel = nullptr;
            return;
        case r::TaskState::terminated:
            finish_job(c, now,
                       /*aborted=*/task.killed() || task.crashed());
            c.blocked_rel = nullptr;
            return;
        case r::TaskState::created:
            return; // restart bookkeeping, not a job edge
    }
}

// ----------------------------------------------------------------- queries

std::vector<const Attribution::BlockEpisode*> Attribution::inversions() const {
    std::vector<const BlockEpisode*> out;
    for (const auto& e : episodes_)
        if (e.inversion) out.push_back(&e);
    return out;
}

std::vector<const Attribution::JobRecord*> Attribution::jobs_for(
    const std::string& task) const {
    materialize();
    std::vector<const JobRecord*> out;
    for (const auto& j : jobs_)
        if (j.task == task) out.push_back(&j);
    return out;
}

std::vector<Attribution::Slice> Attribution::slices_for(
    const JobRecord& j) const {
    std::vector<Slice> out;
    const auto idx = static_cast<std::size_t>(&j - jobs_.data());
    if (idx >= cores_.size()) return out;
    const JobCore& core = cores_[idx];
    const auto& log = core.cpu->log;
    // Jobs that never blocked store no skeleton (finish_job elides the
    // copy); their ready/exec tiling is reconstructed from the runner log.
    // The job starts Ready at release; an edge whose runner is the task is
    // its dispatch (a task runs at most one job at a time, so an edge in
    // [release, end) naming the task belongs to this job); while it runs,
    // the next edge of any kind is the task leaving the CPU — a running
    // task's leave edge always precedes the successor's dispatch edge.
    std::vector<SkelSeg> synth;
    const SkelSeg* skel;
    std::size_t nseg;
    if (core.skel_count == 0) {
        synth.push_back(
            {core.release, core.ov_at_release, SliceKind::ready, nullptr});
        auto it = std::lower_bound(
            log.begin(), log.end(), core.release,
            [](const CpuCtx::RunnerEdge& e, k::Time t) { return e.at < t; });
        for (; it != log.end() && it->at < core.end; ++it) {
            if (synth.back().kind == SliceKind::ready) {
                if (it->runner == core.task)
                    synth.push_back(
                        {it->at, it->ov_total, SliceKind::exec, nullptr});
            } else {
                synth.push_back(
                    {it->at, it->ov_total, SliceKind::ready, nullptr});
            }
        }
        skel = synth.data();
        nseg = synth.size();
    } else {
        skel = skel_pool_.data() + core.skel_first;
        nseg = core.skel_count;
    }
    for (std::size_t i = 0; i < nseg; ++i) {
        const SkelSeg& s = skel[i];
        const k::Time end = i + 1 < nseg ? skel[i + 1].start : j.end;
        const k::Time ov_end =
            i + 1 < nseg ? skel[i + 1].ov_at_start : core.ov_at_end;
        if (s.kind == SliceKind::blocked) {
            if (end == s.start) continue;
            Slice o;
            o.start = s.start;
            o.end = end;
            o.kind = SliceKind::blocked;
            o.culprit = s.rel != nullptr ? s.rel->name() : "?";
            out.push_back(std::move(o));
            continue;
        }
        if (s.kind == SliceKind::exec) {
            if (end == s.start) continue;
            Slice o;
            o.start = s.start;
            o.end = end;
            o.kind = SliceKind::exec;
            o.overhead = ov_end - s.ov_at_start;
            out.push_back(std::move(o));
            continue;
        }
        // Ready: subdivide at the runner edges strictly inside (start, end),
        // reproducing the former eager close/reopen tiling. The runner of
        // the leading sub-slice is whoever held the CPU at the segment
        // start; every logged edge both closes a sub-slice and installs the
        // next runner. Zero-width sub-slices are dropped, and a sub-slice
        // that is pure overhead keeps an empty culprit — exactly the old
        // close_segment rules.
        auto it = std::upper_bound(
            log.begin(), log.end(), s.start,
            [](k::Time t, const CpuCtx::RunnerEdge& e) { return t < e.at; });
        const r::Task* runner =
            it == log.begin() ? nullptr : std::prev(it)->runner;
        k::Time x = s.start;
        k::Time ov_x = s.ov_at_start;
        const auto emit = [&out, &x, &ov_x, &runner](k::Time y, k::Time ov_y) {
            if (y == x) return;
            Slice o;
            o.start = x;
            o.end = y;
            o.kind = SliceKind::ready;
            o.overhead = ov_y - ov_x;
            const k::Time rest = (y - x) - o.overhead;
            if (!rest.is_zero() && runner != nullptr)
                o.culprit = runner->name();
            out.push_back(std::move(o));
        };
        for (; it != log.end() && it->at < end; ++it) {
            emit(it->at, it->ov_total);
            x = it->at;
            ov_x = it->ov_total;
            runner = it->runner;
        }
        emit(end, ov_end);
    }
    return out;
}

std::vector<Attribution::DeadlineMissReport> Attribution::miss_reports(
    const trace::ConstraintMonitor& monitor) const {
    materialize();
    std::vector<DeadlineMissReport> out;
    for (const auto& v : monitor.violations()) {
        if (v.task == nullptr) continue; // latency rules have no job
        DeadlineMissReport r;
        r.constraint = v.constraint;
        r.task = v.task->name();
        r.at = v.at;
        r.measured = v.measured;
        r.bound = v.bound;
        // A response violation fires at the completion instant with the
        // job's response time: match on (task, end).
        for (const auto& j : jobs_) {
            if (j.task == r.task && j.end == v.at &&
                j.response() == v.measured) {
                r.job = &j;
                break;
            }
        }
        if (r.job != nullptr) {
            for (const Slice& s : slices_for(*r.job)) {
                DeadlineMissReport::PathItem item;
                item.start = s.start;
                item.duration = s.end - s.start;
                switch (s.kind) {
                    case SliceKind::exec:
                        item.culprit = r.task;
                        item.reason = "executing";
                        break;
                    case SliceKind::ready:
                        if (!s.culprit.empty()) {
                            item.culprit = s.culprit;
                            item.reason = "preempted by " + s.culprit;
                        } else {
                            item.culprit = "rtos";
                            item.reason = "rtos overhead";
                        }
                        break;
                    case SliceKind::blocked:
                        item.culprit = s.culprit;
                        item.reason = "blocked on " + s.culprit;
                        break;
                }
                r.critical_path.push_back(std::move(item));
            }
        }
        out.push_back(std::move(r));
    }
    return out;
}

} // namespace rtsc::obs
