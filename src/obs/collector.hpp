#pragma once
// MetricsCollector: the sink behind the kernel/engine instrumentation hooks.
// Attach it to one or more Processors and it populates a MetricsRegistry
// with the standard catalogue (docs/OBSERVABILITY.md):
//
//   cpu.<name>.scheduler_runs        counter   scheduling passes
//   cpu.<name>.ctx_switches         counter   Ready -> Running dispatches
//   cpu.<name>.preemptions          counter   involuntary Running -> Ready
//   cpu.<name>.ready_queue_len      histogram queue length per scheduling pass
//   cpu.<name>.preempt_depth        histogram preempted tasks in queue per preemption
//   cpu.<name>.sched_latency_ps     histogram Ready -> Running wait, ps
//   cpu.<name>.dispatch_latency_ps  histogram grant -> Running tail, ps
//   task.<name>.response_ps         histogram activation -> completion, ps
//   task.<name>.activations         counter   release count
//
// With an Attribution analyzer plugged in (set_attribution) the catalogue
// grows per-job blame metrics:
//
//   task.<n>.preempted_by.<m>       counter   jobs of n delayed by task m
//   task.<n>.blocked_on.<r>         counter   jobs of n blocked on relation r
//   task.<n>.blame.exec_ps          histogram own-execution share per job
//   task.<n>.blame.preempt_ps       histogram preemption share per job
//   task.<n>.blame.block_ps         histogram blocking share per job
//   task.<n>.blame.overhead_ps      histogram RTOS overhead share per job
//   task.<n>.blame.interrupt_ps     histogram ISR-stolen share per job
//
// On DVFS-enabled processors (Processor::set_dvfs) two per-job energy gauges
// join the catalogue, in joules (mean/min/max/last over the task's jobs):
//
//   task.<n>.energy_exec_j          gauge     job execution energy
//   task.<n>.energy_overhead_j      gauge     job attributed-overhead energy
//
// All values are simulated-time quantities: the registry contents are
// engine-equivalent (procedural vs threaded) and bit-identical across runs.
// When no collector is attached the hooks cost one untaken branch each.

#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rtos/probe.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::obs {

class Attribution;

class MetricsCollector final : public rtos::EngineProbe,
                               public rtos::TaskObserver {
public:
    explicit MetricsCollector(MetricsRegistry& registry) : reg_(registry) {}

    MetricsCollector(const MetricsCollector&) = delete;
    MetricsCollector& operator=(const MetricsCollector&) = delete;
    ~MetricsCollector() override;

    /// Instrument `cpu`: installs this collector as the engine probe and as
    /// a task observer (response times). Call before Simulator::run().
    void attach(rtos::Processor& cpu);

    [[nodiscard]] MetricsRegistry& registry() noexcept { return reg_; }

    /// Plug in a causal-latency analyzer. The engine holds a single probe
    /// slot, so when both a collector and an Attribution observe the same
    /// processor the collector owns the slot and forwards every hook; the
    /// analyzer's job completions feed the task.<n>.preempted_by.* /
    /// blocked_on.* counters and blame histograms. Call before attach()
    /// observations start; pass nullptr to unplug.
    void set_attribution(Attribution* a);
    [[nodiscard]] Attribution* attribution() const noexcept { return attr_; }

    // EngineProbe
    void on_scheduler_run(const rtos::Processor& cpu,
                          std::size_t ready_len) override;
    void on_dispatch(const rtos::Processor& cpu, const rtos::Task& t,
                     kernel::Time sched_latency,
                     kernel::Time dispatch_latency) override;
    void on_preempt(const rtos::Processor& cpu, const rtos::Task& t,
                    std::size_t depth) override;
    void on_block(const rtos::Processor& cpu, const rtos::Task& t,
                  rtos::TaskState kind, const mcse::Relation* on) override;
    void on_wake(const rtos::Processor& cpu, const rtos::Task& t) override;
    void on_resource_acquire(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;
    void on_resource_release(const rtos::Processor& cpu, const rtos::Task& t,
                             const mcse::Relation& r) override;

    // TaskObserver
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override;
    void on_overhead(const rtos::Processor& cpu, rtos::OverheadKind kind,
                     kernel::Time start, kernel::Time duration,
                     const rtos::Task* about) override;

private:
    struct CpuMetrics {
        const rtos::Processor* cpu;
        Counter* scheduler_runs;
        Counter* ctx_switches;
        Counter* preemptions;
        Histogram* ready_queue_len;
        Histogram* preempt_depth;
        Histogram* sched_latency;
        Histogram* dispatch_latency;
    };
    struct TaskMetrics {
        const rtos::Task* task;
        Counter* activations;
        Histogram* response;
        bool active = false;       ///< a response episode is open
        kernel::Time released{};
    };
    /// Cached blame-metric pointers for one completing task. The completion
    /// hook fires once per job — resolving five histograms plus per-culprit
    /// counters through string-keyed registry lookups every time dominated
    /// the attribution overhead, so the pointers are resolved once and the
    /// per-culprit counters accumulate in small pointer caches. Keyed by
    /// Task identity; two tasks sharing a name get two cache entries whose
    /// pointers land on the same registry objects, preserving the name-merged
    /// catalogue.
    struct BlameMetrics {
        const rtos::Task* task;
        std::string prefix;        ///< "task.<name>."
        Histogram* exec;
        Histogram* preempt;
        Histogram* block;
        Histogram* overhead;
        Histogram* interrupt;
        std::vector<std::pair<const rtos::Task*, Counter*>> preempted_by;
        std::vector<std::pair<std::string, Counter*>> blocked_on;
        /// Resolved on first job of a DVFS processor only — non-DVFS runs
        /// keep the catalogue free of dead-zero energy metrics.
        Gauge* energy_exec = nullptr;
        Gauge* energy_ov = nullptr;
    };

    [[nodiscard]] CpuMetrics& cpu_metrics(const rtos::Processor& cpu);
    [[nodiscard]] TaskMetrics& task_metrics(const rtos::Task& t);
    [[nodiscard]] BlameMetrics& blame_metrics(const rtos::Task& t);
    [[nodiscard]] Counter& preemptor_counter(BlameMetrics& m,
                                             const rtos::Task& by);
    [[nodiscard]] Counter& culprit_counter(
        std::vector<std::pair<std::string, Counter*>>& cache,
        const std::string& prefix, const char* group, const std::string& name);

    MetricsRegistry& reg_;
    std::vector<CpuMetrics> cpus_;
    std::vector<TaskMetrics> tasks_;
    std::deque<BlameMetrics> blames_; ///< deque: blame_order_ holds pointers,
                                      ///< growth must not invalidate them
    std::vector<BlameMetrics*> blame_order_; ///< move-to-front scan order
    std::vector<Counter*> culprits_seen_; ///< per-job dedup scratch

    std::vector<rtos::Processor*> attached_;
    Attribution* attr_ = nullptr;
};

} // namespace rtsc::obs
