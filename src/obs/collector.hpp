#pragma once
// MetricsCollector: the sink behind the kernel/engine instrumentation hooks.
// Attach it to one or more Processors and it populates a MetricsRegistry
// with the standard catalogue (docs/OBSERVABILITY.md):
//
//   cpu.<name>.scheduler_runs        counter   scheduling passes
//   cpu.<name>.ctx_switches         counter   Ready -> Running dispatches
//   cpu.<name>.preemptions          counter   involuntary Running -> Ready
//   cpu.<name>.ready_queue_len      histogram queue length per scheduling pass
//   cpu.<name>.preempt_depth        histogram preempted tasks in queue per preemption
//   cpu.<name>.sched_latency_ps     histogram Ready -> Running wait, ps
//   cpu.<name>.dispatch_latency_ps  histogram grant -> Running tail, ps
//   task.<name>.response_ps         histogram activation -> completion, ps
//   task.<name>.activations         counter   release count
//
// All values are simulated-time quantities: the registry contents are
// engine-equivalent (procedural vs threaded) and bit-identical across runs.
// When no collector is attached the hooks cost one untaken branch each.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rtos/probe.hpp"
#include "rtos/processor.hpp"
#include "rtos/task.hpp"

namespace rtsc::obs {

class MetricsCollector final : public rtos::EngineProbe,
                               public rtos::TaskObserver {
public:
    explicit MetricsCollector(MetricsRegistry& registry) : reg_(registry) {}

    MetricsCollector(const MetricsCollector&) = delete;
    MetricsCollector& operator=(const MetricsCollector&) = delete;
    ~MetricsCollector() override;

    /// Instrument `cpu`: installs this collector as the engine probe and as
    /// a task observer (response times). Call before Simulator::run().
    void attach(rtos::Processor& cpu);

    [[nodiscard]] MetricsRegistry& registry() noexcept { return reg_; }

    // EngineProbe
    void on_scheduler_run(const rtos::Processor& cpu,
                          std::size_t ready_len) override;
    void on_dispatch(const rtos::Processor& cpu, const rtos::Task& t,
                     kernel::Time sched_latency,
                     kernel::Time dispatch_latency) override;
    void on_preempt(const rtos::Processor& cpu, const rtos::Task& t,
                    std::size_t depth) override;

    // TaskObserver
    void on_task_state(const rtos::Task& task, rtos::TaskState from,
                       rtos::TaskState to) override;

private:
    struct CpuMetrics {
        const rtos::Processor* cpu;
        Counter* scheduler_runs;
        Counter* ctx_switches;
        Counter* preemptions;
        Histogram* ready_queue_len;
        Histogram* preempt_depth;
        Histogram* sched_latency;
        Histogram* dispatch_latency;
    };
    struct TaskMetrics {
        const rtos::Task* task;
        Counter* activations;
        Histogram* response;
        bool active = false;       ///< a response episode is open
        kernel::Time released{};
    };

    [[nodiscard]] CpuMetrics& cpu_metrics(const rtos::Processor& cpu);
    [[nodiscard]] TaskMetrics& task_metrics(const rtos::Task& t);

    MetricsRegistry& reg_;
    std::vector<CpuMetrics> cpus_;
    std::vector<TaskMetrics> tasks_;
    std::vector<rtos::Processor*> attached_;
};

} // namespace rtsc::obs
