#pragma once
// Offline trace query layer behind tools/trace_query: loads a Perfetto
// export written by obs::write_perfetto_json (with attribution enabled) and
// answers "why was this task late?" without re-running the simulation.
//
// The loader understands exactly the event schema the exporter writes:
//   cat "job"            -> JobRow    (per-job blame decomposition, args in
//                                      exact picoseconds)
//   cat "blocking_chain" -> ChainRow  (victim/owner/chain/inversion flag)
//   cat "deadline_miss"  -> MissRow   (violated constraint + critical path)
// Everything else (task_state slices, rtos overheads, comm instants, flow
// events) is skipped. Exports made without PerfettoOptions::attribution
// simply yield empty row sets.
//
// Renderers produce either a fixed-width human table or a JSON document
// (--json); the JSON is itself valid obs::json input, which trace_query uses
// as a built-in schema self-check.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rtsc::obs::query {

/// One job slice (cat "job") with its blame decomposition. Times are the
/// exporter's *_ps args: exact picosecond integers carried in doubles (all
/// values fit well below 2^53).
struct JobRow {
    std::string task;
    std::uint64_t index = 0;
    double release_ps = 0;
    double end_ps = 0;
    double response_ps = 0;
    bool aborted = false;
    double exec_ps = 0;
    double preempt_ps = 0;
    double block_ps = 0;
    double overhead_ps = 0;
    double interrupt_ps = 0;
    /// Energy blame, present in exports of DVFS runs (absent keys in older
    /// exports leave has_energy false and the fields zero / empty). The _fj
    /// strings carry the exact 128-bit model units; the _j doubles are the
    /// human-scale joule rendering.
    bool has_energy = false;
    std::string energy_exec_fj;
    std::string energy_overhead_fj;
    double energy_exec_j = 0;
    double energy_overhead_j = 0;
    std::vector<std::pair<std::string, double>> preempted_by;
    std::vector<std::pair<std::string, double>> blocked_on;
};

/// One blocking episode (cat "blocking_chain").
struct ChainRow {
    std::string victim;
    std::uint64_t job = 0;
    std::string resource;
    std::string owner;
    int victim_priority = 0;
    int owner_priority = 0;
    double start_ps = 0;    ///< block instant (from the event ts, us -> ps)
    double duration_ps = 0;
    bool inversion = false;
    std::vector<std::string> chain;
    std::vector<std::string> aggravators;
};

/// One deadline-miss report (cat "deadline_miss").
struct MissRow {
    std::string task;
    std::string constraint;
    double at_ps = 0;       ///< detection instant (from the event ts)
    double measured_ps = 0;
    double bound_ps = 0;
    struct PathItem {
        double start_ps = 0;
        double dur_ps = 0;
        std::string culprit;
        std::string reason;
    };
    std::vector<PathItem> critical_path;
};

struct TraceData {
    std::vector<JobRow> jobs;     ///< (task, release) order
    std::vector<ChainRow> chains; ///< start order
    std::vector<MissRow> misses;  ///< detection order
};

/// Parse a Perfetto export. Throws std::runtime_error (which includes
/// json::ParseError) on unreadable files, malformed JSON or events whose
/// attribution args don't match the exporter's schema.
[[nodiscard]] TraceData load(const std::string& path);

/// Per-job blame table, optionally restricted to one task ("" = all), plus a
/// per-task summary footer. JSON form: {"jobs": [...], "summary": [...]}.
[[nodiscard]] std::string render_blame(const TraceData& d,
                                       const std::string& task_filter,
                                       bool json);

/// Blocking-chain table; `inversions_only` keeps flagged episodes only.
/// JSON form: {"chains": [...]}.
[[nodiscard]] std::string render_chains(const TraceData& d,
                                        bool inversions_only, bool json);

/// Deadline-miss reports with their critical path. JSON form:
/// {"misses": [...]}.
[[nodiscard]] std::string render_misses(const TraceData& d, bool json);

} // namespace rtsc::obs::query
